"""Tests for the TAU-like profiler substrate."""

import pytest

from repro.profiler import CounterModel, TaskProfiler
from repro.staging import StreamChannel


def make_profiler(counters=None):
    ch = StreamChannel("tau-iso", capacity=32)
    prof = TaskProfiler(
        workflow_id="GS", task="Isosurface", channel=ch,
        rank_nodes={0: "n0", 1: "n0", 2: "n1"}, counters=counters,
    )
    return ch, prof


class TestTaskProfiler:
    def test_emit_step_publishes_samples(self):
        ch, prof = make_profiler()
        reader = ch.open_reader()
        samples = prof.emit_step(10.0, step=3, loop_times={0: 1.5, 1: 1.7, 2: 2.0})
        assert len(samples) == 3
        assert {s.var for s in samples} == {"looptime"}
        assert all(s.task == "Isosurface" and s.step == 3 for s in samples)
        assert samples[2].node_id == "n1"
        published = reader.drain()
        assert len(published) == 1 and published[0].data == samples

    def test_counters_added(self):
        ch, prof = make_profiler(counters=CounterModel())
        samples = prof.emit_step(0.0, step=0, loop_times={0: 1.0})
        vars_seen = {s.var for s in samples}
        assert vars_seen == {"looptime", "PAPI_TOT_INS", "PAPI_TOT_CYC"}

    def test_extra_vars(self):
        _ch, prof = make_profiler()
        samples = prof.emit_step(0.0, 0, {0: 1.0}, extra_vars={"rss_mb": {0: 512.0}})
        assert any(s.var == "rss_mb" and s.value == 512.0 for s in samples)

    def test_steps_published_counts(self):
        _ch, prof = make_profiler()
        prof.emit_step(0.0, 0, {0: 1.0})
        prof.emit_step(1.0, 1, {0: 1.0})
        assert prof.steps_published == 2

    def test_ranks_sorted(self):
        _ch, prof = make_profiler()
        samples = prof.emit_step(0.0, 0, {2: 1.0, 0: 2.0, 1: 3.0})
        assert [s.rank for s in samples] == [0, 1, 2]


class TestCounterModel:
    def test_ipc_degrades_with_slower_steps(self):
        cm = CounterModel(clock_ghz=2.0, work_instructions=4e9, base_ipc=2.0)
        fast = cm.ipc(1.0)
        slow = cm.ipc(10.0)
        assert slow < fast <= 2.0

    def test_ipc_capped_at_base(self):
        cm = CounterModel(clock_ghz=2.0, work_instructions=1e12, base_ipc=1.5)
        assert cm.ipc(0.001) == 1.5

    def test_counters_shape(self):
        cm = CounterModel()
        instr, cycles = cm.counters_for_step({0: 1.0, 1: 2.0})
        assert set(instr) == set(cycles) == {0, 1}
        assert cycles[1] == pytest.approx(2 * cycles[0])
        assert instr[0] == instr[1]

    def test_join_semantics_ipc_from_counters(self):
        """IPC computed by dividing the two counter streams (paper §2.1 Join)."""
        cm = CounterModel(clock_ghz=1.0, work_instructions=1e9, base_ipc=10.0)
        instr, cycles = cm.counters_for_step({0: 2.0})
        ipc = instr[0] / cycles[0]
        assert ipc == pytest.approx(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CounterModel(clock_ghz=0)
