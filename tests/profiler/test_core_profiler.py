"""The sampling core profiler: cadence, flight-recorder ring, deltas.

Unit-level behaviour runs against tiny fake engine/arbitration sources;
the integration test wires a :class:`CoreProfiler` through
``RuntimeOptions(profile=...)`` into a synthetic scenario and proves the
profiler is an observer — the scenario fingerprint is bit-identical with
profiling on and off.
"""

import json
import math

import pytest

from repro.errors import TelemetryError
from repro.profiler import CoreProfiler, ProfileSpec


class FakeEngine:
    def __init__(self):
        self.events_executed = 0
        self._slots = 2
        self._events = 5

    def pending_slots(self):
        return self._slots

    def pending_events(self):
        return self._events


class FakeArbitration:
    def __init__(self):
        self.hits = 0
        self.misses = 0

    def memo_stats(self):
        return {"hits": self.hits, "misses": self.misses}


def enabled_spec(**kwargs):
    defaults = dict(enabled=True, sample_every=5.0, ring=256)
    defaults.update(kwargs)
    return ProfileSpec(**defaults)


class TestSpec:
    def test_validation(self):
        with pytest.raises(TelemetryError, match="sample_every"):
            CoreProfiler(ProfileSpec(sample_every=0.0))
        with pytest.raises(TelemetryError, match="ring"):
            CoreProfiler(ProfileSpec(ring=0))

    def test_disabled_is_a_noop(self):
        prof = CoreProfiler(ProfileSpec(enabled=False))
        assert prof.maybe_sample(100.0) is None
        assert prof.samples_taken == 0 and prof.ring() == []


class TestCadence:
    def test_samples_on_the_cadence_only(self):
        prof = CoreProfiler(enabled_spec(sample_every=5.0))
        assert prof.maybe_sample(0.0) is not None
        assert prof.maybe_sample(3.0) is None
        assert prof.maybe_sample(5.0) is not None
        assert prof.samples_taken == 2

    def test_cadence_catches_up_after_a_gap(self):
        prof = CoreProfiler(enabled_spec(sample_every=5.0))
        prof.maybe_sample(0.0)
        # One long tick past several due points yields ONE sample, and
        # the schedule re-anchors ahead of "now" (no burst of backfills).
        assert prof.maybe_sample(27.0) is not None
        assert prof.maybe_sample(28.0) is None
        assert prof.maybe_sample(30.0) is not None


class TestSampling:
    def test_deltas_against_bound_baselines(self):
        engine, arb = FakeEngine(), FakeArbitration()
        engine.events_executed = 10
        prof = CoreProfiler(enabled_spec())
        prof.bind(engine=engine, arbitration=arb)
        engine.events_executed = 25
        arb.hits, arb.misses = 3, 1
        sample = prof.sample(1.0)
        assert sample["events"] == 15
        assert sample["memo_hit_rate"] == pytest.approx(0.75)
        assert sample["pending_slots"] == 2
        assert sample["pending_events"] == 5

    def test_counter_restart_reanchors_instead_of_going_negative(self):
        engine = FakeEngine()
        engine.events_executed = 100
        prof = CoreProfiler(enabled_spec())
        prof.bind(engine=engine)
        # Fresh process after resume: the cumulative source restarted.
        engine.events_executed = 4
        sample = prof.sample(1.0)
        assert sample["events"] == 0

    def test_ring_is_bounded_oldest_first(self):
        prof = CoreProfiler(enabled_spec(ring=3))
        for t in range(5):
            prof.sample(float(t))
        ring = prof.ring()
        assert [s["time"] for s in ring] == [2.0, 3.0, 4.0]
        assert prof.samples_taken == 5

    def test_markers_land_in_the_ring(self):
        prof = CoreProfiler(enabled_spec())
        prof.sample(0.0)
        prof.record(1.0, "crash", detail="boom")
        assert prof.ring()[-1] == {"time": 1.0, "marker": "crash",
                                   "detail": "boom"}


class TestDumpAndState:
    def test_dump_writes_the_flight_recorder(self, tmp_path):
        path = tmp_path / "flight.json"
        prof = CoreProfiler(enabled_spec(dump_path=str(path)))
        prof.sample(0.0)
        prof.record(1.0, "crash")
        assert prof.dump(reason="crash") == str(path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "dyflow-flight-recorder/1"
        assert doc["reason"] == "crash"
        assert doc["samples_taken"] == 1 and len(doc["ring"]) == 2

    def test_dump_without_a_path_is_skipped(self):
        assert CoreProfiler(enabled_spec()).dump() is None

    def test_state_roundtrip(self):
        prof = CoreProfiler(enabled_spec(sample_every=5.0))
        prof.maybe_sample(0.0)
        prof.record(1.0, "poison")
        restored = CoreProfiler(enabled_spec(sample_every=5.0))
        restored.load_state_dict(prof.state_dict())
        assert restored.ring() == prof.ring()
        assert restored.samples_taken == prof.samples_taken
        # The cadence continues where it left off, not from zero.
        assert restored.maybe_sample(3.0) is None
        assert restored.maybe_sample(5.0) is not None


class TestRuntimeWiring:
    """RuntimeOptions(profile=...) wires the profiler into the tick loop
    without perturbing the simulation."""

    def run_scenario(self, options):
        from repro.cluster import BatchScheduler, summit
        from repro.experiments.results import ScenarioResult
        from repro.experiments.runner import execute_scenario
        from repro.experiments.synthetic import (
            SyntheticConfig,
            build_synthetic_orchestrator,
            build_synthetic_workflow,
        )
        from repro.journal import scenario_fingerprint
        from repro.sim import RngRegistry, SimEngine
        from repro.wms import Savanna

        cfg = SyntheticConfig(num_tasks=8, total_steps=3, num_clients=2, seed=3)
        engine = SimEngine()
        num_nodes = max(1, math.ceil(cfg.num_tasks / cfg.cores_per_node))
        machine = summit(num_nodes, cores_per_node=cfg.cores_per_node)
        scheduler = BatchScheduler(engine, machine)
        max_time = cfg.step_time * (cfg.total_steps + 4) + 60.0
        job = scheduler.submit(num_nodes, walltime_limit=max_time)
        engine.run(until=0)
        workflow = build_synthetic_workflow(cfg)
        launcher = Savanna(engine, workflow, job.allocation,
                           rng=RngRegistry(cfg.seed))
        orch = build_synthetic_orchestrator(launcher, cfg, options=options)
        makespan = execute_scenario(engine, launcher, orch, max_time=max_time)
        result = ScenarioResult(
            name="synthetic", machine="summit", use_dyflow=True,
            makespan=makespan, trace=launcher.trace, plans=orch.plans,
            metric_history=orch.server.history, launcher=launcher,
        )
        return orch, scenario_fingerprint(result)

    def test_profiler_samples_and_stays_invisible(self):
        from repro.runtime import RuntimeOptions

        off_orch, off_fp = self.run_scenario(RuntimeOptions())
        on_orch, on_fp = self.run_scenario(RuntimeOptions(
            profile=ProfileSpec(enabled=True, sample_every=1.0, ring=64)
        ))
        assert off_orch.profiler is None
        assert on_orch.profiler is not None
        assert on_orch.profiler.samples_taken > 0
        assert any("events" in s for s in on_orch.profiler.ring())
        # The observer effect is zero: bit-identical fingerprints.
        assert on_fp == off_fp
