"""Kill → resume equivalence on the Gray-Scott experiment.

The acceptance bar for crash recovery: a run that loses its controller
mid-campaign and resumes from the journal must be *bit-identical* — by
:func:`~repro.journal.scenario_fingerprint` — to an uninterrupted
reference.  The reference schedules the same crash requests but ignores
them (``ignore_crash_requests=True``), which keeps the event-queue
sequence numbers aligned without ever crashing.
"""


from repro.journal import JournalSpec, read_journal, scenario_fingerprint
from repro.runtime import DyflowOrchestrator
from repro.experiments import run_gray_scott_experiment

CHAOS_XML = """
  <resilience>
    <retry max-retries="8" backoff-base="1.0" jitter="0.25"/>
    <faults task-crash-mtbf="400.0" orch-crash-mtbf="350.0" msg-drop-prob="0.02"/>
  </resilience>"""


def jspec(tmp_path, **kw):
    kw.setdefault("fsync", "off")
    return JournalSpec(dir=str(tmp_path / "journal"), **kw)


class TestBarrierCrashResume:
    def test_two_crashes_resume_bit_identical(self, tmp_path):
        crash_times = (300.0, 700.0)
        ref = run_gray_scott_experiment(
            crash_times=crash_times, ignore_crash_requests=True
        )
        res = run_gray_scott_experiment(
            journal=jspec(tmp_path), crash_times=crash_times
        )
        assert res.meta["crashes"] == [300.0, 700.0]
        assert not ref.meta["crashes"]
        assert res.makespan == ref.makespan
        assert scenario_fingerprint(res) == scenario_fingerprint(ref)

    def test_resume_bookkeeping(self, tmp_path):
        spec = jspec(tmp_path)
        res = run_gray_scott_experiment(journal=spec, crash_times=(300.0,))
        state = read_journal(spec.dir)
        # One crash → one takeover → epoch 2 (+1 for the final close path
        # never reclaims; the epoch counts writers, not syncs).
        assert state.epoch == 2
        crash_points = res.trace.points_for(label="orchestrator-crash")
        resume_points = res.trace.points_for(label="orchestrator-resume")
        assert len(crash_points) == 1 and len(resume_points) == 1
        assert all(p.category == "journal" for p in crash_points + resume_points)
        assert resume_points[0].meta["epoch"] == 2

    def test_snapshot_compaction_does_not_change_the_run(self, tmp_path):
        # Aggressive snapshotting (every 5 barriers) exercises resume
        # from snapshot + short suffix instead of full-log replay.
        ref = run_gray_scott_experiment(
            crash_times=(500.0,), ignore_crash_requests=True
        )
        res = run_gray_scott_experiment(
            journal=jspec(tmp_path, snapshot_every=5), crash_times=(500.0,)
        )
        assert scenario_fingerprint(res) == scenario_fingerprint(ref)

    def test_crash_on_a_snapshot_aligned_barrier(self, tmp_path):
        # snapshot_every=1 makes *every* barrier a snapshot barrier, so
        # the crash record seals the barrier into the compacted segment
        # and the replayable suffix holds no barrier at all — resume must
        # fall back to the barrier state embedded in the snapshot.
        spec = jspec(tmp_path, snapshot_every=1)
        ref = run_gray_scott_experiment(
            crash_times=(500.0,), ignore_crash_requests=True
        )
        res = run_gray_scott_experiment(journal=spec, crash_times=(500.0,))
        assert res.meta["crashes"] == [500.0]
        assert scenario_fingerprint(res) == scenario_fingerprint(ref)
        assert read_journal(spec.dir).snapshot_state["barrier"] is not None


class TestChaosCrashResume:
    def test_stochastic_orchestrator_crashes_resume_bit_identical(self, tmp_path):
        kw = dict(seed=3, xml_extra=CHAOS_XML)
        ref = run_gray_scott_experiment(ignore_crash_requests=True, **kw)
        res = run_gray_scott_experiment(journal=jspec(tmp_path), **kw)
        assert res.meta["crashes"], "the fault model never crashed the controller"
        assert res.makespan == ref.makespan
        assert scenario_fingerprint(res) == scenario_fingerprint(ref)


class TestHardCrashExactlyOnce:
    def test_mid_plan_hard_crash_applies_each_op_exactly_once(self, tmp_path, monkeypatch):
        # Find the first plan's actuation window, then die *inside* it —
        # no barrier alignment, abort mid-plan — and resume.  Bit-identity
        # is out of scope here; the contract is exactly-once actuation.
        ref = run_gray_scott_experiment()
        plan0 = ref.plans[0]
        assert plan0.execution_start is not None and plan0.execution_end is not None
        t_mid = (plan0.execution_start + plan0.execution_end) / 2.0
        monkeypatch.setattr(
            DyflowOrchestrator, "request_crash", DyflowOrchestrator.hard_crash
        )
        spec = jspec(tmp_path, fsync="always")
        res = run_gray_scott_experiment(journal=spec, crash_times=(t_mid,))
        assert res.meta["crashes"] == [t_mid]

        records = []
        state = read_journal(spec.dir)
        records.extend(state.records)
        if state.snapshot_state is not None:
            # The post-resume journal may have compacted; the exactly-once
            # check needs the full op history, so read every segment raw.
            import os

            from repro.journal.wal import list_segment_indices, read_segment

            records = []
            for idx in list_segment_indices(spec.dir):
                records.extend(
                    read_segment(os.path.join(spec.dir, f"wal-{idx:06d}.jsonl"))
                )
        completed = [r["op_key"] for r in records if r["kind"] == "op-completed"]
        issued = {r["op_key"] for r in records if r["kind"] == "op-issued"}
        assert len(completed) == len(set(completed)), "an op completed twice"
        assert set(completed) <= issued
        # Every issued op eventually completed (skips re-journal completion).
        assert issued <= set(completed)

        # The cluster stayed consistent and the workflow actually finished.
        res.launcher.rm.check_invariants()
        assert all(p.execution_end is not None for p in res.plans)
        gs = res.launcher.record("GrayScott")
        assert not gs.is_active and gs.incarnations > 0
