"""WAL framing: CRC guards, torn tails, segments, epoch fencing."""


import pytest

from repro.errors import JournalError, StaleWriterError
from repro.journal import claim_epoch, current_epoch, make_record, read_segment
from repro.journal.wal import (
    WalWriter,
    encode_record,
    list_segment_indices,
    segment_path,
)


def write_lines(path, lines):
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(lines)


class TestFraming:
    def test_encode_read_round_trip(self, tmp_path):
        path = str(tmp_path / "wal-000000.jsonl")
        recs = [make_record(i + 1, 1, "obs", {"x": i}) for i in range(5)]
        write_lines(path, [encode_record(r) for r in recs])
        assert read_segment(path) == recs

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "wal-000000.jsonl")
        good = encode_record(make_record(1, 1, "obs", {"x": 0}))
        torn = encode_record(make_record(2, 1, "obs", {"x": 1}))[:-7]
        write_lines(path, [good, torn])
        recs = read_segment(path)
        assert [r["seq"] for r in recs] == [1]

    def test_bit_flip_fails_crc(self, tmp_path):
        path = str(tmp_path / "wal-000000.jsonl")
        line = encode_record(make_record(1, 1, "obs", {"x": 0}))
        flipped = line.replace('"x":0', '"x":1')  # body changed, CRC stale
        write_lines(path, [flipped])
        assert read_segment(path) == []

    def test_corruption_before_valid_data_raises(self, tmp_path):
        # An append-only log can only tear at the tail; garbage followed
        # by a valid record means real corruption, not a crash artifact.
        path = str(tmp_path / "wal-000000.jsonl")
        good = encode_record(make_record(1, 1, "obs", {"x": 0}))
        write_lines(path, ["deadbeef {broken\n", good])
        with pytest.raises(JournalError, match="mid-segment"):
            read_segment(path)

    def test_unknown_kind_rejected_at_the_source(self):
        with pytest.raises(ValueError, match="unknown journal record kind"):
            make_record(1, 1, "not-a-kind", {})


class TestSegments:
    def test_rotation_and_listing(self, tmp_path):
        d = str(tmp_path)
        w = WalWriter(d, epoch=claim_epoch(d), fsync="off")
        w.append(make_record(1, 1, "obs", {}))
        assert w.rotate() == 1
        w.append(make_record(2, 1, "obs", {}))
        w.close()
        assert list_segment_indices(d) == [0, 1]
        assert [r["seq"] for r in read_segment(segment_path(d, 1))] == [2]

    def test_foreign_files_ignored(self, tmp_path):
        d = str(tmp_path)
        (tmp_path / "wal-junk.jsonl").write_text("")
        (tmp_path / "notes.txt").write_text("")
        (tmp_path / "wal-000003.jsonl").write_text("")
        assert list_segment_indices(d) == [3]


class TestFsync:
    def test_always_syncs_every_append(self, tmp_path):
        d = str(tmp_path)
        w = WalWriter(d, epoch=claim_epoch(d), fsync="always")
        for i in range(3):
            w.append(make_record(i + 1, 1, "obs", {}))
        assert w.fsync_count == 3
        w.close()

    def test_batch_syncs_every_n(self, tmp_path):
        d = str(tmp_path)
        w = WalWriter(d, epoch=claim_epoch(d), fsync="batch", batch_every=4)
        for i in range(9):
            w.append(make_record(i + 1, 1, "obs", {}))
        assert w.fsync_count == 2  # at records 4 and 8
        w.close()
        assert w.fsync_count == 3  # close forces the tail out

    def test_off_never_syncs_until_close(self, tmp_path):
        d = str(tmp_path)
        w = WalWriter(d, epoch=claim_epoch(d), fsync="off")
        for i in range(50):
            w.append(make_record(i + 1, 1, "obs", {}))
        assert w.fsync_count == 0
        w.close()


class TestFencing:
    def test_claim_epoch_is_monotonic(self, tmp_path):
        d = str(tmp_path)
        assert current_epoch(d) == 0
        assert claim_epoch(d) == 1
        assert claim_epoch(d) == 2
        assert current_epoch(d) == 2

    def test_stale_writer_errors_on_sync(self, tmp_path):
        d = str(tmp_path)
        w = WalWriter(d, epoch=claim_epoch(d), fsync="off")
        w.append(make_record(1, 1, "obs", {}))
        claim_epoch(d)  # a recovering writer takes over
        with pytest.raises(StaleWriterError):
            w.sync()

    def test_stale_writer_errors_on_rotate(self, tmp_path):
        d = str(tmp_path)
        w = WalWriter(d, epoch=claim_epoch(d), fsync="off")
        claim_epoch(d)
        with pytest.raises(StaleWriterError):
            w.rotate()

    def test_append_after_close_raises(self, tmp_path):
        d = str(tmp_path)
        w = WalWriter(d, epoch=claim_epoch(d), fsync="off")
        w.close()
        with pytest.raises(JournalError):
            w.append(make_record(1, 1, "obs", {}))
