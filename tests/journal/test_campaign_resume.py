"""Deterministic campaign resume: completed runs replay from the ledger."""

import pytest

from repro.journal import JournalSpec, read_journal
from repro.wms import Campaign, CampaignRunner, Sweep, TaskSpec, WorkflowSpec


def make_campaign(name="C"):
    def factory(n):
        return WorkflowSpec("W", [TaskSpec("T", lambda: None, nprocs=n)], [])

    return Campaign(name, factory, sweeps=[Sweep("n", [1, 2, 3, 4, 5])])


def run_ids(campaign):
    return [run_id for run_id, _params, _wf in campaign.runs()]


def make_execute(calls):
    def execute(run_id, params, workflow):
        calls.append(run_id)
        return {"run_id": run_id, "n": params["n"], "score": params["n"] * 10}

    return execute


def test_crash_then_resume_executes_each_run_exactly_once(tmp_path):
    spec = JournalSpec(dir=str(tmp_path / "campaign"), fsync="off")
    calls = []
    campaign = make_campaign()
    ids = run_ids(campaign)

    first = CampaignRunner(campaign, make_execute(calls), journal=spec)
    results = first.run(stop_after=2)  # "crash" after two runs
    assert [r["replayed"] for r in results] == [False, False]
    assert calls == ids[:2]

    second = CampaignRunner(campaign, make_execute(calls), journal=spec)
    results = second.run()
    assert [r["replayed"] for r in results] == [True, True, False, False, False]
    # Replayed results are the journaled ones, verbatim.
    assert results[0]["result"] == {"run_id": ids[0], "n": 1, "score": 10}
    assert results[4]["result"]["score"] == 50
    # No run ever executed twice across both runners.
    assert calls == ids


def test_resume_bumps_epoch_and_journals_every_run(tmp_path):
    spec = JournalSpec(dir=str(tmp_path / "campaign"), fsync="off")
    campaign = make_campaign()
    CampaignRunner(campaign, make_execute([]), journal=spec).run(stop_after=3)
    CampaignRunner(campaign, make_execute([]), journal=spec).run()
    state = read_journal(spec.dir)
    assert state.epoch == 2
    done = [r["run_id"] for r in state.records if r["kind"] == "run-completed"]
    assert sorted(done) == sorted(run_ids(campaign))
    assert len(done) == len(set(done))


def test_without_journal_everything_just_runs(tmp_path):
    calls = []
    results = CampaignRunner(make_campaign(), make_execute(calls)).run()
    assert len(results) == 5
    assert len(calls) == 5
    assert all(not r["replayed"] for r in results)


def test_disabled_journal_spec_is_ignored(tmp_path):
    spec = JournalSpec(dir=str(tmp_path / "campaign"), enabled=False)
    calls = []
    CampaignRunner(make_campaign(), make_execute(calls), journal=spec).run()
    assert len(calls) == 5
    assert not (tmp_path / "campaign").exists()


class TestPoisonedRuns:
    """A deterministically-failing cell is quarantined, not fatal."""

    @staticmethod
    def make_execute(calls, poison_n):
        def execute(run_id, params, workflow):
            calls.append(run_id)
            if params["n"] == poison_n:
                raise RuntimeError(f"cell n={poison_n} always crashes")
            return {"run_id": run_id, "n": params["n"]}

        return execute

    def test_poison_cell_is_quarantined_and_grid_completes(self, tmp_path):
        spec = JournalSpec(dir=str(tmp_path / "campaign"), fsync="off")
        calls = []
        campaign = make_campaign()
        runner = CampaignRunner(
            campaign, self.make_execute(calls, poison_n=3),
            journal=spec, max_attempts=3,
        )
        results = runner.run()
        assert [r["status"] for r in results] == [
            "completed", "completed", "poisoned", "completed", "completed",
        ]
        poisoned_id = run_ids(campaign)[2]
        # Retried exactly max_attempts times, then skipped.
        assert calls.count(poisoned_id) == 3
        state = read_journal(spec.dir)
        fails = [r for r in state.records if r["kind"] == "run-failed"]
        assert [r["attempt"] for r in fails] == [1, 2, 3]
        assert all("always crashes" in r["error"] for r in fails)
        quarantined = [
            r for r in state.records if r["kind"] == "run-poisoned"
        ]
        assert [r["run_id"] for r in quarantined] == [poisoned_id]
        assert len(quarantined[0]["failures"]) == 3

    def test_resumed_runner_skips_poison_without_reexecuting(self, tmp_path):
        spec = JournalSpec(dir=str(tmp_path / "campaign"), fsync="off")
        campaign = make_campaign()
        first_calls = []
        CampaignRunner(
            campaign, self.make_execute(first_calls, poison_n=2),
            journal=spec, max_attempts=2,
        ).run(stop_after=4)  # crash after n=1..4 (n=2 poisoned)

        second_calls = []
        results = CampaignRunner(
            campaign, self.make_execute(second_calls, poison_n=2),
            journal=spec, max_attempts=2,
        ).run()
        ids = run_ids(campaign)
        # Only the single unfinished run executes; completed cells and the
        # poison cell both replay from the ledger.
        assert second_calls == [ids[4]]
        assert [r["status"] for r in results] == [
            "completed", "poisoned", "completed", "completed", "completed",
        ]
        assert [r["replayed"] for r in results] == [
            True, True, True, True, False,
        ]
        assert results[1]["result"] is None

    def test_transient_failure_recovers_within_budget(self, tmp_path):
        spec = JournalSpec(dir=str(tmp_path / "campaign"), fsync="off")
        campaign = make_campaign()
        attempts: dict[str, int] = {}

        def flaky(run_id, params, workflow):
            attempts[run_id] = attempts.get(run_id, 0) + 1
            if params["n"] == 4 and attempts[run_id] < 3:
                raise OSError("transient")
            return {"n": params["n"]}

        results = CampaignRunner(
            campaign, flaky, journal=spec, max_attempts=3
        ).run()
        assert all(r["status"] == "completed" for r in results)
        flaky_id = run_ids(campaign)[3]
        assert attempts[flaky_id] == 3
        state = read_journal(spec.dir)
        fails = [r for r in state.records if r["kind"] == "run-failed"]
        assert [r["run_id"] for r in fails] == [flaky_id, flaky_id]

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignRunner(make_campaign(), lambda *a: {}, max_attempts=0)
