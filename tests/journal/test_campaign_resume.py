"""Deterministic campaign resume: completed runs replay from the ledger."""


from repro.journal import JournalSpec, read_journal
from repro.wms import Campaign, CampaignRunner, Sweep, TaskSpec, WorkflowSpec


def make_campaign(name="C"):
    def factory(n):
        return WorkflowSpec("W", [TaskSpec("T", lambda: None, nprocs=n)], [])

    return Campaign(name, factory, sweeps=[Sweep("n", [1, 2, 3, 4, 5])])


def make_execute(calls):
    def execute(run_id, params, workflow):
        calls.append(run_id)
        return {"run_id": run_id, "n": params["n"], "score": params["n"] * 10}

    return execute


def test_crash_then_resume_executes_each_run_exactly_once(tmp_path):
    spec = JournalSpec(dir=str(tmp_path / "campaign"), fsync="off")
    calls = []
    campaign = make_campaign()

    first = CampaignRunner(campaign, make_execute(calls), journal=spec)
    results = first.run(stop_after=2)  # "crash" after two runs
    assert [r["replayed"] for r in results] == [False, False]
    assert calls == ["C.0", "C.1"]

    second = CampaignRunner(campaign, make_execute(calls), journal=spec)
    results = second.run()
    assert [r["replayed"] for r in results] == [True, True, False, False, False]
    # Replayed results are the journaled ones, verbatim.
    assert results[0]["result"] == {"run_id": "C.0", "n": 1, "score": 10}
    assert results[4]["result"]["score"] == 50
    # No run ever executed twice across both runners.
    assert calls == ["C.0", "C.1", "C.2", "C.3", "C.4"]


def test_resume_bumps_epoch_and_journals_every_run(tmp_path):
    spec = JournalSpec(dir=str(tmp_path / "campaign"), fsync="off")
    campaign = make_campaign()
    CampaignRunner(campaign, make_execute([]), journal=spec).run(stop_after=3)
    CampaignRunner(campaign, make_execute([]), journal=spec).run()
    state = read_journal(spec.dir)
    assert state.epoch == 2
    done = [r["run_id"] for r in state.records if r["kind"] == "run-completed"]
    assert sorted(done) == ["C.0", "C.1", "C.2", "C.3", "C.4"]
    assert len(done) == len(set(done))


def test_without_journal_everything_just_runs(tmp_path):
    calls = []
    results = CampaignRunner(make_campaign(), make_execute(calls)).run()
    assert len(results) == 5
    assert len(calls) == 5
    assert all(not r["replayed"] for r in results)


def test_disabled_journal_spec_is_ignored(tmp_path):
    spec = JournalSpec(dir=str(tmp_path / "campaign"), enabled=False)
    calls = []
    CampaignRunner(make_campaign(), make_execute(calls), journal=spec).run()
    assert len(calls) == 5
    assert not (tmp_path / "campaign").exists()
