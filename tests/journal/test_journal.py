"""Journal facade: sequencing, snapshots, reopen semantics, metrics."""


import pytest

from repro.errors import JournalError, StaleWriterError
from repro.journal import Journal, JournalSpec, read_journal
from repro.journal.wal import encode_record, segment_path
from repro.telemetry import MetricsRegistry


def spec(tmp_path, **kw):
    kw.setdefault("fsync", "off")
    return JournalSpec(dir=str(tmp_path / "j"), **kw)


class TestWriting:
    def test_seq_is_monotonic_across_kinds(self, tmp_path):
        j = Journal.open(spec(tmp_path))
        assert j.append("meta", workflow="W") == 1
        assert j.append("obs", env={}) == 2
        assert j.append("barrier", t=1.0, state={}) == 3
        j.close()
        state = read_journal(j.spec.dir)
        assert [r["seq"] for r in state.records] == [1, 2, 3]
        assert state.last_seq == 3

    def test_payload_flattens_to_top_level(self, tmp_path):
        j = Journal.open(spec(tmp_path))
        j.append("obs", env={"k": 1}, t=2.5)
        j.close()
        [rec] = read_journal(j.spec.dir).records
        assert rec["env"] == {"k": 1}
        assert rec["t"] == 2.5
        assert rec["kind"] == "obs"
        assert rec["e"] == 1

    def test_open_refuses_populated_dir(self, tmp_path):
        s = spec(tmp_path)
        Journal.open(s).close()
        with pytest.raises(JournalError, match="reopen"):
            Journal.open(s)

    def test_append_after_close_raises(self, tmp_path):
        j = Journal.open(spec(tmp_path))
        j.close()
        assert j.closed
        with pytest.raises(JournalError):
            j.append("obs")


class TestSnapshots:
    def test_snapshot_compacts_the_read_path(self, tmp_path):
        j = Journal.open(spec(tmp_path))
        for i in range(5):
            j.append("obs", x=i)
        j.snapshot({"server": {"n": 5}})
        j.append("obs", x=5)
        j.close()
        state = read_journal(j.spec.dir)
        assert state.snapshot_state["server"] == {"n": 5}
        # Only the post-snapshot suffix replays: the snapshot-ref and the
        # final obs, never the five compacted records.
        kinds = [r["kind"] for r in state.records]
        assert kinds == ["snapshot-ref", "obs"]
        assert state.records[-1]["x"] == 5

    def test_latest_snapshot_wins(self, tmp_path):
        j = Journal.open(spec(tmp_path))
        j.append("obs", x=0)
        j.snapshot({"gen": 1})
        j.append("obs", x=1)
        j.snapshot({"gen": 2})
        j.close()
        state = read_journal(j.spec.dir)
        assert state.snapshot_state["gen"] == 2
        assert state.next_snapshot == 2


class TestReopen:
    def test_reopen_bumps_epoch_and_continues_seq(self, tmp_path):
        s = spec(tmp_path)
        j1 = Journal.open(s)
        j1.append("meta", workflow="W")
        j1.append("obs", x=0)
        j1.close()
        j2 = Journal.reopen(s.dir)
        assert j2.epoch == 2
        assert j2.append("obs", x=1) == 4  # 3 was the auto "resume" record
        j2.close()
        state = read_journal(s.dir)
        assert [r["kind"] for r in state.records] == ["meta", "obs", "resume", "obs"]
        assert state.epoch == 2

    def test_reopen_reuses_persisted_spec(self, tmp_path):
        s = spec(tmp_path, fsync="off", batch_every=7, snapshot_every=3)
        j1 = Journal.open(s)
        j1.snapshot({})  # persists journal_spec inside the snapshot
        j1.close()
        j2 = Journal.reopen(s.dir)
        assert j2.spec.batch_every == 7
        assert j2.spec.snapshot_every == 3
        j2.close()

    def test_stale_writer_fenced_after_reopen(self, tmp_path):
        s = spec(tmp_path)
        j1 = Journal.open(s)
        j1.append("obs", x=0)
        j2 = Journal.reopen(s.dir)  # recovery claims the journal
        with pytest.raises(StaleWriterError):
            j1.sync()
        j2.close()

    def test_stale_epoch_tail_is_discarded_on_read(self, tmp_path):
        # The fenced predecessor had buffered records the OS flushed
        # *after* the successor started writing: they land in an older
        # segment with a lower epoch and must lose.
        s = spec(tmp_path)
        j1 = Journal.open(s)
        j1.append("obs", x="old")
        j1.sync()  # durable while epoch 1 still holds the journal
        j2 = Journal.reopen(s.dir)
        j2.append("obs", x="new")
        j2.close()
        # Simulate the stale flush: epoch-1 records past the successor's.
        with open(segment_path(s.dir, 0), "a", encoding="utf-8") as fh:
            fh.write(encode_record({"seq": 4, "kind": "obs", "e": 1, "x": "stale"}))
            fh.write(encode_record({"seq": 3, "kind": "obs", "e": 1, "x": "dupe"}))
        state = read_journal(s.dir)
        xs = [r.get("x") for r in state.records]
        assert "stale" not in xs and "dupe" not in xs
        assert xs == ["old", None, "new"]  # None is the resume record

    def test_read_missing_dir_raises(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            read_journal(str(tmp_path / "nope"))


class TestMetrics:
    def test_append_and_fsync_flow_into_the_registry(self, tmp_path):
        reg = MetricsRegistry()
        j = Journal.open(spec(tmp_path, fsync="always"), metrics=reg)
        for i in range(4):
            j.append("obs", x=i)
        j.close()
        assert reg.histogram("journal.append.latency").count == 4
        assert reg.counter("journal.fsync.count").value >= 4

    def test_snapshot_bytes_observed(self, tmp_path):
        reg = MetricsRegistry()
        j = Journal.open(spec(tmp_path), metrics=reg)
        j.snapshot({"blob": "x" * 100})
        j.close()
        assert reg.histogram("journal.snapshot.bytes").count == 1
