"""Checkpoint-restart for the wall-clock threaded driver.

A restarted :class:`ThreadedDyflow` pointed at its predecessor's journal
relaunches each mini-app at the step after its last ``task-checkpoint``
instead of recomputing from zero, and skips tasks that already finished.
"""

import time

from repro.journal import JournalSpec, read_journal
from repro.runtime import RuntimeOptions
from repro.runtime.threaded import LiveTaskSpec, ThreadedDyflow

TOTAL_STEPS = 40


def make_runner(steps_sink, journal=None):
    spec = LiveTaskSpec(
        "T", lambda s, w: (steps_sink.append(s), time.sleep(0.005)),
        total_steps=TOTAL_STEPS,
    )
    return ThreadedDyflow(
        "LIVE", [spec], poll_interval=0.05, warmup=0.2, settle=0.2,
        options=RuntimeOptions(journal=journal),
    )


def last_checkpoint(journal_dir):
    state = read_journal(journal_dir)
    steps = [r["next_step"] for r in state.records if r["kind"] == "task-checkpoint"
             and r["task"] == "T"]
    return max(steps) if steps else 0


def test_restart_resumes_at_the_journaled_step(tmp_path):
    # fsync="always": each checkpoint must be durable the moment the
    # step finishes, so the poll below sees progress as it happens.
    spec = JournalSpec(dir=str(tmp_path / "wal"), fsync="always")

    first_steps = []
    first = make_runner(first_steps, journal=spec)
    first.start()
    deadline = time.perf_counter() + 15.0
    while last_checkpoint(spec.dir) < 5:  # let it make real progress
        assert time.perf_counter() < deadline, "no checkpoints appeared"
        time.sleep(0.02)
    first.stop()  # the "crash": mini-app dies mid-run, checkpoints survive

    resume_at = last_checkpoint(spec.dir)
    assert 0 < resume_at < TOTAL_STEPS
    assert first_steps[0] == 0

    second_steps = []
    second = make_runner(second_steps, journal=None)
    second.resume_from(spec.dir)
    second.start()
    assert second.wait_until_done(timeout=15.0)
    second.stop()

    # No recompute-from-zero: the relaunch starts exactly where the
    # checkpoints left off and runs through to completion.
    assert second_steps[0] == resume_at
    assert second_steps[-1] == TOTAL_STEPS - 1
    assert second_steps == list(range(resume_at, TOTAL_STEPS))
    # Incarnation numbering continued past the journaled first life.
    assert second._incarnations["T"] == 2


def test_completed_tasks_are_not_relaunched(tmp_path):
    spec = JournalSpec(dir=str(tmp_path / "wal"), fsync="off")
    steps = []
    runner = make_runner(steps, journal=spec)
    runner.start()
    assert runner.wait_until_done(timeout=15.0)
    runner.stop()
    assert len(steps) == TOTAL_STEPS

    again = []
    third = make_runner(again, journal=None)
    third.resume_from(spec.dir)
    assert "T" in third._completed_tasks
    third.start()
    assert third.wait_until_done(timeout=5.0)
    third.stop()
    assert again == []  # nothing re-ran


def test_epoch_advances_per_takeover(tmp_path):
    spec = JournalSpec(dir=str(tmp_path / "wal"), fsync="off")
    runner = make_runner([], journal=spec)
    runner.start()
    assert runner.wait_until_done(timeout=15.0)
    runner.stop()
    second = make_runner([], journal=None)
    second.resume_from(spec.dir)
    second.start()
    second.stop()
    assert read_journal(spec.dir).epoch == 2
