"""The idempotent-actuation ledger's op classification."""

from repro.journal import AppliedOpsLedger


def test_classification_from_records():
    ledger = AppliedOpsLedger.from_records([
        {"kind": "op-issued", "op_key": "p:0:stop_task:A", "plan": "p"},
        {"kind": "op-completed", "op_key": "p:0:stop_task:A", "plan": "p"},
        {"kind": "op-issued", "op_key": "p:1:start_task:A", "plan": "p",
         "incarnation_before": 1},
        {"kind": "obs", "env": {}},  # unrelated kinds are ignored
    ])
    assert ledger.status("p:0:stop_task:A") == "completed"
    assert ledger.status("p:1:start_task:A") == "issued"
    assert ledger.status("p:2:start_task:B") == "unseen"
    assert ledger.issued_record("p:1:start_task:A")["incarnation_before"] == 1
    assert ledger.issued_record("p:2:start_task:B") is None


def test_completed_wins_over_issued():
    ledger = AppliedOpsLedger.from_records([
        {"kind": "op-issued", "op_key": "k"},
        {"kind": "op-completed", "op_key": "k"},
    ])
    assert ledger.status("k") == "completed"


def test_empty_ledger():
    ledger = AppliedOpsLedger.from_records([])
    assert ledger.status("anything") == "unseen"
