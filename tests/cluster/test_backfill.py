"""Tests for EASY backfilling in the batch scheduler."""


from repro.cluster import BatchScheduler, JobState, summit
from repro.sim import SimEngine


def setup(num_nodes=4, backfill=True):
    eng = SimEngine()
    m = summit(num_nodes)
    return eng, BatchScheduler(eng, m, backfill=backfill)


class TestBackfill:
    def test_short_job_jumps_queue_without_delaying_head(self):
        eng, sched = setup(4)
        j_run = sched.submit(3, walltime_limit=100.0)   # holds 3 of 4 nodes
        j_head = sched.submit(4, walltime_limit=50.0)   # must wait for all 4
        j_small = sched.submit(1, walltime_limit=50.0)  # fits now, ends at 50 < 100
        eng.run(until=0)
        assert j_run.state == JobState.RUNNING
        assert j_head.state == JobState.PENDING
        assert j_small.state == JobState.RUNNING  # backfilled
        assert sched.backfilled_jobs == 1

    def test_long_job_does_not_delay_reservation(self):
        eng, sched = setup(4)
        sched.submit(3, walltime_limit=100.0)
        j_head = sched.submit(4, walltime_limit=50.0)   # reservation at t=100
        j_long = sched.submit(1, walltime_limit=500.0)  # would block node past 100
        eng.run(until=0)
        assert j_head.state == JobState.PENDING
        assert j_long.state == JobState.PENDING  # not backfilled
        assert sched.backfilled_jobs == 0

    def test_job_fitting_in_reservation_spare_backfills(self):
        eng, sched = setup(6)
        sched.submit(4, walltime_limit=100.0)            # 2 nodes left
        j_head = sched.submit(3, walltime_limit=50.0)    # waits; at t=100: 6 free, spare 3
        j_long = sched.submit(2, walltime_limit=1000.0)  # long, but fits the spare
        eng.run(until=0)
        assert j_head.state == JobState.PENDING
        assert j_long.state == JobState.RUNNING
        assert sched.backfilled_jobs == 1

    def test_spare_capacity_is_consumed(self):
        eng, sched = setup(6)
        sched.submit(4, walltime_limit=100.0)            # spare at reservation = 2...
        sched.submit(3, walltime_limit=50.0)             # head; spare = 6 - 3 = 3? no: free@100=6, spare=3
        a = sched.submit(2, walltime_limit=1000.0)       # takes spare 3 -> 1
        b = sched.submit(2, walltime_limit=1000.0)       # needs 2 > remaining spare 1 (and only 0 free now)
        eng.run(until=0)
        assert a.state == JobState.RUNNING
        assert b.state == JobState.PENDING

    def test_head_eventually_runs(self):
        eng, sched = setup(4)
        j_run = sched.submit(3, walltime_limit=100.0)
        j_head = sched.submit(4, walltime_limit=50.0)
        j_small = sched.submit(1, walltime_limit=50.0)
        eng.run(until=10.0)
        sched.complete(j_run)
        sched.complete(j_small)
        eng.run(until=10.0)
        assert j_head.state == JobState.RUNNING

    def test_fifo_mode_never_backfills(self):
        eng, sched = setup(4, backfill=False)
        sched.submit(3, walltime_limit=100.0)
        head = sched.submit(4, walltime_limit=50.0)
        small = sched.submit(1, walltime_limit=10.0)
        eng.run(until=0)
        assert head.state == JobState.PENDING
        assert small.state == JobState.PENDING
        assert sched.backfilled_jobs == 0

    def test_backfill_improves_utilization(self):
        """End-to-end: with backfill the short jobs complete much sooner."""
        def run(backfill):
            eng, sched = setup(4, backfill=backfill)
            sched.submit(3, walltime_limit=100.0)
            sched.submit(4, walltime_limit=100.0)
            shorts = [sched.submit(1, walltime_limit=20.0) for _ in range(3)]
            eng.run(until=0)
            return eng, sched, shorts

        _eng, _sched, shorts = run(backfill=True)
        assert all(j.state == JobState.RUNNING for j in shorts[:1])
        _eng, _sched, shorts = run(backfill=False)
        assert all(j.state == JobState.PENDING for j in shorts)
