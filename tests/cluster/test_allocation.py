"""Tests for ResourceSet algebra and Allocation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Allocation, ResourceSet, summit
from repro.errors import AllocationError

rs_strategy = st.dictionaries(
    st.sampled_from([f"n{i}" for i in range(6)]), st.integers(0, 40), max_size=6
).map(ResourceSet)


class TestResourceSet:
    def test_zero_cores_dropped(self):
        rs = ResourceSet({"a": 0, "b": 3})
        assert rs.node_ids == ["b"]
        assert rs.total_cores == 3

    def test_negative_rejected(self):
        with pytest.raises(AllocationError):
            ResourceSet({"a": -1})

    def test_union(self):
        a = ResourceSet({"x": 2, "y": 1})
        b = ResourceSet({"y": 3, "z": 4})
        u = a.union(b)
        assert u.as_dict() == {"x": 2, "y": 4, "z": 4}

    def test_subtract(self):
        a = ResourceSet({"x": 5, "y": 2})
        d = a.subtract(ResourceSet({"x": 5, "y": 1}))
        assert d.as_dict() == {"y": 1}

    def test_subtract_underflow_rejected(self):
        with pytest.raises(AllocationError):
            ResourceSet({"x": 1}).subtract(ResourceSet({"x": 2}))

    def test_contains(self):
        a = ResourceSet({"x": 5, "y": 2})
        assert a.contains(ResourceSet({"x": 5}))
        assert a.contains(ResourceSet({}))
        assert not a.contains(ResourceSet({"x": 6}))
        assert not a.contains(ResourceSet({"z": 1}))

    def test_restrict_to(self):
        a = ResourceSet({"x": 5, "y": 2})
        assert a.restrict_to({"x", "z"}).as_dict() == {"x": 5}

    def test_equality_and_hash(self):
        assert ResourceSet({"a": 1}) == ResourceSet({"a": 1, "b": 0})
        assert hash(ResourceSet({"a": 1})) == hash(ResourceSet({"a": 1}))

    def test_empty_is_falsy(self):
        assert not ResourceSet.empty()
        assert ResourceSet({"a": 1})

    @given(rs_strategy, rs_strategy)
    def test_union_total_is_sum(self, a, b):
        assert a.union(b).total_cores == a.total_cores + b.total_cores

    @given(rs_strategy, rs_strategy)
    def test_union_then_subtract_roundtrip(self, a, b):
        assert a.union(b).subtract(b) == a

    @given(rs_strategy, rs_strategy)
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)


class TestAllocation:
    def test_requires_nodes(self):
        m = summit(2)
        with pytest.raises(AllocationError):
            Allocation("a0", m, [], walltime_limit=10.0)

    def test_deadline(self):
        m = summit(2)
        alloc = Allocation("a0", m, m.nodes, walltime_limit=100.0, start_time=5.0)
        assert alloc.deadline == 105.0

    def test_full_resources_excludes_failed_nodes(self):
        m = summit(3)
        alloc = Allocation("a0", m, m.nodes, walltime_limit=10.0)
        assert alloc.total_cores == 126
        m.nodes[0].fail()
        assert alloc.total_cores == 84
        assert alloc.full_resources().cores_on("summit0000") == 0
