"""Tests for the batch scheduler and failure injector."""

import pytest

from repro.cluster import BatchScheduler, FailureInjector, JobState, summit
from repro.errors import SchedulerError
from repro.sim import SimEngine


def setup(num_nodes=4):
    eng = SimEngine()
    m = summit(num_nodes)
    return eng, m, BatchScheduler(eng, m)


class TestBatchScheduler:
    def test_immediate_grant_when_free(self):
        eng, _m, sched = setup(4)
        job = sched.submit(2, walltime_limit=100.0)
        eng.run(until=0)
        assert job.state == JobState.RUNNING
        assert job.allocation is not None and len(job.allocation.nodes) == 2

    def test_fifo_queueing(self):
        eng, _m, sched = setup(2)
        j1 = sched.submit(2, walltime_limit=50.0)
        j2 = sched.submit(1, walltime_limit=50.0)
        eng.run(until=0)
        assert j1.state == JobState.RUNNING
        assert j2.state == JobState.PENDING  # FIFO: waits even though 0 free
        sched.complete(j1)
        assert j2.state == JobState.RUNNING

    def test_oversized_request_rejected(self):
        _eng, _m, sched = setup(2)
        with pytest.raises(SchedulerError):
            sched.submit(3, walltime_limit=10.0)

    def test_walltime_timeout_fires_callback(self):
        eng, _m, sched = setup(2)
        timeouts = []
        job = sched.submit(1, walltime_limit=30.0, on_timeout=lambda j: timeouts.append(eng.now))
        eng.run()
        assert job.state == JobState.TIMEOUT
        assert timeouts == [30.0]

    def test_complete_before_deadline_no_timeout(self):
        eng, _m, sched = setup(2)
        timeouts = []
        job = sched.submit(1, walltime_limit=30.0, on_timeout=lambda j: timeouts.append(1))
        eng.run(until=10.0)
        sched.complete(job)
        eng.run()
        assert job.state == JobState.COMPLETED
        assert timeouts == []

    def test_nodes_recycled_after_completion(self):
        eng, _m, sched = setup(1)
        j1 = sched.submit(1, walltime_limit=10.0)
        j2 = sched.submit(1, walltime_limit=10.0)
        eng.run(until=1.0)
        sched.complete(j1)
        eng.run(until=1.0)
        assert j2.state == JobState.RUNNING

    def test_cancel_pending(self):
        eng, _m, sched = setup(1)
        j1 = sched.submit(1, walltime_limit=10.0)
        j2 = sched.submit(1, walltime_limit=10.0)
        eng.run(until=0)
        sched.cancel(j2)
        assert j2.state == JobState.CANCELLED
        assert sched.pending_jobs == []
        assert j1.state == JobState.RUNNING

    def test_failed_node_not_dispatched(self):
        eng, m, sched = setup(2)
        m.nodes[0].fail()
        job = sched.submit(2, walltime_limit=10.0)
        eng.run(until=0)
        assert job.state == JobState.PENDING
        m.nodes[0].recover()
        sched.submit(1, walltime_limit=5.0)  # trigger a dispatch attempt
        eng.run(until=0)
        assert job.state == JobState.RUNNING


class TestFailureInjector:
    def test_failure_at_time(self):
        eng, m, _sched = setup(2)
        inj = FailureInjector(eng, m)
        seen = []
        inj.subscribe_failure(lambda node, t: seen.append((node.node_id, t)))
        inj.fail_node_at(600.0, "summit0001")
        eng.run()
        assert seen == [("summit0001", 600.0)]
        assert not m.node("summit0001").is_up
        assert len(inj.history) == 1

    def test_double_failure_is_noop(self):
        eng, m, _sched = setup(1)
        inj = FailureInjector(eng, m)
        inj.fail_node_at(1.0, "summit0000")
        inj.fail_node_at(2.0, "summit0000")
        eng.run()
        # The node only fails once; the second injection is recorded as a
        # skip so replay comparisons see identical histories.
        assert [r.kind for r in inj.history] == ["failure", "failure-skipped"]
        assert not m.node("summit0000").is_up

    def test_double_recovery_is_noop(self):
        eng, m, _sched = setup(1)
        inj = FailureInjector(eng, m)
        inj.fail_node_at(1.0, "summit0000")
        inj.recover_node_at(2.0, "summit0000")
        inj.recover_node_at(3.0, "summit0000")
        eng.run()
        assert [r.kind for r in inj.history] == [
            "failure", "recovery", "recovery-skipped"
        ]
        assert m.node("summit0000").is_up

    def test_recover_node_now(self):
        eng, m, _sched = setup(1)
        inj = FailureInjector(eng, m)
        inj.fail_node_now("summit0000")
        assert not m.node("summit0000").is_up
        inj.recover_node_now("summit0000")
        assert m.node("summit0000").is_up
        assert [r.kind for r in inj.history] == ["failure", "recovery"]

    def test_recovery(self):
        eng, m, _sched = setup(1)
        inj = FailureInjector(eng, m)
        recovered = []
        inj.subscribe_recovery(lambda node, t: recovered.append(t))
        inj.fail_node_at(1.0, "summit0000")
        inj.recover_node_at(5.0, "summit0000")
        eng.run()
        assert m.node("summit0000").is_up
        assert recovered == [5.0]
