"""Tests for the in-allocation resource manager, incl. conservation invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Allocation, ResourceManager, ResourceSet, summit
from repro.errors import AllocationError


def make_rm(num_nodes=4, machine=None):
    m = machine or summit(num_nodes)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e6)
    return m, ResourceManager(alloc)


class TestPlacement:
    def test_pack_in_inventory_order(self):
        _m, rm = make_rm(2)
        rs = rm.plan_placement(50)
        assert rs.as_dict() == {"summit0000": 42, "summit0001": 8}

    def test_per_node_limit(self):
        _m, rm = make_rm(4)
        rs = rm.plan_placement(8, per_node_limit=2)
        assert rs.as_dict() == {f"summit{i:04d}": 2 for i in range(4)}

    def test_per_node_limit_infeasible(self):
        _m, rm = make_rm(2)
        with pytest.raises(AllocationError):
            rm.plan_placement(5, per_node_limit=2)

    def test_exclude_nodes(self):
        _m, rm = make_rm(3)
        rs = rm.plan_placement(42, exclude_nodes={"summit0000"})
        assert rs.node_ids == ["summit0001"]

    def test_failed_nodes_skipped(self):
        m, rm = make_rm(2)
        m.nodes[0].fail()
        rs = rm.plan_placement(10)
        assert rs.node_ids == ["summit0001"]

    def test_avoid_resources(self):
        _m, rm = make_rm(1)
        claimed = ResourceSet({"summit0000": 40})
        rs = rm.plan_placement(2, avoid=claimed)
        assert rs.total_cores == 2
        with pytest.raises(AllocationError):
            rm.plan_placement(3, avoid=claimed)

    def test_zero_request_rejected(self):
        _m, rm = make_rm(1)
        with pytest.raises(AllocationError):
            rm.plan_placement(0)


class TestAssignReleaseGrowShrink:
    def test_assign_then_free_count(self):
        _m, rm = make_rm(2)
        rm.assign("sim", 60)
        assert rm.free_cores() == 84 - 60
        rm.check_invariants()

    def test_double_assign_rejected(self):
        _m, rm = make_rm(2)
        rm.assign("sim", 10)
        with pytest.raises(AllocationError):
            rm.assign("sim", 5)

    def test_grow(self):
        _m, rm = make_rm(2)
        rm.assign("iso", 20, per_node_limit=10)
        added = rm.grow("iso", 20, per_node_limit=20)
        assert added.total_cores == 20
        assert rm.assignment("iso").total_cores == 40
        rm.check_invariants()

    def test_grow_unknown_owner_rejected(self):
        _m, rm = make_rm(1)
        with pytest.raises(AllocationError):
            rm.grow("ghost", 1)

    def test_shrink_returns_shed_set(self):
        _m, rm = make_rm(2)
        rm.assign("fft", 30)
        shed = rm.shrink("fft", 10)
        assert shed.total_cores == 10
        assert rm.assignment("fft").total_cores == 20
        rm.check_invariants()

    def test_shrink_all_removes_owner(self):
        _m, rm = make_rm(1)
        rm.assign("pdf", 6)
        rm.shrink("pdf", 6)
        assert "pdf" not in rm.owners()

    def test_shrink_too_much_rejected(self):
        _m, rm = make_rm(1)
        rm.assign("pdf", 6)
        with pytest.raises(AllocationError):
            rm.shrink("pdf", 7)

    def test_release(self):
        _m, rm = make_rm(1)
        rm.assign("a", 10)
        released = rm.release("a")
        assert released.total_cores == 10
        assert rm.free_cores() == 42
        with pytest.raises(AllocationError):
            rm.release("a")

    def test_release_if_held(self):
        _m, rm = make_rm(1)
        assert rm.release_if_held("ghost").total_cores == 0

    def test_assign_set_must_be_free(self):
        _m, rm = make_rm(1)
        rm.assign("a", 40)
        with pytest.raises(AllocationError):
            rm.assign_set("b", ResourceSet({"summit0000": 10}))


class TestFailureHandling:
    def test_node_failure_strips_assignments(self):
        m, rm = make_rm(2)
        rm.assign("sim", 50)  # spans both nodes
        rm.assign("ana", 10)  # node 1 only
        m.nodes[0].fail()
        affected = rm.on_node_failure("summit0000")
        assert affected == ["sim"]
        assert rm.assignment("sim").cores_on("summit0000") == 0
        rm.check_invariants()

    def test_owner_fully_on_failed_node_removed(self):
        m, rm = make_rm(1)
        rm.assign("only", 42)
        m.nodes[0].fail()
        assert rm.on_node_failure("summit0000") == ["only"]
        assert "only" not in rm.owners()

    def test_node_status(self):
        m, rm = make_rm(2)
        m.nodes[1].fail()
        assert rm.node_status() == {"summit0000": "up", "summit0001": "down"}


@st.composite
def op_sequences(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["assign", "grow", "shrink", "release"]),
                st.sampled_from(["t1", "t2", "t3"]),
                st.integers(1, 30),
            ),
            max_size=30,
        )
    )


class TestConservationProperty:
    @settings(max_examples=60)
    @given(op_sequences())
    def test_invariant_after_arbitrary_ops(self, ops):
        """assigned + free == allocation capacity after any legal op mix."""
        m = summit(3)
        alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
        rm = ResourceManager(alloc)
        capacity = alloc.total_cores
        for op, owner, n in ops:
            try:
                if op == "assign":
                    rm.assign(owner, n)
                elif op == "grow":
                    rm.grow(owner, n)
                elif op == "shrink":
                    rm.shrink(owner, n)
                else:
                    rm.release(owner)
            except AllocationError:
                pass  # illegal op rejected; state must stay consistent
            rm.check_invariants()
            assert rm.assigned_total().total_cores + rm.free_cores() == capacity
