"""Tests for node and machine models."""

import pytest

from repro.cluster import Machine, Node, NodeState, deepthought2, summit
from repro.errors import NodeStateError


class TestNode:
    def test_defaults(self):
        n = Node("n0", cores=20)
        assert n.is_up and n.state == NodeState.UP

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            Node("n0", cores=0)

    def test_fail_recover_cycle(self):
        n = Node("n0", cores=4)
        n.fail()
        assert n.state == NodeState.DOWN and not n.is_up
        n.recover()
        assert n.is_up

    def test_double_fail_rejected(self):
        n = Node("n0", cores=4)
        n.fail()
        with pytest.raises(NodeStateError):
            n.fail()

    def test_drain_only_from_up(self):
        n = Node("n0", cores=4)
        n.drain()
        assert n.state == NodeState.DRAINING
        with pytest.raises(NodeStateError):
            n.drain()


class TestMachineFactories:
    def test_summit_inventory(self):
        m = summit(4)
        assert m.name == "summit"
        assert len(m.nodes) == 4
        assert m.cores_per_node == 42
        assert m.nodes[0].gpus == 6
        assert m.nodes[0].hw_threads_per_core == 4
        assert m.total_cores == 4 * 42

    def test_deepthought2_inventory(self):
        m = deepthought2(3)
        assert m.cores_per_node == 20
        assert m.nodes[0].gpus == 0
        assert m.nodes[0].memory_gb == 128.0

    def test_perf_profiles_ordered(self):
        """Deepthought2 must be slower than Summit in every latency knob."""
        s, d = summit(1).perf, deepthought2(1).perf
        assert d.speed_factor < s.speed_factor
        assert d.launch_latency > s.launch_latency
        assert d.script_overhead > s.script_overhead
        assert d.signal_latency > s.signal_latency

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError):
            Machine("m", [Node("a", cores=1), Node("a", cores=2)])

    def test_up_nodes_excludes_failed(self):
        m = summit(3)
        m.nodes[1].fail()
        assert [n.node_id for n in m.up_nodes()] == ["summit0000", "summit0002"]

    def test_node_lookup(self):
        m = deepthought2(2)
        assert m.node("dt2-0001").node_id == "dt2-0001"
        with pytest.raises(KeyError):
            m.node("nope")

    def test_interconnect_transfer_time(self):
        m = summit(1)
        t_small = m.interconnect.transfer_time(8)
        t_big = m.interconnect.transfer_time(10**9)
        assert 0 < t_small < t_big
        # 1 GB over 100 Gb/s ≈ 0.08 s
        assert t_big == pytest.approx(0.08, rel=0.01)
