"""Tests for simulated filesystem, variable store, and data hub."""

import pytest

from repro.errors import StoreError
from repro.staging import DataHub, SimFilesystem, VariableStore


class TestSimFilesystem:
    def test_write_read(self):
        fs = SimFilesystem()
        fs.write("a/b.txt", {"x": 1}, mtime=1.0)
        assert fs.read("a/b.txt") == {"x": 1}
        assert fs.exists("a/b.txt")

    def test_read_missing_raises(self):
        with pytest.raises(StoreError):
            SimFilesystem().read("nope")

    def test_scan_glob_and_since(self):
        fs = SimFilesystem()
        fs.write("out/xgc.out.0", 0, mtime=1.0)
        fs.write("out/xgc.out.1", 1, mtime=2.0)
        fs.write("out/other.dat", 2, mtime=3.0)
        hits = fs.scan("out/xgc.out.*")
        assert [e.path for e in hits] == ["out/xgc.out.0", "out/xgc.out.1"]
        assert [e.path for e in fs.scan("out/xgc.out.*", since=1.0)] == ["out/xgc.out.1"]

    def test_scan_sorted_by_mtime(self):
        fs = SimFilesystem()
        fs.write("f2", 0, mtime=5.0)
        fs.write("f1", 0, mtime=1.0)
        assert [e.path for e in fs.scan("f*")] == ["f1", "f2"]

    def test_append_record(self):
        fs = SimFilesystem()
        fs.append_record("log", "a", mtime=1.0)
        fs.append_record("log", "b", mtime=2.0)
        assert fs.read("log") == ["a", "b"]
        assert fs.stat("log").mtime == 2.0

    def test_append_to_non_list_raises(self):
        fs = SimFilesystem()
        fs.write("f", "scalar", mtime=0.0)
        with pytest.raises(StoreError):
            fs.append_record("f", "x", mtime=1.0)

    def test_remove(self):
        fs = SimFilesystem()
        fs.write("f", 1, mtime=0.0)
        fs.remove("f")
        assert not fs.exists("f")
        with pytest.raises(StoreError):
            fs.remove("f")

    def test_listdir(self):
        fs = SimFilesystem()
        fs.write("d/a", 1, mtime=0.0)
        fs.write("d/b", 1, mtime=0.0)
        fs.write("e/c", 1, mtime=0.0)
        assert fs.listdir("d") == ["d/a", "d/b"]


class TestVariableStore:
    def test_step_protocol(self):
        st = VariableStore("sim.bp")
        st.begin_step(1.0)
        st.put("u", [1, 2])
        assert st.end_step() == 0
        assert st.num_steps == 1
        assert st.read("u") == [1, 2]
        assert st.read("u", 0) == [1, 2]

    def test_double_begin_rejected(self):
        st = VariableStore("s")
        st.begin_step(0.0)
        with pytest.raises(StoreError):
            st.begin_step(1.0)

    def test_put_without_open_step_rejected(self):
        st = VariableStore("s")
        with pytest.raises(StoreError):
            st.put("x", 1)

    def test_open_step_invisible_to_readers(self):
        st = VariableStore("s")
        st.write_step(0.0, u=1)
        st.begin_step(1.0)
        st.put("u", 2)
        assert st.num_steps == 1
        assert st.read("u") == 1

    def test_missing_variable(self):
        st = VariableStore("s")
        st.write_step(0.0, u=1)
        with pytest.raises(StoreError):
            st.read("v")

    def test_read_empty_store(self):
        with pytest.raises(StoreError):
            VariableStore("s").read("u")

    def test_fs_marker_files(self):
        fs = SimFilesystem()
        st = VariableStore("gs.bp", filesystem=fs)
        st.write_step(3.0, u=1, v=2)
        st.write_step(4.0, u=3)
        markers = fs.scan("gs.bp.dir/step.*")
        assert len(markers) == 2
        assert markers[0].data == {"vars": ["u", "v"]}


class TestDataHub:
    def test_channel_get_or_create(self):
        hub = DataHub()
        ch = hub.channel("tau-iso")
        assert hub.channel("tau-iso") is ch
        assert hub.get_channel("tau-iso") is ch
        assert hub.has_channel("tau-iso")

    def test_missing_channel_raises(self):
        from repro.errors import StagingError

        with pytest.raises(StagingError):
            DataHub().get_channel("nope")

    def test_store_backed_by_hub_fs(self):
        hub = DataHub()
        st = hub.store("xgca.bp")
        st.write_step(1.0, nsteps=100)
        assert hub.filesystem.scan("xgca.bp.dir/step.*")
        assert hub.store("xgca.bp") is st

    def test_listings(self):
        hub = DataHub()
        hub.channel("b")
        hub.channel("a")
        hub.store("s")
        assert hub.channels() == ["a", "b"]
        assert hub.stores() == ["s"]
