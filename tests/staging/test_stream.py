"""Tests for SST-like stream channels."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BufferOverflowError, ChannelClosedError
from repro.staging import OverflowPolicy, StreamChannel


class TestBasicFlow:
    def test_reader_sees_steps_in_order(self):
        ch = StreamChannel("c")
        r = ch.open_reader()
        ch.put("a", 1.0)
        ch.put("b", 2.0)
        steps = r.drain()
        assert [(s.step, s.data) for s in steps] == [(0, "a"), (1, "b")]

    def test_try_next_empty_returns_none(self):
        ch = StreamChannel("c")
        r = ch.open_reader()
        assert r.try_next() is None

    def test_multiple_readers_independent_cursors(self):
        ch = StreamChannel("c")
        r1 = ch.open_reader("r1")
        r2 = ch.open_reader("r2")
        ch.put("x", 0.0)
        assert r1.try_next().data == "x"
        assert r2.try_next().data == "x"
        assert r1.try_next() is None

    def test_late_reader_starts_at_oldest_retained(self):
        ch = StreamChannel("c", capacity=2)
        for i in range(5):
            ch.put(i, float(i))
        r = ch.open_reader()
        assert [s.data for s in r.drain()] == [3, 4]


class TestOverflow:
    def test_drop_oldest(self):
        ch = StreamChannel("c", capacity=3, policy=OverflowPolicy.DROP_OLDEST)
        r = ch.open_reader()
        for i in range(5):
            ch.put(i, float(i))
        assert ch.dropped_steps == 2
        assert [s.data for s in r.drain()] == [2, 3, 4]
        assert r.missed_steps == 2

    def test_error_policy(self):
        ch = StreamChannel("c", capacity=1, policy=OverflowPolicy.ERROR)
        ch.put("a", 0.0)
        with pytest.raises(BufferOverflowError):
            ch.put("b", 1.0)

    def test_grow_policy_unbounded(self):
        ch = StreamChannel("c", capacity=1, policy=OverflowPolicy.GROW)
        for i in range(10):
            ch.put(i, float(i))
        assert ch.dropped_steps == 0
        assert [s.data for s in ch.open_reader().drain()] == list(range(10))

    def test_consuming_frees_no_space_but_cursor_jumps(self):
        """DROP_OLDEST evicts regardless of reader position; slow readers lose steps."""
        ch = StreamChannel("c", capacity=2)
        r = ch.open_reader()
        ch.put(0, 0.0)
        ch.put(1, 0.0)
        assert r.try_next().data == 0
        ch.put(2, 0.0)  # evicts step 1? no: buffer holds [1], appends 2
        assert [s.data for s in r.drain()] == [1, 2]


class TestCloseReopen:
    def test_write_after_close_rejected(self):
        ch = StreamChannel("c")
        ch.close()
        with pytest.raises(ChannelClosedError):
            ch.put("x", 0.0)

    def test_reader_drains_after_close_then_eos(self):
        ch = StreamChannel("c")
        r = ch.open_reader()
        ch.put("x", 0.0)
        ch.close()
        assert not r.at_eos()
        assert r.try_next().data == "x"
        assert r.at_eos()

    def test_reopen_continues_numbering(self):
        ch = StreamChannel("c")
        ch.put("a", 0.0)
        ch.close()
        ch.reopen()
        step = ch.put("b", 1.0)
        assert step == 1

    def test_seek_latest_skips_staged_steps(self):
        ch = StreamChannel("c", capacity=10)
        r = ch.open_reader()
        for i in range(5):
            ch.put(i, float(i))
        r.seek_latest()
        assert r.try_next() is None  # everything staged is skipped
        ch.put(5, 5.0)
        assert r.try_next().data == 5  # strictly new data flows


class TestStreamProperties:
    @given(st.integers(1, 8), st.integers(0, 40))
    def test_reader_never_sees_duplicates_or_regressions(self, capacity, nputs):
        ch = StreamChannel("c", capacity=capacity)
        r = ch.open_reader()
        seen = []
        for i in range(nputs):
            ch.put(i, float(i))
            if i % 3 == 0:
                seen.extend(s.data for s in r.drain())
        seen.extend(s.data for s in r.drain())
        assert seen == sorted(set(seen))
        assert len(seen) + r.missed_steps == nputs
