"""Wall-clock mirror of the recovery layer: threaded retry and watchdog."""

import time

from repro.resilience import ResilienceSpec, RetryPolicy, WatchdogSpec
from repro.runtime import RuntimeOptions
from repro.runtime.threaded import LiveTaskSpec, ThreadedDyflow


def fast_retry(**kw):
    defaults = dict(max_retries=3, backoff_base=0.05, backoff_factor=1.0,
                    backoff_max=0.2, jitter=0.0)
    defaults.update(kw)
    return RetryPolicy(**defaults)


def make_runner(tasks, resilience):
    return ThreadedDyflow("LIVE", tasks, poll_interval=0.05, warmup=0.2,
                          settle=0.2, options=RuntimeOptions(resilience=resilience))


def status_records(runner, name):
    with runner.hub_lock:
        path = f"status/{runner.workflow_id}/{name}"
        if not runner.hub.filesystem.exists(path):
            return []
        return list(runner.hub.filesystem.read(path))


def wait_for(pred, timeout=10.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if pred():
            return True
        time.sleep(0.05)
    return False


class TestThreadedRetry:
    def test_crashed_task_is_retried_to_completion(self):
        crashed = {"done": False}

        def flaky(step, _w):
            if step == 2 and not crashed["done"]:
                crashed["done"] = True
                raise RuntimeError("injected")
            time.sleep(0.01)

        runner = make_runner([LiveTaskSpec("T", flaky, total_steps=5)],
                             ResilienceSpec(retry=fast_retry()))
        runner.start()
        # wait_until_done() can fire in the gap between the crash and the
        # backoff timer; poll the status records for the clean exit instead.
        assert wait_for(lambda: any(r["code"] == 0 for r in status_records(runner, "T")))
        runner.stop()
        records = status_records(runner, "T")
        assert [r["code"] for r in records] == [1, 0]
        assert [r["incarnation"] for r in records] == [0, 1]
        assert len(runner.retries) == 1
        assert runner.retries[0][1] == "T" and runner.retries[0][2] == 1

    def test_retry_budget_exhaustion(self):
        def always_boom(_step, _w):
            raise RuntimeError("x")

        runner = make_runner([LiveTaskSpec("T", always_boom, total_steps=5)],
                             ResilienceSpec(retry=fast_retry(max_retries=2)))
        runner.start()
        assert wait_for(lambda: "T" in runner.retry_exhausted)
        runner.stop()
        records = status_records(runner, "T")
        assert len(records) == 3  # original + 2 retries
        assert all(r["code"] == 1 for r in records)

    def test_no_policy_means_no_retry(self):
        def boom(_step, _w):
            raise RuntimeError("x")

        runner = make_runner([LiveTaskSpec("T", boom, total_steps=5)], None)
        runner.start()
        assert runner.wait_until_done(timeout=10.0)
        time.sleep(0.3)  # a retry timer would fire well within this window
        runner.stop()
        records = status_records(runner, "T")
        assert [r["code"] for r in records] == [1]
        assert runner.retries == []


class TestThreadedWatchdog:
    def test_hung_task_is_abandoned_and_replaced(self):
        hung = {"done": False}

        def sticky(step, _w):
            if step == 1 and not hung["done"]:
                hung["done"] = True
                time.sleep(2.0)  # far beyond the heartbeat timeout
            time.sleep(0.01)

        runner = make_runner(
            [LiveTaskSpec("T", sticky, total_steps=4)],
            ResilienceSpec(
                retry=fast_retry(),
                watchdog=WatchdogSpec(heartbeat_timeout=0.4, poll=0.1, kill_code=142),
            ),
        )
        runner.start()
        assert wait_for(lambda: any(r["code"] == 0 for r in status_records(runner, "T")))
        assert runner.watchdog_kills and runner.watchdog_kills[0][1] == "T"
        # Let the abandoned thread wake up and write its exit record too.
        assert wait_for(lambda: any(r["code"] == 142 for r in status_records(runner, "T")))
        runner.stop()
        codes = sorted(r["code"] for r in status_records(runner, "T"))
        assert codes == [0, 142]

    def test_healthy_tasks_not_killed(self):
        runner = make_runner(
            [LiveTaskSpec("T", lambda s, w: time.sleep(0.02), total_steps=8)],
            ResilienceSpec(watchdog=WatchdogSpec(heartbeat_timeout=1.0, poll=0.1)),
        )
        runner.start()
        assert runner.wait_until_done(timeout=10.0)
        runner.stop()
        assert runner.watchdog_kills == []
        assert status_records(runner, "T")[-1]["code"] == 0
