"""Graceful degradation in Actuation: failed ops, compensation, reports."""

from repro.core.actuation import ActuationStage
from repro.core.lowlevel import ActionPlan, LowLevelOp, PHASE_ACQUIRE
from repro.wms import TaskState

from tests.resilience.conftest import flaky_app_factory, make_sim, make_task


def make_plan(ops, plan_id="p1", created=0.0):
    return ActionPlan(plan_id=plan_id, workflow_id="W", created=created,
                      ops=ops, trigger_time=created)


class TestDegradation:
    def test_bad_op_fails_but_plan_still_completes(self):
        eng, _m, sav = make_sim(
            [
                make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=50)),
                make_task("B", flaky_app_factory(fail_incarnations=0, total_steps=5),
                          autostart=False),
            ],
        )
        act = ActuationStage(sav)
        total = sav.rm.free().total_cores
        sav.launch_workflow()
        eng.run(until=2.0)
        rs = sav.rm.plan_placement(8)
        plan = make_plan([
            # Reconfig of a task that is not running: a clean op failure.
            LowLevelOp("reconfig_task", "ghost", PHASE_ACQUIRE, params={"x": 1}),
            LowLevelOp("start_task", "B", PHASE_ACQUIRE, resources=rs),
        ], created=eng.now)
        eng.run_process(act.execute(plan))
        eng.run()
        # The bad op degraded; the good op still ran to completion.
        assert sav.record("B").current.state == TaskState.COMPLETED
        assert act.failed_ops and act.failed_ops[0][0] == "p1"
        report = plan.degradation
        assert report is not None and report.degraded
        assert len(report.failed_ops) == 1
        assert "ghost" in report.failed_ops[0]
        assert report.compensations == []  # nothing was booked for the reconfig
        points = sav.trace.points_for(label="op-failed:ghost")
        assert points and points[0].category == "failure"
        assert points[0].meta["plan"] == "p1"
        assert sav.trace.points_for(label="plan-degraded:p1")
        # Everything ran to completion and released; no cores leaked.
        assert sav.rm.free().total_cores == total

    def test_failed_start_op_releases_booked_cores(self):
        eng, _m, sav = make_sim(
            [
                make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=50)),
                make_task("B", flaky_app_factory(fail_incarnations=0, total_steps=5),
                          autostart=False),
            ],
        )
        act = ActuationStage(sav)
        total = sav.rm.free().total_cores
        sav.launch_workflow()
        eng.run(until=2.0)
        free_before = sav.rm.free().total_cores
        # Book cores for B as a planner would, then hand Actuation a start
        # op with no resource set: the op fails and the booking must be
        # unwound by a compensating release.
        sav.rm.assign("B", 8)
        assert sav.rm.free().total_cores == free_before - 8
        plan = make_plan([LowLevelOp("start_task", "B", PHASE_ACQUIRE, resources=None)],
                         created=eng.now)
        eng.run_process(act.execute(plan))
        report = plan.degradation
        assert report is not None and report.degraded
        assert len(report.compensations) == 1
        assert "8 cores" in report.compensations[0]
        # The compensating release unwound B's booking; once A finished and
        # released its own cores, the whole pool is free again.
        assert sav.rm.assignment("B").total_cores == 0
        assert sav.rm.free().total_cores == total

    def test_clean_plan_has_no_degradation_report(self):
        eng, _m, sav = make_sim(
            [make_task("B", flaky_app_factory(fail_incarnations=0, total_steps=5),
                       autostart=False)],
        )
        act = ActuationStage(sav)
        sav.launch_workflow()
        eng.run(until=1.0)
        rs = sav.rm.plan_placement(8)
        plan = make_plan([LowLevelOp("start_task", "B", PHASE_ACQUIRE, resources=rs)],
                         created=eng.now)
        eng.run_process(act.execute(plan))
        eng.run()
        assert plan.degradation is None
        assert act.failed_ops == []
        assert sav.record("B").current.state == TaskState.COMPLETED

    def test_degradation_report_describe(self):
        from repro.core.lowlevel import DegradationReport

        report = DegradationReport(
            plan_id="p9", time=3.0,
            failed_ops=["start X (8 procs) []: boom"],
            compensations=["released 8 cores held for X"],
        )
        text = report.describe()
        assert "p9" in text and "boom" in text and "released 8 cores" in text
        assert report.degraded
        empty = DegradationReport(plan_id="p0", time=0.0, failed_ops=[], compensations=[])
        assert not empty.degraded
