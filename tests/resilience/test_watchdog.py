"""Heartbeat watchdog: hang detection and watchdog-triggered restart."""

from repro.core.monitor import MonitorServer
from repro.resilience import HeartbeatWatchdog, ResilienceSpec, RetryPolicy, WatchdogSpec
from repro.wms import TaskState

from tests.resilience.conftest import flaky_app_factory, make_sim, make_task


def hang_at(eng, sav, name, time):
    eng.call_at(time, lambda: sav.record(name).current.ctx.inject_hang())


class TestWatchdog:
    def test_hung_task_killed_and_restarted(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=20, dt=1.0))],
            resilience=ResilienceSpec(
                retry=RetryPolicy(max_retries=3, backoff_base=1.0, jitter=0.0),
                watchdog=WatchdogSpec(heartbeat_timeout=5.0, poll=1.0),
            ),
        )
        dog = HeartbeatWatchdog(sav, sav.resilience.watchdog)
        dog.start()
        sav.launch_workflow()
        hang_at(eng, sav, "A", 4.0)
        eng.run(until=200.0)
        rec = sav.record("A")
        assert len(dog.kills) == 1
        assert dog.kills[0].task == "A"
        assert rec.incarnations == 2
        assert rec.history[0].state == TaskState.FAILED
        assert rec.history[0].exit_code == 142
        assert rec.history[0].kill_cause == "watchdog"
        assert rec.current.state == TaskState.COMPLETED
        points = sav.trace.points_for(label="watchdog-kill:A")
        assert points and points[0].category == "failure"

    def test_healthy_task_never_killed(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=20, dt=1.0))],
            resilience=ResilienceSpec(watchdog=WatchdogSpec(heartbeat_timeout=5.0, poll=1.0)),
        )
        dog = HeartbeatWatchdog(sav, sav.resilience.watchdog)
        dog.start()
        sav.launch_workflow()
        eng.run(until=100.0)
        assert dog.kills == []
        assert sav.record("A").current.state == TaskState.COMPLETED

    def test_slow_task_spared_by_monitor_last_seen(self):
        # The app's own heartbeat is stale (long steps), but the Monitor
        # server keeps seeing envelopes: the dual signal prevents a false
        # positive kill of a slow-but-alive task.
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=4, dt=20.0))],
            resilience=ResilienceSpec(watchdog=WatchdogSpec(heartbeat_timeout=8.0, poll=1.0)),
        )
        server = MonitorServer()

        def feed_last_seen():
            server.last_seen["A"] = eng.now

        for t in range(0, 100, 5):
            eng.call_at(float(t), feed_last_seen)
        dog = HeartbeatWatchdog(sav, sav.resilience.watchdog, server=server)
        dog.start()
        sav.launch_workflow()
        eng.run(until=100.0)
        assert dog.kills == []
        assert sav.record("A").current.state == TaskState.COMPLETED

    def test_stopped_watchdog_does_nothing(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=30, dt=1.0))],
            resilience=ResilienceSpec(watchdog=WatchdogSpec(heartbeat_timeout=2.0, poll=1.0)),
        )
        dog = HeartbeatWatchdog(sav, sav.resilience.watchdog)
        dog.start()
        dog.stop()
        sav.launch_workflow()
        hang_at(eng, sav, "A", 3.0)
        eng.run(until=50.0)
        assert dog.kills == []
        assert sav.record("A").current.state == TaskState.RUNNING  # still hung

    def test_hang_without_retry_policy_just_fails(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=20, dt=1.0))],
            resilience=ResilienceSpec(watchdog=WatchdogSpec(heartbeat_timeout=5.0, poll=1.0)),
        )
        dog = HeartbeatWatchdog(sav, sav.resilience.watchdog)
        dog.start()
        sav.launch_workflow()
        hang_at(eng, sav, "A", 4.0)
        eng.run(until=100.0)
        rec = sav.record("A")
        assert rec.incarnations == 1
        assert rec.current.state == TaskState.FAILED
        assert rec.current.exit_code == 142
