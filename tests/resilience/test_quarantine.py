"""Node circuit breaker: blame windows, cooldown, placement exclusion."""

from repro.resilience import NodeQuarantine, QuarantineSpec, ResilienceSpec, RetryPolicy
from repro.wms import TaskState

from tests.resilience.conftest import flaky_app_factory, make_sim, make_task


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestNodeQuarantineUnit:
    def test_trips_after_threshold_in_window(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=3, window=100.0, cooldown=50.0), clock)
        assert not q.record_failure("n0")
        assert not q.record_failure("n0")
        assert q.record_failure("n0")  # third within the window: trips
        assert q.is_quarantined("n0")
        assert q.active() == {"n0"}
        assert [e.kind for e in q.history] == ["quarantined"]

    def test_old_failures_pruned(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=2, window=10.0, cooldown=50.0), clock)
        q.record_failure("n0")
        clock.t = 20.0  # first failure ages out of the window
        assert not q.record_failure("n0")
        assert not q.is_quarantined("n0")

    def test_cooldown_release_and_rearm(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=1, window=10.0, cooldown=30.0), clock)
        assert q.record_failure("n0")
        clock.t = 29.0
        assert q.is_quarantined("n0")
        clock.t = 31.0
        assert not q.is_quarantined("n0")  # lazily released
        assert [e.kind for e in q.history] == ["quarantined", "released"]
        clock.t = 40.0
        assert q.record_failure("n0")  # trips again after release
        assert q.is_quarantined("n0")

    def test_repeated_failure_rearms_cooldown(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=1, window=100.0, cooldown=30.0), clock)
        q.record_failure("n0")
        clock.t = 20.0
        assert not q.record_failure("n0")  # already tripped: not "newly"
        clock.t = 45.0  # past the first cooldown, within the re-armed one
        assert q.is_quarantined("n0")

    def test_blamed_counts_within_window(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=5, window=10.0, cooldown=30.0), clock)
        q.record_failure("n0")
        q.record_failure("n0")
        assert q.blamed("n0") == 2
        assert q.blamed("n1") == 0


class TestQuarantineEndToEnd:
    def _spec(self, failures=2):
        return ResilienceSpec(
            retry=RetryPolicy(max_retries=5, backoff_base=1.0, jitter=0.0),
            quarantine=QuarantineSpec(failures=failures, window=1e6, cooldown=1e6),
        )

    def test_repeated_crashes_quarantine_node_and_move_task(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=2, crash_at=1, total_steps=5),
                       nprocs=8)],
            resilience=self._spec(failures=2),
        )
        sav.launch_workflow()
        eng.run(until=1.0)
        first_nodes = set(sav.record("A").current.resources.node_ids)
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.COMPLETED
        assert rec.incarnations == 3
        # After two blamed failures the original node is out: the final
        # incarnation avoids it entirely.
        quarantined = sav.quarantine.active()
        assert first_nodes & quarantined
        assert not set(rec.current.resources.node_ids) & quarantined
        assert sav.trace.points_for(label=f"quarantine:{sorted(quarantined)[0]}")

    def test_node_status_reports_quarantined(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=2, crash_at=1, total_steps=5))],
            resilience=self._spec(failures=2),
        )
        sav.launch_workflow()
        eng.run()
        status = sav.get_resource_status()
        assert "quarantined" in status.values()

    def test_arbitration_shadow_excludes_quarantined_nodes(self):
        from repro.core.arbitration import _Shadow

        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=50), nprocs=8)],
            resilience=self._spec(failures=1),
        )
        sav.launch_workflow()
        eng.run(until=2.0)
        victim_node = sorted(sav.rm.healthy_node_ids())[0]
        sav.quarantine.record_failure(victim_node)
        shadow = _Shadow(sav)
        rs = shadow.place(8, None)
        assert victim_node not in rs.node_ids

    def test_node_failure_blames_only_dead_node(self):
        from repro.cluster.failures import FailureInjector

        eng, m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=50),
                       nprocs=60)],  # spans two summit nodes (42 cores each)
            resilience=self._spec(failures=1),
        )
        inj = FailureInjector(eng, m)
        inj.subscribe_failure(lambda node, _t: sav.handle_node_failure(node.node_id))
        sav.launch_workflow()
        eng.run(until=3.0)
        nodes = set(sav.record("A").current.resources.node_ids)
        assert len(nodes) == 2
        dead = sorted(nodes)[0]
        survivor = sorted(nodes)[1]
        inj.fail_node_at(5.0, dead)
        eng.run(until=10.0)
        # With failures=1 a single blame quarantines: only the dead node
        # was blamed, never the surviving nodes of the killed instance.
        assert dead in sav.quarantine.active()
        assert survivor not in sav.quarantine.active()
