"""Node circuit breaker: blame windows, cooldown, placement exclusion."""

from repro.resilience import NodeQuarantine, QuarantineSpec, ResilienceSpec, RetryPolicy
from repro.wms import TaskState

from tests.resilience.conftest import flaky_app_factory, make_sim, make_task


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestNodeQuarantineUnit:
    def test_trips_after_threshold_in_window(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=3, window=100.0, cooldown=50.0), clock)
        assert not q.record_failure("n0")
        assert not q.record_failure("n0")
        assert q.record_failure("n0")  # third within the window: trips
        assert q.is_quarantined("n0")
        assert q.active() == {"n0"}
        assert [e.kind for e in q.history] == ["quarantined"]

    def test_old_failures_pruned(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=2, window=10.0, cooldown=50.0), clock)
        q.record_failure("n0")
        clock.t = 20.0  # first failure ages out of the window
        assert not q.record_failure("n0")
        assert not q.is_quarantined("n0")

    def test_cooldown_release_and_rearm(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=1, window=10.0, cooldown=30.0), clock)
        assert q.record_failure("n0")
        clock.t = 29.0
        assert q.is_quarantined("n0")
        clock.t = 31.0
        assert not q.is_quarantined("n0")  # lazily released
        assert [e.kind for e in q.history] == ["quarantined", "released"]
        clock.t = 40.0
        assert q.record_failure("n0")  # trips again after release
        assert q.is_quarantined("n0")

    def test_repeated_failure_rearms_cooldown(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=1, window=100.0, cooldown=30.0), clock)
        q.record_failure("n0")
        clock.t = 20.0
        assert not q.record_failure("n0")  # already tripped: not "newly"
        clock.t = 45.0  # past the first cooldown, within the re-armed one
        assert q.is_quarantined("n0")

    def test_blamed_counts_within_window(self):
        clock = FakeClock()
        q = NodeQuarantine(QuarantineSpec(failures=5, window=10.0, cooldown=30.0), clock)
        q.record_failure("n0")
        q.record_failure("n0")
        assert q.blamed("n0") == 2
        assert q.blamed("n1") == 0


class TestQuarantineEndToEnd:
    def _spec(self, failures=2):
        return ResilienceSpec(
            retry=RetryPolicy(max_retries=5, backoff_base=1.0, jitter=0.0),
            quarantine=QuarantineSpec(failures=failures, window=1e6, cooldown=1e6),
        )

    def test_repeated_crashes_quarantine_node_and_move_task(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=2, crash_at=1, total_steps=5),
                       nprocs=8)],
            resilience=self._spec(failures=2),
        )
        sav.launch_workflow()
        eng.run(until=1.0)
        first_nodes = set(sav.record("A").current.resources.node_ids)
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.COMPLETED
        assert rec.incarnations == 3
        # After two blamed failures the original node is out: the final
        # incarnation avoids it entirely.
        quarantined = sav.quarantine.active()
        assert first_nodes & quarantined
        assert not set(rec.current.resources.node_ids) & quarantined
        assert sav.trace.points_for(label=f"quarantine:{sorted(quarantined)[0]}")

    def test_node_status_reports_quarantined(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=2, crash_at=1, total_steps=5))],
            resilience=self._spec(failures=2),
        )
        sav.launch_workflow()
        eng.run()
        status = sav.get_resource_status()
        assert "quarantined" in status.values()

    def test_arbitration_shadow_excludes_quarantined_nodes(self):
        from repro.core.arbitration import _Shadow

        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=50), nprocs=8)],
            resilience=self._spec(failures=1),
        )
        sav.launch_workflow()
        eng.run(until=2.0)
        victim_node = sorted(sav.rm.healthy_node_ids())[0]
        sav.quarantine.record_failure(victim_node)
        shadow = _Shadow(sav)
        rs = shadow.place(8, None)
        assert victim_node not in rs.node_ids

    def test_node_failure_blames_only_dead_node(self):
        from repro.cluster.failures import FailureInjector

        eng, m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=50),
                       nprocs=60)],  # spans two summit nodes (42 cores each)
            resilience=self._spec(failures=1),
        )
        inj = FailureInjector(eng, m)
        inj.subscribe_failure(lambda node, _t: sav.handle_node_failure(node.node_id))
        sav.launch_workflow()
        eng.run(until=3.0)
        nodes = set(sav.record("A").current.resources.node_ids)
        assert len(nodes) == 2
        dead = sorted(nodes)[0]
        survivor = sorted(nodes)[1]
        inj.fail_node_at(5.0, dead)
        eng.run(until=10.0)
        # With failures=1 a single blame quarantines: only the dead node
        # was blamed, never the surviving nodes of the killed instance.
        assert dead in sav.quarantine.active()
        assert survivor not in sav.quarantine.active()


class TestQuarantineMidRetryArbitration:
    """A node tripping the breaker while its task is mid-retry must not
    be handed back out by Arbitration during the cooldown."""

    def _world(self):
        from repro.apps import ConstantModel, IterativeApp
        from repro.core import ArbitrationRules, ArbitrationStage
        from repro.resilience import QuarantineSpec, ResilienceSpec, RetryPolicy
        from repro.wms import TaskSpec

        eng, _m, sav = make_sim(
            [
                # A crashes forever: each death burns a retry and blames
                # its node; the long backoff keeps it mid-retry for ages.
                make_task("A", flaky_app_factory(
                    fail_incarnations=10**9, crash_at=1, total_steps=5), nprocs=8),
                TaskSpec("B", lambda: IterativeApp(ConstantModel(4.0), total_steps=10_000),
                         nprocs=8),
            ],
            num_nodes=4,
            resilience=ResilienceSpec(
                retry=RetryPolicy(max_retries=10, backoff_base=60.0,
                                  backoff_factor=1.0, jitter=0.0),
                quarantine=QuarantineSpec(failures=1, window=1e6, cooldown=1e6),
            ),
        )
        rules = ArbitrationRules.from_workflow(sav.workflow)
        arb = ArbitrationStage(sav, rules, warmup=0.0, settle=0.0)
        arb.begin(0.0)
        sav.launch_workflow()
        return eng, sav, arb

    def test_addcpu_plan_avoids_the_quarantined_node(self):
        from repro.core import ActionType, SuggestedAction

        eng, sav, arb = self._world()
        eng.run(until=5.0)  # A crashed: node blamed + quarantined
        quarantined = sav.quarantine.active()
        assert quarantined
        rec = sav.record("A")
        assert not rec.is_active and not rec.retry_exhausted  # mid-backoff
        # B currently sits on the quarantined node (both started there).
        assert set(sav.record("B").current.resources.node_ids) & quarantined

        plan = arb.arbitrate(
            [SuggestedAction(policy_id="P", action=ActionType.ADDCPU, target="B",
                             workflow_id="W", params={"adjust-by": 8},
                             trigger_time=eng.now)],
            now=eng.now,
        )
        assert plan is not None
        starts = [op for op in plan.ops if op.op == "start_task" and op.task == "B"]
        assert starts, f"no start op in {[o.describe() for o in plan.ops]}"
        for op in starts:
            assert not (set(op.resources.node_ids) & quarantined), (
                f"arbitration re-selected quarantined node(s) "
                f"{set(op.resources.node_ids) & quarantined}"
            )

    def test_retry_relaunch_also_avoids_the_node_during_cooldown(self):
        eng, sav, arb = self._world()
        eng.run(until=5.0)
        quarantined = set(sav.quarantine.active())
        assert quarantined
        # Let the 60 s backoff elapse: the retry relaunch lands off-node.
        eng.run(until=70.0)
        rec = sav.record("A")
        assert rec.incarnations >= 2
        latest = rec.current if rec.current is not None else rec.history[-1]
        assert not (set(latest.resources.node_ids) & quarantined)
