"""Checkpoint-restart: restarted incarnations resume from the last save."""

from repro.resilience import CheckpointSpec, ResilienceSpec, RetryPolicy
from repro.wms import TaskState

from tests.resilience.conftest import flaky_app_factory, make_sim, make_task


def cp_spec(every=2, resume=True, **retry_kw):
    defaults = dict(max_retries=3, backoff_base=1.0, backoff_factor=1.0, jitter=0.0)
    defaults.update(retry_kw)
    return ResilienceSpec(
        retry=RetryPolicy(**defaults),
        checkpoint=CheckpointSpec(every=every, resume=resume),
    )


class TestCheckpointRestart:
    def test_restart_resumes_from_last_checkpoint(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=1, crash_at=4, total_steps=10))],
            resilience=cp_spec(every=2),
        )
        sav.launch_workflow()
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.COMPLETED
        assert rec.incarnations == 2
        # Crash fired during step 4; the step-4 checkpoint was saved at the
        # end of step 3, so the restart picks up exactly where it crashed.
        assert rec.current.notes["first_step"] == 4
        assert rec.current.notes["last_step"] == 10  # ran through all 10 steps
        # The retry only re-ran the remaining steps, not the whole app.
        assert rec.current.notes["steps_this_run"] == 6

    def test_no_checkpoint_spec_restarts_from_zero(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=1, crash_at=4, total_steps=10))],
            resilience=ResilienceSpec(
                retry=RetryPolicy(max_retries=3, backoff_base=1.0, jitter=0.0)
            ),
        )
        sav.launch_workflow()
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.COMPLETED
        assert rec.current.notes["first_step"] == 0
        assert rec.current.notes["steps_this_run"] == 10

    def test_resume_false_ignores_saved_checkpoints(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=1, crash_at=4, total_steps=10))],
            resilience=cp_spec(every=2, resume=False),
        )
        sav.launch_workflow()
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.COMPLETED
        assert rec.current.notes["first_step"] == 0

    def test_multiple_crashes_make_forward_progress(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=2, crash_at=4, total_steps=12))],
            resilience=cp_spec(every=2, max_retries=5),
        )
        sav.launch_workflow()
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.COMPLETED
        assert rec.incarnations == 3
        # Every incarnation after the first resumed at the crash frontier.
        assert rec.history[1].notes["first_step"] == 4
        assert rec.current.notes["first_step"] == 4
        assert rec.current.notes["last_step"] == 12
