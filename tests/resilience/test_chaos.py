"""Stochastic fault injection: replayability and fault-class behavior."""

from repro.resilience import (
    ChaosEngine,
    FaultModelSpec,
    HeartbeatWatchdog,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)
from repro.resilience.faults import TASK_CRASH_CODE
from repro.util.jsonmsg import Envelope
from repro.wms import TaskState

from tests.resilience.conftest import flaky_app_factory, make_sim, make_task


def run_chaos(seed, model, until=300.0, total_steps=500):
    eng, _m, sav = make_sim(
        [
            make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=total_steps)),
            make_task("B", flaky_app_factory(fail_incarnations=0, total_steps=total_steps)),
        ],
        resilience=ResilienceSpec(
            retry=RetryPolicy(max_retries=100, backoff_base=1.0, jitter=0.25)
        ),
        seed=seed,
    )
    chaos = ChaosEngine(sav, model)
    chaos.start()
    sav.launch_workflow()
    eng.run(until=until)
    chaos.stop()
    return sav, chaos


def fingerprint(sav, chaos):
    """Everything that must replay bit-identically under a fixed seed."""
    faults = [(e.time, e.kind, e.target) for e in chaos.history]
    records = {}
    for name in ("A", "B"):
        rec = sav.record(name)
        instances = list(rec.history) + ([rec.current] if rec.current else [])
        records[name] = (
            rec.incarnations,
            [(i.start_time, i.exit_code, i.kill_cause, tuple(i.resources.node_ids))
             for i in instances],
        )
    return faults, records


class TestChaosDeterminism:
    MODEL = FaultModelSpec(node_mtbf=80.0, node_repair_time=40.0, task_crash_mtbf=90.0)

    def test_fixed_seed_runs_are_bit_identical(self):
        a = fingerprint(*run_chaos(11, self.MODEL))
        b = fingerprint(*run_chaos(11, self.MODEL))
        assert a[0]  # chaos actually fired
        assert a == b

    def test_different_seeds_diverge(self):
        a = fingerprint(*run_chaos(11, self.MODEL))
        b = fingerprint(*run_chaos(12, self.MODEL))
        assert a != b


class TestFaultClasses:
    def test_task_crash_kills_with_crash_code_and_is_retried(self):
        sav, chaos = run_chaos(5, FaultModelSpec(task_crash_mtbf=40.0), until=300.0)
        crashes = [e for e in chaos.history if e.kind == "task-crash"]
        assert crashes
        victim = sav.record(crashes[0].target)
        assert victim.incarnations >= 2
        assert victim.history[0].exit_code == TASK_CRASH_CODE
        assert victim.history[0].kill_cause == "chaos"

    def test_node_crash_and_repair_cycle(self):
        sav, chaos = run_chaos(
            3, FaultModelSpec(node_mtbf=50.0, node_repair_time=30.0), until=400.0
        )
        crashes = [e for e in chaos.history if e.kind == "node-crash"]
        assert crashes
        kinds = [r.kind for r in chaos.injector.history]
        assert "failure" in kinds and "recovery" in kinds

    def test_hang_then_watchdog_recovers_the_task(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=40))],
            resilience=ResilienceSpec(
                retry=RetryPolicy(max_retries=5, backoff_base=1.0, jitter=0.0),
                watchdog=WatchdogSpec(heartbeat_timeout=6.0, poll=1.0),
            ),
            seed=2,
        )
        chaos = ChaosEngine(sav, FaultModelSpec(task_hang_mtbf=15.0))
        dog = HeartbeatWatchdog(sav, sav.resilience.watchdog)
        chaos.start()
        dog.start()
        sav.launch_workflow()
        eng.run(until=80.0)
        chaos.stop()  # stop injecting so the restart can finish
        eng.run(until=500.0)
        hangs = [e for e in chaos.history if e.kind == "task-hang"]
        assert hangs and hangs[0].target == "A"
        rec = sav.record("A")
        assert dog.kills  # the watchdog caught the injected hang
        assert rec.current.state == TaskState.COMPLETED

    def test_msg_drop_stream_is_deterministic(self):
        def drops(seed):
            eng, _m, sav = make_sim(
                [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=5))],
                seed=seed,
            )
            chaos = ChaosEngine(sav, FaultModelSpec(msg_drop_prob=0.3))
            pattern = [
                chaos.drop_envelope(Envelope("STATUS", "A", seq, float(seq), {}))
                for seq in range(200)
            ]
            return pattern, chaos.dropped_envelopes

        p1, n1 = drops(9)
        p2, n2 = drops(9)
        assert p1 == p2 and n1 == n2
        assert 0 < n1 < 200
        assert n1 == sum(p1)

    def test_stage_drop_loses_steps_in_transit(self):
        def run(seed):
            eng, _m, sav = make_sim(
                [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=5))],
                seed=seed,
            )
            chaos = ChaosEngine(sav, FaultModelSpec(stage_drop_prob=0.3))
            chaos.start()
            # Created after start(): the on_new_channel hook covers it.  Big
            # capacity so the buffer's own DROP_OLDEST eviction stays out of
            # the accounting.
            ch = sav.hub.channel("stage", capacity=200)
            for i in range(100):
                ch.put({"i": i}, float(i))
            reader = ch.open_reader()
            got = len(reader.drain())
            return got, ch.dropped_in_transit, len(chaos.history)

        got, dropped, events = run(4)
        assert got + dropped == 100
        assert 0 < dropped < 100
        assert events == dropped  # every loss leaves a FaultEvent
        assert run(4) == (got, dropped, events)  # fixed seed replays

    def test_stage_drop_stops_with_the_engine(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=5))]
        )
        chaos = ChaosEngine(sav, FaultModelSpec(stage_drop_prob=0.9))
        chaos.start()
        ch = sav.hub.channel("stage")
        chaos.stop()
        for i in range(50):
            ch.put({"i": i}, float(i))
        assert ch.dropped_in_transit == 0  # filter goes inert on stop

    def test_msg_drop_disabled_by_default(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=5))]
        )
        chaos = ChaosEngine(sav, FaultModelSpec())
        assert not chaos.drop_envelope(Envelope("STATUS", "A", 0, 0.0, {}))
        assert chaos.dropped_envelopes == 0


class TestChaosStateRoundTrip:
    """state_dict/load_state_dict: the crash-recovery handover contract."""

    MODEL = FaultModelSpec(node_mtbf=80.0, node_repair_time=40.0, task_crash_mtbf=90.0)

    def run_with_handover(self, seed, handover_at=None, until=300.0):
        """Optionally hand the chaos role to a fresh engine mid-run."""
        eng, _m, sav = make_sim(
            [
                make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=500)),
                make_task("B", flaky_app_factory(fail_incarnations=0, total_steps=500)),
            ],
            resilience=ResilienceSpec(
                retry=RetryPolicy(max_retries=100, backoff_base=1.0, jitter=0.25)
            ),
            seed=seed,
        )
        chaos = ChaosEngine(sav, self.MODEL)
        chaos.start()
        sav.launch_workflow()
        if handover_at is not None:
            eng.run(until=handover_at)
            state = chaos.state_dict()
            chaos.suspend()  # the crashed controller's engine goes dark
            successor = ChaosEngine(sav, self.MODEL)
            successor.load_state_dict(state)
            chaos = successor
        eng.run(until=until)
        chaos.stop()
        return sav, chaos

    def test_handover_replays_the_uninterrupted_fault_sequence(self):
        plain = fingerprint(*self.run_with_handover(11))
        handed = fingerprint(*self.run_with_handover(11, handover_at=150.0))
        assert plain[0]  # faults actually fired on both sides of 150 s
        assert any(t > 150.0 for t, _k, _tgt in plain[0])
        assert handed == plain

    def test_state_dict_captures_rng_and_pending_fires(self):
        _sav, chaos = self.run_with_handover(7, until=120.0)
        state = chaos.state_dict()
        assert state["running"] is False  # stop() was called
        assert "chaos:node-crash" in state["rng"]["streams"]
        assert "chaos:task-crash" in state["rng"]["streams"]
        assert state["history"] == [[e.time, e.kind, e.target] for e in chaos.history]

    def test_suspended_engine_never_fires_again(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=500))],
            resilience=ResilienceSpec(
                retry=RetryPolicy(max_retries=100, backoff_base=1.0, jitter=0.0)
            ),
            seed=1,
        )
        chaos = ChaosEngine(sav, FaultModelSpec(task_crash_mtbf=20.0))
        chaos.start()
        sav.launch_workflow()
        eng.run(until=50.0)
        fired_before = len(chaos.history)
        assert fired_before
        chaos.suspend()
        eng.run(until=300.0)
        assert len(chaos.history) == fired_before
