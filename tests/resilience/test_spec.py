"""Validation and math of the resilience configuration dataclasses."""

import numpy as np
import pytest

from repro.errors import ResilienceError
from repro.resilience import (
    CheckpointSpec,
    FaultModelSpec,
    QuarantineSpec,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)
from repro.sim.rng import RngRegistry


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base=2.0, backoff_factor=2.0, backoff_max=10.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.delay(0, rng) == 2.0
        assert policy.delay(1, rng) == 4.0
        assert policy.delay(2, rng) == 8.0
        assert policy.delay(3, rng) == 10.0  # capped
        assert policy.delay(10, rng) == 10.0

    def test_jitter_bounded_and_from_stream(self):
        policy = RetryPolicy(backoff_base=4.0, backoff_factor=1.0, backoff_max=4.0, jitter=0.5)
        rng = RngRegistry(3).stream("resilience:backoff")
        delays = [policy.delay(0, rng) for _ in range(50)]
        assert all(4.0 <= d < 6.0 for d in delays)
        # Same seed, same stream name -> identical jitter sequence.
        rng2 = RngRegistry(3).stream("resilience:backoff")
        assert delays == [policy.delay(0, rng2) for _ in range(50)]

    def test_exhausted(self):
        policy = RetryPolicy(max_retries=2)
        assert not policy.exhausted(0)
        assert not policy.exhausted(1)
        assert policy.exhausted(2)

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_retries=-1).validate()
        with pytest.raises(ResilienceError):
            RetryPolicy(backoff_factor=0.5).validate()
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5).validate()


class TestWatchdogSpec:
    def test_validation(self):
        WatchdogSpec().validate()
        with pytest.raises(ResilienceError):
            WatchdogSpec(heartbeat_timeout=0).validate()
        with pytest.raises(ResilienceError):
            WatchdogSpec(poll=0).validate()
        with pytest.raises(ResilienceError):
            WatchdogSpec(kill_code=1).validate()  # must look like a signal code


class TestQuarantineSpec:
    def test_validation(self):
        QuarantineSpec().validate()
        with pytest.raises(ResilienceError):
            QuarantineSpec(failures=0).validate()
        with pytest.raises(ResilienceError):
            QuarantineSpec(window=0).validate()


class TestFaultModelSpec:
    def test_validation(self):
        FaultModelSpec().validate()
        with pytest.raises(ResilienceError):
            FaultModelSpec(node_dist="zipf").validate()
        with pytest.raises(ResilienceError):
            FaultModelSpec(node_mtbf=-1).validate()
        with pytest.raises(ResilienceError):
            FaultModelSpec(msg_drop_prob=1.0).validate()
        with pytest.raises(ResilienceError):
            FaultModelSpec(stage_drop_prob=-0.1).validate()

    def test_any_enabled(self):
        assert not FaultModelSpec().any_enabled
        assert FaultModelSpec(node_mtbf=10.0).any_enabled
        assert FaultModelSpec(msg_drop_prob=0.1).any_enabled
        assert FaultModelSpec(stage_drop_prob=0.1).any_enabled

    def test_interarrival_means_match_mtbf(self):
        rng = np.random.default_rng(0)
        exp = FaultModelSpec(node_mtbf=100.0)
        draws = [exp.interarrival(100.0, rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.1)
        wb = FaultModelSpec(node_mtbf=100.0, node_dist="weibull", weibull_shape=1.5)
        draws = [wb.interarrival(100.0, rng) for _ in range(4000)]
        # Weibull is scaled so its mean equals the MTBF too.
        assert np.mean(draws) == pytest.approx(100.0, rel=0.1)


class TestResilienceSpec:
    def test_validate_cascades(self):
        ResilienceSpec().validate()  # everything off is fine
        with pytest.raises(ResilienceError):
            ResilienceSpec(retry=RetryPolicy(max_retries=-1)).validate()
        with pytest.raises(ResilienceError):
            ResilienceSpec(checkpoint=CheckpointSpec(every=-1)).validate()
