"""Shared scaffolding for the resilience suite: flaky apps, sim setups."""

from __future__ import annotations

from repro.apps import AppExit, ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.sim import SimEngine
from repro.sim.rng import RngRegistry
from repro.wms import Savanna, TaskSpec, WorkflowSpec


def make_sim(tasks, num_nodes=4, resilience=None, seed=0):
    """Engine + machine + Savanna over one allocation (no scheduler)."""
    eng = SimEngine()
    m = summit(num_nodes)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    wf = WorkflowSpec("W", tasks, [])
    sav = Savanna(eng, wf, alloc, rng=RngRegistry(seed), resilience=resilience)
    return eng, m, sav


def flaky_app_factory(
    fail_incarnations=1,
    crash_at=3,
    total_steps=10,
    dt=1.0,
    checkpoint_every=0,
):
    """App factory whose first *fail_incarnations* incarnations crash.

    The crash (exit 1) fires once the incarnation reaches step *crash_at*;
    later incarnations run clean.  Use ``fail_incarnations=10**9`` for an
    always-crashing task.
    """
    calls = {"n": 0}

    def make():
        incarnation = calls["n"]
        calls["n"] += 1

        def on_step(ctx, step):
            if incarnation < fail_incarnations and step >= crash_at:
                raise AppExit(1, "injected crash")

        return IterativeApp(
            ConstantModel(dt),
            total_steps=total_steps,
            on_step=on_step,
            checkpoint_every=checkpoint_every,
        )

    return make


def steady_app_factory(total_steps=10, dt=1.0):
    def make():
        return IterativeApp(ConstantModel(dt), total_steps=total_steps)

    return make


def make_task(name, factory, nprocs=8, **kw):
    return TaskSpec(name, factory, nprocs=nprocs, **kw)
