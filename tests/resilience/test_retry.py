"""Launcher-level retry/backoff: budgets, timing, deliberate-kill rules."""


from repro.resilience import ResilienceSpec, RetryPolicy
from repro.sim.rng import RngRegistry
from repro.wms import TaskState

from tests.resilience.conftest import flaky_app_factory, make_sim, make_task


def retry_spec(**kw):
    defaults = dict(max_retries=3, backoff_base=1.0, backoff_factor=2.0,
                    backoff_max=60.0, jitter=0.0)
    defaults.update(kw)
    return ResilienceSpec(retry=RetryPolicy(**defaults))


class TestRetry:
    def test_crashed_task_is_relaunched_and_completes(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=1, crash_at=3, total_steps=6))],
            resilience=retry_spec(),
        )
        sav.launch_workflow()
        eng.run()
        rec = sav.record("A")
        assert rec.incarnations == 2
        assert rec.current.state == TaskState.COMPLETED
        assert rec.history[0].state == TaskState.FAILED

    def test_budget_exhaustion(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=10**9, crash_at=1, total_steps=6))],
            resilience=retry_spec(max_retries=2),
        )
        sav.launch_workflow()
        eng.run()
        rec = sav.record("A")
        assert rec.incarnations == 3  # original + 2 retries
        assert rec.retry_exhausted
        assert rec.current.state == TaskState.FAILED
        exhausted = sav.trace.points_for(label="retry-exhausted:A")
        assert len(exhausted) == 1 and exhausted[0].category == "failure"

    def test_backoff_delays_follow_named_stream(self):
        seed = 7
        policy = RetryPolicy(max_retries=3, backoff_base=2.0, backoff_factor=2.0,
                             backoff_max=100.0, jitter=0.25)
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=10**9, crash_at=1, total_steps=6))],
            resilience=ResilienceSpec(retry=policy),
            seed=seed,
        )
        sav.launch_workflow()
        eng.run()
        scheduled = sav.trace.points_for(label="retry-scheduled:A")
        assert len(scheduled) == 3
        # Replaying the named stream reproduces the jittered delays exactly.
        replay = RngRegistry(seed).stream("resilience:backoff")
        expected = [policy.delay(k, replay) for k in range(3)]
        assert [p.meta["delay"] for p in scheduled] == expected
        assert expected[0] < expected[1] < expected[2]  # backoff grows

    def test_completion_resets_budget(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=2, crash_at=2, total_steps=5))],
            resilience=retry_spec(max_retries=3),
        )
        sav.launch_workflow()
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.COMPLETED
        assert rec.retries_used == 0
        assert not rec.retry_exhausted

    def test_orchestrated_kill_not_retried(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=100))],
            resilience=retry_spec(),
        )
        sav.launch_workflow()
        eng.run(until=5.0)
        eng.run_process(sav.stop_task("A", graceful=False))
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.FAILED  # non-graceful kill: 137
        assert rec.current.kill_cause == "orchestrated"
        assert rec.incarnations == 1
        assert rec.retries_used == 0

    def test_no_resilience_means_no_retries(self):
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=10**9, crash_at=1, total_steps=6))],
        )
        sav.launch_workflow()
        eng.run()
        assert sav.record("A").incarnations == 1
        assert sav.record("A").current.state == TaskState.FAILED

    def test_node_failure_death_is_retried_off_the_dead_node(self):
        from repro.cluster.failures import FailureInjector

        eng, m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=40), nprocs=8)],
            resilience=retry_spec(),
        )
        inj = FailureInjector(eng, m)
        inj.subscribe_failure(lambda node, _t: sav.handle_node_failure(node.node_id))
        sav.launch_workflow()
        eng.run(until=3.0)
        first_nodes = set(sav.record("A").current.resources.node_ids)
        dead = sorted(first_nodes)[0]
        inj.fail_node_at(5.0, dead)
        eng.run()
        rec = sav.record("A")
        assert rec.incarnations == 2
        assert rec.history[0].kill_cause == "node-failure"
        assert rec.current.state == TaskState.COMPLETED
        assert dead not in rec.current.resources.node_ids
