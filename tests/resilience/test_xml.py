"""<resilience> XML: parsing, round-trip, validation, bootstrap wiring."""

import pytest

from repro.errors import ResilienceError, XmlSpecError
from repro.resilience import (
    CheckpointSpec,
    FaultModelSpec,
    QuarantineSpec,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)
from repro.xmlspec import DyflowSpec, parse_dyflow_xml, write_dyflow_xml

from tests.resilience.conftest import flaky_app_factory, make_sim, make_task

FULL = """
<dyflow>
  <resilience>
    <retry max-retries="5" backoff-base="1.5" backoff-factor="3.0"
           backoff-max="90.0" jitter="0.1"/>
    <watchdog heartbeat-timeout="60.0" poll="5.0" kill-code="142"/>
    <quarantine failures="2" window="300.0" cooldown="900.0"/>
    <checkpoint every="10" resume="true"/>
    <faults node-mtbf="3600.0" node-dist="weibull" weibull-shape="1.2"
            node-repair-time="120.0" task-crash-mtbf="7200.0"
            task-hang-mtbf="0.0" msg-drop-prob="0.05" stage-drop-prob="0.02"/>
  </resilience>
</dyflow>
"""


class TestParse:
    def test_full_section(self):
        spec = parse_dyflow_xml(FULL)
        res = spec.resilience
        assert res.retry == RetryPolicy(max_retries=5, backoff_base=1.5,
                                        backoff_factor=3.0, backoff_max=90.0, jitter=0.1)
        assert res.watchdog == WatchdogSpec(heartbeat_timeout=60.0, poll=5.0, kill_code=142)
        assert res.quarantine == QuarantineSpec(failures=2, window=300.0, cooldown=900.0)
        assert res.checkpoint == CheckpointSpec(every=10, resume=True)
        assert res.faults == FaultModelSpec(
            node_mtbf=3600.0, node_dist="weibull", weibull_shape=1.2,
            node_repair_time=120.0, task_crash_mtbf=7200.0,
            task_hang_mtbf=0.0, msg_drop_prob=0.05, stage_drop_prob=0.02)

    def test_attribute_defaults(self):
        spec = parse_dyflow_xml("<dyflow><resilience><retry/><watchdog/></resilience></dyflow>")
        assert spec.resilience.retry == RetryPolicy()
        assert spec.resilience.watchdog == WatchdogSpec()
        assert spec.resilience.quarantine is None
        assert spec.resilience.faults is None

    def test_no_section_means_none(self):
        spec = parse_dyflow_xml("<dyflow/>")
        assert spec.resilience is None

    def test_duplicate_section_rejected(self):
        with pytest.raises(XmlSpecError, match="duplicate"):
            parse_dyflow_xml("<dyflow><resilience/><resilience/></dyflow>")

    def test_unknown_child_rejected(self):
        with pytest.raises(XmlSpecError, match="unexpected"):
            parse_dyflow_xml("<dyflow><resilience><retries/></resilience></dyflow>")

    def test_bad_boolean_rejected(self):
        with pytest.raises(XmlSpecError, match="not a boolean"):
            parse_dyflow_xml(
                '<dyflow><resilience><checkpoint resume="maybe"/></resilience></dyflow>')

    def test_unknown_attribute_rejected(self):
        with pytest.raises(XmlSpecError, match="max-retry"):
            parse_dyflow_xml(
                '<dyflow><resilience><retry max-retry="7"/></resilience></dyflow>')

    def test_non_numeric_attribute_rejected(self):
        with pytest.raises(XmlSpecError, match="not an integer"):
            parse_dyflow_xml(
                '<dyflow><resilience><retry max-retries="three"/></resilience></dyflow>')
        with pytest.raises(XmlSpecError, match="not a number"):
            parse_dyflow_xml(
                '<dyflow><resilience><watchdog poll="fast"/></resilience></dyflow>')

    def test_bad_values_rejected_at_parse_time(self):
        with pytest.raises(ResilienceError):
            parse_dyflow_xml(
                '<dyflow><resilience><retry max-retries="-2"/></resilience></dyflow>')
        with pytest.raises(ResilienceError):
            parse_dyflow_xml(
                '<dyflow><resilience><faults node-dist="zipf"/></resilience></dyflow>')


class TestRoundTrip:
    def test_full_roundtrip(self):
        spec = parse_dyflow_xml(FULL)
        again = parse_dyflow_xml(write_dyflow_xml(spec))
        assert again.resilience == spec.resilience

    def test_partial_roundtrip(self):
        spec = DyflowSpec(resilience=ResilienceSpec(
            retry=RetryPolicy(max_retries=1, jitter=0.0),
            checkpoint=CheckpointSpec(every=7, resume=False),
        ))
        again = parse_dyflow_xml(write_dyflow_xml(spec))
        assert again.resilience == spec.resilience

    def test_absent_spec_writes_no_section(self):
        text = write_dyflow_xml(DyflowSpec())
        assert "<resilience>" not in text


class TestBootstrap:
    def test_bootstrap_configures_launcher_and_orchestrator(self):
        from repro.xmlspec import configure_orchestrator

        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=5))]
        )
        assert sav.resilience is None
        orch = configure_orchestrator(sav, parse_dyflow_xml(FULL))
        res = sav.resilience
        assert res is not None and res.retry.max_retries == 5
        assert sav.retry_policy == res.retry
        assert sav.quarantine is not None
        assert orch.watchdog is not None
        assert orch.chaos is not None
        assert orch.chaos.model.node_mtbf == 3600.0

    def test_bootstrap_without_section_keeps_programmatic_spec(self):
        from repro.xmlspec import configure_orchestrator

        programmatic = ResilienceSpec(retry=RetryPolicy(max_retries=9))
        eng, _m, sav = make_sim(
            [make_task("A", flaky_app_factory(fail_incarnations=0, total_steps=5))],
            resilience=programmatic,
        )
        orch = configure_orchestrator(sav, parse_dyflow_xml("<dyflow/>"))
        assert sav.resilience == programmatic
        assert orch.watchdog is None  # programmatic spec had no watchdog
        assert orch.chaos is None
