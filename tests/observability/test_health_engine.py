"""The health engine: evaluation cadence, sensor feed, crash-state."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    HEALTH_TASK,
    AnomalySpec,
    HealthEngine,
    ObservabilitySpec,
    SloSpec,
)
from repro.observability.snapshot import MetricsSnapshotter
from repro.telemetry import Tracer
from repro.telemetry.events import JsonlEventLog


def make_engine(spec=None, aggregates=None, clock=None, log=None):
    tracer = Tracer(clock=clock or (lambda: 0.0), log=log)
    spec = spec or ObservabilitySpec(
        eval_every=5.0,
        slos=(SloSpec(metric="plan.response", stat="p95", op="LT", threshold=10.0),),
    )
    return HealthEngine(spec, tracer=tracer, workflow_id="WF", aggregates=aggregates), tracer


class TestCadence:
    def test_evaluates_on_the_spec_cadence_only(self):
        engine, _ = make_engine()
        engine.tick(0.0)
        assert engine.evaluations == 1
        engine.tick(1.0)
        engine.tick(4.9)
        assert engine.evaluations == 1  # not yet due
        engine.tick(5.0)
        assert engine.evaluations == 2

    def test_a_late_tick_runs_one_evaluation_not_a_backlog(self):
        engine, _ = make_engine()
        engine.tick(0.0)
        engine.tick(42.0)  # 8 periods late
        assert engine.evaluations == 2
        engine.tick(44.9)
        assert engine.evaluations == 2  # next due at 45

    def test_disabled_spec_is_inert(self):
        engine, _ = make_engine(spec=ObservabilitySpec(enabled=False))
        assert engine.tick(0.0) == []
        assert engine.evaluations == 0


class TestAlerting:
    def test_slo_violation_fires_and_lands_everywhere(self):
        log = JsonlEventLog()
        engine, tracer = make_engine(log=log)
        tracer.metrics.histogram("plan.response").observe(50.0)
        alerts = engine.tick(0.0)
        assert len(alerts) == 1 and alerts[0].kind == "firing"
        assert engine.alerts == alerts
        assert engine.firing_count() == 1
        assert engine.firing_sources() == ["slo:plan.response.p95"]
        # The transition is also a JSONL trace point and a gauge.
        points = [r for r in log.records(kind="point") if r["name"] == "health.alert"]
        assert len(points) == 1
        assert points[0]["attrs"]["kind"] == "firing"
        assert tracer.metrics.gauge("health.firing").value == 1.0

    def test_unobserved_metrics_never_alert(self):
        engine, _ = make_engine()
        assert engine.tick(0.0) == []
        assert engine.firing_count() == 0


class TestSensorFeed:
    def aggregates(self):
        return {"utilization": 0.75, "quarantine.count": 1.0}

    def test_nothing_is_published_without_a_bound_source(self):
        engine, _ = make_engine(aggregates=self.aggregates)
        engine.tick(0.0)
        assert engine.read_feed(0) == ([], 0)

    def test_bound_source_sees_aggregates_slo_values_and_alert_states(self):
        engine, tracer = make_engine(aggregates=self.aggregates)
        source = engine.bind_source()
        tracer.metrics.histogram("plan.response").observe(50.0)
        engine.tick(0.0)
        samples = source.poll(0.0)
        by_var = {s.var: s.value for s in samples}
        assert by_var["utilization"] == 0.75
        assert by_var["quarantine.count"] == 1.0
        assert by_var["plan.response.p95"] == 50.0
        assert by_var["alert.plan.response.p95"] == 1.0
        assert all(s.task == HEALTH_TASK and s.rank == -1 for s in samples)

    def test_var_filter_narrows_the_stream(self):
        engine, _ = make_engine(aggregates=self.aggregates)
        source = engine.bind_source(var="utilization")
        engine.tick(0.0)
        samples = source.poll(0.0)
        assert [s.var for s in samples] == ["utilization"]

    def test_sources_bound_late_start_at_the_feed_tip(self):
        engine, _ = make_engine(aggregates=self.aggregates)
        first = engine.bind_source()
        engine.tick(0.0)
        late = engine.bind_source()
        assert late.poll(0.0) == []  # nothing before its bind instant
        assert len(first.poll(0.0)) > 0

    def test_consumed_entries_are_trimmed_but_cursors_stay_absolute(self):
        engine, _ = make_engine(aggregates=self.aggregates)
        source = engine.bind_source()
        engine.tick(0.0)
        n = len(source.poll(0.0))
        assert n > 0
        engine.tick(5.0)  # trims the consumed prefix before publishing
        assert engine._base == n
        more = source.poll(5.0)
        assert len(more) == n  # same families every evaluation

    def test_cursor_state_round_trips(self):
        engine, _ = make_engine(aggregates=self.aggregates)
        source = engine.bind_source()
        engine.tick(0.0)
        source.poll(0.0)
        state = source.cursor_state()
        fresh = engine.bind_source()
        fresh.restore_cursor(state)
        assert fresh.poll(0.0) == []

    def test_read_lag_is_zero(self):
        engine, _ = make_engine()
        assert engine.bind_source().read_lag(None) == 0.0


class TestCrashState:
    def spec(self):
        return ObservabilitySpec(
            eval_every=5.0,
            slos=(SloSpec(metric="plan.response", stat="p95", op="LT", threshold=10.0),),
            anomalies=(AnomalySpec(metric="loop.ticks", stat="value", min_points=2),),
        )

    def test_state_round_trip_restores_everything(self):
        engine, tracer = make_engine(spec=self.spec())
        engine.bind_source()
        tracer.metrics.histogram("plan.response").observe(50.0)
        engine.tick(0.0)
        engine.tick(5.0)

        clone, _ = make_engine(spec=self.spec())
        clone.bind_source()
        clone.load_state_dict(engine.state_dict())
        assert clone.evaluations == engine.evaluations
        assert clone.alerts == engine.alerts
        assert clone.firing_count() == engine.firing_count()
        assert clone.state_dict() == engine.state_dict()

    def test_resumed_engine_does_not_double_fire(self):
        engine, tracer = make_engine(spec=self.spec())
        tracer.metrics.histogram("plan.response").observe(50.0)
        engine.tick(0.0)
        assert len(engine.alerts) == 1

        clone, clone_tracer = make_engine(spec=self.spec())
        clone_tracer.metrics.histogram("plan.response").observe(50.0)
        clone.load_state_dict(engine.state_dict())
        # Replaying the same instant is a no-op (next eval is at t=5).
        assert clone.tick(0.0) == []
        assert len(clone.alerts) == 1

    def test_spec_mismatch_is_rejected(self):
        engine, _ = make_engine(spec=self.spec())
        engine.tick(0.0)
        other, _ = make_engine()  # one SLO, zero anomaly detectors
        with pytest.raises(ObservabilityError, match="does not match"):
            other.load_state_dict(engine.state_dict())


class TestSnapshotter:
    def test_disabled_without_cadence_or_log(self):
        log = JsonlEventLog()
        reg = Tracer(clock=lambda: 0.0).metrics
        assert not MetricsSnapshotter(reg, None, 5.0).enabled
        assert not MetricsSnapshotter(reg, log, 0.0).enabled
        assert MetricsSnapshotter(reg, log, 5.0).enabled

    def test_emits_on_cadence_with_sequence_numbers(self):
        log = JsonlEventLog()
        tracer = Tracer(clock=lambda: 0.0, log=log)
        tracer.metrics.counter("plans.created").inc()
        snap = MetricsSnapshotter(tracer.metrics, log, 10.0)
        assert snap.maybe_snapshot(0.0)
        assert not snap.maybe_snapshot(3.0)
        assert snap.maybe_snapshot(10.0)
        records = log.records(kind="metrics")
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["metrics"]["plans.created"]["value"] == 1.0

    def test_state_round_trip_preserves_the_schedule(self):
        log = JsonlEventLog()
        reg = Tracer(clock=lambda: 0.0).metrics
        snap = MetricsSnapshotter(reg, log, 10.0)
        snap.maybe_snapshot(0.0)
        clone = MetricsSnapshotter(reg, log, 10.0)
        clone.load_state_dict(snap.state_dict())
        assert not clone.maybe_snapshot(5.0)  # next is still t=10
        assert clone.maybe_snapshot(10.0)
        assert clone.emitted == 2
