"""The ``top``-style console view: deterministic render over a stream."""

from repro.observability.top import main, render, summarize
from repro.observability.watch import WatchStream


def seeded_stream(path) -> str:
    ws = WatchStream(str(path))
    ws.emit("campaign-open", "campaign-open", 0.0, tenants=["alice", "bob"])
    ws.emit("admit", "admit:c1", 0.0, tenant="alice", cell_id="c1")
    ws.emit("admit", "admit:c2", 0.0, tenant="bob", cell_id="c2")
    ws.emit("cell-start", "cell-start:c1", 0.0, tenant="alice", cell_id="c1")
    ws.emit("cell-complete", "cell-complete:c1", 1.0, tenant="alice",
            cell_id="c1", attempts=1)
    ws.emit("cell-retry", "cell-retry:c2:1", 1.0, tenant="bob",
            cell_id="c2", attempt=1, fail_kind="error")
    ws.emit("cell-poison", "cell-poison:c2", 2.0, tenant="bob",
            cell_id="c2", attempts=2)
    return str(path)


class TestSummarize:
    def test_counts_per_tenant_sorted(self, tmp_path):
        from repro.observability.watch import read_watch_stream

        events = read_watch_stream(seeded_stream(tmp_path / "w.jsonl"))
        summary = summarize(events)
        assert list(summary) == ["alice", "bob"]
        assert summary["alice"]["cell-complete"] == 1
        assert summary["bob"]["cell-poison"] == 1
        assert summary["bob"]["cell-retry"] == 1

    def test_untenanted_events_are_skipped(self):
        assert summarize([{"kind": "campaign-open", "seq": 0}]) == {}


class TestRender:
    def test_render_is_a_pure_function_of_the_stream(self, tmp_path):
        from repro.observability.watch import read_watch_stream

        path = seeded_stream(tmp_path / "w.jsonl")
        events = read_watch_stream(path)
        assert render(events) == render(events)
        assert "alice" in render(events) and "poison" in render(events)

    def test_empty_stream_renders_placeholder(self):
        assert "(no tenant events)" in render([])


class TestCli:
    def test_main_renders_the_table(self, tmp_path, capsys):
        path = seeded_stream(tmp_path / "w.jsonl")
        assert main([path, "--tail", "3"]) == 0
        out = capsys.readouterr().out
        assert "tenant" in out and "events: 7" in out
        # The tail is bounded to the 3 most recent events.
        assert out.count("[") == 3
