"""Critical-path, slack, and bottleneck attribution over span trees."""

from repro.observability.analysis import (
    SpanView,
    as_views,
    bottlenecks,
    critical_path,
    exclusive_times,
    slowest_spans,
)
from repro.telemetry import Tracer


def view(name, span_id, start, end, parent=None, category="span"):
    return SpanView(
        name=name, category=category, span_id=span_id,
        parent_id=parent, start=start, end=end,
    )


def tree():
    """A two-root forest with nesting:

    root (0..10)
      ├── slow-child (0..7)
      │     └── grandchild (1..4)
      └── fast-child (7..9)
    other-root (0..5)
    """
    return [
        view("root", 1, 0.0, 10.0),
        view("slow-child", 2, 0.0, 7.0, parent=1),
        view("fast-child", 3, 7.0, 9.0, parent=1),
        view("grandchild", 4, 1.0, 4.0, parent=2),
        view("other-root", 5, 0.0, 5.0),
    ]


class TestCriticalPath:
    def test_follows_the_longest_child_chain(self):
        path = critical_path(tree())
        assert [e.name for e in path.entries] == ["root", "slow-child", "grandchild"]
        assert path.total == 10.0
        assert [e.depth for e in path.entries] == [0, 1, 2]

    def test_slack_is_headroom_inside_the_parent(self):
        path = critical_path(tree())
        by_name = {e.name: e for e in path.entries}
        assert by_name["root"].slack == 0.0  # roots have no parent
        assert by_name["slow-child"].slack == 10.0 - 7.0
        assert by_name["grandchild"].slack == 7.0 - 3.0

    def test_empty_input_yields_an_empty_falsy_path(self):
        path = critical_path([])
        assert not path
        assert path.entries == () and path.total == 0.0

    def test_duration_ties_break_by_start_then_span_id(self):
        spans = [
            view("late", 2, 1.0, 3.0),
            view("early", 1, 0.0, 2.0),
        ]
        path = critical_path(spans)
        assert path.entries[0].name == "early"

    def test_orphan_parent_ids_make_spans_roots(self):
        # A span whose parent never closed (or was sampled away) must not
        # vanish from the analysis; it is promoted to a root.
        orphan = view("orphan", 7, 0.0, 20.0, parent=999)
        path = critical_path(tree() + [orphan])
        assert path.entries[0].name == "orphan"
        assert path.total == 20.0

    def test_open_spans_from_a_tracer_are_excluded(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.start_span("never-closed")
        path = critical_path(tracer.spans)
        assert not path


class TestExclusiveTimes:
    def test_children_are_subtracted_from_the_parent(self):
        excl = exclusive_times(tree())
        assert excl[1] == 10.0 - (7.0 + 2.0)  # root minus its two children
        assert excl[2] == 7.0 - 3.0
        assert excl[4] == 3.0  # leaf keeps everything

    def test_overcovered_parents_floor_at_zero(self):
        spans = [
            view("parent", 1, 0.0, 2.0),
            view("child-a", 2, 0.0, 2.0, parent=1),
            view("child-b", 3, 0.0, 2.0, parent=1),
        ]
        assert exclusive_times(spans)[1] == 0.0


class TestBottlenecks:
    def test_groups_by_category_and_name_ranked_by_exclusive(self):
        spans = tree() + [view("root", 6, 20.0, 21.0)]  # second instance
        ranked = bottlenecks(spans, top_n=10)
        assert ranked[0]["name"] == "other-root"
        top = {(g["category"], g["name"]): g for g in ranked}
        root = top[("span", "root")]
        assert root["count"] == 2
        assert root["total"] == 10.0 + 1.0
        assert root["exclusive"] == 1.0 + 1.0  # 10-9 covered, plus the solo run
        assert root["max_exclusive"] == 1.0

    def test_top_n_truncates(self):
        assert len(bottlenecks(tree(), top_n=2)) == 2


class TestSlowestSpans:
    def test_ranked_by_duration_with_deterministic_ties(self):
        slow = slowest_spans(tree(), top_n=3)
        assert [s.name for s in slow] == ["root", "slow-child", "other-root"]


class TestAsViews:
    def test_sorts_and_passes_views_through(self):
        spans = tree()
        views = as_views(reversed(spans))
        assert [v.span_id for v in views] == [1, 2, 5, 4, 3]
        assert all(isinstance(v, SpanView) for v in views)

    def test_converts_closed_tracer_spans(self):
        t = [0.0]
        tracer = Tracer(clock=lambda: t[0])
        with tracer.span("tick", "loop"):
            t[0] = 2.5
        (v,) = as_views(tracer.spans)
        assert (v.name, v.category, v.start, v.end) == ("tick", "loop", 0.0, 2.5)
        assert v.duration == 2.5
