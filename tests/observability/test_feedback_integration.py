"""The closed loop, end to end: orchestrator health drives a policy.

Reuses the ``examples/health_feedback.py`` scenario: a pace policy's
stop-and-relaunch plans violate the ``plan.response p95 < 10 s`` SLO,
and a second policy bound to the HEALTH sensor stream answers with an
in-place RECONFIG on the simulation.
"""

import runpy
from pathlib import Path

import pytest

from repro.observability import HEALTH_TASK

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / "health_feedback.py"


@pytest.fixture(scope="module")
def finished_run():
    ns = runpy.run_path(str(EXAMPLE))
    engine, launcher, orch = ns["build"]()
    launcher.launch_workflow()
    orch.start(stop_when=launcher.all_idle)
    engine.run(until=10_000)
    orch.finalize_telemetry()
    return engine, launcher, orch


class TestHealthFeedbackLoop:
    def test_the_slo_fires(self, finished_run):
        _, _, orch = finished_run
        firing = [a for a in orch.health.alerts if a.kind == "firing"]
        assert firing, "the plan.response SLO never fired"
        assert firing[0].source == "slo:plan.response.p95"

    def test_health_samples_reach_the_monitor_stage(self, finished_run):
        _, _, orch = finished_run
        updates = [u for u in orch.server.history if u.task == HEALTH_TASK]
        assert updates, "no HEALTH sensor data reached the Monitor stage"
        assert all(u.var == "alert.plan.response.p95" for u in updates)
        assert any(u.value == 1.0 for u in updates), "the alert stream never went high"

    def test_a_policy_reacts_with_an_in_place_reconfig(self, finished_run):
        _, _, orch = finished_run
        reconfigs = [
            p for p in orch.plans if any(op.op == "reconfig_task" for op in p.ops)
        ]
        assert reconfigs, "no policy reacted to the health stream"
        assert all(p.execution_end is not None for p in reconfigs)

    def test_the_feedback_happens_after_the_first_violation(self, finished_run):
        _, _, orch = finished_run
        first_fire = min(a.time for a in orch.health.alerts if a.kind == "firing")
        reconfigs = [
            p for p in orch.plans if any(op.op == "reconfig_task" for op in p.ops)
        ]
        assert all(p.created >= first_fire for p in reconfigs)

    def test_the_workflow_still_finishes(self, finished_run):
        _, launcher, _ = finished_run
        assert launcher.all_idle()
        assert all(rec.incarnations > 0 for rec in launcher.records.values())
