"""WatchStream: durable, idempotent, seekable campaign event JSONL."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.observability.watch import EVENT_KINDS, WatchStream, read_watch_stream


class TestInMemory:
    def test_seq_is_dense_and_monotonic(self):
        ws = WatchStream()
        ws.emit("admit", "admit:c0", 0.0, tenant="a")
        ws.emit("cell-start", "cell-start:c0", 0.0, tenant="a")
        ws.emit("cell-complete", "cell-complete:c0", 1.0, tenant="a")
        assert [e["seq"] for e in ws.read()] == [0, 1, 2]
        assert ws.seq == 3

    def test_duplicate_key_dedups_without_appending(self):
        ws = WatchStream()
        assert ws.emit("admit", "admit:c0", 0.0) is True
        assert ws.emit("admit", "admit:c0", 5.0) is False
        assert len(ws.read()) == 1
        assert ws.read()[0]["time"] == 0.0

    def test_unknown_kind_rejected(self):
        ws = WatchStream()
        with pytest.raises(ObservabilityError, match="unknown watch event kind"):
            ws.emit("made-up", "k", 0.0)

    def test_reserved_payload_fields_rejected(self):
        ws = WatchStream()
        with pytest.raises(ObservabilityError, match="reserved"):
            ws.emit("admit", "k", 0.0, seq=99)

    def test_read_since_is_a_cursor(self):
        ws = WatchStream()
        for i in range(5):
            ws.emit("admit", f"admit:c{i}", float(i))
        assert [e["seq"] for e in ws.read(since=3)] == [3, 4]
        with pytest.raises(ObservabilityError):
            ws.read(since=-1)

    def test_every_documented_kind_is_accepted(self):
        ws = WatchStream()
        for i, kind in enumerate(EVENT_KINDS):
            assert ws.emit(kind, f"{kind}:{i}", float(i))


class TestDurability:
    def test_reopen_resumes_seq_and_dedup_index(self, tmp_path):
        path = str(tmp_path / "watch.jsonl")
        first = WatchStream(path)
        first.emit("admit", "admit:c0", 0.0, tenant="a")
        first.emit("cell-complete", "cell-complete:c0", 1.0, tenant="a")
        first.close()

        second = WatchStream(path)
        # Replay of an already-committed key dedups ...
        assert second.emit("admit", "admit:c0", 0.0, tenant="a") is False
        # ... and fresh events continue the sequence.
        assert second.emit("admit", "admit:c1", 2.0, tenant="a") is True
        assert [e["seq"] for e in second.read()] == [0, 1, 2]
        second.close()

    def test_torn_tail_is_discarded_on_reopen(self, tmp_path):
        path = str(tmp_path / "watch.jsonl")
        ws = WatchStream(path)
        ws.emit("admit", "admit:c0", 0.0)
        ws.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq":1,"kind":"cell-start","key":"cell-sta')  # no newline

        reopened = WatchStream(path)
        assert [e["key"] for e in reopened.read()] == ["admit:c0"]
        # The torn bytes were truncated away; the key is re-emittable.
        assert reopened.emit("cell-start", "cell-start:c0", 1.0) is True
        reopened.close()
        assert [e["kind"] for e in read_watch_stream(path)] == [
            "admit", "cell-start",
        ]

    def test_read_watch_stream_never_writes(self, tmp_path):
        path = str(tmp_path / "watch.jsonl")
        ws = WatchStream(path)
        ws.emit("admit", "admit:c0", 0.0)
        ws.close()
        torn = '{"seq":1,"kind":"admit","key":"adm'
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(torn)
        before = open(path, encoding="utf-8").read()
        events = read_watch_stream(path)
        assert [e["key"] for e in events] == ["admit:c0"]
        assert open(path, encoding="utf-8").read() == before

    def test_corrupt_committed_line_raises(self, tmp_path):
        path = str(tmp_path / "watch.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        with pytest.raises(ObservabilityError, match="corrupt watch stream"):
            read_watch_stream(path)

    def test_render_is_canonical_jsonl(self, tmp_path):
        path = str(tmp_path / "watch.jsonl")
        ws = WatchStream(path)
        ws.emit("admit", "admit:c0", 0.0, tenant="a", cell_id="c0")
        ws.emit("reject", "reject:c1:queue-full", 1.0, tenant="b",
                reason="queue-full")
        ws.close()
        rendered = ws.render()
        # On-disk bytes equal the in-memory canonical render.
        assert open(path, encoding="utf-8").read() == rendered
        for line in rendered.splitlines():
            event = json.loads(line)
            assert line == json.dumps(event, sort_keys=True,
                                      separators=(",", ":"))
