"""Per-node utilization reconstruction — live inputs and JSONL events."""

from repro.observability.utilization import (
    BusySegment,
    build_utilization,
    quarantine_intervals,
    utilization_from_events,
)


def seg(node, cores, start, end, task="T"):
    return BusySegment(node_id=node, cores=cores, start=start, end=end, task=task)


class TestQuarantineIntervals:
    def test_pairs_quarantined_with_released(self):
        history = [
            (10.0, "n1", "quarantined"),
            (25.0, "n1", "released"),
            (30.0, "n2", "quarantined"),
            (40.0, "n2", "released"),
        ]
        out = quarantine_intervals(history, end=100.0)
        assert out == {"n1": [(10.0, 25.0)], "n2": [(30.0, 40.0)]}

    def test_unreleased_nodes_clamp_to_the_horizon(self):
        out = quarantine_intervals([(10.0, "n1", "quarantined")], end=60.0)
        assert out == {"n1": [(10.0, 60.0)]}

    def test_mapping_shaped_events_are_accepted(self):
        history = [
            {"time": 5.0, "node_id": "n3", "kind": "quarantined"},
            {"time": 9.0, "node_id": "n3", "kind": "released"},
        ]
        assert quarantine_intervals(history, end=50.0) == {"n3": [(5.0, 9.0)]}

    def test_object_shaped_events_are_accepted(self):
        class Ev:
            def __init__(self, time, node_id, kind):
                self.time, self.node_id, self.kind = time, node_id, kind

        history = [Ev(1.0, "n4", "quarantined"), Ev(2.0, "n4", "released")]
        assert quarantine_intervals(history, end=10.0) == {"n4": [(1.0, 2.0)]}

    def test_release_without_open_interval_is_ignored(self):
        assert quarantine_intervals([(3.0, "n5", "released")], end=10.0) == {}


class TestBuildUtilization:
    def test_core_seconds_and_aggregate(self):
        report = build_utilization(
            {"n1": 4, "n2": 4},
            [seg("n1", 4, 0.0, 10.0), seg("n2", 2, 0.0, 5.0)],
            start=0.0, end=10.0,
        )
        assert report.total_cores == 8
        assert report.busy_core_seconds == 4 * 10 + 2 * 5
        assert report.utilization == 50.0 / 80.0
        assert report.horizon == 10.0
        n1, n2 = report.nodes
        assert (n1.node_id, n1.utilization) == ("n1", 1.0)
        assert (n2.node_id, n2.utilization) == ("n2", 10.0 / 40.0)

    def test_segments_are_clipped_to_the_window(self):
        report = build_utilization(
            {"n1": 2}, [seg("n1", 2, -5.0, 15.0)], start=0.0, end=10.0
        )
        assert report.busy_core_seconds == 2 * 10

    def test_timeline_steps_track_concurrent_tasks(self):
        report = build_utilization(
            {"n1": 8},
            [seg("n1", 2, 0.0, 10.0, "A"), seg("n1", 4, 5.0, 10.0, "B")],
            start=0.0, end=12.0,
        )
        (n1,) = report.nodes
        assert n1.timeline == ((0.0, 5.0, 2), (5.0, 10.0, 6), (10.0, 12.0, 0))

    def test_quarantined_seconds_accrue_per_node(self):
        report = build_utilization(
            {"n1": 2, "n2": 2}, [], start=0.0, end=10.0,
            quarantine_history=[(2.0, "n2", "quarantined"), (6.0, "n2", "released")],
        )
        assert report.nodes[0].quarantined_seconds == 0.0
        assert report.nodes[1].quarantined_seconds == 4.0

    def test_empty_inputs_degrade_to_zero(self):
        report = build_utilization({}, [], start=0.0, end=0.0)
        assert report.total_cores == 0 and report.utilization == 0.0
        assert report.nodes == ()


class TestUtilizationFromEvents:
    @staticmethod
    def point(time, name, **attrs):
        return {"kind": "point", "time": time, "name": name, "attrs": attrs}

    def records(self):
        return [
            self.point(0.0, "run.allocation", nodes={"n1": 4, "n2": 4}),
            self.point(0.0, "wms.task-running",
                       instance="Sim-0", task="Sim", nodes={"n1": 4}),
            self.point(0.0, "wms.task-running",
                       instance="An-0", task="Analysis", nodes={"n2": 2}),
            self.point(5.0, "wms.task-end", instance="An-0", task="Analysis"),
            self.point(10.0, "wms.task-end", instance="Sim-0", task="Sim"),
        ]

    def test_rebuilds_the_same_report_as_explicit_segments(self):
        from_events = utilization_from_events(self.records())
        explicit = build_utilization(
            {"n1": 4, "n2": 4},
            [seg("n1", 4, 0.0, 10.0, "Sim"), seg("n2", 2, 0.0, 5.0, "Analysis")],
            start=0.0, end=10.0,
        )
        assert from_events == explicit

    def test_unmatched_running_tasks_clamp_to_the_horizon(self):
        records = self.records()[:-1]  # Sim never ends
        report = utilization_from_events(records, end=20.0)
        n1 = report.nodes[0]
        assert n1.busy_core_seconds == 4 * 20.0

    def test_quarantine_history_points_feed_the_intervals(self):
        records = self.records() + [
            self.point(10.0, "run.quarantine-history",
                       events=[[2.0, "n2", "quarantined"], [7.0, "n2", "released"]]),
        ]
        report = utilization_from_events(records)
        assert report.nodes[1].quarantined_seconds == 5.0

    def test_non_point_records_are_ignored(self):
        records = [{"kind": "span", "time": 99.0, "name": "x"}] + self.records()
        assert utilization_from_events(records).end == 10.0
