"""FleetHealthEngine: deterministic cross-tenant rollups and export."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import parse_openmetrics
from repro.observability.fleet import FleetHealthEngine
from repro.observability.slo import HealthAlert
from repro.observability.spec import FleetSpec


def busy_fleet() -> FleetHealthEngine:
    eng = FleetHealthEngine(FleetSpec(top_k=2))
    for latency in (1.0, 2.0, 4.0):
        eng.record_cell("alice", latency)
    eng.record_cell("bob", 10.0, failures=2)
    eng.record_cell("bob", 0.0, status="poisoned")
    eng.record_rejection("bob")
    eng.record_trip("bob")
    eng.ingest_alert("bob", HealthAlert(
        time=3.0, source="slo:x", kind="firing", severity="warning",
        value=9.0, threshold=5.0, message="x too high",
    ))
    eng.record_cell("carol", 1.5)
    return eng


class TestRollup:
    def test_rollup_orders_tenants_and_counts(self):
        roll = busy_fleet().rollup()
        assert list(roll["tenants"]) == ["alice", "bob", "carol"]
        bob = roll["tenants"]["bob"]
        assert bob["completed"] == 1.0
        assert bob["poisoned"] == 1.0
        assert bob["failures"] == 2.0
        assert bob["rejected"] == 1.0
        assert bob["trips"] == 1.0
        assert bob["alerts_firing"] == 1.0
        assert len(bob["alerts"]) == 1

    def test_latency_percentiles_per_tenant(self):
        roll = busy_fleet().rollup()
        lat = roll["tenants"]["alice"]["latency"]
        assert lat["count"] == 3
        assert 0.0 < lat["p50"] <= lat["p95"]

    def test_noisy_ranking_is_topk_and_deterministic(self):
        eng = busy_fleet()
        noisy = eng.noisy_tenants()
        assert len(noisy) == 2  # spec.top_k
        assert noisy[0][0] == "bob"  # poisoned+trip+failures+alert+reject
        # Quiet tenants tie at zero; id order breaks the tie.
        assert [t for t, _ in eng.noisy_tenants(k=3)] == ["bob", "alice", "carol"]

    def test_unknown_cell_status_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown cell status"):
            FleetHealthEngine().record_cell("a", 1.0, status="vanished")


class TestExport:
    def test_openmetrics_is_tenant_labeled_and_parseable(self):
        text = busy_fleet().render_openmetrics()
        families = parse_openmetrics(text)
        assert 'tenant="alice"' in text and 'tenant="bob"' in text
        counts = {
            s["labels"]["tenant"]: s["value"]
            for s in families["dyflow_fleet_cell_completed"]["samples"]
        }
        assert counts == {"alice": 3.0, "bob": 1.0, "carol": 1.0}

    def test_render_is_deterministic(self):
        assert busy_fleet().render_openmetrics() == busy_fleet().render_openmetrics()


class TestPersistence:
    def test_state_roundtrip_is_lossless(self):
        eng = busy_fleet()
        restored = FleetHealthEngine(FleetSpec(top_k=2))
        restored.load_state_dict(eng.state_dict())
        assert restored.rollup() == eng.rollup()
        assert restored.render_openmetrics() == eng.render_openmetrics()
        assert restored.state_dict() == eng.state_dict()

    def test_restored_engine_keeps_accumulating(self):
        eng = busy_fleet()
        restored = FleetHealthEngine(FleetSpec(top_k=2))
        restored.load_state_dict(eng.state_dict())
        restored.record_cell("alice", 8.0)
        eng.record_cell("alice", 8.0)
        assert restored.rollup() == eng.rollup()
