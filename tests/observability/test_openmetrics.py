"""OpenMetrics rendering kept honest by the strict parser."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.observability.openmetrics import (
    escape_label_value,
    parse_openmetrics,
    render_labeled_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
    write_openmetrics,
)
from repro.telemetry import MetricsRegistry


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("plans.created").inc(3)
    reg.gauge("health.firing").set(1.0)
    hist = reg.histogram("stage.monitor.latency")
    for v in (0.001, 0.004, 0.02, 0.2, 1.5):
        hist.observe(v)
    return reg


class TestRenderer:
    def test_round_trips_through_the_strict_parser(self):
        reg = populated_registry()
        families = parse_openmetrics(render_openmetrics(reg))
        counter = families["dyflow_plans_created"]
        assert counter["type"] == "counter"
        assert counter["samples"][0]["value"] == 3.0
        gauge = families["dyflow_health_firing"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"][0]["value"] == 1.0
        hist = families["dyflow_stage_monitor_latency"]
        assert hist["type"] == "histogram"
        inf_bucket = [
            s for s in hist["samples"]
            if s["name"].endswith("_bucket") and s["labels"]["le"] == "+Inf"
        ]
        assert inf_bucket[0]["value"] == 5.0

    def test_quantile_family_rides_along_as_a_gauge(self):
        families = parse_openmetrics(render_openmetrics(populated_registry()))
        q = families["dyflow_stage_monitor_latency_quantile"]
        assert q["type"] == "gauge"
        labels = {s["labels"]["quantile"] for s in q["samples"]}
        assert labels == {"0.5", "0.95", "0.99"}

    def test_output_is_deterministic(self):
        assert render_openmetrics(populated_registry()) == render_openmetrics(
            populated_registry()
        )

    def test_empty_registry_is_just_eof(self):
        text = render_openmetrics(MetricsRegistry())
        assert text == "# EOF\n"
        assert parse_openmetrics(text) == {}

    def test_write_openmetrics_creates_a_parseable_file(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        assert write_openmetrics(path, populated_registry()) == path
        with open(path, encoding="utf-8") as fh:
            parse_openmetrics(fh.read())

    def test_sanitize_prefixes_and_replaces_illegal_chars(self):
        assert sanitize_metric_name("stage.monitor.latency") == "dyflow_stage_monitor_latency"
        assert sanitize_metric_name("9lives") == "dyflow__9lives"


class TestStrictParser:
    GOOD = (
        "# TYPE dyflow_x counter\n"
        "dyflow_x_total 2\n"
        "# EOF\n"
    )

    def test_accepts_the_minimal_document(self):
        families = parse_openmetrics(self.GOOD)
        assert families["dyflow_x"]["samples"][0]["value"] == 2.0

    def test_rejects_missing_eof(self):
        with pytest.raises(ObservabilityError, match="EOF"):
            parse_openmetrics("# TYPE dyflow_x counter\ndyflow_x_total 2\n")

    def test_rejects_eof_before_the_end(self):
        with pytest.raises(ObservabilityError, match="before end"):
            parse_openmetrics("# EOF\ndyflow_x 1\n# EOF\n")

    def test_rejects_samples_before_their_type(self):
        with pytest.raises(ObservabilityError, match="no TYPE"):
            parse_openmetrics("dyflow_x_total 2\n# EOF\n")

    def test_rejects_blank_lines(self):
        with pytest.raises(ObservabilityError, match="blank"):
            parse_openmetrics("# TYPE dyflow_x counter\n\ndyflow_x_total 2\n# EOF\n")

    def test_rejects_redeclared_families(self):
        text = "# TYPE dyflow_x counter\n# TYPE dyflow_x counter\n# EOF\n"
        with pytest.raises(ObservabilityError, match="re-declared"):
            parse_openmetrics(text)

    def test_rejects_wrong_suffix_for_type(self):
        text = "# TYPE dyflow_x counter\ndyflow_x 2\n# EOF\n"
        with pytest.raises(ObservabilityError, match="suffix"):
            parse_openmetrics(text)

    def test_rejects_malformed_labels(self):
        text = '# TYPE dyflow_x gauge\ndyflow_x{oops} 2\n# EOF\n'
        with pytest.raises(ObservabilityError, match="labels"):
            parse_openmetrics(text)

    def test_rejects_bad_sample_values(self):
        text = "# TYPE dyflow_x gauge\ndyflow_x banana\n# EOF\n"
        with pytest.raises(ObservabilityError, match="value"):
            parse_openmetrics(text)

    def test_histogram_requires_an_inf_bucket(self):
        text = (
            "# TYPE dyflow_h histogram\n"
            'dyflow_h_bucket{le="1"} 1\n'
            "dyflow_h_count 1\n"
            "dyflow_h_sum 0.5\n"
            "# EOF\n"
        )
        with pytest.raises(ObservabilityError, match=r"\+Inf"):
            parse_openmetrics(text)

    def test_histogram_buckets_must_be_cumulative(self):
        text = (
            "# TYPE dyflow_h histogram\n"
            'dyflow_h_bucket{le="1"} 3\n'
            'dyflow_h_bucket{le="+Inf"} 2\n'
            "# EOF\n"
        )
        with pytest.raises(ObservabilityError, match="cumulative"):
            parse_openmetrics(text)

    def test_histogram_count_must_match_the_inf_bucket(self):
        text = (
            "# TYPE dyflow_h histogram\n"
            'dyflow_h_bucket{le="+Inf"} 2\n'
            "dyflow_h_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(ObservabilityError, match="_count"):
            parse_openmetrics(text)

    def test_inf_values_parse(self):
        text = "# TYPE dyflow_x gauge\ndyflow_x +Inf\n# EOF\n"
        value = parse_openmetrics(text)["dyflow_x"]["samples"][0]["value"]
        assert math.isinf(value)


class TestLabeledFamilies:
    """render_labeled_openmetrics + the strict parser, round-tripped."""

    def fleet_registries(self):
        regs = {}
        for tenant, n in (("alice", 2), ("bob", 5)):
            reg = MetricsRegistry()
            reg.counter("cells.done").inc(n)
            reg.gauge("queue.depth").set(n / 2)
            for i in range(n):
                reg.histogram("cell.latency").observe(0.5 + i)
            regs[tenant] = reg
        return regs

    def test_counter_and_gauge_samples_carry_the_label(self):
        text = render_labeled_openmetrics(self.fleet_registries())
        families = parse_openmetrics(text)
        done = {
            s["labels"]["tenant"]: s["value"]
            for s in families["dyflow_cells_done"]["samples"]
        }
        assert done == {"alice": 2.0, "bob": 5.0}
        assert families["dyflow_cells_done"]["type"] == "counter"

    def test_histogram_buckets_validate_per_label_series(self):
        # Each tenant's le-buckets are independently cumulative; the
        # strict parser must group by the non-le labels, not concatenate.
        text = render_labeled_openmetrics(self.fleet_registries())
        families = parse_openmetrics(text)
        counts = {
            s["labels"]["tenant"]: s["value"]
            for s in families["dyflow_cell_latency"]["samples"]
            if s["name"] == "dyflow_cell_latency_count"
        }
        assert counts == {"alice": 2.0, "bob": 5.0}

    def test_label_escaping_roundtrips(self):
        # Tenant ids with every escapable character: backslash, quote,
        # newline, and a non-ASCII codepoint (UTF-8 passes through raw).
        hostile = ['back\\slash', 'quo"te', 'new\nline', 'ünïcødé-μ']
        regs = {}
        for i, tenant in enumerate(hostile):
            reg = MetricsRegistry()
            reg.counter("c").inc(i + 1)
            regs[tenant] = reg
        text = render_labeled_openmetrics(regs)
        families = parse_openmetrics(text)
        seen = {
            s["labels"]["tenant"]: s["value"]
            for s in families["dyflow_c"]["samples"]
        }
        assert seen == {t: float(i + 1) for i, t in enumerate(hostile)}

    def test_escape_unescape_are_inverse(self):
        tricky = 'a\\nb'  # escaped: a\\nb -> must NOT decode as backslash+newline
        rendered = escape_label_value(tricky)
        assert rendered == 'a\\\\nb'
        regs = {tricky: MetricsRegistry()}
        regs[tricky].counter("c").inc()
        families = parse_openmetrics(render_labeled_openmetrics(regs))
        [sample] = families["dyflow_c"]["samples"]
        assert sample["labels"]["tenant"] == tricky

    def test_unknown_escape_sequence_rejected(self):
        text = '# TYPE dyflow_c counter\ndyflow_c_total{t="a\\qb"} 1\n# EOF\n'
        with pytest.raises(ObservabilityError, match="bad escape"):
            parse_openmetrics(text)

    def test_render_is_deterministic_across_dict_order(self):
        regs = self.fleet_registries()
        shuffled = {k: regs[k] for k in reversed(list(regs))}
        assert render_labeled_openmetrics(regs) == render_labeled_openmetrics(shuffled)
