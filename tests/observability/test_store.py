"""RunStore: signac-style indexing and queries over committed run JSON.

The regression-query acceptance test runs over the two committed
``BENCH_*.json`` fixtures in ``tests/observability/data`` — real
artifacts of the uniform ``{"name", "config", "metrics"}`` schema every
benchmark emits.
"""

import json
import pathlib

import pytest

from repro.errors import ObservabilityError
from repro.observability.store import (
    RunStore,
    flatten_metrics,
    load_record,
    main,
)

DATA = pathlib.Path(__file__).parent / "data"
REPO = pathlib.Path(__file__).parent.parent.parent


def seeded_store() -> RunStore:
    store = RunStore()
    assert store.index(str(DATA)) == 2
    return store


class TestFlatten:
    def test_nested_numeric_leaves_become_dotted_keys(self):
        flat = flatten_metrics({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert flat == {"a.b": 1.0, "a.c.d": 2.5, "e": 3.0}

    def test_bools_and_strings_are_skipped(self):
        assert flatten_metrics({"ok": True, "note": "hi", "x": 1}) == {"x": 1.0}


class TestIndexing:
    def test_bench_files_classify_and_get_statepoint_ids(self):
        store = seeded_store()
        records = store.records()
        assert [r.name for r in records] == ["fleet_candidate", "fleet_seed"]
        for r in records:
            assert r.kind == "bench"
            name, _, digest = r.record_id.rpartition("-")
            assert name == r.name and len(digest) == 8

    def test_record_id_is_content_addressed(self, tmp_path):
        # Same name + config => same id regardless of where the file is.
        doc = json.loads((DATA / "BENCH_fleet_seed.json").read_text())
        copy = tmp_path / "elsewhere.json"
        copy.write_text(json.dumps(doc))
        original = load_record(str(DATA / "BENCH_fleet_seed.json"))
        relocated = load_record(str(copy))
        assert original.record_id == relocated.record_id

    def test_non_run_json_is_skipped(self, tmp_path):
        (tmp_path / "noise.json").write_text('{"hello": "world"}')
        (tmp_path / "broken.json").write_text("{")
        store = RunStore()
        assert store.index(str(tmp_path)) == 0

    def test_run_report_documents_index_too(self, tmp_path):
        report = {
            "schema": "dyflow-run-report/1",
            "meta": {"workflow": "gray-scott", "machine": "summit"},
            "metrics": {"plan.response": {"p95": 41.0}},
        }
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        record = load_record(str(path))
        assert record.kind == "report"
        assert record.name == "gray-scott"
        assert record.metrics["metrics.plan.response.p95"] == 41.0

    def test_repo_benchmarks_dir_indexes_committed_bench(self):
        store = RunStore()
        count = store.index(str(REPO / "benchmarks"))
        assert count >= 1  # BENCH_core_throughput.json is committed
        assert any(r.name == "core_throughput" for r in store.records())


class TestQueries:
    def test_query_compares_flattened_metrics(self):
        store = seeded_store()
        slow = store.query("metrics.cell_latency.p95", "GT", 10.0)
        assert [r.name for r in slow] == ["fleet_candidate"]
        with pytest.raises(ObservabilityError, match="op must be one of"):
            store.query("metrics.cell_latency.p95", "~=", 1.0)

    def test_metric_keys_are_the_union(self):
        keys = seeded_store().metric_keys()
        assert "metrics.cell_latency.p95" in keys
        assert "metrics.cells_per_sec" in keys

    def test_p95_regression_over_committed_bench_files(self):
        """Acceptance: the store answers a p95-regression query over the
        two committed BENCH fixtures."""
        store = seeded_store()
        rows = store.regressions("metrics.cell_latency.p95",
                                 tolerance_pct=5.0)
        [row] = rows
        assert row["record_id"].startswith("fleet_candidate-")
        assert row["baseline"].startswith("fleet_seed-")
        assert row["value"] == 12.6 and row["baseline_value"] == 9.4
        assert row["delta_pct"] == pytest.approx(34.04, abs=0.01)
        # Inside tolerance -> no regression reported.
        assert store.regressions("metrics.cell_latency.p95",
                                 tolerance_pct=50.0) == []

    def test_lower_is_worse_direction_flips_the_baseline(self):
        store = seeded_store()
        rows = store.regressions("metrics.cells_per_sec",
                                 direction="lower-is-worse")
        [row] = rows
        assert row["record_id"].startswith("fleet_candidate-")
        assert row["delta_pct"] > 0

    def test_explicit_baseline_record(self):
        store = seeded_store()
        seed_id = next(r.record_id for r in store.records()
                       if r.name == "fleet_seed")
        rows = store.regressions("metrics.cell_latency.p95",
                                 baseline=seed_id)
        assert len(rows) == 1
        with pytest.raises(ObservabilityError, match="no run record"):
            store.regressions("metrics.cell_latency.p95", baseline="nope")


class TestCli:
    def test_list_and_keys(self, capsys):
        assert main([str(DATA), "--list", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in listed] == ["fleet_candidate", "fleet_seed"]
        assert main([str(DATA), "--keys", "--json"]) == 0
        keys = json.loads(capsys.readouterr().out)
        assert "metrics.cell_latency.p95" in keys

    def test_query_cli(self, capsys):
        assert main([str(DATA), "--query", "metrics.cell_latency.p95",
                     "GT", "10", "--json"]) == 0
        hits = json.loads(capsys.readouterr().out)
        assert len(hits) == 1 and hits[0]["value"] == 12.6

    def test_regressions_cli(self, capsys):
        assert main([str(DATA), "--regressions", "metrics.cell_latency.p95",
                     "--tolerance", "5", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["record_id"].startswith("fleet_candidate-")
