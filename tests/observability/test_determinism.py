"""Determinism: same seed ⇒ byte-identical reports, identical alerts.

The crash-recovery half re-runs the Gray-Scott scenario with controller
crashes and verifies the resumed run emits *exactly* the alert sequence
of an uninterrupted reference — the health state rides the journal, so
WAL replay must never double-fire an alert.
"""

import pytest

from repro.experiments import run_gray_scott_experiment
from repro.journal import JournalSpec, scenario_fingerprint
from repro.observability import AnomalySpec, ObservabilitySpec, SloSpec
from repro.telemetry import TelemetrySpec


def obs_spec(**kw):
    return ObservabilitySpec(
        eval_every=5.0,
        slos=(
            SloSpec(metric="plan.response", stat="p95", op="LT", threshold=10.0),
        ),
        anomalies=(
            AnomalySpec(metric="stage.monitor.latency", stat="p95", window=20, z=4.0),
        ),
        **kw,
    )


def run(tmp_dir=None, **kw):
    spec = obs_spec(
        report_path=str(tmp_dir / "report.md"),
        report_json_path=str(tmp_dir / "report.json"),
        openmetrics_path=str(tmp_dir / "metrics.prom"),
    ) if tmp_dir is not None else obs_spec()
    return run_gray_scott_experiment("summit", use_dyflow=True,
                                     telemetry=TelemetrySpec(enabled=True),
                                     observability=spec, **kw)


class TestSameSeedDeterminism:
    def test_reports_are_byte_identical(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        run(a, seed=0)
        run(b, seed=0)
        for name in ("report.md", "report.json", "metrics.prom"):
            assert (a / name).read_bytes() == (b / name).read_bytes(), (
                f"{name} differs across same-seed runs"
            )

    def test_alert_sequences_are_identical(self):
        first = run().meta["health_alerts"]
        second = run().meta["health_alerts"]
        assert first, "the scenario never produced a health alert"
        assert first == second


class TestCrashResumeDeterminism:
    CRASH_TIMES = (300.0, 700.0)

    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        journal = JournalSpec(
            dir=str(tmp_path_factory.mktemp("wal") / "journal"), fsync="off"
        )
        ref = run(crash_times=self.CRASH_TIMES, ignore_crash_requests=True)
        res = run(journal=journal, crash_times=self.CRASH_TIMES)
        return ref, res

    def test_resumed_run_emits_exactly_the_reference_alerts(self, pair):
        ref, res = pair
        assert res.meta["crashes"] == list(self.CRASH_TIMES)
        assert ref.meta["health_alerts"], "reference run produced no alerts"
        assert res.meta["health_alerts"] == ref.meta["health_alerts"]

    def test_no_alert_double_fires_across_wal_replay(self, pair):
        _, res = pair
        alerts = res.meta["health_alerts"]
        identities = [(a.time, a.source, a.kind) for a in alerts]
        assert len(identities) == len(set(identities))
        # Transitions per source must alternate firing/clearing.
        by_source = {}
        for a in alerts:
            by_source.setdefault(a.source, []).append(a.kind)
        for source, kinds in by_source.items():
            for prev, cur in zip(kinds, kinds[1:]):
                assert prev != cur, f"{source} emitted consecutive {cur!r} alerts"

    def test_the_run_itself_stays_bit_identical(self, pair):
        ref, res = pair
        assert res.makespan == ref.makespan
        assert scenario_fingerprint(res) == scenario_fingerprint(ref)
