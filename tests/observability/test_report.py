"""Run reports: assembly, rendering, and the ``report`` CLI."""

import json

from repro.observability.analysis import SpanView
from repro.observability.report import (
    REPORT_SCHEMA,
    build_report,
    main,
    render_json,
    render_markdown,
    report_from_jsonl,
)
from repro.observability.slo import HealthAlert


def span_record(name, span_id, start, end, parent=None, category="loop"):
    return {
        "kind": "span", "time": end, "name": name, "category": category,
        "span_id": span_id, "parent_id": parent, "start": start, "end": end,
    }


def point_record(time, name, **attrs):
    return {"kind": "point", "time": time, "name": name,
            "category": "wms", "attrs": attrs}


def sample_records():
    alert = HealthAlert(
        time=6.0, source="slo:plan.response.p95", kind="firing",
        severity="warning", value=50.0, threshold=10.0, message="violated",
    )
    return [
        span_record("loop.tick", 1, 0.0, 10.0),
        span_record("stage.monitor", 2, 0.0, 6.0, parent=1, category="monitor"),
        span_record("stage.decision", 3, 6.0, 8.0, parent=1, category="decision"),
        {"kind": "span", "time": 0.0, "name": "open", "category": "loop",
         "span_id": 9, "parent_id": None, "start": 0.0, "end": None},
        point_record(0.0, "run.allocation", nodes={"n1": 4}),
        point_record(0.0, "wms.task-running", instance="Sim-0", task="Sim",
                     nodes={"n1": 4}),
        point_record(10.0, "wms.task-end", instance="Sim-0", task="Sim"),
        {"kind": "point", "time": 6.0, "name": "health.alert",
         "category": "health", "attrs": alert.to_dict()},
        {"kind": "metrics", "time": 10.0, "seq": 0,
         "metrics": {"plans.created": {"type": "counter", "value": 2.0},
                     "journal.append.latency": {"type": "histogram", "count": 7}}},
    ]


class TestBuildReport:
    def test_assembles_every_section(self):
        views = [
            SpanView("loop.tick", "loop", 1, None, 0.0, 10.0),
            SpanView("stage.monitor", "monitor", 2, 1, 0.0, 6.0),
        ]
        report = build_report(views, meta={"workflow": "WF"})
        assert report["schema"] == REPORT_SCHEMA
        assert report["meta"] == {"workflow": "WF"}
        assert [e["name"] for e in report["critical_path"]["entries"]] == [
            "loop.tick", "stage.monitor",
        ]
        assert report["critical_path"]["total"] == 10.0
        assert report["utilization"] is None
        assert report["alerts"] == []

    def test_wall_clock_metric_families_are_excluded(self):
        report = build_report(
            [], metrics={"journal.append.latency": {"count": 3},
                         "plans.created": {"value": 1.0}},
        )
        assert "journal.append.latency" not in report["metrics"]
        assert report["metrics"]["plans.created"] == {"value": 1.0}


class TestReportFromJsonl:
    def test_rebuilds_all_sections_from_records(self):
        report = report_from_jsonl(sample_records())
        names = [e["name"] for e in report["critical_path"]["entries"]]
        assert names == ["loop.tick", "stage.monitor"]
        assert report["utilization"]["total_cores"] == 4
        assert report["utilization"]["aggregate"] == 1.0
        assert [a["source"] for a in report["alerts"]] == ["slo:plan.response.p95"]
        assert "plans.created" in report["metrics"]
        assert "journal.append.latency" not in report["metrics"]
        # The open span contributes nothing to the analysis.
        assert all("open" != s["name"] for s in report["slow_spans"])

    def test_without_allocation_events_utilization_is_absent(self):
        records = [span_record("loop.tick", 1, 0.0, 10.0)]
        assert report_from_jsonl(records)["utilization"] is None


class TestRendering:
    def test_markdown_is_deterministic_and_complete(self):
        report = report_from_jsonl(sample_records(), meta={"workflow": "WF"})
        text = render_markdown(report)
        assert text == render_markdown(report_from_jsonl(sample_records(),
                                                         meta={"workflow": "WF"}))
        for heading in ("# DYFLOW run report", "## Critical path",
                        "## Bottlenecks", "## Utilization",
                        "## Alert timeline", "## Slowest spans"):
            assert heading in text
        assert "slo:plan.response.p95" in text

    def test_empty_report_renders_placeholders(self):
        text = render_markdown(report_from_jsonl([]))
        assert "No closed spans recorded." in text
        assert "No allocation events recorded." in text
        assert "No health alerts." in text

    def test_json_rendering_is_stable(self):
        report = report_from_jsonl(sample_records())
        assert json.loads(render_json(report)) == report
        assert render_json(report).endswith("\n")


class TestCli:
    def write_log(self, tmp_path, records):
        path = tmp_path / "run.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return str(path)

    def test_writes_markdown_and_json_outputs(self, tmp_path):
        log = self.write_log(tmp_path, sample_records())
        md, js = str(tmp_path / "report.md"), str(tmp_path / "report.json")
        assert main([log, "-o", md, "--json", js]) == 0
        assert "# DYFLOW run report" in open(md).read()
        doc = json.load(open(js))
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["meta"]["source"] == log

    def test_stdout_formats(self, tmp_path, capsys):
        log = self.write_log(tmp_path, sample_records())
        assert main([log]) == 0
        assert "## Critical path" in capsys.readouterr().out
        assert main([log, "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == REPORT_SCHEMA

    def test_require_critical_path_gates_empty_runs(self, tmp_path, capsys):
        empty = self.write_log(tmp_path, [point_record(0.0, "noop")])
        assert main([empty, "--require-critical-path"]) == 1
        assert "empty critical path" in capsys.readouterr().err
        full = self.write_log(tmp_path, sample_records())
        capsys.readouterr()
        assert main([full, "--require-critical-path"]) == 0

    def test_top_limits_table_sizes(self, tmp_path):
        records = [span_record(f"s{i}", i + 1, 0.0, float(i + 1))
                   for i in range(8)]
        log = self.write_log(tmp_path, records)
        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf):
            main([log, "--format", "json", "--top", "2"])
        doc = json.loads(buf.getvalue())
        assert len(doc["slow_spans"]) == 2
        assert len(doc["bottlenecks"]) == 2
