"""SLO evaluators and the EWMA anomaly detector: transition semantics."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import AnomalySpec, SloSpec
from repro.observability.slo import EwmaDetector, HealthAlert, SloEvaluator


class TestSloSpec:
    def test_key_combines_metric_and_stat(self):
        spec = SloSpec(metric="plan.response", stat="p95", op="LT", threshold=10.0)
        assert spec.key == "plan.response.p95"

    def test_healthy_honours_every_operator(self):
        for op, good, bad in (
            ("LT", 5.0, 15.0), ("LE", 10.0, 10.5),
            ("GT", 15.0, 5.0), ("GE", 10.0, 9.5),
        ):
            spec = SloSpec(metric="m", stat="value", op=op, threshold=10.0)
            assert spec.healthy(good) and not spec.healthy(bad)

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ObservabilityError):
            SloSpec(metric="m", stat="p42", op="LT", threshold=1.0).validate()
        with pytest.raises(ObservabilityError):
            SloSpec(metric="m", stat="p95", op="XX", threshold=1.0).validate()
        with pytest.raises(ObservabilityError):
            SloSpec(metric="m", stat="p95", op="LT", threshold=1.0,
                    severity="shrug").validate()


class TestSloEvaluator:
    def spec(self, **kw):
        kw.setdefault("metric", "plan.response")
        kw.setdefault("stat", "p95")
        kw.setdefault("op", "LT")
        kw.setdefault("threshold", 10.0)
        return SloSpec(**kw)

    def test_fires_once_after_the_streak_and_clears_once(self):
        ev = SloEvaluator(self.spec(fire_after=2, clear_after=2))
        assert ev.evaluate(0.0, 50.0) is None  # streak 1 of 2
        alert = ev.evaluate(5.0, 50.0)
        assert alert is not None and alert.kind == "firing"
        assert ev.firing
        assert ev.evaluate(10.0, 50.0) is None  # already firing: no repeat
        assert ev.evaluate(15.0, 1.0) is None  # good streak 1 of 2
        cleared = ev.evaluate(20.0, 1.0)
        assert cleared is not None and cleared.kind == "clearing"
        assert not ev.firing

    def test_a_good_sample_resets_the_bad_streak(self):
        ev = SloEvaluator(self.spec(fire_after=2))
        ev.evaluate(0.0, 50.0)
        ev.evaluate(1.0, 1.0)  # healthy — streak resets
        assert ev.evaluate(2.0, 50.0) is None
        assert not ev.firing

    def test_none_values_do_not_advance_streaks(self):
        ev = SloEvaluator(self.spec(fire_after=1))
        assert ev.evaluate(0.0, None) is None
        assert not ev.firing

    def test_alert_carries_identity_and_context(self):
        ev = SloEvaluator(self.spec(severity="critical"))
        alert = ev.evaluate(7.0, 42.0)
        assert alert.source == "slo:plan.response.p95"
        assert alert.severity == "critical"
        assert alert.value == 42.0 and alert.threshold == 10.0
        assert "plan.response.p95" in alert.message

    def test_state_dict_round_trip_prevents_refiring(self):
        ev = SloEvaluator(self.spec(fire_after=1))
        ev.evaluate(0.0, 50.0)
        clone = SloEvaluator(self.spec(fire_after=1))
        clone.load_state_dict(ev.state_dict())
        assert clone.firing
        # The resumed evaluator sees the same bad value again: no new alert.
        assert clone.evaluate(5.0, 50.0) is None


class TestEwmaDetector:
    def spec(self, **kw):
        kw.setdefault("metric", "stage.monitor.latency")
        kw.setdefault("stat", "p95")
        kw.setdefault("window", 10)
        kw.setdefault("z", 3.0)
        kw.setdefault("min_points", 3)
        return AnomalySpec(**kw)

    def test_silent_until_min_points(self):
        det = EwmaDetector(self.spec(min_points=3))
        assert det.evaluate(0.0, 1.0) is None
        assert det.evaluate(1.0, 1.0) is None
        assert not det.firing

    def test_flat_history_makes_any_deviation_fire(self):
        det = EwmaDetector(self.spec())
        for t in range(5):
            det.evaluate(float(t), 1.0)
        alert = det.evaluate(5.0, 100.0)
        assert alert is not None and alert.kind == "firing"
        assert "inf" in alert.message

    def test_fires_then_clears_when_the_value_returns(self):
        det = EwmaDetector(self.spec(z=2.0, alpha=1.0))
        # alpha=1 disables smoothing so the window is the raw sequence.
        for t, v in enumerate((1.0, 1.2, 0.8, 1.1, 0.9)):
            det.evaluate(float(t), v)
        fired = det.evaluate(5.0, 50.0)
        assert fired is not None and fired.kind == "firing"
        # Back to baseline clears (the spike inflated the window's std,
        # so a normal value scores small again).
        cleared = det.evaluate(6.0, 1.0)
        assert cleared is not None and cleared.kind == "clearing"
        assert not det.firing

    def test_no_repeat_alerts_while_anomalous(self):
        det = EwmaDetector(self.spec(z=2.0, alpha=1.0, window=50))
        for t, v in enumerate((1.0, 1.2, 0.8, 1.1, 0.9)):
            det.evaluate(float(t), v)
        assert det.evaluate(5.0, 50.0) is not None
        assert det.evaluate(6.0, 60.0) is None  # still firing, no repeat

    def test_window_is_bounded(self):
        det = EwmaDetector(self.spec(window=4))
        for t in range(10):
            det.evaluate(float(t), float(t))
        assert len(det.state_dict()["window"]) == 4

    def test_state_dict_round_trip(self):
        det = EwmaDetector(self.spec(z=2.0, alpha=1.0))
        for t, v in enumerate((1.0, 1.2, 0.8, 1.1, 0.9)):
            det.evaluate(float(t), v)
        det.evaluate(5.0, 50.0)
        clone = EwmaDetector(self.spec(z=2.0, alpha=1.0))
        clone.load_state_dict(det.state_dict())
        assert clone.firing
        assert clone.state_dict() == det.state_dict()
        # Identical future inputs produce identical future behaviour.
        assert [clone.evaluate(6.0, 1.0)] == [det.evaluate(6.0, 1.0)]

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ObservabilityError):
            AnomalySpec(metric="m", window=1).validate()
        with pytest.raises(ObservabilityError):
            AnomalySpec(metric="m", z=0.0).validate()
        with pytest.raises(ObservabilityError):
            AnomalySpec(metric="m", alpha=1.5).validate()


class TestHealthAlert:
    def test_dict_round_trip(self):
        alert = HealthAlert(
            time=12.5, source="slo:x.p95", kind="firing", severity="warning",
            value=3.0, threshold=1.0, message="x violates objective",
        )
        assert HealthAlert.from_dict(alert.to_dict()) == alert

    def test_from_dict_tolerates_a_missing_message(self):
        d = {"time": 1, "source": "s", "kind": "firing",
             "severity": "info", "value": 2, "threshold": 3}
        assert HealthAlert.from_dict(d).message == ""
