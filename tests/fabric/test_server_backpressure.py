"""MonitorServer fabric mode: admission, priority shedding, dedup, state."""

import pytest

from repro.core import MonitorServer
from repro.core.monitor import _HEALTH_TASK
from repro.errors import SensorError
from repro.fabric import NetworkSpec
from repro.util import Envelope


def update(task: str, value: float = 1.0, time: float = 0.0) -> dict:
    return {"sensor_id": "S", "workflow_id": "W", "task": task,
            "granularity": "task", "key": [task], "value": value,
            "time": time, "step": -1, "var": "looptime"}


def env(seq: int, task: str = "T", sender: str = "c0", time: float = 0.0) -> Envelope:
    return Envelope(kind="sensor-update", sender=sender, seq=seq, time=time,
                    payload={"updates": [update(task, time=time)]})


def health_env(seq: int, time: float = 0.0) -> Envelope:
    return env(seq, task=_HEALTH_TASK, time=time)


def server(**net_kw) -> MonitorServer:
    s = MonitorServer()
    s.configure_fabric(NetworkSpec(**net_kw))
    return s


class TestAdmission:
    def test_offer_requires_fabric(self):
        with pytest.raises(SensorError):
            MonitorServer().offer(env(0))

    def test_configure_after_traffic_rejected(self):
        s = MonitorServer()
        s.receive(env(0))
        with pytest.raises(SensorError):
            s.configure_fabric(NetworkSpec())

    def test_unbounded_by_default(self):
        s = server(ingress_capacity=0)
        for i in range(100):
            assert s.offer(env(i))
        assert s.ingress_depth == 100 and s.shed_sensor == 0

    def test_full_queue_sheds_oldest_sensor(self):
        s = server(ingress_capacity=2)
        assert s.offer(env(0)) and s.offer(env(1)) and s.offer(env(2))
        assert s.shed_sensor == 1 and s.ingress_depth == 2
        drained = s.take_ingress()
        assert [e.seq for e in drained] == [1, 2]  # seq 0 was shed

    def test_health_survives_sensor_shed(self):
        s = server(ingress_capacity=2)
        s.offer(health_env(0))
        s.offer(env(1))
        assert s.offer(env(2))           # sheds the sensor env, not health
        assert s.shed_sensor == 1 and s.shed_health == 0
        assert [s._is_health(e) for e in s.take_ingress()] == [True, False]

    def test_sensor_rejected_when_queue_all_health(self):
        s = server(ingress_capacity=2)
        s.offer(health_env(0))
        s.offer(health_env(1))
        assert not s.offer(env(2))       # rejected => no ack => retransmit later
        assert s.shed_sensor == 1 and s.ingress_depth == 2

    def test_health_displaces_oldest_health(self):
        s = server(ingress_capacity=2)
        s.offer(health_env(0))
        s.offer(health_env(1))
        assert s.offer(health_env(2))
        assert s.shed_health == 1
        assert [e.seq for e in s.take_ingress()] == [1, 2]


class TestDrain:
    def test_drain_budget(self):
        s = server(drain_per_tick=2)
        for i in range(5):
            s.offer(env(i))
        assert [e.seq for e in s.take_ingress()] == [0, 1]
        assert [e.seq for e in s.take_ingress()] == [2, 3]
        assert [e.seq for e in s.take_ingress()] == [4]

    def test_zero_budget_drains_all(self):
        s = server(drain_per_tick=0)
        for i in range(5):
            s.offer(env(i))
        assert len(s.take_ingress()) == 5

    def test_staleness_recorded(self):
        s = server()
        s.note_staleness(3.0)
        s.note_staleness(5.0)
        assert s.ingest_staleness.count == 2


class TestDedup:
    def test_duplicates_rejected_exactly_once(self):
        s = server()
        assert s.receive(env(0))
        assert s.receive(env(1))
        assert s.receive(env(0)) == []   # retransmit copy
        assert s.receive(env(1)) == []
        assert s.duplicates == 2

    def test_reordering_and_gaps_accepted(self):
        s = server()
        for seq in (5, 2, 7, 0):
            assert s.receive(env(seq))
        assert s.receive(env(5)) == []
        assert s.duplicates == 1

    def test_restart_does_not_reset_dedup(self):
        # Clients persist across task restarts and never renumber;
        # resetting would re-admit retransmitted copies of old seqs.
        s = server()
        s.receive(env(3))
        s.on_task_restart("T")
        assert s.receive(env(3)) == []
        assert s.duplicates == 1


class TestFabricState:
    def test_round_trip_with_queued_envelopes(self):
        s = server(ingress_capacity=8)
        s.receive(env(0))
        s.offer(env(1, time=1.0))
        s.offer(env(2, time=2.0))
        s.note_staleness(1.5)
        state = s.state_dict()

        fresh = server(ingress_capacity=8)
        fresh.load_state_dict(state)
        assert fresh.offered == s.offered
        assert [e.seq for e in fresh.take_ingress()] == [1, 2]
        assert fresh.receive(env(0)) == []   # dedup state restored too
        # The staleness histogram is telemetry, not state: not journaled.
        assert fresh.ingest_staleness.count == 0

    def test_non_fabric_state_has_no_fabric_key(self):
        s = MonitorServer()
        s.receive(env(0))
        assert "fabric" not in s.state_dict()
