"""FabricLink unit tests: faults, reliability protocol, crash round-trip."""

from repro.fabric import FabricLink, NetworkSpec, PartitionWindow, fabric_streams
from repro.sim.rng import RngRegistry
from repro.util import Envelope


def env(seq: int, sender: str = "c0", time: float = 0.0) -> Envelope:
    return Envelope(kind="sensor-update", sender=sender, seq=seq, time=time,
                    payload={"updates": []})


def link(**kw) -> FabricLink:
    kw.setdefault("retransmit_jitter", 0.0)
    return FabricLink("c0", NetworkSpec(**kw), RngRegistry(0))


class TestFaults:
    def test_clean_wire_delivers_at_latency(self):
        lk = link(latency=1.5, max_retransmits=0)
        out = lk.send(env(0), now=10.0, lag=0.5)
        assert out == [(12.0, env(0))]
        assert lk.sent == 1 and lk.transmitted == 1

    def test_certain_drop_loses_the_copy(self):
        lk = link(drop_prob=0.999999, max_retransmits=0)
        assert lk.send(env(0), 0.0) == []
        assert lk.dropped == 1

    def test_certain_dup_delivers_twice(self):
        lk = link(dup_prob=0.999999, max_retransmits=0)
        out = lk.send(env(0), 0.0)
        assert len(out) == 2 and all(e == env(0) for _, e in out)
        assert lk.duplicated == 1

    def test_reorder_adds_delay(self):
        lk = link(latency=1.0, reorder_prob=0.999999, reorder_delay=5.0,
                  max_retransmits=0)
        (at, _), = lk.send(env(0), 0.0)
        assert at >= 6.0  # latency + reorder_delay*(1+U)
        assert lk.reordered == 1

    def test_partition_eats_data_and_acks(self):
        lk = link(partitions=(PartitionWindow(10.0, 5.0),))
        assert lk.send(env(0), 10.0) == []
        assert lk.partition_dropped == 1
        assert lk.plan_ack(env(0), 12.0) is None
        assert lk.ack_dropped == 1
        # Outside the window traffic flows again.
        assert lk.send(env(1), 20.0) != []

    def test_per_link_partition_scoping(self):
        spec = NetworkSpec(partitions=(PartitionWindow(0.0, 10.0, link="other"),))
        lk = FabricLink("c0", spec, RngRegistry(0))
        assert lk.send(env(0), 5.0) != []


class TestReliability:
    def test_ack_clears_buffer(self):
        lk = link(ack_timeout=2.0, max_retransmits=3)
        lk.send(env(0), 0.0)
        assert lk.unacked == 1
        assert lk.on_ack("c0", 0, 0.5)
        assert lk.unacked == 0 and lk.acked == 1
        assert not lk.on_ack("c0", 0, 0.6)  # duplicate ack is a no-op

    def test_retransmit_backoff_schedule(self):
        lk = link(ack_timeout=2.0, retransmit_factor=2.0, retransmit_max=100.0,
                  max_retransmits=3)
        lk.send(env(0), 0.0)
        assert lk.poll(1.9) == []           # not yet due
        out = lk.poll(2.0)                  # attempt 1 at RTO=2
        assert len(out) == 1 and lk.retransmits == 1
        assert lk.poll(3.0) == []           # next RTO is 2*2=4 from 2.0
        assert len(lk.poll(6.0)) == 1       # attempt 2
        assert len(lk.poll(14.0)) == 1      # attempt 3 (RTO 8)
        out = lk.poll(30.0)                 # budget spent: abandoned
        assert out == [] and lk.gave_up == 1 and lk.unacked == 0

    def test_fire_and_forget_never_buffers(self):
        lk = link(max_retransmits=0)
        lk.send(env(0), 0.0)
        assert lk.unacked == 0
        assert lk.plan_ack(env(0), 0.0) is None

    def test_send_buffer_evicts_oldest(self):
        lk = link(send_buffer=2, max_retransmits=3)
        for i in range(3):
            lk.send(env(i), 0.0)
        assert lk.unacked == 2 and lk.evicted == 1
        assert not lk.on_ack("c0", 0, 1.0)  # seq 0 was the evictee

    def test_ack_plan_clean_wire(self):
        lk = link(latency=0.5, max_retransmits=3)
        assert lk.plan_ack(env(0), 4.0) == 4.5

    def test_certain_ack_loss(self):
        lk = link(ack_drop_prob=0.999999, max_retransmits=3)
        assert lk.plan_ack(env(0), 0.0) is None
        assert lk.ack_dropped == 1


class TestBreaker:
    def mk(self):
        return link(ack_timeout=1.0, max_retransmits=1,
                    breaker_failures=2, breaker_reset=60.0)

    def trip(self, lk):
        # Two envelopes giving up back to back opens the breaker.
        lk.send(env(0), 0.0)
        lk.send(env(1), 0.0)
        lk.poll(1.0)    # retransmit attempt 1 for both
        lk.poll(10.0)   # both exhausted -> 2 consecutive give-ups

    def test_trips_after_consecutive_giveups(self):
        lk = self.mk()
        self.trip(lk)
        assert lk.breaker_trips == 1 and lk.breaker_open(10.1)
        assert lk.send(env(2), 11.0) == [] and lk.breaker_shed == 1

    def test_half_opens_after_reset(self):
        lk = self.mk()
        self.trip(lk)
        assert not lk.breaker_open(70.1)
        assert lk.send(env(2), 70.5) != []

    def test_ack_resets_failure_streak(self):
        lk = link(ack_timeout=1.0, max_retransmits=1, breaker_failures=2)
        lk.send(env(0), 0.0)
        lk.poll(1.0)
        lk.poll(10.0)  # one give-up
        lk.send(env(1), 10.0)
        lk.on_ack("c0", 1, 10.5)  # success: streak back to zero
        lk.send(env(2), 11.0)
        lk.poll(12.0)
        lk.poll(30.0)  # another give-up, but not consecutive
        assert lk.breaker_trips == 0


class TestStateDict:
    def test_round_trip_mid_flight(self):
        lk = link(ack_timeout=2.0, drop_prob=0.3, max_retransmits=3)
        for i in range(4):
            lk.send(env(i, time=float(i)), float(i))
        lk.on_ack("c0", 1, 4.0)
        state = lk.state_dict()

        fresh = link(ack_timeout=2.0, drop_prob=0.3, max_retransmits=3)
        fresh.load_state_dict(state)
        assert fresh.unacked == lk.unacked
        assert fresh.sent == lk.sent and fresh.acked == lk.acked
        # The resumed link's future behavior matches the original's.
        assert fresh.poll(50.0) == lk.poll(50.0)
        assert fresh.state_dict() == lk.state_dict()

    def test_streams_named_per_link(self):
        assert fabric_streams("c7") == tuple(
            f"fabric:c7:{s}" for s in ("net", "drop", "dup", "reorder",
                                       "ackdrop", "backoff")
        )
