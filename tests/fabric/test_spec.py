"""NetworkSpec validation, link-profile resolution, XML round-trip."""

import pytest

from repro.errors import ResilienceError, XmlSpecError
from repro.fabric import HEALTH_TASK, LinkOverride, NetworkSpec, PartitionWindow
from repro.xmlspec import parse_dyflow_xml, write_dyflow_xml


def net_xml(body: str) -> str:
    return f"<dyflow><resilience>{body}</resilience></dyflow>"


class TestValidation:
    def test_defaults_valid(self):
        NetworkSpec().validate()

    @pytest.mark.parametrize("kw", [
        dict(latency=-1.0),
        dict(drop_prob=1.0),
        dict(dup_prob=-0.1),
        dict(ack_timeout=0.0),
        dict(max_retransmits=-1),
        dict(retransmit_factor=0.5),
        dict(retransmit_jitter=2.0),
        dict(send_buffer=0),
        dict(breaker_reset=0.0),
        dict(ingress_capacity=-1),
        dict(stale_after=-5.0),
        dict(degrade_after=0),
    ])
    def test_out_of_range_rejected(self, kw):
        with pytest.raises(ResilienceError):
            NetworkSpec(**kw).validate()

    def test_bad_partition_rejected(self):
        with pytest.raises(ResilienceError):
            NetworkSpec(partitions=(PartitionWindow(10.0, 0.0),)).validate()

    def test_duplicate_link_override_rejected(self):
        spec = NetworkSpec(links=(LinkOverride("c"), LinkOverride("c")))
        with pytest.raises(ResilienceError):
            spec.validate()

    def test_bad_override_value_rejected(self):
        with pytest.raises(ResilienceError):
            NetworkSpec(links=(LinkOverride("c", drop_prob=1.5),)).validate()


class TestProfileResolution:
    def test_defaults_inherited(self):
        spec = NetworkSpec(latency=2.0, drop_prob=0.1)
        p = spec.profile_for("anyone")
        assert p.latency == 2.0 and p.drop_prob == 0.1

    def test_override_wins_only_for_set_fields(self):
        spec = NetworkSpec(
            latency=2.0, drop_prob=0.1,
            links=(LinkOverride("c1", drop_prob=0.4),),
        )
        p1 = spec.profile_for("c1")
        assert p1.drop_prob == 0.4 and p1.latency == 2.0
        assert spec.profile_for("c2").drop_prob == 0.1


class TestPartitionWindows:
    def test_window_half_open(self):
        w = PartitionWindow(10.0, 5.0)
        assert not w.active(9.99) and w.active(10.0) and w.active(14.99)
        assert not w.active(15.0)

    def test_link_scoping(self):
        spec = NetworkSpec(partitions=(PartitionWindow(0.0, 10.0, link="c1"),))
        assert spec.partition_active(5.0, "c1")
        assert not spec.partition_active(5.0, "c2")
        # link_id=None asks "is any partition active".
        assert spec.partition_active(5.0)

    def test_global_window_hits_every_link(self):
        spec = NetworkSpec(partitions=(PartitionWindow(0.0, 10.0),))
        assert spec.partition_active(5.0, "c1") and spec.partition_active(5.0, "c2")


class TestXml:
    def test_parse_defaults(self):
        spec = parse_dyflow_xml(net_xml("<network/>"))
        assert spec.resilience.network == NetworkSpec()

    def test_parse_full(self):
        spec = parse_dyflow_xml(net_xml(
            '<network drop-prob="0.1" max-retransmits="7" stale-after="20.0" '
            'ingress-capacity="64" breaker-failures="3">'
            '<partition start="600.0" duration="30.0" link="c9"/>'
            '<link client="c9" latency="1.5" reorder-prob="0.2"/>'
            "</network>"
        ))
        net = spec.resilience.network
        assert net.drop_prob == 0.1 and net.max_retransmits == 7
        assert net.partitions == (PartitionWindow(600.0, 30.0, link="c9"),)
        assert net.links[0].latency == 1.5 and net.links[0].drop_prob is None

    def test_round_trip(self):
        spec = parse_dyflow_xml(net_xml(
            '<network latency="0.25" jitter="0.1" drop-prob="0.1" dup-prob="0.05" '
            'stale-after="20.0" degrade-after="2" recover-after="4">'
            '<partition start="10.0" duration="30.0"/>'
            '<link client="a" drop-prob="0.3"/></network>'
        ))
        assert parse_dyflow_xml(write_dyflow_xml(spec)).resilience.network \
            == spec.resilience.network

    def test_unknown_attr_rejected(self):
        with pytest.raises(XmlSpecError):
            parse_dyflow_xml(net_xml('<network latencey="1.0"/>'))

    def test_unknown_child_rejected(self):
        with pytest.raises(XmlSpecError):
            parse_dyflow_xml(net_xml("<network><split/></network>"))

    def test_link_requires_client(self):
        with pytest.raises(XmlSpecError):
            parse_dyflow_xml(net_xml('<network><link drop-prob="0.1"/></network>'))


def test_health_task_matches_observability():
    from repro.observability import HEALTH_TASK as OBS_HEALTH_TASK
    from repro.core.monitor import _HEALTH_TASK

    assert HEALTH_TASK == OBS_HEALTH_TASK == _HEALTH_TASK
