"""End-to-end fabric acceptance on the simulated Gray-Scott scenario.

The bar from the issue: under 10% drop + reordering + duplication and a
30 s partition window, the workflow completes, no duplicate update is
delivered past the dedup filter (the counter proves copies arrived and
were caught), degraded mode fires and clears with matching HealthAlerts,
and two runs replay bit-identically.  Plus: a controller crash mid-run
resumes from the journal bit-identical to an uninterrupted reference,
fabric state included.
"""

from repro.experiments import run_gray_scott_experiment
from repro.journal import JournalSpec, scenario_fingerprint

CHAOS = """
  <resilience>
    <network latency="0.2" jitter="0.1" drop-prob="0.10" dup-prob="0.05"
             reorder-prob="0.05" ack-timeout="2.0" max-retransmits="5"
             ingress-capacity="64" drain-per-tick="32"
             stale-after="20.0" degrade-after="3" recover-after="3">
      <partition start="600.0" duration="30.0"/>
    </network>
  </resilience>"""


class TestAcceptanceScenario:
    def run(self, seed=3, **kw):
        return run_gray_scott_experiment(xml_extra=CHAOS, seed=seed, **kw)

    def test_completes_with_exactly_once_delivery(self):
        res = self.run()
        assert res.makespan > 0
        fab = res.meta["fabric"]
        links, server = fab["links"], fab["server"]
        # Copies were really duplicated/retransmitted on the wire...
        assert links["duplicated"] > 0 or links["retransmits"] > 0
        # ...and every extra copy was caught: zero duplicate-delivered.
        assert server["duplicates"] > 0
        unique_delivered = server["received"] - server["duplicates"]
        assert unique_delivered <= links["sent"]
        # The partition window really ate traffic.
        assert links["partition_dropped"] > 0

    def test_degraded_mode_fires_and_clears(self):
        res = self.run()
        fab = res.meta["fabric"]
        assert fab["degraded_entered"] > 0 and fab["degraded_exited"] > 0

    def test_monitoring_still_feeds_decision(self):
        res = self.run()
        assert res.metric_history, "no updates reached the Decision stage"

    def test_two_runs_bit_identical(self):
        a, b = self.run(), self.run()
        assert scenario_fingerprint(a) == scenario_fingerprint(b)
        assert a.meta["fabric"] == b.meta["fabric"]

    def test_different_seeds_diverge(self):
        # The fault model is actually doing something seed-dependent.
        a, b = self.run(seed=3), self.run(seed=4)
        assert a.meta["fabric"]["links"] != b.meta["fabric"]["links"]


class TestCrashResumeWithFabric:
    def test_resume_bit_identical_mid_chaos(self, tmp_path):
        spec = JournalSpec(dir=str(tmp_path / "journal"), fsync="off")
        crash_times = (500.0,)
        ref = run_gray_scott_experiment(
            xml_extra=CHAOS, seed=3, journal=spec,
            crash_times=crash_times, ignore_crash_requests=True,
        )
        res = run_gray_scott_experiment(
            xml_extra=CHAOS, seed=3,
            journal=JournalSpec(dir=str(tmp_path / "journal2"), fsync="off"),
            crash_times=crash_times,
        )
        assert res.meta["crashes"], "the crash request never fired"
        assert scenario_fingerprint(res) == scenario_fingerprint(ref)

    def test_crash_inside_partition_window(self, tmp_path):
        # The nastiest instant: unacked envelopes in flight, queue nonempty,
        # partition active.  Resume must restore all of it.
        crash_times = (615.0,)
        ref = run_gray_scott_experiment(
            xml_extra=CHAOS, seed=3,
            journal=JournalSpec(dir=str(tmp_path / "j1"), fsync="off"),
            crash_times=crash_times, ignore_crash_requests=True,
        )
        res = run_gray_scott_experiment(
            xml_extra=CHAOS, seed=3,
            journal=JournalSpec(dir=str(tmp_path / "j2"), fsync="off"),
            crash_times=crash_times,
        )
        assert res.meta["crashes"]
        assert scenario_fingerprint(res) == scenario_fingerprint(ref)
