"""DegradedModeController hysteresis and DecisionStage gating."""

from repro.core.actions import ActionType, SuggestedAction
from repro.core.decision import DecisionStage
from repro.fabric import DegradedModeController, NetworkSpec, PartitionWindow
from repro.fabric.spec import HEALTH_TASK


def controller(**kw) -> DegradedModeController:
    kw.setdefault("stale_after", 10.0)
    kw.setdefault("degrade_after", 2)
    kw.setdefault("recover_after", 2)
    return DegradedModeController(NetworkSpec(**kw))


def suggestion(action: ActionType) -> SuggestedAction:
    return SuggestedAction(policy_id="P", action=action, target="T",
                           workflow_id="W", assess_task="T")


class TestHysteresis:
    def test_enters_after_streak(self):
        c = controller()
        seen = {"T": 0.0}
        assert c.tick(11.0, seen) == []          # stale tick 1
        alerts = c.tick(12.0, seen)              # stale tick 2 -> degraded
        assert c.degraded and c.entered == 1
        assert alerts[0].source == "fabric:degraded" and alerts[0].kind == "firing"

    def test_single_stale_tick_not_enough(self):
        c = controller()
        c.tick(11.0, {"T": 0.0})
        c.tick(12.0, {"T": 11.5})                # fresh again: streak resets
        c.tick(13.0, {"T": 0.0})
        assert not c.degraded

    def test_recovers_after_fresh_streak(self):
        c = controller()
        c.tick(11.0, {"T": 0.0})
        c.tick(12.0, {"T": 0.0})
        assert c.degraded
        c.tick(13.0, {"T": 12.5})
        alerts = c.tick(14.0, {"T": 13.5})
        assert not c.degraded and c.exited == 1
        assert alerts[0].kind == "clearing"

    def test_never_reported_tasks_ignored(self):
        # Warmup: an empty last_seen map must not read as stale.
        c = controller()
        for t in (11.0, 12.0, 13.0):
            c.tick(t, {})
        assert not c.degraded

    def test_health_pseudo_task_ignored(self):
        c = controller()
        # Fresh health updates must not mask a stale real task...
        seen = {"T": 0.0, HEALTH_TASK: 11.9}
        c.tick(12.0, seen)
        c.tick(13.0, seen)
        assert c.degraded

    def test_disabled_without_stale_after(self):
        c = controller(stale_after=0.0)
        c.tick(100.0, {"T": 0.0})
        c.tick(200.0, {"T": 0.0})
        assert not c.degraded


class TestPartitionAlerts:
    def test_window_transition_alerts(self):
        c = controller(partitions=(PartitionWindow(10.0, 5.0),))
        assert c.tick(5.0, {}) == []
        firing = c.tick(11.0, {})
        assert firing[0].source == "fabric:partition" and firing[0].kind == "firing"
        assert c.tick(12.0, {}) == []            # no re-fire inside the window
        clearing = c.tick(16.0, {})
        assert clearing[0].kind == "clearing"


class TestStateDict:
    def test_round_trip(self):
        c = controller(partitions=(PartitionWindow(10.0, 5.0),))
        c.tick(11.0, {"T": 0.0})
        c.tick(12.0, {"T": 0.0})
        state = c.state_dict()
        fresh = controller(partitions=(PartitionWindow(10.0, 5.0),))
        fresh.load_state_dict(state)
        assert fresh.degraded and fresh.partition
        assert fresh.entered == 1
        assert [a.to_dict() for a in fresh.alerts] == [a.to_dict() for a in c.alerts]
        # Streaks restored: one fresh tick is not enough to recover.
        fresh.tick(13.0, {"T": 12.5})
        assert fresh.degraded


class TestDecisionGate:
    def all_actions(self):
        return [suggestion(a) for a in
                (ActionType.ADDCPU, ActionType.STOP, ActionType.RMCPU,
                 ActionType.RESTART, ActionType.START)]

    def test_passthrough_when_healthy(self):
        d = DecisionStage()
        batch = self.all_actions()
        assert d.gate(batch) == batch and d.suggestions_gated == 0

    def test_degraded_keeps_only_essential(self):
        d = DecisionStage()
        d.set_degraded(True)
        kept = d.gate(self.all_actions())
        assert [s.action for s in kept] == [
            ActionType.STOP, ActionType.RESTART, ActionType.START
        ]
        assert d.suggestions_gated == 2

    def test_gate_state_round_trips(self):
        d = DecisionStage()
        d.set_degraded(True)
        d.gate(self.all_actions())
        state = d.state_dict()
        fresh = DecisionStage()
        fresh.load_state_dict(state)
        assert fresh.degraded and fresh.suggestions_gated == 2
