"""BoundedShedQueue unit tests and the threaded driver's fabric wiring."""

import queue
import time

import pytest

from repro.core import GroupBySpec, SensorSpec
from repro.fabric import BoundedShedQueue, NetworkSpec
from repro.resilience import ResilienceSpec
from repro.runtime import RuntimeOptions
from repro.runtime.threaded import LiveTaskSpec, ThreadedDyflow


class TestBoundedShedQueue:
    def test_fifo(self):
        q = BoundedShedQueue(4)
        for i in range(3):
            q.put(i)
        assert [q.get(timeout=0.1) for _ in range(3)] == [0, 1, 2]

    def test_unbounded_with_zero_capacity(self):
        q = BoundedShedQueue(0)
        for i in range(1000):
            q.put(i)
        assert len(q) == 1000 and q.shed == 0

    def test_sheds_oldest_when_full(self):
        q = BoundedShedQueue(2)
        for i in range(4):
            q.put(i)
        assert q.shed == 2 and len(q) == 2
        assert q.get(timeout=0.1) == 2  # 0 and 1 were shed, oldest first

    def test_get_timeout_raises_empty(self):
        q = BoundedShedQueue(2)
        t0 = time.perf_counter()
        with pytest.raises(queue.Empty):
            q.get(timeout=0.05)
        assert time.perf_counter() - t0 >= 0.04


class TestThreadedFabricWiring:
    def make_runner(self, network=None, **kw):
        resilience = ResilienceSpec(network=network) if network is not None else None
        defaults = dict(poll_interval=0.05, warmup=0.1, settle=0.1,
                        options=RuntimeOptions(resilience=resilience))
        defaults.update(kw)
        return ThreadedDyflow(
            "LIVE",
            [LiveTaskSpec("T", lambda s, w: time.sleep(0.02), total_steps=10)],
            **defaults,
        )

    def test_no_network_leaves_plain_path(self):
        runner = self.make_runner()
        assert runner.link is None and runner.degrade is None
        assert not runner.server.fabric_enabled

    def test_disabled_network_ignored(self):
        runner = self.make_runner(NetworkSpec(enabled=False))
        assert runner.network is None and runner.link is None

    def test_queue_capacity_exposed_via_shed_counter(self):
        runner = self.make_runner(queue_capacity=2)
        assert runner.suggestions_shed == 0
        for i in range(4):
            runner._queue.put([i])
        assert runner.suggestions_shed == 2

    def test_live_run_through_lossy_fabric(self):
        # Monitor traffic survives a lossy wall-clock link end to end:
        # updates still reach the server history via ack/retransmit.
        runner = self.make_runner(
            NetworkSpec(drop_prob=0.3, dup_prob=0.2, ack_timeout=0.05,
                        max_retransmits=10, retransmit_max=0.2,
                        ingress_capacity=64, drain_per_tick=0)
        )
        assert runner.link is not None and runner.server.fabric_enabled
        runner.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        runner.monitor_task("T", "PACE")
        runner.start()
        assert runner.wait_until_done(timeout=10.0)
        time.sleep(0.5)  # let retransmits and the drain loop settle
        runner.stop()
        values = [u.value for u in runner.server.history if u.task == "T"]
        assert values, "no updates survived the lossy link"
        assert runner.link.sent > 0 and runner.link.acked > 0
        # Dedup guarantee holds on the wall-clock path too: every copy the
        # filter caught came from a dup draw or a retransmit, never fresh data.
        assert runner.server.duplicates <= runner.link.duplicated + runner.link.retransmits
