"""Diagnostic corpus: one triggering fixture and one clean near-miss per
spec-verifier code (DY100–DY407), asserting exact code and location."""

from __future__ import annotations

import pytest

from repro.cluster.machine import deepthought2
from repro.lint import CODES, Severity, lint_xml_text, verify_spec
from repro.wms.spec import TaskSpec, WorkflowSpec
from repro.xmlspec.parser import parse_dyflow_xml


# --------------------------------------------------------------------------- #
# fixture-building helpers
# --------------------------------------------------------------------------- #
def sensor(sid: str = "S", extra: str = "") -> str:
    return (
        f'<sensor id="{sid}" type="DISKSCAN">'
        '<group-by><group granularity="task" reduction-operation="MAX"/>'
        '<group granularity="workflow" reduction-operation="MAX"/></group-by>'
        f"{extra}</sensor>"
    )


def mt(task: str = "A", sid: str = "S") -> str:
    return (
        f'<monitor-task name="{task}" workflowId="W">'
        f'<use-sensor sensor-id="{sid}" info="nsteps"/></monitor-task>'
    )


def policy(
    pid: str = "P",
    op: str = "GT",
    thr: str = "5",
    action: str = "STOP",
    gran: str = "task",
    sid: str = "S",
) -> str:
    return (
        f'<policy id="{pid}"><eval operation="{op}" threshold="{thr}"/>'
        f'<sensors-to-use><use-sensor id="{sid}" granularity="{gran}"/></sensors-to-use>'
        f"<action>{action}</action><frequency seconds=\"5\"/></policy>"
    )


def apply_policy(
    pid: str = "P", assess: str = "A", act: str = "A", params: str = ""
) -> str:
    return (
        f'<apply-policy policyId="{pid}" assess-task="{assess}">'
        f"<act-on-tasks> {act} </act-on-tasks>{params}</apply-policy>"
    )


def rule(body: str) -> str:
    return (
        "<arbitration><rules>"
        f'<rule-for workflowId="W">{body}</rule-for>'
        "</rules></arbitration>"
    )


def doc(
    sensors: str = "",
    mts: str = "",
    policies: str = "",
    applies: str = "",
    arbitration: str = "",
    extra: str = "",
) -> str:
    decision = ""
    if policies or applies:
        decision = (
            f"<decision><policies>{policies}</policies>"
            f'<apply-on workflowId="W">{applies}</apply-on></decision>'
        )
    return (
        "<dyflow>"
        f"<monitor><sensors>{sensors}</sensors>"
        f"<monitor-tasks>{mts}</monitor-tasks></monitor>"
        f"{decision}{arbitration}{extra}"
        "</dyflow>"
    )


#: A fully clean document: sensor S feeds task A, policy P stops A,
#: a rule ranks both.
CLEAN = doc(
    sensors=sensor(),
    mts=mt(),
    policies=policy(),
    applies=apply_policy(),
    arbitration=rule(
        '<task-priorities><task-priority name="A" priority="0"/></task-priorities>'
        '<policy-priorities><policy-priority name="P" priority="0"/></policy-priorities>'
    ),
)


def tiny_workflow(*tasks: tuple[str, int, bool]) -> WorkflowSpec:
    """Tasks as (name, nprocs, autostart) triples on one workflow."""
    return WorkflowSpec(
        workflow_id="W",
        tasks=[
            TaskSpec(name=name, app=None, nprocs=n, autostart=auto)
            for name, n, auto in tasks
        ],
    )


def codes_of(xml: str, machine=None, workflow=None) -> dict[str, list]:
    out: dict[str, list] = {}
    for d in lint_xml_text(xml, machine=machine, workflow=workflow):
        out.setdefault(d.code, []).append(d)
    return out


def assert_triggers(diags: dict[str, list], code: str, loc_fragment: str) -> None:
    assert code in diags, f"{code} not triggered; got {sorted(diags)}"
    locations = [str(d.location) for d in diags[code]]
    assert any(loc_fragment in loc for loc in locations), (
        f"{code} fired at {locations}, expected a location containing "
        f"{loc_fragment!r}"
    )


# --------------------------------------------------------------------------- #
# the corpus: (code, expected location fragment, trigger, clean near-miss)
# each entry is a callable pair so machine/workflow context can differ
# --------------------------------------------------------------------------- #
DT2_ONE_NODE = deepthought2(num_nodes=1)  # 20 cores on one node

CORPUS = {
    "DY100": dict(
        loc="dyflow",
        trigger=lambda: codes_of("<dyflow><monitor></dyflow>"),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY101": dict(
        loc="monitor-task[@name='A']",
        trigger=lambda: codes_of(doc(sensors=sensor(), mts=mt(sid="NOPE"))),
        clean=lambda: codes_of(doc(sensors=sensor(), mts=mt())),
    ),
    "DY102": dict(
        loc="policy[@id='P']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(sid="NOPE"),
                applies=apply_policy())
        ),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY103": dict(
        loc="apply-policy[@policyId='NOPE']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(),
                applies=apply_policy() + apply_policy(pid="NOPE"))
        ),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY104": dict(
        loc="policy[@id='P']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(gran="node-task"),
                applies=apply_policy())
        ),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY105": dict(
        loc="rule-for[@workflowId='W']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(),
                applies=apply_policy(),
                arbitration=rule(
                    '<policy-priorities>'
                    '<policy-priority name="NOPE" priority="0"/>'
                    "</policy-priorities>"
                ))
        ),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY106": dict(
        loc="rule-for[@workflowId='W']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(),
                applies=apply_policy(),
                arbitration=rule(
                    '<task-priorities>'
                    '<task-priority name="GHOST" priority="0"/>'
                    "</task-priorities>"
                ))
        ),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY107": dict(
        loc="sensor[@id='S']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(extra='<join sensor-id="NOPE" operation="DIV"/>'),
                mts=mt(), policies=policy(), applies=apply_policy())
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(extra='<join sensor-id="S2" operation="DIV"/>')
                + sensor("S2"),
                mts=mt(), policies=policy(), applies=apply_policy())
        ),
    ),
    "DY108": dict(
        loc="sensor[@id='UNUSED']",
        trigger=lambda: codes_of(
            doc(sensors=sensor() + sensor("UNUSED"), mts=mt(),
                policies=policy(), applies=apply_policy())
        ),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY109": dict(
        loc="policy[@id='Q']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(),
                policies=policy() + policy(pid="Q", action="RECONFIG"),
                applies=apply_policy())
        ),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY110": dict(
        loc="monitor-task[@name='B']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt() + mt(task="B"),
                policies=policy(), applies=apply_policy()),
            workflow={"A"},
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt() + mt(task="B"),
                policies=policy(), applies=apply_policy()),
            workflow={"A", "B"},
        ),
    ),
    "DY111": dict(
        loc="apply-policy[@policyId='P']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(),
                applies=apply_policy(act="A GHOST")),
            workflow={"A"},
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(),
                applies=apply_policy(act="A GHOST")),
            workflow={"A", "GHOST"},
        ),
    ),
    "DY112": dict(
        loc="apply-policy[@policyId='P']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(),
                applies=apply_policy(assess="B"))
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt() + mt(task="B"),
                policies=policy(), applies=apply_policy(assess="B"))
        ),
    ),
    "DY201": dict(
        loc="dyflow",
        trigger=lambda: codes_of(
            CLEAN, machine=DT2_ONE_NODE,
            workflow=tiny_workflow(("A", 12, True), ("B", 12, True)),
        ),
        clean=lambda: codes_of(
            CLEAN, machine=DT2_ONE_NODE,
            workflow=tiny_workflow(("A", 8, True), ("B", 8, True)),
        ),
    ),
    "DY202": dict(
        loc="dyflow",
        trigger=lambda: codes_of(
            CLEAN, machine=DT2_ONE_NODE,
            workflow=tiny_workflow(("A", 30, False)),
        ),
        clean=lambda: codes_of(
            CLEAN, machine=DT2_ONE_NODE,
            workflow=tiny_workflow(("A", 10, False)),
        ),
    ),
    "DY203": dict(
        loc="apply-policy[@policyId='P']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(action="ADDCPU"),
                applies=apply_policy(params=(
                    '<action-params><param key="adjust-by" value="1000"/>'
                    "</action-params>"
                ))),
            machine=DT2_ONE_NODE,
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(action="ADDCPU"),
                applies=apply_policy(params=(
                    '<action-params><param key="adjust-by" value="2"/>'
                    "</action-params>"
                ))),
            machine=DT2_ONE_NODE,
        ),
    ),
    "DY205": dict(
        loc="dyflow",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(action="ADDCPU"),
                applies=apply_policy(params=(
                    '<action-params><param key="adjust-by" value="8"/>'
                    "</action-params>"
                ))),
            machine=DT2_ONE_NODE,
            workflow=tiny_workflow(("A", 12, True), ("B", 4, True)),
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(action="ADDCPU"),
                applies=apply_policy(params=(
                    '<action-params><param key="adjust-by" value="4"/>'
                    "</action-params>"
                ))),
            machine=DT2_ONE_NODE,
            workflow=tiny_workflow(("A", 12, True), ("B", 4, True)),
        ),
    ),
    "DY204": dict(
        loc="rule-for[@workflowId='W']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(),
                applies=apply_policy(),
                arbitration=rule(
                    '<task-dep name="A" parent="B" type="TIGHT"/>'
                    '<task-dep name="B" parent="A" type="TIGHT"/>'
                ))
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt() + mt(task="B"), policies=policy(),
                applies=apply_policy(),
                arbitration=rule('<task-dep name="A" parent="B" type="TIGHT"/>'))
        ),
    ),
    "DY301": dict(
        loc="policy[@id='Q']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(),
                policies=policy(pid="P", op="GT", thr="5")
                + policy(pid="Q", op="GT", thr="10"),
                applies=apply_policy(pid="P") + apply_policy(pid="Q"))
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(),
                policies=policy(pid="P", op="GT", thr="5")
                + policy(pid="Q", op="LT", thr="3"),
                applies=apply_policy(pid="P") + apply_policy(pid="Q"))
        ),
    ),
    "DY302": dict(
        loc="apply-policy[@policyId='P']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(),
                policies=policy(pid="P", op="GT", thr="5", action="STOP")
                + policy(pid="Q", op="GT", thr="8", action="START"),
                applies=apply_policy(pid="P") + apply_policy(pid="Q"))
        ),
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(),
                policies=policy(pid="P", op="GT", thr="5", action="STOP")
                + policy(pid="Q", op="GT", thr="8", action="START"),
                applies=apply_policy(pid="P") + apply_policy(pid="Q"),
                arbitration=rule(
                    "<policy-priorities>"
                    '<policy-priority name="P" priority="0"/>'
                    '<policy-priority name="Q" priority="1"/>'
                    "</policy-priorities>"
                ))
        ),
    ),
    "DY303": dict(
        loc="policy[@id='P']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(), policies=policy(thr="inf"),
                applies=apply_policy())
        ),
        clean=lambda: codes_of(CLEAN),
    ),
    "DY304": dict(
        loc="policy[@id='Q']",
        trigger=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(),
                policies=policy(pid="P", op="GT", thr="30", action="ADDCPU")
                + policy(pid="Q", op="GT", thr="50", action="RMCPU"),
                applies=apply_policy(pid="P") + apply_policy(pid="Q"),
                arbitration=rule(
                    "<policy-priorities>"
                    '<policy-priority name="P" priority="0"/>'
                    '<policy-priority name="Q" priority="1"/>'
                    "</policy-priorities>"
                ))
        ),
        # Priorities reversed: the narrow policy outranks the wide one,
        # so its action survives arbitration whenever both fire.
        clean=lambda: codes_of(
            doc(sensors=sensor(), mts=mt(),
                policies=policy(pid="P", op="GT", thr="30", action="ADDCPU")
                + policy(pid="Q", op="GT", thr="50", action="RMCPU"),
                applies=apply_policy(pid="P") + apply_policy(pid="Q"),
                arbitration=rule(
                    "<policy-priorities>"
                    '<policy-priority name="P" priority="1"/>'
                    '<policy-priority name="Q" priority="0"/>'
                    "</policy-priorities>"
                ))
        ),
    ),
    "DY401": dict(
        loc="resilience/retry",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><retry backoff-base="4.0" backoff-max="1.0"/>'
                "</resilience></dyflow>",
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><retry backoff-base="1.0" backoff-max="60.0"/>'
                "</resilience></dyflow>",
            )
        ),
    ),
    "DY402": dict(
        loc="resilience/watchdog",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><watchdog heartbeat-timeout="5.0" poll="10.0"/>'
                "</resilience></dyflow>",
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><watchdog heartbeat-timeout="120.0" poll="10.0"/>'
                "</resilience></dyflow>",
            )
        ),
    ),
    "DY403": dict(
        loc="journal",
        trigger=lambda: codes_of(
            CLEAN.replace("</dyflow>", '<journal fsync="bogus"/></dyflow>')
        ),
        clean=lambda: codes_of(
            CLEAN.replace("</dyflow>", '<journal fsync="batch"/></dyflow>')
        ),
    ),
    "DY404": dict(
        loc="observability",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<observability><slo metric="plan.response" stat="p95" '
                'op="BOGUS" threshold="60.0"/></observability></dyflow>',
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<observability><slo metric="plan.response" stat="p95" '
                'op="LT" threshold="60.0"/></observability></dyflow>',
            )
        ),
    ),
    "DY405": dict(
        loc="telemetry",
        trigger=lambda: codes_of(
            CLEAN.replace("</dyflow>", '<telemetry sample="2.0"/></dyflow>')
        ),
        clean=lambda: codes_of(
            CLEAN.replace("</dyflow>", '<telemetry sample="0.5"/></dyflow>')
        ),
    ),
    "DY406": dict(
        loc="resilience/quarantine",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><quarantine failures="3" window="600.0" '
                'cooldown="60.0"/></resilience></dyflow>',
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><quarantine failures="3" window="600.0" '
                'cooldown="1800.0"/></resilience></dyflow>',
            )
        ),
    ),
    "DY407": dict(
        loc="resilience",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><retry max-retries="-1"/></resilience></dyflow>',
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><retry max-retries="3"/></resilience></dyflow>',
            )
        ),
    ),
    "DY408": dict(
        loc="resilience/network",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><network drop-prob="0.1" max-retransmits="0"/>'
                "</resilience></dyflow>",
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><network drop-prob="0.1" max-retransmits="5"/>'
                "</resilience></dyflow>",
            )
        ),
    ),
    "DY410": dict(
        loc="tenants/tenant[1]",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<tenants nodes="2" cores-per-node="20">'
                '<tenant id="alice" quota-cores="40"/>'
                '<tenant id="bob" quota-cores="41"/>'
                "</tenants></dyflow>",
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<tenants nodes="2" cores-per-node="20">'
                '<tenant id="alice" quota-cores="40"/>'
                '<tenant id="bob" quota-cores="20"/>'
                "</tenants></dyflow>",
            )
        ),
    ),
    "DY411": dict(
        loc="tenants/executor",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<tenants nodes="2" cores-per-node="20">'
                '<tenant id="alice"/>'
                '<executor kill-prob="0.2" max-attempts="1"/>'
                "</tenants></dyflow>",
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<tenants nodes="2" cores-per-node="20">'
                '<tenant id="alice"/>'
                '<executor kill-prob="0.2" max-attempts="3"/>'
                "</tenants></dyflow>",
            )
        ),
    ),
    "DY412": dict(
        loc="observability/slo[0]",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<observability><slo metric="fleet.cell.latency" stat="p95" '
                'op="LT" threshold="120.0" tenant="mallory"/></observability>'
                '<tenants nodes="2" cores-per-node="20">'
                '<tenant id="alice"/>'
                "</tenants></dyflow>",
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<observability><slo metric="fleet.cell.latency" stat="p95" '
                'op="LT" threshold="120.0" tenant="alice"/></observability>'
                '<tenants nodes="2" cores-per-node="20">'
                '<tenant id="alice"/>'
                "</tenants></dyflow>",
            )
        ),
    ),
    "DY413": dict(
        loc="tenants",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<tenants nodes="2" cores-per-node="20">'
                '<tenant id="alice" quota-cores="30"/>'
                '<tenant id="bob" quota-cores="30"/>'
                "</tenants></dyflow>",
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<tenants nodes="2" cores-per-node="20">'
                '<tenant id="alice" quota-cores="20"/>'
                '<tenant id="bob" quota-cores="20"/>'
                "</tenants></dyflow>",
            )
        ),
    ),
    "DY409": dict(
        loc="resilience/network/partition[0]",
        trigger=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><watchdog heartbeat-timeout="120.0"/>'
                '<network><partition start="10.0" duration="300.0"/></network>'
                "</resilience></dyflow>",
            )
        ),
        clean=lambda: codes_of(
            CLEAN.replace(
                "</dyflow>",
                '<resilience><watchdog heartbeat-timeout="120.0"/>'
                '<network><partition start="10.0" duration="60.0"/></network>'
                "</resilience></dyflow>",
            )
        ),
    ),
}


@pytest.mark.parametrize("code", sorted(CORPUS))
def test_trigger_fires_exact_code_and_location(code):
    case = CORPUS[code]
    assert_triggers(case["trigger"](), code, case["loc"])


@pytest.mark.parametrize("code", sorted(CORPUS))
def test_clean_near_miss_does_not_fire(code):
    assert code not in CORPUS[code]["clean"]()


def test_corpus_covers_every_spec_code():
    spec_codes = {c for c, info in CODES.items() if info.engine == "spec"}
    assert spec_codes == set(CORPUS)


def test_clean_document_has_no_findings():
    assert codes_of(CLEAN) == {}


def test_diagnostics_are_deterministic():
    xml = CORPUS["DY302"]["trigger"]
    first = [d.format() for ds in xml().values() for d in ds]
    second = [d.format() for ds in xml().values() for d in ds]
    assert first == second


def test_verify_spec_matches_lint_xml_text():
    spec = parse_dyflow_xml(CLEAN)
    assert verify_spec(spec) == []


def test_severity_defaults_respected():
    diags = CORPUS["DY301"]["trigger"]()["DY301"]
    assert all(d.severity is Severity.WARNING for d in diags)
    diags = CORPUS["DY302"]["trigger"]()["DY302"]
    assert all(d.severity is Severity.ERROR for d in diags)
