"""The abstract-interpretation pass: witnesses, structured data, and the
flow-sensitive conditions behind DY205/DY304/DY413."""

from __future__ import annotations

import json

from repro.cluster.machine import deepthought2
from repro.lint import analyze_dataflow, render_json
from repro.xmlspec.parser import parse_dyflow_xml

from tests.lint.test_speclint_corpus import (
    CLEAN,
    apply_policy,
    codes_of,
    doc,
    mt,
    policy,
    rule,
    sensor,
    tiny_workflow,
)

DT2 = deepthought2(num_nodes=1)  # 20 cores


def addcpu_doc(adjust: int) -> str:
    return doc(
        sensors=sensor(), mts=mt(), policies=policy(action="ADDCPU"),
        applies=apply_policy(params=(
            f'<action-params><param key="adjust-by" value="{adjust}"/>'
            "</action-params>"
        )),
    )


DOMINATED = doc(
    sensors=sensor(), mts=mt(),
    policies=policy(pid="P", op="GT", thr="30", action="ADDCPU")
    + policy(pid="Q", op="GT", thr="50", action="RMCPU"),
    applies=apply_policy(pid="P") + apply_policy(pid="Q"),
    arbitration=rule(
        "<policy-priorities>"
        '<policy-priority name="P" priority="0"/>'
        '<policy-priority name="Q" priority="1"/>'
        "</policy-priorities>"
    ),
)

JOINT_QUOTAS = CLEAN.replace(
    "</dyflow>",
    '<tenants nodes="2" cores-per-node="20">'
    '<tenant id="alice" quota-cores="30"/>'
    '<tenant id="bob" quota-cores="30"/>'
    "</tenants></dyflow>",
)


def one(xml: str, code: str, **kw):
    diags = codes_of(xml, **kw)
    assert list(diags.get(code, [])), f"{code} missing; got {sorted(diags)}"
    assert len(diags[code]) == 1
    return diags[code][0]


# --------------------------------------------------------------------------- #
# DY205: the adjustment timeline
# --------------------------------------------------------------------------- #
class TestAdjustmentTimeline:
    WF = tiny_workflow(("A", 12, True), ("B", 4, True))

    def test_witness_walks_initial_grant_oversubscription(self):
        d = one(addcpu_doc(8), "DY205", machine=DT2, workflow=self.WF)
        events = [w.event for w in d.witness]
        assert events[0] == "initial placement"
        assert "ADDCPU granted" in events
        assert events[-1] == "oversubscribed"
        assert [w.step for w in d.witness] == list(range(len(d.witness)))

    def test_data_carries_the_core_counts(self):
        d = one(addcpu_doc(8), "DY205", machine=DT2, workflow=self.WF)
        assert d.datum("initial_cores") == "16"
        assert d.datum("capacity_cores") == "20"
        assert d.datum("peak_cores") == "24"

    def test_fitting_adjustment_is_silent(self):
        assert "DY205" not in codes_of(
            addcpu_doc(4), machine=DT2, workflow=self.WF
        )

    def test_needs_a_machine(self):
        assert "DY205" not in codes_of(addcpu_doc(8), workflow=self.WF)

    def test_tick_zero_overflow_left_to_dy201(self):
        over = tiny_workflow(("A", 30, True))
        diags = codes_of(addcpu_doc(8), machine=DT2, workflow=over)
        assert "DY201" in diags and "DY205" not in diags

    def test_analyze_dataflow_direct(self):
        spec = parse_dyflow_xml(addcpu_doc(8))
        diags = analyze_dataflow(spec, machine=DT2, workflow=self.WF)
        assert [d.code for d in diags] == ["DY205"]


# --------------------------------------------------------------------------- #
# DY304: priority domination
# --------------------------------------------------------------------------- #
class TestPriorityDomination:
    def test_witness_is_the_five_step_defeat(self):
        d = one(DOMINATED, "DY304")
        assert [w.event for w in d.witness] == [
            "metric sample",
            "both policies fire",
            "arbitration orders by priority",
            "conflicting action deferred",
            "generalizes",
        ]

    def test_data_names_both_policies(self):
        d = one(DOMINATED, "DY304")
        assert d.datum("policy_id") == "Q"
        assert d.datum("dominating_policy_id") == "P"
        assert "policy[@id='Q']" in str(d.location)

    def test_unranked_pair_is_dy302_not_dy304(self):
        diags = codes_of(DOMINATED.replace(
            '<policy-priority name="P" priority="0"/>'
            '<policy-priority name="Q" priority="1"/>',
            '<policy-priority name="P" priority="0"/>',
        ))
        assert "DY304" not in diags
        assert "DY302" in diags

    def test_history_window_decouples(self):
        windowed = DOMINATED.replace(
            '<policy id="Q">',
            '<policy id="Q"><history window="5" operation="AVG"/>',
        )
        assert "DY304" not in codes_of(windowed)

    def test_slower_outer_frequency_is_silent(self):
        # The wide policy evaluates less often: the narrow one can win a
        # Decision batch alone, so it is not unreachable.
        lazy = DOMINATED.replace(
            '<frequency seconds="5"/></policy><policy id="Q">',
            '<frequency seconds="60"/></policy><policy id="Q">',
            1,
        )
        assert "DY304" not in codes_of(lazy)


# --------------------------------------------------------------------------- #
# DY413: joint quota satisfiability
# --------------------------------------------------------------------------- #
class TestJointQuotas:
    def test_witness_accumulates_tenant_demand(self):
        d = one(JOINT_QUOTAS, "DY413")
        events = [w.event for w in d.witness]
        assert events[0] == "shared machine"
        assert events.count("tenant saturates quota") == 2
        assert events[-1] == "joint demand exceeds capacity"

    def test_data_carries_joint_and_capacity(self):
        d = one(JOINT_QUOTAS, "DY413")
        assert d.datum("joint_quota_cores") == "60"
        assert d.datum("capacity_cores") == "40"

    def test_uncapped_tenants_do_not_count(self):
        xml = JOINT_QUOTAS.replace('quota-cores="30"/>', "/>", 1)
        assert "DY413" not in codes_of(xml)

    def test_over_capacity_quota_left_to_dy410(self):
        xml = JOINT_QUOTAS.replace('quota-cores="30"', 'quota-cores="99"', 1)
        diags = codes_of(xml)
        assert "DY410" in diags and "DY413" not in diags


# --------------------------------------------------------------------------- #
# witness serialization
# --------------------------------------------------------------------------- #
def test_witness_round_trips_through_json():
    d = one(JOINT_QUOTAS, "DY413")
    blob = json.loads(render_json([d]))
    wit = blob["diagnostics"][0]["witness"]
    assert [w["event"] for w in wit] == [e.event for e in d.witness]
    assert blob["diagnostics"][0]["data"]["capacity_cores"] == "40"


def test_witness_steps_format_deterministically():
    d = one(DOMINATED, "DY304")
    lines = [w.format() for w in d.witness]
    assert lines[0].startswith("[0] metric sample")
    assert lines == [w.format() for w in one(DOMINATED, "DY304").witness]
