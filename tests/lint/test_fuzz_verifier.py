"""Property-based fuzzing of the spec verifier.

Two invariants, checked over specs drawn from the round-trip generator
(valid by construction) and over adversarially mutated XML documents:

* the verifier never crashes — every outcome is a (possibly empty)
  diagnostic list, with parse failures mapped to DY100;
* diagnostics are deterministic — two runs over the same input yield
  identical, sorted output, and the XML round trip preserves them.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import lint_xml_text, sort_diagnostics, verify_spec
from repro.lint.diagnostics import CODES
from repro.xmlspec import parse_dyflow_xml, write_dyflow_xml

from tests.xmlspec.test_roundtrip_property import dyflow_specs


def formatted(diags):
    return [d.format() for d in diags]


class TestGeneratedSpecs:
    @settings(max_examples=60, deadline=None)
    @given(dyflow_specs())
    def test_verifier_never_crashes(self, spec):
        diags = verify_spec(spec)
        assert all(d.code in CODES for d in diags)
        assert all(CODES[d.code].engine == "spec" for d in diags)

    @settings(max_examples=60, deadline=None)
    @given(dyflow_specs())
    def test_diagnostics_are_deterministic_and_sorted(self, spec):
        first = verify_spec(spec)
        second = verify_spec(spec)
        assert formatted(first) == formatted(second)
        assert formatted(first) == formatted(sort_diagnostics(first))

    @settings(max_examples=60, deadline=None)
    @given(dyflow_specs())
    def test_round_trip_preserves_diagnostics(self, spec):
        """Writing and re-parsing a spec must not change its findings."""
        before = verify_spec(spec)
        back = parse_dyflow_xml(write_dyflow_xml(spec), validate=False)
        after = verify_spec(back)
        assert formatted(after) == formatted(before)


# Deterministic text surgeries that turn a valid document into a
# plausibly broken one.  Each must leave *some* parseable-or-not text —
# the invariant under test is "no crash", not "still valid".
MUTATIONS = (
    lambda xml: xml.replace('sensor-id="', 'sensor-id="GHOST_', 1),
    lambda xml: xml.replace('policyId="', 'policyId="GHOST_', 1),
    lambda xml: xml.replace('workflowId="', 'workflowId="GHOST_', 1),
    lambda xml: xml.replace("threshold=\"", 'threshold="nonsense', 1),
    lambda xml: xml.replace("</dyflow>", ""),
    lambda xml: xml.replace("<decision>", "", 1),
    lambda xml: xml[: len(xml) // 2],
    lambda xml: xml.replace("<sensors>", "<sensors><sensor/>", 1),
)


class TestMutatedDocuments:
    @settings(max_examples=60, deadline=None)
    @given(dyflow_specs(), st.sampled_from(range(len(MUTATIONS))), st.data())
    def test_lint_survives_mutation(self, spec, which, data):
        xml = MUTATIONS[which](write_dyflow_xml(spec))
        if data.draw(st.booleans()):
            xml = MUTATIONS[data.draw(st.sampled_from(range(len(MUTATIONS))))](xml)
        first = lint_xml_text(xml, filename="fuzz.xml")
        second = lint_xml_text(xml, filename="fuzz.xml")
        assert formatted(first) == formatted(second)
        assert all(d.code in CODES for d in first)

    @settings(max_examples=30, deadline=None)
    @given(st.text(max_size=200))
    def test_lint_survives_garbage(self, text):
        diags = lint_xml_text(text, filename="garbage.xml")
        assert diags, "non-XML input must produce at least DY100"
        assert diags[0].code == "DY100"
