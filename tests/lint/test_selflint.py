"""Determinism self-lint: DY5xx corpus over synthetic source files, the
suppression syntax, and the proof that the repo passes its own checks."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import CODES, run_selflint
from repro.lint.selflint import lint_file, package_root


def lint_source(tmp_path: Path, source: str, rel: str = "core/mod.py") -> list:
    path = tmp_path / Path(rel).name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path, rel)


def codes_of(diags: list) -> set[str]:
    return {d.code for d in diags}


# --------------------------------------------------------------------------- #
# DY501: wall clock in deterministic paths
# --------------------------------------------------------------------------- #
class TestWallClock:
    def test_time_time_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()
        """)
        assert codes_of(diags) == {"DY501"}
        assert diags[0].location.line == 5

    def test_aliased_import_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time as _t

            def now():
                return _t.perf_counter()
        """)
        assert codes_of(diags) == {"DY501"}

    def test_from_import_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            from time import monotonic

            def now():
                return monotonic()
        """)
        assert codes_of(diags) == {"DY501"}

    def test_datetime_now_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            from datetime import datetime

            def today():
                return datetime.now()
        """)
        assert codes_of(diags) == {"DY501"}

    def test_sleep_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def nap():
                time.sleep(1)
        """)
        assert diags == []

    def test_telemetry_path_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()
        """, rel="telemetry/clock.py")
        assert diags == []

    def test_threaded_runtime_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.perf_counter()
        """, rel="runtime/threaded.py")
        assert diags == []

    def test_suppression_comment(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()  # lint: ignore[DY501] -- latency shim
        """)
        assert diags == []

    def test_suppression_is_code_specific(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()  # lint: ignore[DY502]
        """)
        assert codes_of(diags) == {"DY501"}


# --------------------------------------------------------------------------- #
# DY502: global/unseeded random
# --------------------------------------------------------------------------- #
class TestGlobalRandom:
    def test_import_random_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import random

            def roll():
                return random.random()
        """)
        assert "DY502" in codes_of(diags)

    def test_from_random_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            from random import choice
        """)
        assert codes_of(diags) == {"DY502"}

    def test_rng_module_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            import random
        """, rel="sim/rng.py")
        assert diags == []

    def test_numpy_generator_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
        """)
        assert diags == []


# --------------------------------------------------------------------------- #
# DY503: set iteration
# --------------------------------------------------------------------------- #
class TestSetIteration:
    def test_for_over_set_call_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            def emit(xs):
                for x in set(xs):
                    print(x)
        """)
        assert codes_of(diags) == {"DY503"}

    def test_for_over_set_literal_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            def emit():
                for x in {1, 2, 3}:
                    print(x)
        """)
        assert codes_of(diags) == {"DY503"}

    def test_comprehension_over_set_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            def emit(xs):
                return [x for x in set(xs)]
        """)
        assert codes_of(diags) == {"DY503"}

    def test_sorted_set_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            def emit(xs):
                for x in sorted(set(xs)):
                    print(x)
        """)
        assert diags == []

    def test_membership_test_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            def has(x, xs):
                return x in set(xs)
        """)
        assert diags == []


# --------------------------------------------------------------------------- #
# DY504: mutable module state in stage modules
# --------------------------------------------------------------------------- #
class TestStageModuleState:
    def test_module_dict_in_stage_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            CACHE = {}

            def get(k):
                return CACHE.get(k)
        """, rel="core/decision.py")
        assert codes_of(diags) == {"DY504"}

    def test_module_list_in_stage_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            PENDING = []
        """, rel="core/actuation.py")
        assert codes_of(diags) == {"DY504"}

    def test_immutable_constant_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            LEVELS = ("low", "high")
            LIMIT = 5
        """, rel="core/monitor.py")
        assert diags == []

    def test_dunder_all_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            __all__ = ["f"]

            def f():
                return 1
        """, rel="core/arbitration.py")
        assert diags == []

    def test_non_stage_module_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            CACHE = {}
        """, rel="util/cache.py")
        assert diags == []


# --------------------------------------------------------------------------- #
# the repo passes its own checks
# --------------------------------------------------------------------------- #
def test_repo_passes_selflint():
    diags = run_selflint()
    assert diags == [], "\n".join(d.format() for d in diags)


def test_selflint_is_deterministic():
    first = [d.format() for d in run_selflint()]
    second = [d.format() for d in run_selflint()]
    assert first == second


def test_package_root_is_repro():
    assert package_root().name == "repro"
    assert (package_root() / "lint" / "selflint.py").exists()


def test_self_codes_all_exercised():
    covered = {"DY501", "DY502", "DY503", "DY504"}
    assert covered == {c for c, info in CODES.items() if info.engine == "self"}


@pytest.mark.parametrize("code", ["DY501", "DY502", "DY503", "DY504"])
def test_locations_are_file_line(tmp_path, code):
    source = {
        "DY501": "import time\nx = time.time()\n",
        "DY502": "import random\n",
        "DY503": "for x in {1}:\n    pass\n",
        "DY504": "STATE = {}\n",
    }[code]
    rel = "core/decision.py" if code == "DY504" else "core/mod.py"
    diags = lint_source(tmp_path, source, rel=rel)
    hit = [d for d in diags if d.code == code]
    assert hit, diags
    assert hit[0].location.file == f"src/repro/{rel}"
    assert hit[0].location.line is not None
