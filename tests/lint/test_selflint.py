"""Determinism self-lint: DY5xx corpus over synthetic source files, the
suppression syntax, and the proof that the repo passes its own checks."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import CODES, run_selflint
from repro.lint.selflint import lint_file, package_root


def lint_source(tmp_path: Path, source: str, rel: str = "core/mod.py") -> list:
    path = tmp_path / Path(rel).name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path, rel)


def codes_of(diags: list) -> set[str]:
    return {d.code for d in diags}


# --------------------------------------------------------------------------- #
# DY501: wall clock in deterministic paths
# --------------------------------------------------------------------------- #
class TestWallClock:
    def test_time_time_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()
        """)
        assert codes_of(diags) == {"DY501"}
        assert diags[0].location.line == 5

    def test_aliased_import_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time as _t

            def now():
                return _t.perf_counter()
        """)
        assert codes_of(diags) == {"DY501"}

    def test_from_import_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            from time import monotonic

            def now():
                return monotonic()
        """)
        assert codes_of(diags) == {"DY501"}

    def test_datetime_now_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            from datetime import datetime

            def today():
                return datetime.now()
        """)
        assert codes_of(diags) == {"DY501"}

    def test_sleep_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def nap():
                time.sleep(1)
        """)
        assert diags == []

    def test_telemetry_path_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()
        """, rel="telemetry/clock.py")
        assert diags == []

    def test_threaded_runtime_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.perf_counter()
        """, rel="runtime/threaded.py")
        assert diags == []

    def test_suppression_comment(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()  # lint: ignore[DY501] -- latency shim
        """)
        assert diags == []

    def test_suppression_is_code_specific(self, tmp_path):
        # The DY502 suppression neither hides the DY501 finding nor
        # consumes itself, so it is additionally reported stale (DY510).
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()  # lint: ignore[DY502]
        """)
        assert codes_of(diags) == {"DY501", "DY510"}


# --------------------------------------------------------------------------- #
# DY502: global/unseeded random
# --------------------------------------------------------------------------- #
class TestGlobalRandom:
    def test_import_random_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import random

            def roll():
                return random.random()
        """)
        assert "DY502" in codes_of(diags)

    def test_from_random_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            from random import choice
        """)
        assert codes_of(diags) == {"DY502"}

    def test_rng_module_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            import random
        """, rel="sim/rng.py")
        assert diags == []

    def test_numpy_generator_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
        """)
        assert diags == []


# --------------------------------------------------------------------------- #
# DY503: set iteration
# --------------------------------------------------------------------------- #
class TestSetIteration:
    def test_for_over_set_call_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            def emit(xs):
                for x in set(xs):
                    print(x)
        """)
        assert codes_of(diags) == {"DY503"}

    def test_for_over_set_literal_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            def emit():
                for x in {1, 2, 3}:
                    print(x)
        """)
        assert codes_of(diags) == {"DY503"}

    def test_comprehension_over_set_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            def emit(xs):
                return [x for x in set(xs)]
        """)
        assert codes_of(diags) == {"DY503"}

    def test_sorted_set_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            def emit(xs):
                for x in sorted(set(xs)):
                    print(x)
        """)
        assert diags == []

    def test_membership_test_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            def has(x, xs):
                return x in set(xs)
        """)
        assert diags == []


# --------------------------------------------------------------------------- #
# DY504: mutable module state in stage modules
# --------------------------------------------------------------------------- #
class TestStageModuleState:
    def test_module_dict_in_stage_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            CACHE = {}

            def get(k):
                return CACHE.get(k)
        """, rel="core/decision.py")
        assert codes_of(diags) == {"DY504"}

    def test_module_list_in_stage_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            PENDING = []
        """, rel="core/actuation.py")
        assert codes_of(diags) == {"DY504"}

    def test_immutable_constant_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            LEVELS = ("low", "high")
            LIMIT = 5
        """, rel="core/monitor.py")
        assert diags == []

    def test_dunder_all_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            __all__ = ["f"]

            def f():
                return 1
        """, rel="core/arbitration.py")
        assert diags == []

    def test_non_stage_module_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            CACHE = {}
        """, rel="util/cache.py")
        assert diags == []


# --------------------------------------------------------------------------- #
# DY505: mutable class-level state in threading modules
# --------------------------------------------------------------------------- #
class TestThreadedClassState:
    def test_class_dict_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import threading

            class Pool:
                registry = {}
        """)
        assert codes_of(diags) == {"DY505"}
        assert "registry" in diags[0].message

    def test_class_list_factory_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import threading

            class Queue:
                pending: list = list()
        """)
        assert codes_of(diags) == {"DY505"}

    def test_instance_state_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import threading

            class Pool:
                def __init__(self):
                    self.registry = {}
        """)
        assert diags == []

    def test_immutable_class_attr_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import threading

            class Pool:
                LEVELS = ("low", "high")
                LIMIT = 4
        """)
        assert diags == []

    def test_dunder_slots_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import threading

            class Pool:
                __slots__ = ["a", "b"]
        """)
        assert diags == []

    def test_no_threading_import_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            class Pool:
                registry = {}
        """)
        assert diags == []


# --------------------------------------------------------------------------- #
# DY506: module-level file handles in fork modules
# --------------------------------------------------------------------------- #
class TestForkFileHandles:
    def test_module_open_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import multiprocessing

            LOG = open("campaign.log", "a")
        """)
        assert codes_of(diags) == {"DY506"}
        assert "LOG" in diags[0].message

    def test_open_inside_function_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import multiprocessing

            def dump(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
        """)
        assert diags == []

    def test_no_multiprocessing_import_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            LOG = open("campaign.log", "a")
        """)
        assert diags == []


# --------------------------------------------------------------------------- #
# DY507: RNG draws before the per-cell reseed in fork-worker entries
# --------------------------------------------------------------------------- #
def worker_module(body: str) -> str:
    """A module that spawns ``_worker`` as a fork-child, plus *body*."""
    return (
        """
        import multiprocessing

        def spawn(rng):
            p = multiprocessing.Process(target=_worker, args=(rng,))
            p.start()
        """
        + body
    )


class TestWorkerRng:
    def test_draw_before_reseed_triggers(self, tmp_path):
        diags = lint_source(tmp_path, worker_module("""
        def _worker(rng):
            jitter = rng.uniform(0.0, 1.0)
            rng.reseed("cell-0")
        """))
        assert codes_of(diags) == {"DY507"}
        assert "_worker" in diags[0].message

    def test_draw_with_no_reseed_triggers(self, tmp_path):
        diags = lint_source(tmp_path, worker_module("""
        def _worker(rng):
            return rng.choice([1, 2, 3])
        """))
        assert codes_of(diags) == {"DY507"}

    def test_draw_after_reseed_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, worker_module("""
        def _worker(rng):
            rng.reseed("cell-0")
            return rng.uniform(0.0, 1.0)
        """))
        assert diags == []

    def test_non_worker_function_exempt(self, tmp_path):
        diags = lint_source(tmp_path, worker_module("""
        def _worker(rng):
            rng.reseed("cell-0")

        def helper(rng):
            return rng.uniform(0.0, 1.0)
        """))
        assert diags == []


# --------------------------------------------------------------------------- #
# DY508: wall clock inside fork-worker entries
# --------------------------------------------------------------------------- #
class TestWorkerWallclock:
    def test_clock_in_worker_triggers_despite_file_exemption(self, tmp_path):
        # campaign/executor.py is DY501-exempt (the supervisor times out
        # real processes) — the exemption must not leak into the child.
        diags = lint_source(tmp_path, """
            import multiprocessing
            import time

            def _worker():
                return time.time()

            def spawn():
                multiprocessing.Process(target=_worker).start()
        """, rel="campaign/executor.py")
        assert codes_of(diags) == {"DY508"}

    def test_clock_in_supervisor_stays_exempt(self, tmp_path):
        diags = lint_source(tmp_path, """
            import multiprocessing
            import time

            def _worker():
                return 0

            def supervise():
                deadline = time.monotonic() + 5.0
                multiprocessing.Process(target=_worker).start()
        """, rel="campaign/executor.py")
        assert diags == []


# --------------------------------------------------------------------------- #
# DY509: blocking I/O on the sim tick path
# --------------------------------------------------------------------------- #
class TestTickPathIo:
    def test_open_in_sim_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            def tick(state):
                with open("trace.log", "a") as fh:
                    fh.write(repr(state))
        """, rel="sim/engine.py")
        assert codes_of(diags) == {"DY509"}

    def test_sleep_in_stage_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def settle():
                time.sleep(0.1)
        """, rel="core/decision.py")
        assert codes_of(diags) == {"DY509"}

    def test_subprocess_in_sim_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            import subprocess

            def probe():
                subprocess.run(["hostname"])
        """, rel="sim/engine.py")
        assert codes_of(diags) == {"DY509"}

    def test_open_off_tick_path_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            def dump(state):
                with open("trace.log", "a") as fh:
                    fh.write(repr(state))
        """, rel="journal/store.py")
        assert diags == []


# --------------------------------------------------------------------------- #
# DY510: stale suppressions
# --------------------------------------------------------------------------- #
class TestStaleSuppression:
    def test_unconsumed_suppression_triggers(self, tmp_path):
        diags = lint_source(tmp_path, """
            x = 1  # lint: ignore[DY501]
        """)
        assert codes_of(diags) == {"DY510"}
        assert "DY501" in diags[0].message

    def test_consumed_suppression_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()  # lint: ignore[DY501]
        """)
        assert diags == []

    def test_partially_consumed_list_flags_the_stale_code(self, tmp_path):
        diags = lint_source(tmp_path, """
            import time

            def now():
                return time.time()  # lint: ignore[DY501, DY503]
        """)
        assert codes_of(diags) == {"DY510"}
        assert "DY503" in diags[0].message

    def test_dy510_itself_is_suppressible_only_by_real_findings(self, tmp_path):
        # Two stale comments produce two independent findings.
        diags = lint_source(tmp_path, """
            x = 1  # lint: ignore[DY501]
            y = 2  # lint: ignore[DY502]
        """)
        assert [d.code for d in diags] == ["DY510", "DY510"]


# --------------------------------------------------------------------------- #
# the repo passes its own checks
# --------------------------------------------------------------------------- #
def test_repo_passes_selflint():
    diags = run_selflint()
    assert diags == [], "\n".join(d.format() for d in diags)


def test_selflint_is_deterministic():
    first = [d.format() for d in run_selflint()]
    second = [d.format() for d in run_selflint()]
    assert first == second


def test_package_root_is_repro():
    assert package_root().name == "repro"
    assert (package_root() / "lint" / "selflint.py").exists()


def test_self_codes_all_exercised():
    covered = {
        "DY501", "DY502", "DY503", "DY504", "DY505",
        "DY506", "DY507", "DY508", "DY509", "DY510",
    }
    assert covered == {c for c, info in CODES.items() if info.engine == "self"}


LOCATION_SOURCES = {
    "DY501": ("core/mod.py", "import time\nx = time.time()\n"),
    "DY502": ("core/mod.py", "import random\n"),
    "DY503": ("core/mod.py", "for x in {1}:\n    pass\n"),
    "DY504": ("core/decision.py", "STATE = {}\n"),
    "DY505": ("core/mod.py", "import threading\nclass C:\n    s = {}\n"),
    "DY506": ("core/mod.py", "import multiprocessing\nF = open('x')\n"),
    "DY507": (
        "core/mod.py",
        "import multiprocessing\n"
        "def w(r):\n    r.uniform(0, 1)\n"
        "multiprocessing.Process(target=w)\n",
    ),
    "DY508": (
        "campaign/executor.py",
        "import multiprocessing\nimport time\n"
        "def w():\n    time.time()\n"
        "multiprocessing.Process(target=w)\n",
    ),
    "DY509": ("sim/engine.py", "def t():\n    open('x')\n"),
    "DY510": ("core/mod.py", "x = 1  # lint: ignore[DY502]\n"),
}


@pytest.mark.parametrize("code", sorted(LOCATION_SOURCES))
def test_locations_are_file_line(tmp_path, code):
    rel, source = LOCATION_SOURCES[code]
    diags = lint_source(tmp_path, source, rel=rel)
    hit = [d for d in diags if d.code == code]
    assert hit, diags
    assert hit[0].location.file == f"src/repro/{rel}"
    assert hit[0].location.line is not None
