"""Property-based guarantees of the auto-fix engine.

Hypothesis composes spec documents from the corpus building blocks —
dangling references, dead constructs, subsumed policies, out-of-range
parameters, in every combination — and checks the engine's contract on
each: fixing is **idempotent** (a fixed document re-fixes to itself,
byte for byte), **parse-preserving** (the output of a successful fix
always re-parses), **convergent** (no fixable finding survives in the
output), and **conservative** (a document with nothing fixable comes
back as the same string object)."""

from __future__ import annotations

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import FIXABLE_CODES, fix_xml_text, lint_xml_text
from repro.xmlspec.parser import parse_dyflow_xml

from tests.lint.test_speclint_corpus import (
    CLEAN,
    apply_policy,
    doc,
    mt,
    policy,
    sensor,
)

SPEC_DIR = Path(__file__).parent.parent.parent / "examples" / "specs"

ACTIONS = ("STOP", "RESTART", "ADDCPU", "RMCPU", "RECONFIG")
SENSOR_IDS = ("S", "S2", "GHOST")
TASKS = ("A", "B")


@st.composite
def spec_documents(draw) -> str:
    """A well-formed <dyflow> document with arbitrary cross-reference
    health: any mix of dead sensors, orphan or subsumed policies, unfed
    applications, and out-of-range parameters."""
    sensor_ids = draw(
        st.lists(st.sampled_from(SENSOR_IDS), unique=True, min_size=1, max_size=3)
    )
    sensors = "".join(sensor(sid) for sid in sensor_ids)

    fed_tasks = draw(
        st.lists(st.sampled_from(TASKS), unique=True, min_size=0, max_size=2)
    )
    mts = "".join(
        mt(task=t, sid=draw(st.sampled_from(SENSOR_IDS))) for t in fed_tasks
    )

    n_policies = draw(st.integers(min_value=0, max_value=3))
    policies, applies = [], []
    for i in range(n_policies):
        pid = f"P{i}"
        policies.append(policy(
            pid=pid,
            op=draw(st.sampled_from(("GT", "LT"))),
            thr=str(draw(st.integers(min_value=0, max_value=20))),
            action=draw(st.sampled_from(ACTIONS)),
            sid=draw(st.sampled_from(SENSOR_IDS)),
        ))
        if draw(st.booleans()):
            applies.append(apply_policy(
                pid=pid,
                assess=draw(st.sampled_from(TASKS)),
                act=draw(st.sampled_from(TASKS)),
            ))

    extra = ""
    if draw(st.booleans()):
        sample = draw(st.sampled_from(("0.5", "1.0", "2.0", "8.0")))
        extra += f'<telemetry sample="{sample}"/>'
    if draw(st.booleans()):
        base = draw(st.sampled_from(("1.0", "2.0", "4.0")))
        cap = draw(st.sampled_from(("0.5", "1.0", "60.0")))
        extra += (
            f'<resilience><retry backoff-base="{base}" '
            f'backoff-max="{cap}"/></resilience>'
        )

    return doc(
        sensors=sensors, mts=mts,
        policies="".join(policies), applies="".join(applies),
        extra=extra,
    )


def fixable_codes_in(text: str) -> set[str]:
    return {d.code for d in lint_xml_text(text) if d.code in FIXABLE_CODES}


@settings(max_examples=60, deadline=None)
@given(spec_documents())
def test_fix_is_idempotent(xml):
    once = fix_xml_text(xml)
    twice = fix_xml_text(once.text)
    assert twice.text == once.text
    assert not twice.changed


@settings(max_examples=60, deadline=None)
@given(spec_documents())
def test_fix_preserves_parseability(xml):
    result = fix_xml_text(xml)
    parse_dyflow_xml(result.text, validate=False)  # must not raise


@settings(max_examples=60, deadline=None)
@given(spec_documents())
def test_fix_reaches_the_fixed_point(xml):
    result = fix_xml_text(xml)
    assert not fixable_codes_in(result.text)
    # Only fixable codes are ever claimed fixed (cascade rounds may fix
    # codes the initial lint could not yet see).
    assert {d.code for d in result.fixed} <= FIXABLE_CODES
    if result.changed:
        assert fixable_codes_in(xml), "a clean document was rewritten"


@settings(max_examples=60, deadline=None)
@given(spec_documents())
def test_clean_documents_come_back_byte_identical(xml):
    if fixable_codes_in(xml):
        return
    result = fix_xml_text(xml)
    assert result.text is xml


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(sorted(SPEC_DIR.glob("*.xml"), key=lambda p: p.name)))
def test_example_specs_fix_to_the_fixed_point(path):
    text = path.read_text(encoding="utf-8")
    result = fix_xml_text(text)
    assert not fixable_codes_in(result.text)
    refix = fix_xml_text(result.text)
    assert refix.text == result.text


def test_clean_corpus_document_is_byte_identical():
    assert fix_xml_text(CLEAN).text is CLEAN
