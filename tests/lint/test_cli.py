"""The ``python -m repro.lint`` command line: modes, formats, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.lint.cli import main

CLEAN_XML = (
    "<dyflow><monitor><sensors>"
    '<sensor id="S" type="DISKSCAN"><group-by>'
    '<group granularity="task" reduction-operation="MAX"/>'
    "</group-by></sensor></sensors><monitor-tasks>"
    '<monitor-task name="A" workflowId="W">'
    '<use-sensor sensor-id="S" info="x"/></monitor-task>'
    "</monitor-tasks></monitor><decision><policies>"
    '<policy id="P"><eval operation="GT" threshold="5"/>'
    '<sensors-to-use><use-sensor id="S" granularity="task"/></sensors-to-use>'
    '<action>STOP</action><frequency seconds="5"/></policy>'
    '</policies><apply-on workflowId="W">'
    '<apply-policy policyId="P" assess-task="A">'
    "<act-on-tasks> A </act-on-tasks></apply-policy>"
    "</apply-on></decision></dyflow>"
)

DEFECT_XML = CLEAN_XML.replace('sensor-id="S"', 'sensor-id="NOPE"')

WARNING_XML = CLEAN_XML.replace(
    "</sensors>",
    '<sensor id="UNUSED" type="DISKSCAN"><group-by>'
    '<group granularity="task" reduction-operation="MAX"/>'
    "</group-by></sensor></sensors>",
)


@pytest.fixture()
def clean_spec(tmp_path):
    p = tmp_path / "clean.xml"
    p.write_text(CLEAN_XML, encoding="utf-8")
    return p


@pytest.fixture()
def defect_spec(tmp_path):
    p = tmp_path / "defect.xml"
    p.write_text(DEFECT_XML, encoding="utf-8")
    return p


def test_clean_spec_exits_zero(clean_spec, capsys):
    assert main([str(clean_spec)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_defect_spec_exits_one(defect_spec, capsys):
    assert main([str(defect_spec)]) == 1
    out = capsys.readouterr().out
    assert "DY101" in out
    assert defect_spec.as_posix() in out


def test_warning_only_spec_exits_zero_by_default(tmp_path, capsys):
    p = tmp_path / "warn.xml"
    p.write_text(WARNING_XML, encoding="utf-8")
    assert main([str(p)]) == 0
    assert "DY108" in capsys.readouterr().out


def test_fail_on_warning(tmp_path, capsys):
    p = tmp_path / "warn.xml"
    p.write_text(WARNING_XML, encoding="utf-8")
    assert main([str(p), "--fail-on", "warning"]) == 1


def test_multiple_specs_aggregate(clean_spec, defect_spec, capsys):
    assert main([str(clean_spec), str(defect_spec)]) == 1
    assert "DY101" in capsys.readouterr().out


def test_json_output(defect_spec, capsys):
    assert main([str(defect_spec), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["error"] >= 1
    assert any(d["code"] == "DY101" for d in doc["diagnostics"])


def test_sarif_output(defect_spec, capsys):
    assert main([str(defect_spec), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert any(r["ruleId"] == "DY101" for r in doc["runs"][0]["results"])


def test_output_file(defect_spec, tmp_path, capsys):
    out = tmp_path / "report.sarif"
    assert main([str(defect_spec), "--format", "sarif", "--output", str(out)]) == 1
    assert capsys.readouterr().out == ""
    assert json.loads(out.read_text())["version"] == "2.1.0"


def test_machine_enables_resource_checks(tmp_path, capsys):
    xml = CLEAN_XML.replace("<action>STOP</action>", "<action>ADDCPU</action>").replace(
        "</act-on-tasks>",
        "</act-on-tasks><action-params>"
        '<param key="adjust-by" value="100000"/></action-params>',
    )
    p = tmp_path / "big.xml"
    p.write_text(xml, encoding="utf-8")
    assert main([str(p)]) == 0  # no machine model, nothing to check against
    assert main([str(p), "--machine", "summit"]) == 1
    assert "DY203" in capsys.readouterr().out


def test_malformed_xml_reports_dy100(tmp_path, capsys):
    p = tmp_path / "broken.xml"
    p.write_text("<dyflow><monitor>", encoding="utf-8")
    assert main([str(p)]) == 1
    assert "DY100" in capsys.readouterr().out


def test_self_mode_passes_on_repo(capsys):
    assert main(["--self"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_self_mode_sarif_on_repo(capsys):
    assert main(["--self", "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"] == []


def test_self_mode_custom_root(tmp_path, capsys):
    bad = tmp_path / "core"
    bad.mkdir()
    (bad / "mod.py").write_text("import random\n", encoding="utf-8")
    assert main(["--self", "--root", str(tmp_path)]) == 1
    assert "DY502" in capsys.readouterr().out


def test_fix_repairs_in_place_and_exits_zero(tmp_path, capsys):
    p = tmp_path / "warn.xml"
    p.write_text(WARNING_XML, encoding="utf-8")
    assert main([str(p), "--fix", "--fail-on", "warning"]) == 0
    out = capsys.readouterr().out
    assert "[fixed:" in out
    assert "DY108" in out
    # The file was rewritten; a plain re-lint is now clean.
    assert main([str(p), "--fail-on", "warning"]) == 0


def test_fix_leaves_clean_files_untouched(clean_spec, capsys):
    before = clean_spec.read_bytes()
    assert main([str(clean_spec), "--fix"]) == 0
    assert clean_spec.read_bytes() == before
    assert "no findings" in capsys.readouterr().out


def test_fix_counts_only_unfixed_findings(tmp_path, capsys):
    # An unfixable error alongside a fixable warning: exit reflects
    # only what remains after fixing.
    xml = WARNING_XML.replace('sensor-id="S"', 'sensor-id="NOPE"')
    p = tmp_path / "mixed.xml"
    p.write_text(xml, encoding="utf-8")
    assert main([str(p), "--fix"]) == 1
    assert "DY101" in capsys.readouterr().out


def test_fix_demo_spec_converges_in_one_invocation(tmp_path, capsys):
    import pathlib

    demo = (
        pathlib.Path(__file__).parent.parent.parent
        / "examples" / "specs" / "dirty_lint_demo.xml"
    )
    p = tmp_path / "demo.xml"
    p.write_text(demo.read_text(encoding="utf-8"), encoding="utf-8")
    assert main([str(p), "--fix", "--fail-on", "warning"]) == 0
    assert main([str(p), "--fail-on", "warning"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_fix_with_self_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        main(["--self", "--fix"])
    assert exc.value.code == 2


def test_no_arguments_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2


def test_self_with_specs_is_usage_error(clean_spec):
    with pytest.raises(SystemExit) as exc:
        main(["--self", str(clean_spec)])
    assert exc.value.code == 2


def test_missing_file_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as exc:
        main([str(tmp_path / "absent.xml")])
    assert exc.value.code == 2
