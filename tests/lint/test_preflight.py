"""Pre-flight verification wired into both runtimes.

The acceptance bar: a defect spec is rejected under ``preflight="strict"``
before tick zero (typed :class:`VerificationError`, nothing started),
``warn`` surfaces the same findings without stopping the run, and a
clean spec runs bit-identically — same scenario fingerprint — with
preflight on or off.
"""

from __future__ import annotations

import warnings

import pytest

from repro.apps import AmdahlModel, ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.core import ActionType, GroupBySpec, PolicyApplication, PolicySpec, SensorSpec
from repro.errors import LintError, VerificationError
from repro.experiments import run_gray_scott_experiment
from repro.journal import scenario_fingerprint
from repro.lint import PreflightWarning, spec_from_orchestrator, spec_from_threaded
from repro.runtime import DyflowOrchestrator, LiveTaskSpec, RuntimeOptions, ThreadedDyflow
from repro.sim import RngRegistry, SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec


def make_launcher(num_nodes=4):
    eng = SimEngine()
    m = summit(num_nodes)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    tasks = [
        TaskSpec("Sim", lambda: IterativeApp(ConstantModel(8.0), total_steps=40), nprocs=40),
        TaskSpec("Ana", lambda: IterativeApp(AmdahlModel(serial=4, parallel=240)), nprocs=12),
    ]
    wf = WorkflowSpec("W", tasks, [DependencySpec("Ana", "Sim", CouplingType.TIGHT)])
    return eng, Savanna(eng, wf, alloc, rng=RngRegistry(1))


def wire_clean(orch):
    orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task("Ana", "PACE", var="looptime")
    orch.add_policy(PolicySpec("INC", "PACE", "GT", 12.0, ActionType.ADDCPU,
                               history_window=4, history_op="AVG", frequency=5.0))
    orch.apply_policy(PolicyApplication("INC", "W", ("Ana",), assess_task="Ana",
                                        action_params={"adjust-by": 12}))


def wire_defective(orch):
    """Policy INC assesses Sim via PACE, but only Ana is monitored: the
    policy can never fire (DY112)."""
    orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task("Ana", "PACE", var="looptime")
    orch.add_policy(PolicySpec("INC", "PACE", "GT", 12.0, ActionType.ADDCPU))
    orch.apply_policy(PolicyApplication("INC", "W", ("Sim",), assess_task="Sim",
                                        action_params={"adjust-by": 12}))


class TestOrchestratorPreflight:
    def test_strict_rejects_defect_before_tick_zero(self):
        eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav, options=RuntimeOptions(preflight="strict"))
        wire_defective(orch)
        with pytest.raises(VerificationError) as exc:
            orch.start()
        assert any(d.code == "DY112" for d in exc.value.diagnostics)
        # nothing started: the service loop never registered an event
        assert not orch._running
        assert eng.now == 0.0

    def test_strict_accepts_clean_spec(self):
        eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav, warmup=40.0, settle=40.0,
                                  options=RuntimeOptions(preflight="strict"))
        wire_clean(orch)
        sav.launch_workflow()
        orch.start(stop_when=sav.all_idle)
        eng.run(until=5000)
        assert sav.all_idle()
        assert sav.record("Ana").current.nprocs == 36

    def test_warn_mode_reports_and_continues(self):
        eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav, options=RuntimeOptions(preflight="warn"))
        wire_defective(orch)
        sav.launch_workflow()
        with pytest.warns(PreflightWarning, match="DY112"):
            orch.start(stop_when=sav.all_idle)
        assert orch._running

    def test_off_mode_runs_defect_silently(self):
        eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav)  # preflight defaults to "off"
        wire_defective(orch)
        sav.launch_workflow()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            orch.start(stop_when=sav.all_idle)
        assert orch._running

    def test_unknown_mode_rejected_at_construction(self):
        _eng, sav = make_launcher()
        with pytest.raises(LintError):
            DyflowOrchestrator(sav, options=RuntimeOptions(preflight="paranoid"))

    def test_spec_reconstruction(self):
        _eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav)
        wire_clean(orch)
        spec = spec_from_orchestrator(orch)
        assert set(spec.sensors) == {"PACE"}
        assert set(spec.policies) == {"INC"}
        assert [mt.task for mt in spec.monitor_tasks] == ["Ana"]
        deps = spec.rules["W"].dependencies
        assert [(d.task, d.parent) for d in deps] == [("Ana", "Sim")]


class TestThreadedPreflight:
    def tasks(self):
        return [LiveTaskSpec("T", lambda s, w: None, total_steps=2)]

    def make_runner(self, preflight="off"):
        return ThreadedDyflow("W", self.tasks(), poll_interval=0.05, warmup=0.2,
                              settle=0.2, options=RuntimeOptions(preflight=preflight))

    def test_strict_rejects_defect_before_start(self):
        run = self.make_runner(preflight="strict")
        run.add_sensor(SensorSpec("S", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        run.monitor_task("T", "S")
        run.add_policy(PolicySpec("P", "S", "GT", 1.0, ActionType.RMCPU))
        run.apply_policy(PolicyApplication("P", "W", ("T",), assess_task="Ghost"))
        with pytest.raises(VerificationError) as exc:
            run.start()
        assert any(d.code == "DY112" for d in exc.value.diagnostics)
        assert run._threads == []  # no stage thread ever started

    def test_strict_accepts_clean_run(self):
        run = self.make_runner(preflight="strict")
        run.add_sensor(SensorSpec("S", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        run.monitor_task("T", "S")
        run.start()
        try:
            assert run.wait_until_done(timeout=30.0)
        finally:
            run.stop()

    def test_unknown_mode_rejected(self):
        with pytest.raises(LintError):
            self.make_runner(preflight="always")

    def test_spec_reconstruction(self):
        run = self.make_runner()
        run.add_sensor(SensorSpec("S", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        run.monitor_task("T", "S")
        spec = spec_from_threaded(run)
        assert set(spec.sensors) == {"S"}
        assert [mt.task for mt in spec.monitor_tasks] == ["T"]


class TestBehavioralEquivalence:
    def test_same_seed_fingerprint_unchanged_by_preflight(self):
        ref = run_gray_scott_experiment(seed=0)
        res = run_gray_scott_experiment(seed=0, preflight="strict")
        assert scenario_fingerprint(res) == scenario_fingerprint(ref)
        assert res.makespan == ref.makespan
