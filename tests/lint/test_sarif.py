"""SARIF 2.1.0 output: schema validity, determinism, and content checks
for renderers across both engines, plus the JSON and text formats."""

from __future__ import annotations

import json

import jsonschema
import pytest

from repro.lint import (
    CODES,
    Severity,
    lint_xml_text,
    make,
    render,
    render_json,
    render_sarif,
    render_text,
)
from repro.errors import LintError

# A structural subset of the SARIF 2.1.0 schema covering everything the
# renderer emits.  additionalProperties stays open (SARIF is extensible)
# but every property we rely on is pinned to its spec-mandated shape.
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "level"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            },
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "fullyQualifiedName": {
                                                            "type": "string"
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

BAD_XML = (
    "<dyflow><monitor><sensors></sensors><monitor-tasks>"
    '<monitor-task name="A" workflowId="W">'
    '<use-sensor sensor-id="NOPE" info="x"/></monitor-task>'
    "</monitor-tasks></monitor></dyflow>"
)


@pytest.fixture()
def mixed_diags():
    return [
        make("DY101", "dangling sensor", xml_path="monitor/monitor-tasks"),
        make("DY301", "shadowed", xml_path="decision/policies/policy[@id='P']"),
        make("DY501", "wall clock", file="src/repro/core/decision.py", line=12),
    ]


def test_sarif_is_schema_valid(mixed_diags):
    doc = json.loads(render_sarif(mixed_diags))
    jsonschema.validate(doc, SARIF_SCHEMA)


def test_sarif_of_spec_lint_is_schema_valid():
    diags = lint_xml_text(BAD_XML, filename="bad.xml")
    assert diags
    jsonschema.validate(json.loads(render_sarif(diags)), SARIF_SCHEMA)


def test_sarif_empty_run_is_schema_valid():
    jsonschema.validate(json.loads(render_sarif([])), SARIF_SCHEMA)


def test_sarif_carries_full_rule_catalog(mixed_diags):
    doc = json.loads(render_sarif(mixed_diags))
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted(CODES)
    by_id = {r["id"]: r for r in rules}
    assert by_id["DY501"]["properties"]["engine"] == "self"
    assert by_id["DY101"]["properties"]["engine"] == "spec"


def test_sarif_rule_index_consistent(mixed_diags):
    doc = json.loads(render_sarif(mixed_diags))
    run = doc["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_sarif_level_mapping(mixed_diags):
    mixed_diags.append(make("DY108", "info-ish", xml_path="x", severity=Severity.INFO))
    doc = json.loads(render_sarif(mixed_diags))
    levels = {r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]}
    assert levels["DY101"] == "error"
    assert levels["DY301"] == "warning"
    assert levels["DY108"] == "note"


def test_sarif_locations(mixed_diags):
    doc = json.loads(render_sarif(mixed_diags))
    results = {r["ruleId"]: r for r in doc["runs"][0]["results"]}
    physical = results["DY501"]["locations"][0]["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == "src/repro/core/decision.py"
    assert physical["region"]["startLine"] == 12
    logical = results["DY101"]["locations"][0]["logicalLocations"][0]
    assert logical["fullyQualifiedName"] == "monitor/monitor-tasks"


def test_renderers_are_deterministic(mixed_diags):
    shuffled = list(reversed(mixed_diags))
    for fn in (render_text, render_json, render_sarif):
        assert fn(mixed_diags) == fn(shuffled)


def test_json_format(mixed_diags):
    doc = json.loads(render_json(mixed_diags))
    assert doc["schema"] == "dyflow-lint-report/1"
    assert doc["summary"] == {"error": 2, "warning": 1, "info": 0}
    assert len(doc["diagnostics"]) == 3
    # errors first, then the warning
    assert [d["severity"] for d in doc["diagnostics"]] == [
        "error", "error", "warning",
    ]


def test_text_format(mixed_diags):
    text = render_text(mixed_diags)
    assert "src/repro/core/decision.py:12: error DY501: wall clock" in text
    assert text.endswith("3 finding(s): 2 error(s), 1 warning(s), 0 info\n")
    assert render_text([]) == "no findings\n"


def test_sarif_fixes_objects(tmp_path):
    from repro.lint import fix_xml_text
    from tests.lint.test_speclint_corpus import (
        apply_policy, doc, mt, policy, sensor,
    )

    xml = doc(sensors=sensor() + sensor("DEAD"), mts=mt(),
              policies=policy(), applies=apply_policy())
    result = fix_xml_text(xml, filename="demo.xml")
    assert result.changed
    doc = json.loads(render_sarif(list(result.fixed) + list(result.remaining)))
    jsonschema.validate(doc, SARIF_SCHEMA)
    fixed = [r for r in doc["runs"][0]["results"] if "fixes" in r]
    assert fixed
    fix = fixed[0]["fixes"][0]
    assert fix["description"]["text"]
    change = fix["artifactChanges"][0]
    assert change["artifactLocation"] == {
        "uri": "demo.xml", "uriBaseId": "SRCROOT",
    }
    repl = change["replacements"][0]
    assert repl["deletedRegion"] == {"charOffset": 0, "charLength": len(xml)}
    assert repl["insertedContent"]["text"] == result.text


def test_sarif_and_text_carry_witness():
    from repro.cluster.machine import deepthought2
    from repro.wms.spec import TaskSpec, WorkflowSpec

    xml = BAD_XML.replace('sensor-id="NOPE"', 'sensor-id="S"').replace(
        "<sensors></sensors>",
        '<sensors><sensor id="S" type="DISKSCAN"><group-by>'
        '<group granularity="task" reduction-operation="MAX"/>'
        "</group-by></sensor></sensors>",
    ).replace(
        "</monitor></dyflow>",
        "</monitor><decision><policies>"
        '<policy id="P"><eval operation="GT" threshold="5"/>'
        '<sensors-to-use><use-sensor id="S" granularity="task"/>'
        "</sensors-to-use><action>ADDCPU</action>"
        '<frequency seconds="5"/></policy></policies>'
        '<apply-on workflowId="W">'
        '<apply-policy policyId="P" assess-task="A">'
        "<act-on-tasks> A </act-on-tasks><action-params>"
        '<param key="adjust-by" value="8"/></action-params>'
        "</apply-policy></apply-on></decision></dyflow>",
    )
    wf = WorkflowSpec(
        workflow_id="W",
        tasks=[TaskSpec(name="A", app=None, nprocs=16, autostart=True)],
    )
    diags = lint_xml_text(xml, machine=deepthought2(num_nodes=1), workflow=wf)
    dy205 = [d for d in diags if d.code == "DY205"]
    assert dy205 and dy205[0].witness
    sarif = json.loads(render_sarif(diags))
    results = [r for r in sarif["runs"][0]["results"] if r["ruleId"] == "DY205"]
    steps = results[0]["properties"]["witness"]
    assert steps == [w.format() for w in dy205[0].witness]
    text = render_text(diags)
    assert "witness" in text
    assert "oversubscribed" in text


def test_render_dispatch(mixed_diags):
    assert render(mixed_diags, "text") == render_text(mixed_diags)
    assert render(mixed_diags, "json") == render_json(mixed_diags)
    assert render(mixed_diags, "sarif") == render_sarif(mixed_diags)
    with pytest.raises(LintError):
        render(mixed_diags, "xml")
