"""The auto-fix engine: safe repairs, the fixed-point guarantee, and the
byte-identity guarantee for clean documents."""

from __future__ import annotations

from pathlib import Path

from repro.lint import FIXABLE_CODES, fix_spec, fix_xml_text, lint_xml_text
from repro.xmlspec.parser import parse_dyflow_xml

from tests.lint.test_speclint_corpus import (
    CLEAN,
    apply_policy,
    doc,
    mt,
    policy,
    sensor,
)

DEMO_SPEC = (
    Path(__file__).parent.parent.parent
    / "examples" / "specs" / "dirty_lint_demo.xml"
)


def fixable_findings(xml: str) -> set[str]:
    return {d.code for d in lint_xml_text(xml) if d.code in FIXABLE_CODES}


# --------------------------------------------------------------------------- #
# individual repairs
# --------------------------------------------------------------------------- #
class TestDeadConstructElimination:
    def test_dy108_removes_the_unused_sensor(self):
        xml = doc(sensors=sensor() + sensor("UNUSED"), mts=mt(),
                  policies=policy(), applies=apply_policy())
        result = fix_xml_text(xml)
        assert {d.code for d in result.fixed} == {"DY108"}
        spec = parse_dyflow_xml(result.text)
        assert set(spec.sensors) == {"S"}

    def test_dy109_removes_the_orphan_policy(self):
        xml = doc(sensors=sensor(), mts=mt(),
                  policies=policy() + policy(pid="ORPHAN", action="RECONFIG"),
                  applies=apply_policy())
        result = fix_xml_text(xml)
        assert {d.code for d in result.fixed} == {"DY109"}
        assert "ORPHAN" not in parse_dyflow_xml(result.text).policies

    def test_dy112_cascades_to_policy_and_sensor(self):
        # The unfed application is removed, stranding its policy, which
        # strands nothing else here but exercises the cascade rounds.
        xml = doc(sensors=sensor(), mts=mt(),
                  policies=policy() + policy(pid="COLD"),
                  applies=apply_policy()
                  + apply_policy(pid="COLD", assess="Missing"))
        result = fix_xml_text(xml)
        codes = {d.code for d in result.fixed}
        assert {"DY112", "DY109"} <= codes
        spec = parse_dyflow_xml(result.text)
        assert "COLD" not in spec.policies
        assert all(a.policy_id != "COLD" for a in spec.applications)
        assert result.rounds >= 2


class TestThresholdSubsumption:
    def covered(self) -> str:
        return doc(
            sensors=sensor(), mts=mt(),
            policies=policy(pid="P", op="GT", thr="5")
            + policy(pid="Q", op="GT", thr="10"),
            applies=apply_policy(pid="P") + apply_policy(pid="Q"),
        )

    def test_fully_covered_inner_policy_is_removed(self):
        result = fix_xml_text(self.covered())
        assert "DY301" in {d.code for d in result.fixed}
        assert "Q" not in parse_dyflow_xml(result.text).policies

    def test_partial_coverage_is_reported_not_fixed(self):
        # The inner policy acts on an extra task the outer does not
        # cover, so removal would drop a real effect.
        xml = doc(
            sensors=sensor(), mts=mt() + mt(task="B"),
            policies=policy(pid="P", op="GT", thr="5")
            + policy(pid="Q", op="GT", thr="10"),
            applies=apply_policy(pid="P") + apply_policy(pid="Q", act="A B"),
        )
        result = fix_xml_text(xml)
        assert "DY301" not in {d.code for d in result.fixed}
        assert "DY301" in {d.code for d in result.remaining}
        assert "Q" in parse_dyflow_xml(result.text).policies

    def test_different_params_block_the_removal(self):
        params = ('<action-params><param key="adjust-by" value="9"/>'
                  "</action-params>")
        xml = doc(
            sensors=sensor(), mts=mt(),
            policies=policy(pid="P", op="GT", thr="5", action="ADDCPU")
            + policy(pid="Q", op="GT", thr="10", action="ADDCPU"),
            applies=apply_policy(pid="P") + apply_policy(pid="Q", params=params),
        )
        result = fix_xml_text(xml)
        assert "DY301" not in {d.code for d in result.fixed}
        assert "Q" in parse_dyflow_xml(result.text).policies


class TestParamClamps:
    def test_dy401_raises_the_cap_to_the_base(self):
        xml = CLEAN.replace(
            "</dyflow>",
            '<resilience><retry backoff-base="4.0" backoff-max="1.0"/>'
            "</resilience></dyflow>",
        )
        result = fix_xml_text(xml)
        assert {d.code for d in result.fixed} == {"DY401"}
        retry = parse_dyflow_xml(result.text).resilience.retry
        assert retry.backoff_max == retry.backoff_base == 4.0

    def test_dy405_clamps_oversample_to_one(self):
        xml = CLEAN.replace("</dyflow>", '<telemetry sample="2.0"/></dyflow>')
        result = fix_xml_text(xml)
        assert {d.code for d in result.fixed} == {"DY405"}
        assert parse_dyflow_xml(result.text).telemetry.sample == 1.0

    def test_dy405_nonpositive_sample_is_not_fixed(self):
        # sample <= 0 has no faithful mechanical clamp: the author's
        # intent (off? typo?) is unknowable.
        xml = CLEAN.replace("</dyflow>", '<telemetry sample="0.0"/></dyflow>')
        result = fix_xml_text(xml)
        assert result.text is xml
        assert "DY405" in {d.code for d in result.remaining}


# --------------------------------------------------------------------------- #
# the guarantees
# --------------------------------------------------------------------------- #
class TestGuarantees:
    def test_clean_document_is_the_same_object(self):
        result = fix_xml_text(CLEAN)
        assert result.text is CLEAN
        assert not result.changed
        assert result.fixed == ()

    def test_fixed_document_relints_clean_of_fixed_codes(self):
        dirty = DEMO_SPEC.read_text(encoding="utf-8")
        result = fix_xml_text(dirty)
        fixed_codes = {d.code for d in result.fixed}
        assert fixed_codes == {"DY108", "DY109", "DY112", "DY301",
                               "DY401", "DY405"}
        assert not fixable_findings(result.text)

    def test_fix_is_idempotent(self):
        dirty = DEMO_SPEC.read_text(encoding="utf-8")
        once = fix_xml_text(dirty)
        twice = fix_xml_text(once.text)
        assert twice.text is once.text
        assert not twice.changed

    def test_every_fixed_diag_carries_the_replacement(self):
        dirty = DEMO_SPEC.read_text(encoding="utf-8")
        result = fix_xml_text(dirty)
        for d in result.fixed:
            assert d.fix is not None
            assert d.fix.replacement == result.text
            assert d.fix.span == len(dirty)
            assert d.fix.description

    def test_filename_is_threaded_into_locations(self):
        dirty = DEMO_SPEC.read_text(encoding="utf-8")
        result = fix_xml_text(dirty, filename="demo.xml")
        assert all(d.location.file == "demo.xml" for d in result.fixed)

    def test_unparseable_text_reports_dy100_untouched(self):
        result = fix_xml_text("<dyflow><monitor></dyflow>")
        assert result.text == "<dyflow><monitor></dyflow>"
        assert [d.code for d in result.remaining] == ["DY100"]
        assert result.fixed == ()

    def test_fix_spec_reports_rounds(self):
        spec = parse_dyflow_xml(
            DEMO_SPEC.read_text(encoding="utf-8"), validate=False
        )
        fixed, remaining, rounds = fix_spec(spec)
        assert fixed and rounds >= 2
        assert not {d.code for d in remaining} & FIXABLE_CODES

    def test_unfixable_codes_stay_in_remaining(self):
        xml = doc(sensors=sensor(), mts=mt(),
                  policies=policy(gran="node-task"), applies=apply_policy())
        result = fix_xml_text(xml)
        assert "DY104" in {d.code for d in result.remaining}
        assert result.text is xml
