"""Smoke tests: every example script runs end to end.

Examples are the public face of the library; they must not rot.  Each is
executed in-process via runpy (same interpreter, real execution).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None, capsys=None) -> str:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "workflow finished" in out
        assert "Analysis ended with 36 processes" in out

    def test_fusion_alternation(self, capsys):
        out = run_example("fusion_alternation.py", ["summit"], capsys=capsys)
        assert "global steps simulated: 502" in out
        assert "slower (paper: ~25%)" in out

    def test_insitu_rebalancing(self, capsys):
        out = run_example("insitu_rebalancing.py", ["summit"], capsys=capsys)
        assert "Isosurface -> 40 procs" in out
        assert "Isosurface -> 60 procs" in out
        assert "hit the walltime" in out

    def test_failure_recovery(self, capsys):
        out = run_example("failure_recovery.py", ["summit"], capsys=capsys)
        assert "resumed from checkpoint step 412" in out
        assert "never recovers" in out

    def test_campaign_sweep(self, capsys):
        out = run_example("campaign_sweep.py", capsys=capsys)
        assert out.count("converged") == 5

    def test_crash_resume(self, capsys, tmp_path):
        out = run_example("crash_resume.py", [str(tmp_path / "journal")], capsys=capsys)
        assert "controller crashes survived: 2" in out
        assert "RESUME OK" in out

    def test_reproduce_all_summit_only(self, capsys, monkeypatch):
        # Full reproduce_all runs both machines (~15 s); patch to Summit only.
        import repro.experiments.report as report_mod

        original = report_mod.build_report
        monkeypatch.setattr(
            report_mod, "build_report", lambda: original(machines=("summit",))
        )
        out = run_example("reproduce_all.py", capsys=capsys)
        assert "ALL SHAPES REPRODUCED" in out

    @pytest.mark.slow
    def test_live_gray_scott(self, capsys):
        out = run_example("live_gray_scott.py", capsys=capsys)
        assert "RESTART:Isosurface" in out
        assert "exit code 1" in out and "exit code 0" in out
