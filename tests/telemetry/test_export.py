"""Chrome trace_event export."""

import json

from repro.telemetry import Tracer, to_chrome_trace, write_chrome_trace
from repro.telemetry.export import chrome_trace_events


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_tracer() -> Tracer:
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("plan", "actuation", plan="P-1"):
        clock.now = 2.0
        op = tracer.start_span("op.stop", "actuation", task="FFT")
        clock.now = 5.0
        tracer.end_span(op)
        clock.now = 7.0
    return tracer


def test_events_are_complete_phase_microseconds():
    tracer = make_tracer()
    events = [e for e in chrome_trace_events(tracer.spans) if e["ph"] == "X"]
    assert len(events) == 2
    parent, child = events
    assert parent["name"] == "plan"
    assert parent["ts"] == 0.0
    assert parent["dur"] == 7.0 * 1e6
    assert child["ts"] == 2.0 * 1e6
    assert child["dur"] == 3.0 * 1e6
    assert parent["args"]["plan"] == "P-1"
    assert "wall_ms" in parent["args"]


def test_nested_spans_share_their_roots_track():
    tracer = make_tracer()
    events = [e for e in chrome_trace_events(tracer.spans) if e["ph"] == "X"]
    assert events[0]["tid"] == events[1]["tid"]


def test_timestamps_non_decreasing_with_parent_first():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    # Parent and child start together: the parent (longer) must sort first.
    with tracer.span("outer"):
        with tracer.span("inner"):
            clock.now = 1.0
        clock.now = 3.0
    events = [e for e in chrome_trace_events(tracer.spans) if e["ph"] == "X"]
    assert [e["name"] for e in events] == ["outer", "inner"]
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts)


def test_open_spans_export_as_begin_events():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    clock.now = 4.0
    tracer.start_span("never-closed", "actuation", task="FFT")
    events = chrome_trace_events(tracer.spans)
    assert [e for e in events if e["ph"] == "X"] == []
    (begin,) = [e for e in events if e["ph"] == "B"]
    assert begin["name"] == "never-closed"
    assert begin["ts"] == 4.0 * 1e6
    assert begin["args"]["incomplete"] is True
    assert begin["args"]["task"] == "FFT"
    assert "dur" not in begin


def test_open_span_children_stay_on_roots_track():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    outer = tracer.start_span("outer", "actuation")
    clock.now = 1.0
    inner = tracer.start_span("inner", "actuation", parent=outer)
    clock.now = 2.0
    tracer.end_span(inner)
    # outer never closes (e.g. crash mid-plan) but still anchors the track
    events = [e for e in chrome_trace_events(tracer.spans) if e["ph"] != "M"]
    assert [e["name"] for e in events] == ["outer", "inner"]
    assert events[0]["ph"] == "B"
    assert events[1]["ph"] == "X"
    assert events[0]["tid"] == events[1]["tid"]


def test_zero_duration_spans_get_minimum_visible_width():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("instant"):
        pass
    (event,) = [e for e in chrome_trace_events(tracer.spans) if e["ph"] == "X"]
    assert event["dur"] == 1.0


def test_metadata_names_process_and_tracks():
    tracer = make_tracer()
    meta = [e for e in chrome_trace_events(tracer.spans) if e["ph"] == "M"]
    names = {e["name"]: e["args"]["name"] for e in meta}
    assert names["process_name"] == "dyflow"
    assert "actuation" in names.values()


def test_document_shape_and_file_round_trip(tmp_path):
    tracer = make_tracer()
    doc = to_chrome_trace(tracer)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    path = str(tmp_path / "trace.json")
    assert write_chrome_trace(path, tracer) == path
    loaded = json.loads(open(path, encoding="utf-8").read())
    assert loaded["traceEvents"] == json.loads(json.dumps(doc["traceEvents"]))
    assert loaded["displayTimeUnit"] == "ms"


def test_accepts_plain_span_iterable():
    tracer = make_tracer()
    doc = to_chrome_trace(list(tracer.spans))
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
