"""Tracer spans: nesting, sampling, dual clocks, and the null twin."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    NULL_TRACER,
    JsonlEventLog,
    NullTracer,
    TelemetrySpec,
    Tracer,
    build_tracer,
)
from repro.telemetry.tracer import _DROPPED


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_span_context_manager_records_and_times():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("tick", "loop", n=3) as span:
        clock.now = 2.5
    assert span.end == 2.5
    assert span.duration == 2.5
    assert span.wall_duration >= 0.0
    assert span.attrs == {"n": 3}
    assert tracer.finished_spans("tick", "loop") == [span]


def test_nesting_via_with_blocks():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current_span() is inner
        assert tracer.current_span() is outer
    assert inner.parent_id == outer.span_id
    assert tracer.children_of(outer) == [inner]
    assert tracer.current_span() is None


def test_start_span_defaults_parent_to_current_with_span():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer") as outer:
        child = tracer.start_span("work")
        tracer.end_span(child, ok=True)
    assert child.parent_id == outer.span_id
    assert child.attrs == {"ok": True}


def test_end_span_is_idempotent_and_records_histogram():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    span = tracer.start_span("job")
    clock.now = 4.0
    tracer.end_span(span)
    clock.now = 9.0
    tracer.end_span(span)  # second close must not re-stamp
    assert span.end == 4.0
    hist = tracer.metrics.histogram("span.job")
    assert hist.count == 1
    assert hist.max == pytest.approx(4.0)


def test_open_span_duration_raises():
    tracer = Tracer(clock=FakeClock())
    span = tracer.start_span("open")
    assert span.open
    with pytest.raises(TelemetryError):
        _ = span.duration


def test_add_span_records_pre_timed_interval():
    tracer = Tracer(clock=FakeClock())
    root = tracer.start_span("plan")
    op = tracer.add_span("op.stop", "actuation", start=10.0, end=14.0,
                         parent=root, task="FFT")
    assert op.duration == 4.0
    assert op.parent_id == root.span_id
    assert op.attrs == {"task": "FFT"}
    assert tracer.metrics.histogram("span.op.stop").count == 1


def test_stride_sampling_keeps_exact_fraction_of_roots():
    tracer = Tracer(clock=FakeClock(), sample=0.25)
    kept = 0
    for _ in range(100):
        with tracer.span("root") as span:
            child = tracer.start_span("child")
            tracer.end_span(child)
        if span is not _DROPPED:
            kept += 1
    assert kept == 25
    # Children of dropped roots are dropped with them.
    assert len(tracer.finished_spans("child")) == 25


def test_sampling_never_drops_metrics():
    # Metric recording happens in the instrumented call sites, not the
    # tracer; but end_span on a dropped span must simply no-op.
    tracer = Tracer(clock=FakeClock(), sample=0.5)
    tracer.end_span(_DROPPED, extra=1)
    assert _DROPPED.attrs == {}  # the shared sentinel is never mutated


def test_invalid_sample_rejected():
    with pytest.raises(TelemetryError):
        Tracer(sample=0.0)
    with pytest.raises(TelemetryError):
        Tracer(sample=1.5)


def test_point_events_count_and_log():
    log = JsonlEventLog()
    clock = FakeClock()
    tracer = Tracer(clock=clock, log=log)
    clock.now = 3.0
    tracer.point("node_failure", "failure", node="n4")
    assert tracer.metrics.counter("event.node_failure").value == 1.0
    [record] = log.records("point")
    assert record["time"] == 3.0
    assert record["attrs"] == {"node": "n4"}


def test_finished_spans_sorted_by_start():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    clock.now = 5.0
    late = tracer.start_span("a")
    tracer.end_span(late)
    clock.now = 1.0
    early = tracer.start_span("a")
    tracer.end_span(early)
    assert tracer.finished_spans("a") == [early, late]


def test_jsonl_log_flush_to_file(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = JsonlEventLog(path)
    tracer = Tracer(clock=FakeClock(), log=log)
    with tracer.span("tick"):
        pass
    tracer.flush()
    tracer.flush()  # second flush appends nothing new
    lines = [ln for ln in open(path, encoding="utf-8").read().splitlines() if ln]
    assert len(lines) == 1
    assert '"kind":"span"' in lines[0]


def test_null_tracer_is_inert():
    null = NullTracer()
    assert not null.enabled
    with null.span("anything") as span:
        assert span is _DROPPED
    assert null.start_span("x") is _DROPPED
    assert null.add_span("y", start=0, end=1) is _DROPPED
    null.end_span(_DROPPED)
    null.point("p")
    assert null.spans == []
    assert null.finished_spans() == []
    assert null.current_span() is None
    assert null.metrics.counter("c").value == 0.0


def test_build_tracer_from_spec():
    assert build_tracer(None) is NULL_TRACER
    assert build_tracer(TelemetrySpec(enabled=False)) is NULL_TRACER
    clock = FakeClock()
    tracer = build_tracer(TelemetrySpec(sample=0.5), clock=clock)
    assert tracer.enabled
    assert tracer.sample == 0.5
    assert tracer.clock is clock
    with pytest.raises(TelemetryError):
        build_tracer(TelemetrySpec(sample=2.0))


def test_default_clock_is_relative_wall_time():
    tracer = Tracer()
    with tracer.span("t") as span:
        pass
    assert span.start >= 0.0
    assert span.duration >= 0.0
