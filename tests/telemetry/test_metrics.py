"""Counters, gauges, and latency histograms."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    MetricsRegistry,
    NullMetrics,
)


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("hits")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    g = reg.gauge("depth")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value == 3.0


def test_registry_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h") is reg.histogram("h")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.names() == ["a", "g", "h"]


def test_default_buckets_sorted_and_wide():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] == pytest.approx(1e-3)
    assert DEFAULT_BUCKETS[-1] == pytest.approx(5e3)


def test_histogram_percentiles_interpolate_and_clamp():
    h = LatencyHistogram("lat", buckets=(1.0, 10.0, 100.0))
    for v in (2.0, 3.0, 4.0, 5.0, 6.0):
        h.observe(v)
    assert h.count == 5
    assert h.mean == pytest.approx(4.0)
    # All observations share the (1, 10] bucket: estimates are clamped
    # to the observed [2, 6] range instead of being smeared to 10.
    assert 2.0 <= h.p50 <= 6.0
    assert 2.0 <= h.p99 <= 6.0
    assert h.p50 <= h.p95 <= h.p99


def test_histogram_overflow_bucket():
    h = LatencyHistogram("lat", buckets=(1.0,))
    h.observe(50.0)
    assert h.p99 == pytest.approx(50.0)
    assert h.max == 50.0


def test_histogram_empty_raises():
    h = LatencyHistogram("lat")
    with pytest.raises(TelemetryError):
        _ = h.p50
    with pytest.raises(TelemetryError):
        _ = h.mean


def test_histogram_rejects_bad_buckets_and_percentiles():
    with pytest.raises(TelemetryError):
        LatencyHistogram("bad", buckets=(5.0, 1.0))
    h = LatencyHistogram("lat")
    h.observe(1.0)
    with pytest.raises(TelemetryError):
        h.percentile(101.0)


def test_snapshot_shapes():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.gauge("g").set(7)
    reg.histogram("h").observe(0.5)
    snap = reg.snapshot()
    assert snap["c"] == {"type": "counter", "value": 1.0}
    assert snap["g"]["value"] == 7.0
    assert snap["h"]["count"] == 1
    assert set(snap["h"]) >= {"min", "max", "mean", "p50", "p95", "p99"}


def test_null_metrics_discards_everything():
    null = NullMetrics()
    null.counter("c").inc()
    null.gauge("g").set(9)
    null.histogram("h").observe(1.0)
    assert null.counter("c").value == 0.0
    assert null.histogram("h").count == 0
    assert null.counter("x") is null.histogram("y")  # shared singleton
