"""Tests for deterministic id generation."""

from repro.util import IdGenerator


def test_ids_are_sequential_per_prefix():
    gen = IdGenerator()
    assert gen.next("task") == "task-0"
    assert gen.next("task") == "task-1"
    assert gen.next("node") == "node-0"
    assert gen.next("task") == "task-2"


def test_peek_does_not_advance():
    gen = IdGenerator()
    assert gen.peek("x") == 0
    assert gen.peek("x") == 0
    gen.next("x")
    assert gen.peek("x") == 1


def test_reset_single_prefix():
    gen = IdGenerator()
    gen.next("a")
    gen.next("b")
    gen.reset("a")
    assert gen.next("a") == "a-0"
    assert gen.next("b") == "b-1"


def test_reset_all():
    gen = IdGenerator()
    gen.next("a")
    gen.next("b")
    gen.reset()
    assert gen.next("a") == "a-0"
    assert gen.next("b") == "b-0"
