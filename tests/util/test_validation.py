"""Tests for validation helpers."""

import pytest

from repro.util import check_in, check_nonneg, check_positive, check_type


def test_check_positive():
    check_positive(1, "x")
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive(0, "x")
    with pytest.raises(ValueError):
        check_positive(-1.5, "x")


def test_check_nonneg():
    check_nonneg(0, "x")
    with pytest.raises(ValueError, match="x must be >= 0"):
        check_nonneg(-0.1, "x")


def test_check_in():
    check_in("a", {"a", "b"}, "opt")
    with pytest.raises(ValueError, match="opt must be one of"):
        check_in("c", {"a", "b"}, "opt")


def test_check_type():
    check_type(3, int, "n")
    check_type("s", (int, str), "v")
    with pytest.raises(TypeError, match="n must be int"):
        check_type("3", int, "n")
