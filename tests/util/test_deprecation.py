"""Warn-once deprecation machinery (the shims themselves are gone)."""

import warnings

import pytest

from repro.util.deprecation import reset_warned, warn_once


@pytest.fixture(autouse=True)
def _fresh():
    reset_warned()
    yield
    reset_warned()


def test_warns_exactly_once_per_key():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_once("k1", "old thing")
        warn_once("k1", "old thing")
        warn_once("k1", "old thing")
    assert len(caught) == 1
    assert caught[0].category is DeprecationWarning
    assert "old thing" in str(caught[0].message)


def test_distinct_keys_each_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_once("a", "m")
        warn_once("b", "m")
    assert len(caught) == 2


def test_reset_warned_allows_rewarning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_once("k", "m")
        reset_warned()
        warn_once("k", "m")
    assert len(caught) == 2


class TestRemovedShims:
    """The PR 2 renamed-API shims were removed once callers migrated."""

    def test_monitor_receive_is_positional_only_api(self):
        from repro.core.monitor import MonitorServer
        from repro.util.jsonmsg import Envelope

        server = MonitorServer()
        env = Envelope(kind="sensor-update", sender="c/PACE", seq=0,
                       time=0.0, payload={"updates": []})
        with pytest.raises(TypeError):
            server.receive(env=env)  # the old keyword no longer exists
        server.receive(env)
        assert server.received == 1

    def test_monitor_receive_requires_an_envelope(self):
        from repro.core.monitor import MonitorServer

        server = MonitorServer()
        with pytest.raises(TypeError):
            server.receive()

    def test_threaded_shutdown_alias_removed(self):
        from repro.runtime.threaded import ThreadedDyflow

        runner = ThreadedDyflow("WF", tasks=[])
        assert not hasattr(runner, "shutdown")
