"""Tests for JSON envelopes and out-of-order filtering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util import Envelope, OutOfOrderFilter, SequenceTracker


class TestEnvelope:
    def test_round_trip(self):
        env = Envelope(kind="sensor-update", sender="client-0", seq=3, time=12.5,
                       payload={"metric": "PACE", "value": 36.2})
        back = Envelope.from_json(env.to_json())
        assert back == env

    def test_round_trip_empty_payload(self):
        env = Envelope(kind="status", sender="s", seq=0, time=0.0)
        assert Envelope.from_json(env.to_json()) == env

    def test_json_is_compact_and_sorted(self):
        env = Envelope(kind="k", sender="s", seq=1, time=1.0, payload={"b": 1, "a": 2})
        text = env.to_json()
        assert " " not in text
        assert text.index('"a"') < text.index('"b"')


class TestSequenceTracker:
    def test_per_sender_sequences(self):
        t = SequenceTracker()
        assert t.next_seq("a") == 0
        assert t.next_seq("a") == 1
        assert t.next_seq("b") == 0

    def test_stamp_builds_envelope(self):
        t = SequenceTracker()
        env = t.stamp("kind", "me", 5.0, {"x": 1})
        assert env.seq == 0 and env.sender == "me" and env.payload == {"x": 1}
        assert t.stamp("kind", "me", 6.0).seq == 1


class TestOutOfOrderFilter:
    def _env(self, sender, seq):
        return Envelope(kind="k", sender=sender, seq=seq, time=float(seq))

    def test_in_order_accepted(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 0))
        assert f.accept(self._env("a", 1))
        assert f.accepted == 2 and f.dropped == 0

    def test_stale_dropped(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 5))
        assert not f.accept(self._env("a", 5))
        assert not f.accept(self._env("a", 3))
        assert f.dropped == 2

    def test_senders_independent(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 9))
        assert f.accept(self._env("b", 0))

    def test_gaps_allowed(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 0))
        assert f.accept(self._env("a", 10))

    def test_reset_allows_new_epoch(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 7))
        assert not f.accept(self._env("a", 0))
        f.reset("a")
        assert f.accept(self._env("a", 0))

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60))
    def test_accepted_seqs_strictly_increasing(self, seqs):
        f = OutOfOrderFilter()
        accepted = [s for s in seqs if f.accept(self._env("x", s))]
        assert all(b > a for a, b in zip(accepted, accepted[1:]))
        assert f.accepted + f.dropped == len(seqs)
