"""Tests for JSON envelopes and out-of-order filtering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util import DedupFilter, Envelope, OutOfOrderFilter, SequenceTracker


class TestEnvelope:
    def test_round_trip(self):
        env = Envelope(kind="sensor-update", sender="client-0", seq=3, time=12.5,
                       payload={"metric": "PACE", "value": 36.2})
        back = Envelope.from_json(env.to_json())
        assert back == env

    def test_round_trip_empty_payload(self):
        env = Envelope(kind="status", sender="s", seq=0, time=0.0)
        assert Envelope.from_json(env.to_json()) == env

    def test_json_is_compact_and_sorted(self):
        env = Envelope(kind="k", sender="s", seq=1, time=1.0, payload={"b": 1, "a": 2})
        text = env.to_json()
        assert " " not in text
        assert text.index('"a"') < text.index('"b"')


class TestSequenceTracker:
    def test_per_sender_sequences(self):
        t = SequenceTracker()
        assert t.next_seq("a") == 0
        assert t.next_seq("a") == 1
        assert t.next_seq("b") == 0

    def test_stamp_builds_envelope(self):
        t = SequenceTracker()
        env = t.stamp("kind", "me", 5.0, {"x": 1})
        assert env.seq == 0 and env.sender == "me" and env.payload == {"x": 1}
        assert t.stamp("kind", "me", 6.0).seq == 1


class TestOutOfOrderFilter:
    def _env(self, sender, seq):
        return Envelope(kind="k", sender=sender, seq=seq, time=float(seq))

    def test_in_order_accepted(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 0))
        assert f.accept(self._env("a", 1))
        assert f.accepted == 2 and f.dropped == 0

    def test_stale_dropped(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 5))
        assert not f.accept(self._env("a", 5))
        assert not f.accept(self._env("a", 3))
        assert f.dropped == 2

    def test_senders_independent(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 9))
        assert f.accept(self._env("b", 0))

    def test_gaps_allowed(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 0))
        assert f.accept(self._env("a", 10))

    def test_reset_allows_new_epoch(self):
        f = OutOfOrderFilter()
        assert f.accept(self._env("a", 7))
        assert not f.accept(self._env("a", 0))
        f.reset("a")
        assert f.accept(self._env("a", 0))

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60))
    def test_accepted_seqs_strictly_increasing(self, seqs):
        f = OutOfOrderFilter()
        accepted = [s for s in seqs if f.accept(self._env("x", s))]
        assert all(b > a for a, b in zip(accepted, accepted[1:]))
        assert f.accepted + f.dropped == len(seqs)


def _env(sender, seq):
    return Envelope(kind="k", sender=sender, seq=seq, time=float(seq))


class TestFilterPublicApi:
    """senders()/reset_all(): the public surface MonitorServer uses on
    task restart instead of poking the private epoch map."""

    def test_senders_insertion_ordered(self):
        f = OutOfOrderFilter()
        for s, q in (("b", 0), ("a", 3), ("c", 1)):
            f.accept(_env(s, q))
        assert f.senders() == ("b", "a", "c")

    def test_reset_all_opens_new_epochs_keeps_counters(self):
        f = OutOfOrderFilter()
        assert f.accept(_env("a", 5))
        assert f.accept(_env("b", 9))
        assert not f.accept(_env("a", 5))
        f.reset_all()
        assert f.senders() == ()
        # New epoch numbering accepted for every sender...
        assert f.accept(_env("a", 0)) and f.accept(_env("b", 0))
        # ...while the lifetime counters persist across the reset.
        assert f.accepted == 4 and f.dropped == 1

    def test_state_dict_compatible_after_reset_all(self):
        f = OutOfOrderFilter()
        f.accept(_env("a", 2))
        f.reset_all()
        g = OutOfOrderFilter()
        g.load_state_dict(f.state_dict())
        assert g.senders() == () and g.accepted == 1


class TestOutOfOrderFilterAdversarial:
    """Exact accepted/dropped ledgers under hostile arrival orders."""

    def test_duplicate_burst_exact_counts(self):
        f = OutOfOrderFilter()
        results = [f.accept(_env("a", s)) for s in (0, 0, 0, 1, 1, 2, 2, 2, 2)]
        assert results == [True, False, False, True, False, True, False, False, False]
        assert f.accepted == 3 and f.dropped == 6

    def test_gap_then_late_arrival_dropped(self):
        # The monotone filter trades late data for monotonicity: a
        # delayed seq filling a gap is rejected.
        f = OutOfOrderFilter()
        assert f.accept(_env("a", 0))
        assert f.accept(_env("a", 4))
        assert not f.accept(_env("a", 2))
        assert f.accepted == 2 and f.dropped == 1

    def test_interleaved_senders_independent_ledgers(self):
        f = OutOfOrderFilter()
        seqs = [("a", 0), ("b", 5), ("a", 1), ("b", 5), ("a", 0), ("b", 6)]
        results = [f.accept(_env(s, q)) for s, q in seqs]
        assert results == [True, True, True, False, False, True]
        assert f.accepted == 4 and f.dropped == 2

    def test_epoch_reset_mid_stream(self):
        f = OutOfOrderFilter()
        f.accept(_env("a", 8))
        f.reset("a")
        assert f.accept(_env("a", 0))     # new epoch
        assert not f.accept(_env("a", 0))  # stale within the new epoch
        assert f.accepted == 2 and f.dropped == 1


class TestDedupFilter:
    def test_exactly_once_any_order(self):
        f = DedupFilter()
        order = [5, 2, 7, 0, 2, 5, 1, 7, 3]
        results = [f.accept(_env("a", s)) for s in order]
        assert results == [True, True, True, True, False, False, True, False, True]
        assert f.accepted == 6 and f.dropped == 3 and f.duplicates == 3

    def test_floor_compacts_as_gaps_fill(self):
        f = DedupFilter()
        for s in (0, 2, 3, 4):
            f.accept(_env("a", s))
        assert f._floor["a"] == 0 and f._seen["a"] == {2, 3, 4}
        f.accept(_env("a", 1))  # the gap fills: everything compacts
        assert f._floor["a"] == 4 and f._seen["a"] == set()
        assert not f.accept(_env("a", 3))  # below the floor: duplicate

    def test_interleaved_senders(self):
        f = DedupFilter()
        assert f.accept(_env("a", 0)) and f.accept(_env("b", 0))
        assert not f.accept(_env("a", 0))
        assert f.accept(_env("a", 1))
        assert f.senders() == ("a", "b")

    def test_reset_all_forgets_history(self):
        f = DedupFilter()
        f.accept(_env("a", 3))
        f.reset_all()
        assert f.accept(_env("a", 3))  # renumbered sender accepted again
        assert f.accepted == 2

    def test_state_round_trip_preserves_gap_set(self):
        f = DedupFilter()
        for s in (0, 5, 7):
            f.accept(_env("a", s))
        g = DedupFilter()
        g.load_state_dict(f.state_dict())
        assert not g.accept(_env("a", 5))   # sparse seen-set restored
        assert g.accept(_env("a", 6))       # the gap is still open
        assert not g.accept(_env("a", 0))   # floor restored

    @given(st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 20)),
                    min_size=1, max_size=80))
    def test_each_pair_accepted_exactly_once(self, msgs):
        f = DedupFilter()
        accepted = [(s, q) for s, q in msgs if f.accept(_env(s, q))]
        assert len(accepted) == len(set(accepted))      # never twice
        assert set(accepted) == set(msgs)               # never lost
        assert f.accepted + f.dropped == len(msgs)
