"""The cached envelope codec must be byte-identical to the canonical one.

``Envelope.to_json`` has a pre-tokenized fast path for sensor-update
payloads (``{"updates": [...]}``) plus a memo of the encoded string and
an advisory decoded-objects cache.  Every byte it emits must match
``json.dumps(..., sort_keys=True, separators=(",", ":"))`` exactly —
the journal hashes these strings, so a single byte of drift silently
breaks crash-resume fingerprints.
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.core.monitor import MetricUpdate
from repro.util.jsonmsg import Envelope


def canonical(env: Envelope) -> str:
    return json.dumps(
        {"kind": env.kind, "payload": env.payload, "sender": env.sender,
         "seq": env.seq, "time": env.time},
        sort_keys=True, separators=(",", ":"),
    )


scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),
    st.text(max_size=40),
)

update_dict = st.fixed_dictionaries({
    "granularity": st.text(max_size=10),
    "key": st.lists(st.text(max_size=8), max_size=3),
    "sensor_id": st.text(max_size=10),
    "step": st.one_of(st.none(), st.integers(0, 10**6)),
    "task": st.text(max_size=20),
    "time": st.floats(0, 1e9, allow_nan=False),
    "value": st.floats(allow_nan=False),
    "var": st.one_of(st.none(), st.text(max_size=10)),
    "workflow_id": st.text(max_size=20),
})


class TestFastPathByteEquality:
    @given(st.lists(update_dict, max_size=5), st.text(max_size=20),
           st.integers(0, 10**9), st.floats(0, 1e9, allow_nan=False))
    def test_update_payloads(self, updates, sender, seq, time):
        env = Envelope(kind="sensor-update", sender=sender, seq=seq,
                       time=time, payload={"updates": updates})
        assert env.to_json() == canonical(env)

    @given(st.dictionaries(st.text(max_size=10), scalar, max_size=4))
    def test_arbitrary_payloads_fall_back(self, payload):
        env = Envelope(kind="k", sender="s", seq=0, time=0.0, payload=payload)
        assert env.to_json() == canonical(env)

    def test_nonfinite_floats_match_json_dumps(self):
        for value in (float("inf"), float("-inf"), float("nan")):
            env = Envelope(kind="sensor-update", sender="s", seq=0, time=1.0,
                           payload={"updates": [{"granularity": "task",
                                                 "key": ["k"], "sensor_id": "S",
                                                 "step": 1, "task": "T",
                                                 "time": 1.0, "value": value,
                                                 "var": None,
                                                 "workflow_id": "W"}]})
            assert env.to_json() == canonical(env)

    def test_extra_or_missing_fields_fall_back(self):
        # A dict that is not exactly the update field table must take the
        # canonical path, still byte-identical.
        for d in (
            {"task": "T"},
            # a non-list key is not the hot-path shape
            {"granularity": "g", "key": "k", "sensor_id": "s", "step": 0,
             "task": "T", "time": 0.0, "value": 1.0, "var": None,
             "workflow_id": "W"},
            {"granularity": "g", "key": ["k"], "sensor_id": "s", "step": 0,
             "task": "T", "time": 0.0, "value": 1.0, "var": None,
             "workflow_id": "W", "extra": 1},
        ):
            env = Envelope(kind="sensor-update", sender="s", seq=0, time=0.0,
                           payload={"updates": [d]})
            assert env.to_json() == canonical(env)

    def test_escaped_strings(self):
        env = Envelope(kind="sensor-update", sender='cli"ent\n\\x',
                       seq=0, time=0.0,
                       payload={"updates": [{"granularity": "täsk",
                                             "key": ['a"b'], "sensor_id": "S",
                                             "step": None, "task": "\t",
                                             "time": 0.5, "value": 2.0,
                                             "var": "looptime",
                                             "workflow_id": "W"}]})
        assert env.to_json() == canonical(env)
        assert Envelope.from_json(env.to_json()) == env


class TestMemoization:
    def test_to_json_is_cached(self):
        env = Envelope(kind="k", sender="s", seq=1, time=2.0, payload={"a": 1})
        assert env.to_json() is env.to_json()

    def test_round_trip_of_memoized_string(self):
        env = Envelope(kind="sensor-update", sender="s", seq=3, time=4.5,
                       payload={"updates": [{"granularity": "task", "key": "T",
                                             "sensor_id": "S", "step": 2,
                                             "task": "T", "time": 4.0,
                                             "value": 1.5, "var": "looptime",
                                             "workflow_id": "W"}]})
        assert Envelope.from_json(env.to_json()) == env


class TestDecodedCache:
    def make_env(self):
        up = MetricUpdate(sensor_id="S", workflow_id="W", granularity="task",
                          key=("T",), task="T", var="looptime", value=1.0,
                          time=2.0, step=1)
        env = Envelope(kind="sensor-update", sender="c/S", seq=0, time=2.0,
                       payload={"updates": [up.to_dict()]})
        return env, up

    def test_attach_and_read_back(self):
        env, up = self.make_env()
        assert env.decoded() is None
        env.attach_decoded((up,))
        assert env.decoded() == (up,)

    def test_cache_does_not_survive_serialization(self):
        # The cache is in-process advisory state: a wire/journal round
        # trip must rebuild objects from the payload, not trust a stale
        # cache.
        env, up = self.make_env()
        env.attach_decoded((up,))
        back = Envelope.from_json(env.to_json())
        assert back.decoded() is None
        assert back == env

    def test_cached_objects_match_payload_decode(self):
        env, up = self.make_env()
        env.attach_decoded((up,))
        rebuilt = [MetricUpdate.from_dict(d) for d in env.payload["updates"]]
        assert list(env.decoded()) == rebuilt
