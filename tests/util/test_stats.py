"""Tests for sliding-window and running statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.util import RunningStats, SlidingWindow

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestSlidingWindow:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_empty_window_raises(self):
        w = SlidingWindow(3)
        for op in (w.mean, w.std, w.min, w.max, w.last, w.first):
            with pytest.raises(ReproError):
                op()

    def test_eviction_keeps_capacity(self):
        w = SlidingWindow(3)
        w.extend([1, 2, 3, 4, 5])
        assert w.values() == [3.0, 4.0, 5.0]
        assert len(w) == 3
        assert w.full

    def test_mean_over_window_only(self):
        w = SlidingWindow(2)
        w.extend([100, 1, 3])
        assert w.mean() == 2.0

    def test_first_last(self):
        w = SlidingWindow(4)
        w.extend([5, 6, 7])
        assert w.first() == 5.0
        assert w.last() == 7.0

    def test_trend_of_linear_series(self):
        w = SlidingWindow(10)
        w.extend([2 * i + 1 for i in range(10)])
        assert w.trend() == pytest.approx(2.0)

    def test_trend_of_constant_series_is_zero(self):
        w = SlidingWindow(5)
        w.extend([7, 7, 7, 7, 7])
        assert w.trend() == pytest.approx(0.0)

    def test_trend_needs_two_points(self):
        w = SlidingWindow(5)
        assert w.trend() == 0.0
        w.push(3)
        assert w.trend() == 0.0

    def test_clear(self):
        w = SlidingWindow(3)
        w.extend([1, 2])
        w.clear()
        assert len(w) == 0
        assert w.sum() == 0.0

    @given(st.lists(finite_floats, min_size=1, max_size=50), st.integers(1, 20))
    def test_aggregates_match_reference(self, values, cap):
        w = SlidingWindow(cap)
        w.extend(values)
        ref = values[-cap:]
        assert w.values() == pytest.approx(ref)
        assert w.mean() == pytest.approx(sum(ref) / len(ref), abs=1e-6)
        assert w.min() == pytest.approx(min(ref))
        assert w.max() == pytest.approx(max(ref))
        mean = sum(ref) / len(ref)
        var = sum((x - mean) ** 2 for x in ref) / len(ref)
        assert w.std() == pytest.approx(math.sqrt(var), abs=1e-4)

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    def test_trend_matches_polyfit(self, values):
        import numpy as np

        w = SlidingWindow(len(values))
        w.extend(values)
        ref = np.polyfit(np.arange(len(values)), np.asarray(values), 1)[0]
        assert w.trend() == pytest.approx(float(ref), abs=1e-3, rel=1e-3)


class TestRunningStats:
    def test_empty_raises(self):
        s = RunningStats()
        with pytest.raises(ReproError):
            _ = s.mean

    def test_single_value(self):
        s = RunningStats()
        s.push(4.0)
        assert s.mean == 4.0
        assert s.variance == 0.0
        assert s.min == s.max == 4.0

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_matches_numpy(self, values):
        import numpy as np

        s = RunningStats()
        for v in values:
            s.push(v)
        arr = np.asarray(values)
        assert s.count == len(values)
        assert s.mean == pytest.approx(float(arr.mean()), abs=1e-6)
        assert s.std == pytest.approx(float(arr.std(ddof=1)), abs=1e-4)
        assert s.min == float(arr.min())
        assert s.max == float(arr.max())
