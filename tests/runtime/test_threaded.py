"""Tests for the wall-clock threaded driver (real tasks, real time).

These run actual threads with sub-second workloads; they are the slowest
tests in the suite but each stays under a few wall seconds.
"""

import time

import pytest

from repro.core import ActionType, GroupBySpec, PolicyApplication, PolicySpec, SensorSpec
from repro.errors import DyflowError
from repro.runtime.threaded import LiveTaskSpec, ThreadedDyflow


def make_runner(tasks, **kw):
    defaults = dict(poll_interval=0.05, warmup=0.2, settle=0.2)
    defaults.update(kw)
    return ThreadedDyflow("LIVE", tasks, **defaults)


class TestLiveExecution:
    def test_tasks_run_to_completion(self):
        steps = []
        runner = make_runner([LiveTaskSpec("T", lambda s, w: steps.append(s), total_steps=5)])
        runner.start()
        assert runner.wait_until_done(timeout=10.0)
        runner.stop()
        assert steps == [0, 1, 2, 3, 4]
        status = runner.hub.filesystem.read("status/LIVE/T")
        assert status[-1]["code"] == 0

    def test_crash_recorded_as_nonzero_exit(self):
        def boom(step, _w):
            raise RuntimeError("x")

        runner = make_runner([LiveTaskSpec("T", boom, total_steps=5)])
        runner.start()
        assert runner.wait_until_done(timeout=10.0)
        runner.stop()
        assert runner.hub.filesystem.read("status/LIVE/T")[-1]["code"] == 1

    def test_pace_sensor_observes_real_looptimes(self):
        runner = make_runner(
            [LiveTaskSpec("T", lambda s, w: time.sleep(0.05), total_steps=8)]
        )
        runner.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        runner.monitor_task("T", "PACE")
        runner.start()
        assert runner.wait_until_done(timeout=10.0)
        time.sleep(0.2)  # let the monitor drain the last steps
        runner.stop()
        values = [u.value for u in runner.server.history if u.task == "T"]
        assert values and all(0.04 < v < 0.5 for v in values)

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(DyflowError):
            make_runner([LiveTaskSpec("T", lambda s, w: None),
                         LiveTaskSpec("T", lambda s, w: None)])


class TestLiveActions:
    def test_restart_on_failure(self):
        crashed = {"done": False}

        def flaky(step, _w):
            if step == 2 and not crashed["done"]:
                crashed["done"] = True
                raise RuntimeError("injected")
            time.sleep(0.02)

        # A long-lived companion keeps the run alive across the restart
        # gate (as the solver does in the live example).
        runner = make_runner([
            LiveTaskSpec("T", flaky, total_steps=6),
            LiveTaskSpec("BG", lambda s, w: time.sleep(0.05), total_steps=30),
        ])
        runner.add_sensor(SensorSpec("STATUS", "ERRORSTATUS", (GroupBySpec("task", "FIRST"),)))
        runner.monitor_task("T", "STATUS", var=None)
        runner.add_policy(
            PolicySpec("RESTART_ON_FAILURE", "STATUS", "GT", 0.0, ActionType.RESTART,
                       frequency=0.1)
        )
        runner.apply_policy(
            PolicyApplication("RESTART_ON_FAILURE", "LIVE", ("T",), assess_task="T")
        )
        runner.start()
        assert runner.wait_until_done(timeout=15.0)
        runner.stop()
        assert runner._incarnations["T"] == 2
        assert any("RESTART:T" in a for _t, a in runner.applied_actions)
        codes = [r["code"] for r in runner.hub.filesystem.read("status/LIVE/T")]
        assert codes == [1, 0]

    def test_addcpu_restarts_with_more_workers(self):
        seen_workers = []

        def work(step, nworkers):
            seen_workers.append(nworkers)
            time.sleep(0.05)

        runner = make_runner(
            [LiveTaskSpec("T", work, nworkers=1, total_steps=40)],
            warmup=0.1, settle=0.3,
        )
        runner.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        runner.monitor_task("T", "PACE")
        runner.add_policy(
            PolicySpec("INC", "PACE", "GT", 0.01, ActionType.ADDCPU,
                       history_window=2, history_op="AVG", frequency=0.2)
        )
        runner.apply_policy(
            PolicyApplication("INC", "LIVE", ("T",), assess_task="T",
                              action_params={"adjust-by": 2})
        )
        runner.start()
        time.sleep(2.0)
        runner.stop()
        assert max(seen_workers) >= 3  # at least one ADDCPU applied
        assert any("ADDCPU:T" in a for _t, a in runner.applied_actions)

    def test_warmup_gates_actions(self):
        def boom_once(step, _w):
            if step == 0:
                raise RuntimeError("dies instantly")

        runner = make_runner([LiveTaskSpec("T", boom_once, total_steps=3)],
                             warmup=60.0)
        runner.add_sensor(SensorSpec("STATUS", "ERRORSTATUS", (GroupBySpec("task", "FIRST"),)))
        runner.monitor_task("T", "STATUS", var=None)
        runner.add_policy(
            PolicySpec("R", "STATUS", "GT", 0.0, ActionType.RESTART, frequency=0.1)
        )
        runner.apply_policy(PolicyApplication("R", "LIVE", ("T",), assess_task="T"))
        runner.start()
        time.sleep(1.0)
        runner.stop()
        assert runner.applied_actions == []  # gated by the long warmup
