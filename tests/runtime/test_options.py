"""RuntimeOptions: the consolidated runtime-configuration bundle.

Covers the one-release deprecation contract for the legacy per-subsystem
constructor kwargs: each emits exactly one DeprecationWarning per
process, mixing them with ``options=`` is an error, and the shims
produce the same configuration as the options path.
"""

import warnings

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.errors import DyflowError
from repro.journal import JournalSpec
from repro.observability import ObservabilitySpec
from repro.resilience import ResilienceSpec, RetryPolicy
from repro.runtime import DyflowOrchestrator, RuntimeOptions, ThreadedDyflow
from repro.sim import RngRegistry, SimEngine
from repro.telemetry import TelemetrySpec
from repro.util.deprecation import reset_warned
from repro.wms import Savanna, TaskSpec, WorkflowSpec
from repro.xmlspec.model import DyflowSpec


@pytest.fixture(autouse=True)
def _fresh():
    reset_warned()
    yield
    reset_warned()


def make_launcher():
    eng = SimEngine()
    m = summit(2)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    wf = WorkflowSpec(
        "W", [TaskSpec("T", lambda: IterativeApp(ConstantModel(5.0)), nprocs=4)], []
    )
    return eng, Savanna(eng, wf, alloc, rng=RngRegistry(1))


class TestRuntimeOptions:
    def test_defaults(self):
        opts = RuntimeOptions()
        assert opts.telemetry is None
        assert opts.observability is None
        assert opts.journal is None
        assert opts.preflight == "off"
        assert opts.resilience is None
        assert opts.batch_deliveries is True

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RuntimeOptions().preflight = "strict"

    def test_override_copies(self):
        base = RuntimeOptions()
        changed = base.override(preflight="warn", batch_deliveries=False)
        assert changed.preflight == "warn"
        assert changed.batch_deliveries is False
        assert base.preflight == "off"

    def test_from_spec_lifts_runtime_sections(self):
        spec = DyflowSpec(
            telemetry=TelemetrySpec(enabled=True),
            journal=JournalSpec(enabled=False),
            observability=ObservabilitySpec(enabled=False),
            resilience=ResilienceSpec(retry=RetryPolicy(max_retries=2)),
        )
        opts = RuntimeOptions.from_spec(spec)
        assert opts.telemetry is spec.telemetry
        assert opts.journal is spec.journal
        assert opts.observability is spec.observability
        assert opts.resilience is spec.resilience
        assert opts.preflight == "off"


class TestOrchestratorOptions:
    def test_options_accepted_end_to_end(self):
        eng, sav = make_launcher()
        opts = RuntimeOptions(telemetry=TelemetrySpec(enabled=True), preflight="warn")
        orch = DyflowOrchestrator(sav, options=opts)
        assert orch.options is opts
        assert orch.telemetry is opts.telemetry
        assert orch.preflight == "warn"

    def test_resilience_configures_launcher(self):
        eng, sav = make_launcher()
        spec = ResilienceSpec(retry=RetryPolicy(max_retries=2))
        DyflowOrchestrator(sav, options=RuntimeOptions(resilience=spec))
        assert sav.resilience is spec

    def test_no_resilience_leaves_launcher_config_intact(self):
        eng, sav = make_launcher()
        spec = ResilienceSpec(retry=RetryPolicy(max_retries=2))
        sav.configure_resilience(spec)
        DyflowOrchestrator(sav, options=RuntimeOptions())
        assert sav.resilience is spec

    def test_batch_deliveries_knob(self):
        eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav, options=RuntimeOptions(batch_deliveries=False))
        assert orch.batch_deliveries is False

    @pytest.mark.parametrize("kwarg,value", [
        ("telemetry", None),
        ("observability", None),
        ("journal", None),
        ("preflight", "off"),
    ])
    def test_legacy_kwarg_warns_exactly_once(self, kwarg, value):
        eng, sav = make_launcher()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DyflowOrchestrator(sav, **{kwarg: value})
            DyflowOrchestrator(sav, **{kwarg: value})
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert kwarg in str(deprecations[0].message)
        assert "RuntimeOptions" in str(deprecations[0].message)

    def test_legacy_kwarg_value_still_lands(self):
        eng, sav = make_launcher()
        telemetry = TelemetrySpec(enabled=True)
        with pytest.warns(DeprecationWarning, match="telemetry"):
            orch = DyflowOrchestrator(sav, telemetry=telemetry)
        assert orch.telemetry is telemetry
        assert orch.options.telemetry is telemetry

    def test_options_plus_legacy_kwarg_rejected(self):
        eng, sav = make_launcher()
        with pytest.warns(DeprecationWarning, match="preflight"):
            with pytest.raises(DyflowError, match="preflight"):
                DyflowOrchestrator(
                    sav, options=RuntimeOptions(), preflight="strict"
                )


class TestThreadedOptions:
    def test_options_accepted_end_to_end(self):
        spec = ResilienceSpec(retry=RetryPolicy(max_retries=1))
        opts = RuntimeOptions(resilience=spec, preflight="warn")
        runner = ThreadedDyflow("WF", [], options=opts)
        assert runner.options is opts
        assert runner.resilience is spec
        assert runner.preflight == "warn"

    @pytest.mark.parametrize("kwarg,value", [
        ("resilience", None),
        ("telemetry", None),
        ("observability", None),
        ("journal", None),
        ("preflight", "off"),
    ])
    def test_legacy_kwarg_warns_exactly_once(self, kwarg, value):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ThreadedDyflow("WF", [], **{kwarg: value})
            ThreadedDyflow("WF", [], **{kwarg: value})
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert kwarg in str(deprecations[0].message)

    def test_options_plus_legacy_kwarg_rejected(self):
        with pytest.warns(DeprecationWarning, match="journal"):
            with pytest.raises(DyflowError, match="journal"):
                ThreadedDyflow("WF", [], options=RuntimeOptions(), journal=None)

    def test_warn_keys_are_per_runtime(self):
        # DyflowOrchestrator.telemetry and ThreadedDyflow.telemetry are
        # separate deprecation keys: migrating one runtime's callers
        # must not silence the other's warning.
        eng, sav = make_launcher()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DyflowOrchestrator(sav, telemetry=None)
            ThreadedDyflow("WF", [], telemetry=None)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2
