"""Batched vs per-sample envelope delivery must be indistinguishable.

The sim driver aggregates same-deliver-time envelope deliveries into one
engine event per (link, tick); ``RuntimeOptions(batch_deliveries=False)``
restores one engine event per envelope.  This suite is the equivalence
oracle: on a clean fabric and under drop/dup/reorder faults, the two
modes must produce bit-identical ``scenario_fingerprint``\\ s and
identical MonitorServer ledgers (dedup filter state, received/forwarded
counts, last-seen times, backpressure counters).
"""

import math

import pytest

from repro.cluster import BatchScheduler, summit
from repro.experiments.runner import execute_scenario
from repro.experiments.synthetic import (
    SyntheticConfig,
    build_synthetic_orchestrator,
    build_synthetic_workflow,
)
from repro.fabric import NetworkSpec
from repro.journal import scenario_fingerprint
from repro.resilience import ResilienceSpec
from repro.runtime import RuntimeOptions
from repro.sim import RngRegistry, SimEngine
from repro.wms import Savanna

CHAOS_NETWORK = NetworkSpec(
    latency=0.2,
    jitter=0.1,
    drop_prob=0.10,
    dup_prob=0.20,
    reorder_prob=0.10,
    ack_timeout=2.0,
    max_retransmits=5,
    ingress_capacity=64,
    drain_per_tick=32,
    stale_after=20.0,
    degrade_after=3,
    recover_after=3,
)


def run_scenario(options):
    """One small synthetic run; returns (fingerprint, server ledger)."""
    cfg = SyntheticConfig(num_tasks=40, total_steps=4, num_clients=4, seed=7)
    engine = SimEngine()
    num_nodes = max(1, math.ceil(cfg.num_tasks / cfg.cores_per_node))
    machine = summit(num_nodes, cores_per_node=cfg.cores_per_node)
    scheduler = BatchScheduler(engine, machine)
    max_time = cfg.step_time * (cfg.total_steps + 4) + 60.0
    job = scheduler.submit(num_nodes, walltime_limit=max_time)
    engine.run(until=0)
    workflow = build_synthetic_workflow(cfg)
    launcher = Savanna(engine, workflow, job.allocation, rng=RngRegistry(cfg.seed))
    orch = build_synthetic_orchestrator(launcher, cfg, options=options)
    assert orch.batch_deliveries is options.batch_deliveries

    from repro.experiments.results import ScenarioResult

    makespan = execute_scenario(engine, launcher, orch, max_time=max_time)
    result = ScenarioResult(
        name="synthetic", machine="summit", use_dyflow=True, makespan=makespan,
        trace=launcher.trace, plans=orch.plans, metric_history=orch.server.history,
        launcher=launcher,
    )
    ledger = {
        "state": orch.server.state_dict(),
        "duplicates": orch.server.duplicates,
        "offered": orch.server.offered,
        "shed_sensor": orch.server.shed_sensor,
        "staleness_count": orch.server.ingest_staleness.count,
    }
    return scenario_fingerprint(result), ledger


@pytest.mark.parametrize("network", [None, CHAOS_NETWORK],
                         ids=["clean-fabric", "chaos-fabric"])
def test_batched_matches_per_sample_delivery(network):
    resilience = ResilienceSpec(network=network) if network is not None else None
    batched_fp, batched_ledger = run_scenario(
        RuntimeOptions(resilience=resilience, batch_deliveries=True)
    )
    unbatched_fp, unbatched_ledger = run_scenario(
        RuntimeOptions(resilience=resilience, batch_deliveries=False)
    )
    assert batched_fp == unbatched_fp
    assert batched_ledger == unbatched_ledger


def test_chaos_fabric_actually_exercises_the_ledgers():
    """Guard the oracle: the chaos profile must hit dedup + staleness."""
    _fp, ledger = run_scenario(
        RuntimeOptions(resilience=ResilienceSpec(network=CHAOS_NETWORK))
    )
    assert ledger["duplicates"] > 0, "dedup filter never exercised"
    assert ledger["staleness_count"] > 0, "no envelope staleness observed"
