"""The campaign fleet plane: watch stream, fleet rollups, WAL barriers.

The acceptance proof lives here: with the fleet observability plane
enabled, a supervisor crash mid-campaign resumes with the watch stream
**byte-identical** and the fleet rollup **bit-identical** to an
uncrashed control campaign — every piece of fleet state round-trips
``state_dict`` through the fleet WAL barriers.
"""

import json

import pytest

from repro.campaign import (
    CampaignService,
    ExecutorSpec,
    TenantCell,
    TenantSpec,
    TenantsSpec,
)
from repro.errors import ReproError
from repro.observability import (
    EVENT_KINDS,
    FleetSpec,
    ObservabilitySpec,
    SloSpec,
    parse_openmetrics,
    read_watch_stream,
)
from repro.resilience import QuarantineSpec
from tests.campaign.test_service import fake_run, failing_for_alice, wf_factory


def make_spec(*tenants, nodes=4, cores_per_node=4):
    return TenantsSpec(
        nodes=nodes, cores_per_node=cores_per_node,
        tenants=tenants or (TenantSpec("alice"), TenantSpec("bob")),
        executor=ExecutorSpec(max_attempts=2, backoff_base=0.0, jitter=0.0),
        breaker=QuarantineSpec(failures=3, window=100.0, cooldown=5.0),
    )


THREE_TENANTS = (TenantSpec("alice"), TenantSpec("bob"), TenantSpec("carol"))

#: A tenant-scoped objective that fires on bob's first completed cell
#: (fake_run cells record latency 0.0, which never satisfies GT 0).
BOB_SLO = SloSpec(metric="fleet.cell.latency", stat="p95", op="GT",
                  threshold=0.0, severity="warning", tenant="bob")


class TestFleetPlane:
    """Crash/resume bit-identity and the fleet plane's side artifacts."""

    def make_service(self, root):
        svc = CampaignService(
            make_spec(*THREE_TENANTS),
            journal_root=str(root),
            run_cell=failing_for_alice,
            observability=ObservabilitySpec(slos=(BOB_SLO,), fleet=FleetSpec()),
        )
        for i in range(2):
            svc.submit(TenantCell("alice", wf_factory, params={"i": i}))
            svc.submit(TenantCell("bob", wf_factory, params={"i": i}))
            svc.submit(TenantCell("carol", wf_factory, params={"i": i}))
        return svc

    def campaign(self, root, crash=False):
        svc = self.make_service(root)
        if crash:
            svc.run_pending(stop_after=2)
            # Supervisor "crash": a fresh service over the same WAL root
            # restores the fleet plane from the last barrier and replays
            # completed cells from the per-tenant ledgers.
            svc = self.make_service(root)
        svc.run_pending()
        return svc

    def test_watch_stream_is_typed_and_seekable(self, tmp_path):
        svc = self.campaign(tmp_path)
        events = svc.watch()
        assert events[0]["kind"] == "campaign-open"
        kinds = {e["kind"] for e in events}
        assert kinds <= set(EVENT_KINDS)
        assert {"admit", "lease-grant", "cell-start", "cell-complete",
                "cell-retry", "cell-poison", "alert", "slo-transition"} <= kinds
        assert [e["seq"] for e in events] == list(range(len(events)))
        # Seekable: a cursor resumes exactly where it left off.
        cursor = len(events) // 2
        assert svc.watch(since=cursor) == events[cursor:]

    def test_crash_resume_watch_stream_is_byte_identical(self, tmp_path):
        """Acceptance: rollups and watch streams bit-identical across
        crash/resume, via state_dict round-trips through WAL barriers."""
        control = self.campaign(tmp_path / "control")
        crashed = self.campaign(tmp_path / "crashed", crash=True)

        control_bytes = (
            tmp_path / "control" / "__fleet__" / "watch.jsonl").read_bytes()
        crashed_bytes = (
            tmp_path / "crashed" / "__fleet__" / "watch.jsonl").read_bytes()
        assert control_bytes, "control campaign must emit watch events"
        assert crashed_bytes == control_bytes
        assert crashed.watch() == control.watch()
        # The durable stream replays identically through the reader API.
        assert (read_watch_stream(crashed.watch_path)
                == read_watch_stream(control.watch_path))

    def test_crash_after_breaker_trip_resumes_byte_identical(self, tmp_path):
        """Resume re-submissions must bypass a breaker restored tripped.

        Regression: re-submitting a cell the pre-crash service had
        already admitted used to go back through the admission gate, and
        a quarantining breaker restored from the fleet barrier rejected
        it — forking the watch stream with spurious reject events and
        dropping the tenant's parked cells and ledger replays.
        """
        control = self.campaign(tmp_path / "control")
        crashed_root = tmp_path / "crashed"
        svc = self.make_service(crashed_root)
        # Four executed cells include both of alice's crash-looping
        # cells (2 failures each vs a trip threshold of 3), so the
        # supervisor dies *after* her breaker tripped.
        svc.run_pending(stop_after=4)
        assert svc.breaker.is_quarantined("alice", svc.now)
        resumed = self.make_service(crashed_root)
        resumed.run_pending()
        control_bytes = (
            tmp_path / "control" / "__fleet__" / "watch.jsonl").read_bytes()
        crashed_bytes = (crashed_root / "__fleet__" / "watch.jsonl").read_bytes()
        assert crashed_bytes == control_bytes
        assert resumed.fleet.rollup() == control.fleet.rollup()
        assert not any(e["kind"] == "reject" for e in resumed.watch())

    def test_live_resubmit_after_cooldown_still_admitted(self, tmp_path):
        """The resume bypass must not leak into live operation: a cell
        rejected while its tenant was quarantined is admitted on a real
        retry once the cooldown elapses."""
        svc = self.make_service(tmp_path)
        svc.run_pending()  # alice trips the breaker and stays quarantined
        assert svc.breaker.is_quarantined("alice", svc.now)
        late = TenantCell("alice", wf_factory, params={"i": 99})
        denied = svc.submit(late)
        assert not denied.accepted and denied.reason == "quarantined"
        svc.advance_time(denied.retry_after + 1.0)
        retried = svc.submit(late)
        assert retried.accepted

    def test_crash_resume_fleet_rollup_is_bit_identical(self, tmp_path):
        control = self.campaign(tmp_path / "control")
        crashed = self.campaign(tmp_path / "crashed", crash=True)
        assert crashed.fleet.rollup() == control.fleet.rollup()
        assert (crashed.fleet.render_openmetrics()
                == control.fleet.render_openmetrics())
        assert crashed.now == control.now

    def test_rollup_reflects_the_campaign(self, tmp_path):
        svc = self.campaign(tmp_path)
        roll = svc.fleet.rollup()
        assert list(roll["tenants"]) == ["alice", "bob", "carol"]
        assert roll["tenants"]["alice"]["poisoned"] >= 1.0
        assert roll["tenants"]["bob"]["completed"] == 2.0
        assert roll["tenants"]["carol"]["completed"] == 2.0
        # Alice crash-loops, so she tops the noisy ranking.
        assert roll["noisy"][0]["tenant"] == "alice"
        # The tenant-scoped SLO fired for bob.
        assert roll["tenants"]["bob"]["alerts_firing"] >= 1.0

    def test_flight_recorder_dumped_on_poison(self, tmp_path):
        svc = self.campaign(tmp_path)
        poisoned = [r for r in svc.results if r["status"] == "poisoned"]
        assert poisoned
        path = tmp_path / "__fleet__" / f"flight-{poisoned[0]['cell_id']}.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == "dyflow-flight-recorder/1"
        assert doc["reason"] == f"poison:{poisoned[0]['cell_id']}"
        assert doc["events"] and doc["rollup"]["tenants"]

    def test_openmetrics_export_written_at_campaign_end(self, tmp_path):
        om_path = tmp_path / "fleet.om"
        svc = CampaignService(
            make_spec(*THREE_TENANTS),
            journal_root=str(tmp_path / "wal"),
            run_cell=fake_run,
            observability=ObservabilitySpec(
                fleet=FleetSpec(openmetrics_path=str(om_path))
            ),
        )
        svc.submit(TenantCell("bob", wf_factory))
        svc.run_pending()
        families = parse_openmetrics(om_path.read_text())
        [sample] = families["dyflow_fleet_cell_completed"]["samples"]
        assert sample["labels"] == {"tenant": "bob"} and sample["value"] == 1.0


class TestFleetPlaneGates:
    def test_watch_requires_the_fleet_plane(self):
        svc = CampaignService(make_spec(), run_cell=fake_run)
        with pytest.raises(ReproError, match="fleet observability plane"):
            svc.watch()
        assert svc.fleet is None and svc.watch_path is None

    def test_disabled_observability_disables_the_plane(self):
        svc = CampaignService(
            make_spec(), run_cell=fake_run,
            observability=ObservabilitySpec(enabled=False, fleet=FleetSpec()),
        )
        assert svc.fleet is None

    def test_unknown_tenant_slo_is_a_hard_error(self):
        bad = SloSpec(metric="fleet.cell.latency", stat="p95", op="LT",
                      threshold=10.0, tenant="mallory")
        with pytest.raises(ReproError, match="unknown tenant 'mallory'"):
            CampaignService(
                make_spec(), run_cell=fake_run,
                observability=ObservabilitySpec(slos=(bad,), fleet=FleetSpec()),
            )

    def test_in_memory_watch_without_journal_root(self):
        svc = CampaignService(
            make_spec(), run_cell=fake_run,
            observability=ObservabilitySpec(fleet=FleetSpec()),
        )
        svc.submit(TenantCell("bob", wf_factory))
        svc.run_pending()
        assert svc.watch_path is None
        assert any(e["kind"] == "cell-complete" for e in svc.watch())


class TestTenantSummaryOrdering:
    """tenant_summary() is deterministically ordered regardless of the
    declaration order in the spec — equal campaigns dump equal JSON."""

    def run_one(self, *tenants):
        svc = CampaignService(
            TenantsSpec(nodes=4, cores_per_node=4, tenants=tenants),
            run_cell=fake_run,
        )
        for t in tenants:
            svc.submit(TenantCell(t.tenant_id, wf_factory))
        svc.run_pending()
        return svc.tenant_summary()

    def test_sorted_ids_and_stable_json(self):
        shuffled = self.run_one(TenantSpec("carol"), TenantSpec("alice"),
                                TenantSpec("bob"))
        declared = self.run_one(TenantSpec("alice"), TenantSpec("bob"),
                                TenantSpec("carol"))
        assert list(shuffled) == ["alice", "bob", "carol"]
        assert json.dumps(shuffled) == json.dumps(declared)
