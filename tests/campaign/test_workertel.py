"""Worker-side telemetry handoff: flush, torn-tail merge, executor wiring.

Forked campaign cells record into the ambient :func:`worker_registry`;
the child flushes it to a per-cell JSONL file before reporting, and the
supervisor merges the flush into ``worker_metrics`` at the cell's
terminal outcome.  The torn-merge contract: a worker killed mid-flush
leaves at most a torn tail, and the merge folds in only the committed
prefix — never a corrupted parent registry.
"""

import json

from repro.campaign import ExecutorSpec, SupervisedExecutor
from repro.campaign.executor import COMPLETED, POISONED
from repro.campaign.workertel import (
    flush_worker_telemetry,
    merge_worker_telemetry,
    read_worker_telemetry,
    reset_worker_registry,
    telemetry_path,
    worker_registry,
)
from repro.telemetry.metrics import MetricsRegistry


def _record_and_double(payload):
    reg = worker_registry()
    reg.counter("cells.seen").inc()
    reg.gauge("cell.payload").set(float(payload))
    reg.histogram("cell.work").observe(float(payload))
    return payload * 2


def _record_then_boom(payload):
    worker_registry().counter("attempts.made").inc()
    raise RuntimeError(f"boom {payload}")


def serial_spec(**kwargs):
    defaults = dict(workers=0, backoff_base=0.0, jitter=0.0)
    defaults.update(kwargs)
    return ExecutorSpec(**defaults)


class TestFlushAndRead:
    def setup_method(self):
        reset_worker_registry()

    def teardown_method(self):
        reset_worker_registry()

    def test_flush_read_roundtrip(self, tmp_path):
        _record_and_double(3)
        path = flush_worker_telemetry(str(tmp_path), "cell-a")
        assert path == telemetry_path(str(tmp_path), "cell-a")
        state = read_worker_telemetry(path)
        assert state["counters"] == {"cells.seen": 1.0}
        assert state["gauges"] == {"cell.payload": 3.0}
        assert state["histograms"]["cell.work"]["count"] == 1

    def test_untouched_registry_flushes_nothing(self, tmp_path):
        assert flush_worker_telemetry(str(tmp_path), "cell-a") is None
        assert not list(tmp_path.iterdir())

    def test_missing_file_merges_as_noop(self, tmp_path):
        target = MetricsRegistry()
        assert merge_worker_telemetry(str(tmp_path), "ghost", target) == 0
        assert target.state_dict() == MetricsRegistry().state_dict()

    def test_torn_tail_merges_only_the_committed_prefix(self, tmp_path):
        """A worker SIGKILLed mid-write leaves a torn last line; the
        merge treats it as end-of-stream."""
        committed = [
            json.dumps({"kind": "counter", "name": "rows", "value": 7.0}),
            json.dumps({"kind": "gauge", "name": "depth", "value": 2.0}),
        ]
        torn = json.dumps(
            {"kind": "counter", "name": "lost", "value": 9.0}
        )[:-8]  # truncated mid-object
        path = telemetry_path(str(tmp_path), "cell-a")
        with open(path, "w") as fh:
            fh.write("\n".join(committed + [torn]))
        target = MetricsRegistry()
        assert merge_worker_telemetry(str(tmp_path), "cell-a", target) == 2
        assert target.counter("rows").value == 7.0
        assert target.gauge("depth").value == 2.0
        assert target.lookup("lost") is None

    def test_torn_at_line_one_merges_nothing(self, tmp_path):
        path = telemetry_path(str(tmp_path), "cell-a")
        with open(path, "w") as fh:
            fh.write('{"kind": "cou')
        target = MetricsRegistry()
        assert merge_worker_telemetry(str(tmp_path), "cell-a", target) == 0

    def test_unknown_instrument_kind_stops_the_merge(self, tmp_path):
        path = telemetry_path(str(tmp_path), "cell-a")
        with open(path, "w") as fh:
            fh.write(
                json.dumps({"kind": "counter", "name": "ok", "value": 1.0})
                + "\n"
                + json.dumps({"kind": "summary", "name": "new", "value": 1.0})
                + "\n"
                + json.dumps({"kind": "counter", "name": "after", "value": 1.0})
            )
        target = MetricsRegistry()
        merge_worker_telemetry(str(tmp_path), "cell-a", target)
        assert target.counter("ok").value == 1.0
        assert target.lookup("after") is None


class TestSerialExecutorMerge:
    def test_cell_telemetry_lands_in_worker_metrics(self):
        ex = SupervisedExecutor(serial_spec())
        outs = ex.run([("a", 1), ("b", 2)], _record_and_double)
        assert all(o.status == COMPLETED for o in outs)
        assert ex.worker_metrics.counter("cells.seen").value == 2.0
        assert ex.worker_metrics.histogram("cell.work").count == 2

    def test_poisoned_cell_still_merges_its_last_attempt(self):
        ex = SupervisedExecutor(serial_spec(max_attempts=3))
        [out] = ex.run([("a", 1)], _record_then_boom)
        assert out.status == POISONED and out.attempts == 3
        # Each attempt gets a fresh ambient registry; only the last
        # recording attempt's telemetry merges (not 3x).
        assert ex.worker_metrics.counter("attempts.made").value == 1.0

    def test_ambient_registry_is_reset_between_cells(self):
        ex = SupervisedExecutor(serial_spec())
        ex.run([("a", 1)], _record_and_double)
        from repro.campaign.workertel import peek_worker_registry

        assert peek_worker_registry() is None


class TestForkedExecutorMerge:
    """Satellite regression: telemetry recorded inside forked workers
    used to die with the worker process; now it round-trips through the
    per-cell flush files."""

    def forked_spec(self, **kwargs):
        defaults = dict(workers=2, max_attempts=2, backoff_base=0.0,
                        jitter=0.0, cell_timeout=30.0)
        defaults.update(kwargs)
        return ExecutorSpec(**defaults)

    def test_forked_worker_telemetry_reaches_the_parent(self, tmp_path):
        ex = SupervisedExecutor(self.forked_spec(),
                                telemetry_root=str(tmp_path))
        outs = ex.run([("a", 1), ("b", 2), ("c", 3)], _record_and_double)
        assert [o.result for o in outs] == [2, 4, 6]
        # Flushed per cell id, merged into one parent-side registry.
        assert ex.worker_metrics.counter("cells.seen").value == 3.0
        assert ex.worker_metrics.histogram("cell.work").count == 3
        for cid in ("a", "b", "c"):
            assert (tmp_path / f"{cid}.telemetry.jsonl").is_file()

    def test_poisoned_forked_cell_merges_one_attempt(self, tmp_path):
        ex = SupervisedExecutor(self.forked_spec(),
                                telemetry_root=str(tmp_path))
        [out] = ex.run([("a", 1)], _record_then_boom)
        assert out.status == POISONED and out.attempts == 2
        # Retries overwrite the same flush file: last attempt wins.
        assert ex.worker_metrics.counter("attempts.made").value == 1.0

    def test_without_a_root_forked_telemetry_is_dropped(self, tmp_path):
        ex = SupervisedExecutor(self.forked_spec())
        [out] = ex.run([("a", 1)], _record_and_double)
        assert out.status == COMPLETED
        assert ex.worker_metrics.lookup("cells.seen") is None
