"""The machine arbiter: node-granular leases under quota and capacity."""

import pytest

from repro.campaign import MachineArbiter, TenantSpec
from repro.errors import ReproError


def make_arbiter(nodes=4, cores_per_node=10):
    return MachineArbiter(nodes, cores_per_node)


class TestConstruction:
    @pytest.mark.parametrize("shape", [(0, 10), (4, 0), (-1, 10)])
    def test_degenerate_shapes_rejected(self, shape):
        with pytest.raises(ReproError, match="machine shape"):
            MachineArbiter(*shape)

    def test_nodes_for_rounds_up(self):
        arb = make_arbiter(cores_per_node=10)
        assert arb.nodes_for(1) == 1
        assert arb.nodes_for(10) == 1
        assert arb.nodes_for(11) == 2
        assert arb.nodes_for(0) == 1  # a lease is at least one node


class TestLeasing:
    def test_grant_and_release_restore_capacity(self):
        arb = make_arbiter(nodes=4, cores_per_node=10)
        tenant = TenantSpec("a")
        lease, deny = arb.try_lease(tenant, "cell", 25)
        assert deny == ""
        assert (lease.nodes, lease.cores, lease.cores_per_node) == (3, 25, 10)
        assert arb.free_nodes == 1
        assert arb.held_cores("a") == 25
        assert arb.active() == [lease]
        arb.release(lease)
        assert arb.free_nodes == 4
        assert arb.held_cores("a") == 0
        assert arb.active() == []

    def test_capacity_denial(self):
        arb = make_arbiter(nodes=2, cores_per_node=10)
        tenant = TenantSpec("a")
        held, _ = arb.try_lease(tenant, "c0", 20)
        lease, deny = arb.try_lease(tenant, "c1", 1)
        assert lease is None and deny == "capacity"
        assert arb.denials["capacity"] == 1
        arb.release(held)
        lease, deny = arb.try_lease(tenant, "c1", 1)
        assert lease is not None and deny == ""

    def test_quota_denial_spans_concurrent_leases(self):
        arb = make_arbiter(nodes=8, cores_per_node=10)
        tenant = TenantSpec("a", quota_cores=15)
        first, _ = arb.try_lease(tenant, "c0", 10)
        lease, deny = arb.try_lease(tenant, "c1", 10)
        assert lease is None and deny == "quota"
        assert arb.denials["quota"] == 1
        # Quota is charged in cores, not nodes: 5 more still fits.
        lease, deny = arb.try_lease(tenant, "c1", 5)
        assert lease is not None
        arb.release(first)
        arb.release(lease)

    def test_zero_quota_means_unlimited(self):
        arb = make_arbiter(nodes=8, cores_per_node=10)
        tenant = TenantSpec("a", quota_cores=0)
        lease, deny = arb.try_lease(tenant, "c0", 80)
        assert lease is not None and deny == ""

    def test_quota_denial_does_not_consume_capacity(self):
        arb = make_arbiter(nodes=2, cores_per_node=10)
        alice = TenantSpec("alice", quota_cores=5)
        bob = TenantSpec("bob")
        denied, deny = arb.try_lease(alice, "a0", 10)
        assert denied is None and deny == "quota"
        lease, deny = arb.try_lease(bob, "b0", 20)
        assert lease is not None  # alice's denial cost bob nothing

    def test_lease_ids_are_unique_and_ordered(self):
        arb = make_arbiter()
        tenant = TenantSpec("a")
        leases = [arb.try_lease(tenant, f"c{i}", 1)[0] for i in range(3)]
        assert [le.lease_id for le in leases] == [1, 2, 3]
        assert arb.grants == 3

    def test_nonpositive_request_is_an_error(self):
        with pytest.raises(ReproError, match="must be positive"):
            make_arbiter().try_lease(TenantSpec("a"), "c", 0)

    def test_double_release_is_an_error(self):
        arb = make_arbiter()
        lease, _ = arb.try_lease(TenantSpec("a"), "c", 1)
        arb.release(lease)
        with pytest.raises(ReproError, match="not active"):
            arb.release(lease)
