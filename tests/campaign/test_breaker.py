"""The per-tenant circuit breaker mirrors the node-quarantine semantics."""

from repro.campaign import TenantBreaker
from repro.resilience import QuarantineSpec


def make_breaker(failures=3, window=100.0, cooldown=50.0, clock=lambda: 0.0):
    return TenantBreaker(QuarantineSpec(failures, window, cooldown), clock)


class TestTripping:
    def test_trips_only_at_threshold(self):
        b = make_breaker(failures=3)
        assert b.record_failure("t", 0.0) is False
        assert b.record_failure("t", 1.0) is False
        assert b.record_failure("t", 2.0) is True
        assert b.is_quarantined("t", 3.0)

    def test_blame_is_per_tenant(self):
        b = make_breaker(failures=2)
        b.record_failure("a", 0.0)
        b.record_failure("b", 0.0)
        assert b.blamed("a") == 1
        assert not b.is_quarantined("a", 1.0)
        b.record_failure("a", 1.0)
        assert b.is_quarantined("a", 2.0)
        assert not b.is_quarantined("b", 2.0)
        assert b.active(2.0) == {"a"}

    def test_old_failures_age_out_of_the_window(self):
        b = make_breaker(failures=2, window=10.0)
        b.record_failure("t", 0.0)
        assert b.record_failure("t", 11.0) is False  # first aged out
        assert not b.is_quarantined("t", 11.0)


class TestCooldown:
    def test_released_after_cooldown(self):
        b = make_breaker(failures=1, cooldown=50.0)
        b.record_failure("t", 0.0)
        assert b.is_quarantined("t", 49.0)
        assert not b.is_quarantined("t", 50.5)

    def test_cooldown_remaining_counts_down_to_zero(self):
        b = make_breaker(failures=1, cooldown=50.0)
        b.record_failure("t", 0.0)
        assert b.cooldown_remaining("t", 10.0) == 40.0
        assert b.cooldown_remaining("t", 60.0) == 0.0
        assert b.cooldown_remaining("other", 10.0) == 0.0

    def test_default_now_comes_from_the_clock(self):
        t = {"now": 0.0}
        b = make_breaker(failures=1, cooldown=50.0, clock=lambda: t["now"])
        b.record_failure("t")
        assert b.is_quarantined("t")
        t["now"] = 60.0
        assert not b.is_quarantined("t")


class TestHistoryAndState:
    def test_trips_counts_quarantine_events(self):
        b = make_breaker(failures=1, cooldown=5.0)
        b.record_failure("a", 0.0)
        b.record_failure("b", 1.0)
        assert not b.is_quarantined("a", 10.0)  # released
        b.record_failure("a", 11.0)
        assert b.trips() == 3
        assert b.trips("a") == 2
        assert b.trips("b") == 1
        assert any(e.kind == "quarantined" for e in b.history)

    def test_state_roundtrips_across_restart(self):
        b = make_breaker(failures=2, cooldown=50.0)
        b.record_failure("t", 0.0)
        b.record_failure("t", 1.0)
        fresh = make_breaker(failures=2, cooldown=50.0)
        fresh.load_state_dict(b.state_dict())
        assert fresh.is_quarantined("t", 10.0)
        assert fresh.blamed("t") == 2
        assert not fresh.is_quarantined("t", 52.0)
