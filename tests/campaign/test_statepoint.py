"""Signac-style statepoint ids: content-addressed, canonical, stable."""

import pytest

from repro.campaign.statepoint import (
    ID_HASH_LEN,
    canonical_json,
    statepoint_hash,
    statepoint_id,
)


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_compact_separators(self):
        assert canonical_json({"a": 1}) == '{"a":1}'

    def test_tuples_and_lists_coincide(self):
        assert canonical_json({"v": (1, 2)}) == canonical_json({"v": [1, 2]})

    def test_nested_mappings_sorted(self):
        a = canonical_json({"outer": {"y": 1, "x": 2}})
        b = canonical_json({"outer": {"x": 2, "y": 1}})
        assert a == b

    def test_context_folds_under_reserved_key(self):
        plain = canonical_json({"n": 4})
        seeded = canonical_json({"n": 4}, seed=7)
        assert plain != seeded
        assert "__context__" in seeded

    def test_none_context_values_are_dropped(self):
        assert canonical_json({"n": 4}, seed=None) == canonical_json({"n": 4})

    def test_unjsonable_values_fall_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert "<odd>" in canonical_json({"v": Odd()})


class TestStatepointHash:
    def test_deterministic(self):
        assert statepoint_hash({"n": 4}) == statepoint_hash({"n": 4})

    def test_sensitive_to_params(self):
        assert statepoint_hash({"n": 4}) != statepoint_hash({"n": 5})

    def test_sensitive_to_context(self):
        assert statepoint_hash({"n": 4}) != statepoint_hash({"n": 4}, seed=1)

    def test_full_sha256_hex(self):
        h = statepoint_hash({})
        assert len(h) == 64
        int(h, 16)  # hex or raise


class TestStatepointId:
    def test_format(self):
        rid = statepoint_id("camp", 3, {"n": 4})
        name, rest = rid.split(".", 1)
        index, digest = rest.split("-", 1)
        assert (name, index) == ("camp", "3")
        assert len(digest) == ID_HASH_LEN

    def test_prefix_is_the_full_hash_prefix(self):
        rid = statepoint_id("c", 0, {"n": 4}, seed=2)
        assert rid.endswith(statepoint_hash({"n": 4}, seed=2)[:ID_HASH_LEN])

    def test_same_params_different_index_share_suffix(self):
        a = statepoint_id("c", 0, {"n": 4})
        b = statepoint_id("c", 1, {"n": 4})
        assert a.split("-")[-1] == b.split("-")[-1]
        assert a != b

    @pytest.mark.parametrize("kwargs", [{"seed": 9}, {"machine": "summit"}])
    def test_context_changes_the_id(self, kwargs):
        assert statepoint_id("c", 0, {"n": 4}) != statepoint_id(
            "c", 0, {"n": 4}, **kwargs
        )
