"""The campaign service end to end: admission, bulkheads, breakers, WALs.

The isolation proof lives here: a tenant's results are bit-identical
(by scenario fingerprint) whether it runs alone on the machine or next
to a crash-looping neighbor, and a supervisor crash mid-campaign
resumes with every completed cell replayed verbatim from its tenant's
own WAL.
"""

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.campaign import (
    CampaignService,
    ExecutorSpec,
    TenantCell,
    TenantSpec,
    TenantsSpec,
)
from repro.campaign.statepoint import statepoint_id
from repro.errors import ReproError
from repro.resilience import QuarantineSpec
from repro.wms import TaskSpec, WorkflowSpec


def wf_factory(n=2, steps=3):
    return WorkflowSpec(
        f"wf-{n}-{steps}",
        [TaskSpec("T", IterativeApp(ConstantModel(1.0), total_steps=steps),
                  nprocs=n)],
    )


def broken_factory(**_params):
    raise RuntimeError("this tenant's workflow factory is broken")


def fake_run(cell, lease):
    """Cheap stand-in for run_cell_scenario in pure-logic tests."""
    return {"params": dict(cell.params), "cores": lease.cores,
            "nodes": lease.nodes}


def failing_for_alice(cell, lease):
    if cell.tenant_id == "alice":
        raise RuntimeError("alice crash-loops")
    return fake_run(cell, lease)


def make_spec(*tenants, nodes=4, cores_per_node=4, executor=None, breaker=None):
    return TenantsSpec(
        nodes=nodes, cores_per_node=cores_per_node,
        tenants=tenants or (TenantSpec("alice"), TenantSpec("bob")),
        executor=executor, breaker=breaker,
    )


class TestConstruction:
    def test_machine_shape_is_required(self):
        with pytest.raises(ReproError, match="machine shape"):
            CampaignService(TenantsSpec(tenants=(TenantSpec("a"),)))

    def test_time_cannot_go_backwards(self):
        svc = CampaignService(make_spec())
        with pytest.raises(ReproError):
            svc.advance_time(-1.0)


class TestSubmission:
    def test_cell_ids_are_statepoint_hashed(self):
        svc = CampaignService(make_spec(), run_cell=fake_run)
        svc.submit(TenantCell("bob", wf_factory, params={"n": 2}, nprocs=2))
        svc.submit(TenantCell("bob", wf_factory, params={"n": 3}, nprocs=2))
        records = svc.run_pending()
        assert [r["cell_id"] for r in records] == [
            statepoint_id("bob", 0, {"n": 2}, seed=0, nprocs=2),
            statepoint_id("bob", 1, {"n": 3}, seed=0, nprocs=2),
        ]

    def test_queue_bound_rejects_with_retry_after(self):
        svc = CampaignService(
            make_spec(TenantSpec("alice", max_queue=2), TenantSpec("bob")),
            run_cell=fake_run,
        )
        results = [
            svc.submit(TenantCell("alice", wf_factory, params={"i": i}))
            for i in range(3)
        ]
        assert [r.accepted for r in results] == [True, True, False]
        assert results[2].reason == "queue-full"
        assert results[2].retry_after > 0
        # Rejected submissions do not consume statepoint indices.
        assert svc.tenant_summary()["alice"]["submitted"] == 2

    def test_unknown_tenant_rejected(self):
        svc = CampaignService(make_spec(), run_cell=fake_run)
        with pytest.raises(ReproError, match="unknown tenant"):
            svc.submit(TenantCell("mallory", wf_factory))


class TestDispatch:
    def test_fair_share_interleaves_equal_weights(self):
        svc = CampaignService(make_spec(), run_cell=fake_run)
        for i in range(2):
            svc.submit(TenantCell("alice", wf_factory, params={"i": i}))
            svc.submit(TenantCell("bob", wf_factory, params={"i": i}))
        records = svc.run_pending()
        assert [r["tenant"] for r in records] == ["alice", "bob", "alice", "bob"]
        assert all(r["status"] == "completed" for r in records)

    def test_quota_overrun_is_rejected_structurally(self):
        svc = CampaignService(
            make_spec(TenantSpec("alice", quota_cores=2), TenantSpec("bob")),
            run_cell=fake_run,
        )
        svc.submit(TenantCell("alice", wf_factory, nprocs=4))
        [record] = svc.run_pending()
        assert record["status"] == "rejected-quota"
        assert svc.tenant_summary()["alice"]["rejected"] == 1

    def test_request_beyond_the_machine_is_rejected(self):
        svc = CampaignService(make_spec(), run_cell=fake_run)  # 4x4 = 16 cores
        svc.submit(TenantCell("bob", wf_factory, nprocs=100))
        [record] = svc.run_pending()
        assert record["status"] == "rejected-capacity"

    def test_stop_after_models_a_supervisor_crash(self):
        svc = CampaignService(make_spec(), run_cell=fake_run)
        for i in range(4):
            svc.submit(TenantCell("bob", wf_factory, params={"i": i}))
        first = svc.run_pending(stop_after=2)
        assert len(first) == 2
        rest = svc.run_pending()
        assert len(rest) == 2
        assert {r["cell_id"] for r in first}.isdisjoint(
            r["cell_id"] for r in rest
        )

    def test_logical_clock_ticks_per_executed_cell(self):
        svc = CampaignService(make_spec(), run_cell=fake_run)
        for i in range(3):
            svc.submit(TenantCell("bob", wf_factory, params={"i": i}))
        svc.run_pending()
        assert svc.now == 3.0


class TestBreakerAndHealth:
    def make_service(self, **kwargs):
        return CampaignService(
            make_spec(
                TenantSpec("alice"), TenantSpec("bob"),
                executor=ExecutorSpec(max_attempts=1, backoff_base=0.0,
                                      jitter=0.0),
                breaker=QuarantineSpec(failures=2, window=100.0, cooldown=10.0),
            ),
            run_cell=failing_for_alice,
            **kwargs,
        )

    def test_degraded_is_visible_before_quarantined(self):
        svc = self.make_service()
        svc.submit(TenantCell("alice", broken_factory))
        svc.run_pending()
        summary = svc.tenant_summary()["alice"]
        assert summary["failed"] == 1
        assert summary["alerts"], "SLO alert must fire one failure before the trip"
        assert not summary["quarantined"]
        assert summary["quarantine_trips"] == 0

    def test_crash_loop_trips_the_breaker_and_parks_the_queue(self):
        svc = self.make_service()
        for i in range(3):
            svc.submit(TenantCell("alice", broken_factory, params={"i": i}))
            svc.submit(TenantCell("bob", wf_factory, params={"i": i}))
        records = svc.run_pending()
        summary = svc.tenant_summary()
        # Two alice failures trip the breaker; her third cell stays parked
        # while every bob cell completes.
        assert summary["alice"]["quarantine_trips"] == 1
        assert summary["alice"]["quarantined"]
        assert summary["alice"]["queued"] == 1
        assert summary["bob"]["completed"] == 3
        assert [r["status"] for r in records if r["tenant"] == "bob"] == [
            "completed"] * 3

    def test_cooldown_elapses_on_the_logical_clock(self):
        svc = self.make_service()
        for i in range(3):
            svc.submit(TenantCell("alice", broken_factory, params={"i": i}))
        svc.run_pending()
        assert svc.tenant_summary()["alice"]["queued"] == 1
        svc.advance_time(11.0)  # past the 10s cooldown
        records = svc.run_pending()
        assert [r["tenant"] for r in records] == ["alice"]
        assert svc.tenant_summary()["alice"]["queued"] == 0

    def test_quarantined_tenant_rejected_at_the_door(self):
        svc = self.make_service()
        for i in range(2):
            svc.submit(TenantCell("alice", broken_factory, params={"i": i}))
        svc.run_pending()
        result = svc.submit(TenantCell("alice", broken_factory, params={"i": 9}))
        assert not result.accepted
        assert result.reason == "quarantined"
        assert result.retry_after > 0


class TestBulkheadIsolation:
    """The core invariant: neighbors cannot change what a tenant computes."""

    BOB_CELLS = ({"n": 2, "steps": 3}, {"n": 2, "steps": 5}, {"n": 3, "steps": 4})

    @staticmethod
    def fingerprints(records, tenant):
        return {
            r["cell_id"]: r["result"]["fingerprint"]
            for r in records
            if r["tenant"] == tenant and r["status"] == "completed"
        }

    def test_fingerprints_identical_solo_vs_crashlooping_neighbor(self):
        solo = CampaignService(make_spec(TenantSpec("bob")))
        for params in self.BOB_CELLS:
            solo.submit(TenantCell("bob", wf_factory, params=params, nprocs=2))
        solo_fps = self.fingerprints(solo.run_pending(), "bob")

        shared = CampaignService(
            make_spec(
                TenantSpec("alice"), TenantSpec("bob"),
                executor=ExecutorSpec(max_attempts=2, backoff_base=0.0,
                                      jitter=0.0),
            )
        )
        for i, params in enumerate(self.BOB_CELLS):
            shared.submit(TenantCell("alice", broken_factory, params={"i": i}))
            shared.submit(TenantCell("bob", wf_factory, params=params, nprocs=2))
        records = shared.run_pending()
        shared_fps = self.fingerprints(records, "bob")

        assert solo_fps, "bob must complete cells"
        assert solo_fps == shared_fps
        # And alice really was crash-looping the whole time.
        assert all(
            r["status"] == "poisoned" for r in records if r["tenant"] == "alice"
        )


class TestJournalResume:
    """Per-tenant WALs: crash/resume replays only the journaled tenant."""

    def make_service(self, root):
        svc = CampaignService(
            make_spec(
                TenantSpec("alice"), TenantSpec("bob"),
                executor=ExecutorSpec(max_attempts=2, backoff_base=0.0,
                                      jitter=0.0),
            ),
            journal_root=str(root),
        )
        svc.submit(TenantCell("alice", broken_factory, params={"i": 0}))
        for i in range(3):
            svc.submit(TenantCell("bob", wf_factory,
                                  params={"n": 2, "steps": 3 + i}, nprocs=2))
        return svc

    def test_supervisor_crash_resumes_with_verbatim_replay(self, tmp_path):
        first = self.make_service(tmp_path)
        before = first.run_pending(stop_after=3)
        assert all(not r["replayed"] for r in before)
        done = {r["cell_id"]: r for r in before}

        # Supervisor "crash": a fresh service over the same WAL root.
        second = self.make_service(tmp_path)
        after = second.run_pending()
        replayed = {r["cell_id"]: r for r in after if r["replayed"]}
        fresh = [r for r in after if not r["replayed"]]
        assert set(replayed) == set(done)
        for cell_id, record in replayed.items():
            assert record["status"] == done[cell_id]["status"]
            assert record["result"] == done[cell_id]["result"]
        # Exactly the remaining cell executes; nothing runs twice.
        assert len(fresh) == 1

    def test_poisoned_cells_replay_without_reexecution(self, tmp_path):
        first = self.make_service(tmp_path)
        records = first.run_pending()
        poisoned = [r for r in records if r["status"] == "poisoned"]
        assert len(poisoned) == 1 and not poisoned[0]["replayed"]

        second = self.make_service(tmp_path)
        again = second.run_pending()
        replay = {r["cell_id"]: r for r in again}
        assert replay[poisoned[0]["cell_id"]]["status"] == "poisoned"
        assert all(r["replayed"] for r in again)

    def test_each_tenant_owns_its_wal_directory(self, tmp_path):
        svc = self.make_service(tmp_path)
        svc.run_pending()
        assert (tmp_path / "alice").is_dir()
        assert (tmp_path / "bob").is_dir()

    def test_without_journal_root_nothing_is_written(self, tmp_path):
        svc = CampaignService(make_spec(), run_cell=fake_run)
        svc.submit(TenantCell("bob", wf_factory))
        svc.run_pending()
        assert list(tmp_path.iterdir()) == []
