"""The crash-supervised executor: serial determinism, real-process supervision.

Serial mode (``workers=0``) is wall-clock-free and exercised for retry,
poison, chaos, and backoff-schedule semantics.  Supervised mode forks
real worker processes, so those tests use tiny workloads and tight
timeouts; crash-once behavior is coordinated through marker files.
"""

import os
import pathlib
import time

import pytest

from repro.campaign import CellFailure, ExecutorSpec, SupervisedExecutor
from repro.campaign.executor import COMPLETED, POISONED
from repro.errors import ReproError
from repro.sim import RngRegistry


def serial_spec(**kwargs):
    defaults = dict(workers=0, backoff_base=0.0, jitter=0.0)
    defaults.update(kwargs)
    return ExecutorSpec(**defaults)


def _double(payload):
    return payload * 2


def _boom(payload):
    raise RuntimeError(f"boom {payload}")


def _crash_once(marker):
    path = pathlib.Path(marker)
    if not path.exists():
        path.write_text("crashed")
        os._exit(17)  # die without reporting — a real worker crash
    return "recovered"


def _hang(payload):
    time.sleep(60.0)


class TestSerialMode:
    def test_success_on_first_attempt(self):
        ex = SupervisedExecutor(serial_spec())
        [out] = ex.run([("c", 21)], _double)
        assert (out.status, out.result, out.attempts) == (COMPLETED, 42, 1)
        assert out.failures == []
        assert not out.poisoned

    def test_outcomes_follow_submission_order(self):
        ex = SupervisedExecutor(serial_spec())
        outs = ex.run([("z", 1), ("a", 2), ("m", 3)], _double)
        assert [o.cell_id for o in outs] == ["z", "a", "m"]
        assert [o.result for o in outs] == [2, 4, 6]

    def test_transient_error_is_retried(self):
        calls = []

        def flaky(payload):
            calls.append(payload)
            if len(calls) < 3:
                raise ValueError("not yet")
            return "done"

        ex = SupervisedExecutor(serial_spec(max_attempts=5))
        [out] = ex.run([("c", None)], flaky)
        assert out.status == COMPLETED
        assert out.attempts == 3
        assert [f.kind for f in out.failures] == ["error", "error"]
        assert "ValueError" in out.failures[0].detail

    def test_poison_after_max_attempts(self):
        ex = SupervisedExecutor(serial_spec(max_attempts=3))
        [out] = ex.run([("c", 9)], _boom)
        assert out.poisoned
        assert out.attempts == 3
        assert [f.attempt for f in out.failures] == [1, 2, 3]
        assert all(f.kind == "error" for f in out.failures)

    def test_duplicate_cell_ids_rejected(self):
        ex = SupervisedExecutor(serial_spec())
        with pytest.raises(ReproError, match="duplicate cell ids"):
            ex.run([("c", 1), ("c", 2)], _double)

    def test_chaos_schedule_is_reproducible_from_the_seed(self):
        spec = serial_spec(kill_prob=0.5, max_attempts=8)

        def run_once():
            ex = SupervisedExecutor(spec, rng=RngRegistry(7))
            return ex.run([(f"c{i}", i) for i in range(4)], _double)

        first, second = run_once(), run_once()
        assert [(o.status, [f.kind for f in o.failures]) for o in first] == [
            (o.status, [f.kind for f in o.failures]) for o in second
        ]
        kinds = [f.kind for o in first for f in o.failures]
        assert kinds, "kill_prob=0.5 over 4 cells x 8 attempts must inject kills"
        assert set(kinds) == {"killed"}

    def test_chaos_draws_match_the_named_stream(self):
        spec = serial_spec(kill_prob=0.5, max_attempts=8)
        ex = SupervisedExecutor(spec, rng=RngRegistry(3))
        [out] = ex.run([("cell", 1)], _double)
        stream = RngRegistry(3).stream("campaign:chaos:cell")
        expected = 0
        while expected < 8 and float(stream.random()) < 0.5:
            expected += 1
        assert len(out.failures) == min(expected, 8)


class TestBackoffSchedule:
    def test_exponential_growth_capped(self):
        spec = ExecutorSpec(backoff_base=1.0, backoff_factor=2.0,
                            backoff_max=5.0, jitter=0.0)
        ex = SupervisedExecutor(spec)
        delays = [ex.backoff("c", a) for a in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_stays_within_band_and_replays(self):
        spec = ExecutorSpec(backoff_base=1.0, backoff_factor=1.0, jitter=0.25)
        a = SupervisedExecutor(spec, rng=RngRegistry(11))
        b = SupervisedExecutor(spec, rng=RngRegistry(11))
        for attempt in range(20):
            delay = a.backoff("c", attempt)
            assert 0.75 <= delay <= 1.25
            assert delay == b.backoff("c", attempt)

    def test_jitter_streams_are_per_cell(self):
        ex = SupervisedExecutor(
            ExecutorSpec(backoff_base=1.0, backoff_factor=1.0, jitter=0.25),
            rng=RngRegistry(11),
        )
        assert ex.backoff("left", 0) != ex.backoff("right", 0)

    def test_failed_attempts_record_their_backoff(self):
        ex = SupervisedExecutor(serial_spec(max_attempts=2, backoff_base=1.0,
                                            backoff_factor=2.0))
        [out] = ex.run([("c", 1)], _boom)
        assert [f.backoff for f in out.failures] == [1.0, 2.0]


class TestSupervisedMode:
    """Real forked workers: crashes are contained, never fatal."""

    def test_parallel_batch_completes_in_submission_order(self):
        ex = SupervisedExecutor(ExecutorSpec(workers=3, backoff_base=0.0))
        outs = ex.run([(f"c{i}", i) for i in range(6)], _double)
        assert [o.cell_id for o in outs] == [f"c{i}" for i in range(6)]
        assert [o.result for o in outs] == [0, 2, 4, 6, 8, 10]
        assert all(o.status == COMPLETED for o in outs)

    def test_dead_worker_is_detected_and_respawned(self, tmp_path):
        ex = SupervisedExecutor(
            ExecutorSpec(workers=1, max_attempts=3, backoff_base=0.0, jitter=0.0)
        )
        [out] = ex.run([("c", str(tmp_path / "marker"))], _crash_once)
        assert out.status == COMPLETED
        assert out.result == "recovered"
        assert out.attempts == 2
        assert out.failures[0].kind == "worker-died"
        assert "exitcode" in out.failures[0].detail
        assert ex.respawns == 1

    def test_timeout_kills_the_attempt(self):
        ex = SupervisedExecutor(
            ExecutorSpec(workers=1, max_attempts=1, cell_timeout=0.2)
        )
        [out] = ex.run([("c", None)], _hang)
        assert out.poisoned
        assert out.failures[0].kind == "timeout"
        assert "0.2" in out.failures[0].detail

    def test_injected_kills_in_worker_processes(self):
        ex = SupervisedExecutor(
            ExecutorSpec(workers=2, max_attempts=6, backoff_base=0.0,
                         jitter=0.0, kill_prob=0.6),
            rng=RngRegistry(5),
        )
        outs = ex.run([(f"c{i}", i) for i in range(3)], _double)
        kinds = [f.kind for o in outs for f in o.failures]
        assert "killed" in kinds
        # The chaos schedule is the supervisor's: the same seed injects
        # the same kills, so completion is deterministic too.
        assert all(o.status in (COMPLETED, POISONED) for o in outs)

    def test_worker_error_is_reported_not_fatal(self):
        ex = SupervisedExecutor(
            ExecutorSpec(workers=2, max_attempts=1, backoff_base=0.0)
        )
        [bad, good] = ex.run([("bad", 1), ("good", 2)], _boom_if_odd)
        assert bad.poisoned
        assert "RuntimeError" in bad.failures[0].detail
        assert good.status == COMPLETED


def _boom_if_odd(payload):
    if payload % 2:
        raise RuntimeError("odd payload")
    return payload


def test_failure_record_shape():
    f = CellFailure(attempt=2, kind="timeout", detail="exceeded", backoff=1.5)
    assert (f.attempt, f.kind, f.backoff) == (2, "timeout", 1.5)
