"""Tenant registry, bounded admission, and weighted fair-share dispatch."""

import pytest

from repro.campaign import (
    AdmissionController,
    TenantBreaker,
    TenantRegistry,
    TenantSpec,
)
from repro.errors import ReproError
from repro.resilience import QuarantineSpec


def make_controller(*specs, breaker=None):
    reg = TenantRegistry()
    for spec in specs:
        reg.register(spec)
    return AdmissionController(reg, breaker)


class TestTenantRegistry:
    def test_register_and_require(self):
        reg = TenantRegistry()
        state = reg.register(TenantSpec("a"))
        assert reg.require("a") is state
        assert "a" in reg
        assert len(reg) == 1

    def test_duplicate_registration_rejected(self):
        reg = TenantRegistry()
        reg.register(TenantSpec("a"))
        with pytest.raises(ReproError, match="already registered"):
            reg.register(TenantSpec("a"))

    def test_unknown_tenant_rejected(self):
        with pytest.raises(ReproError, match="unknown tenant"):
            TenantRegistry().require("ghost")

    def test_invalid_spec_rejected_at_the_door(self):
        with pytest.raises(ReproError):
            TenantRegistry().register(TenantSpec("a", weight=0.0))

    def test_insertion_order_is_preserved(self):
        reg = TenantRegistry()
        for tid in ("zeta", "alpha", "mid"):
            reg.register(TenantSpec(tid))
        assert reg.ids() == ["zeta", "alpha", "mid"]


class TestAdmission:
    def test_accept_reports_queue_depth(self):
        ctrl = make_controller(TenantSpec("a", max_queue=4))
        first = ctrl.submit("a", "cell-0")
        second = ctrl.submit("a", "cell-1")
        assert first.accepted and first.queue_depth == 1
        assert second.accepted and second.queue_depth == 2
        assert ctrl.registry.require("a").submitted == 2

    def test_full_queue_rejects_with_backlog_proportional_hint(self):
        ctrl = make_controller(TenantSpec("a", max_queue=2))
        assert ctrl.submit("a", 0).accepted
        assert ctrl.submit("a", 1).accepted
        result = ctrl.submit("a", 2)
        assert not result.accepted
        assert result.reason == "queue-full"
        assert result.retry_after == pytest.approx(ctrl.retry_after_base * 2)
        assert ctrl.registry.require("a").rejected == 1
        # The queue never grows past the bound, no matter how fast.
        for _ in range(10):
            ctrl.submit("a", 99)
        assert len(ctrl.registry.require("a").queue) == 2

    def test_quarantined_tenant_rejected_with_cooldown_hint(self):
        breaker = TenantBreaker(
            QuarantineSpec(failures=1, window=100.0, cooldown=50.0), clock=lambda: 0.0
        )
        ctrl = make_controller(TenantSpec("a"), breaker=breaker)
        breaker.record_failure("a", 0.0)
        result = ctrl.submit("a", "cell", now=10.0)
        assert not result.accepted
        assert result.reason == "quarantined"
        assert result.retry_after == pytest.approx(40.0)

    def test_release_after_cooldown_admits_again(self):
        breaker = TenantBreaker(
            QuarantineSpec(failures=1, window=100.0, cooldown=50.0), clock=lambda: 0.0
        )
        ctrl = make_controller(TenantSpec("a"), breaker=breaker)
        breaker.record_failure("a", 0.0)
        assert not ctrl.submit("a", "cell", now=10.0).accepted
        assert ctrl.submit("a", "cell", now=51.0).accepted


class TestFairShare:
    def test_empty_queues_dispatch_nothing(self):
        ctrl = make_controller(TenantSpec("a"), TenantSpec("b"))
        assert ctrl.next_tenant() is None
        assert ctrl.pending() == 0

    def test_equal_weights_alternate_with_id_tiebreak(self):
        ctrl = make_controller(TenantSpec("a"), TenantSpec("b"))
        for i in range(2):
            ctrl.submit("a", f"a{i}")
            ctrl.submit("b", f"b{i}")
        order = []
        while (tid := ctrl.next_tenant()) is not None:
            order.append(ctrl.pop_cell(tid))
        assert order == ["a0", "b0", "a1", "b1"]

    def test_heavier_weight_is_served_more_often(self):
        ctrl = make_controller(TenantSpec("a", weight=2.0), TenantSpec("b"))
        for i in range(6):
            ctrl.submit("a", f"a{i}")
        for i in range(3):
            ctrl.submit("b", f"b{i}")
        order = []
        while (tid := ctrl.next_tenant()) is not None:
            order.append(tid)
            ctrl.pop_cell(tid)
        # a gets two turns for every one of b's.
        assert order == ["a", "b", "a", "a", "b", "a", "a", "b", "a"]

    def test_quarantined_tenant_parks_but_keeps_its_queue(self):
        breaker = TenantBreaker(
            QuarantineSpec(failures=1, window=100.0, cooldown=50.0), clock=lambda: 0.0
        )
        ctrl = make_controller(TenantSpec("a"), TenantSpec("b"), breaker=breaker)
        ctrl.submit("a", "a0")
        ctrl.submit("b", "b0")
        breaker.record_failure("a", 0.0)
        assert ctrl.next_tenant(now=1.0) == "b"
        ctrl.pop_cell("b")
        assert ctrl.next_tenant(now=1.0) is None  # a parked, not dropped
        assert ctrl.pending() == 1
        assert ctrl.next_tenant(now=51.0) == "a"  # cooldown elapsed

    def test_pop_from_empty_queue_is_an_error(self):
        ctrl = make_controller(TenantSpec("a"))
        with pytest.raises(ReproError, match="no queued cells"):
            ctrl.pop_cell("a")
