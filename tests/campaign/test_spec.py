"""Validation of the campaign-service spec dataclasses."""

import pytest

from repro.campaign import ExecutorSpec, TenantSpec, TenantsSpec
from repro.errors import ReproError
from repro.resilience import QuarantineSpec


class TestTenantSpec:
    def test_defaults_valid(self):
        TenantSpec("t").validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant_id": ""},
            {"tenant_id": "t", "quota_cores": -1},
            {"tenant_id": "t", "weight": 0.0},
            {"tenant_id": "t", "weight": -2.0},
            {"tenant_id": "t", "max_queue": 0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ReproError):
            TenantSpec(**kwargs).validate()


class TestExecutorSpec:
    def test_defaults_valid(self):
        ExecutorSpec().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"cell_timeout": -0.5},
            {"max_attempts": 0},
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
            {"jitter": 1.5},
            {"kill_prob": 1.0},
            {"kill_prob": -0.1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ReproError):
            ExecutorSpec(**kwargs).validate()


class TestTenantsSpec:
    def test_full_spec_valid(self):
        TenantsSpec(
            nodes=2,
            cores_per_node=20,
            tenants=(TenantSpec("a"), TenantSpec("b")),
            executor=ExecutorSpec(),
            breaker=QuarantineSpec(),
        ).validate()

    def test_duplicate_tenant_ids_rejected(self):
        with pytest.raises(ReproError, match="duplicate tenant"):
            TenantsSpec(tenants=(TenantSpec("a"), TenantSpec("a"))).validate()

    def test_negative_shape_rejected(self):
        with pytest.raises(ReproError):
            TenantsSpec(nodes=-1).validate()

    def test_child_validation_propagates(self):
        with pytest.raises(ReproError):
            TenantsSpec(tenants=(TenantSpec("a", weight=0.0),)).validate()
        with pytest.raises(ReproError):
            TenantsSpec(executor=ExecutorSpec(max_attempts=0)).validate()

    def test_capacity_cores(self):
        assert TenantsSpec(nodes=3, cores_per_node=20).capacity_cores == 60
        assert TenantsSpec().capacity_cores == 0
