"""Tests for waitable events, composites, and interrupts."""

import pytest

from repro.errors import SimError
from repro.sim import AllOf, AnyOf, Interrupt, SimEngine


class TestSimEvent:
    def test_cannot_trigger_twice(self):
        eng = SimEngine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(SimError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        eng = SimEngine()
        with pytest.raises(TypeError):
            eng.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        eng = SimEngine()
        with pytest.raises(SimError):
            _ = eng.event().value

    def test_failed_event_throws_into_waiter(self):
        eng = SimEngine()
        ev = eng.event()
        caught = []

        def waiter():
            try:
                yield ev
            except ValueError as e:
                caught.append(str(e))

        eng.process(waiter())
        eng.call_after(1.0, lambda: ev.fail(ValueError("bad")))
        eng.run()
        assert caught == ["bad"]


class TestAnyOf:
    def test_first_wins(self):
        eng = SimEngine()

        def proc():
            t1 = eng.timeout(5.0, value="slow")
            t2 = eng.timeout(2.0, value="fast")
            idx, val = yield AnyOf(eng, [t1, t2])
            return (eng.now, idx, val)

        assert eng.run_process(proc()) == (2.0, 1, "fast")

    def test_empty_rejected(self):
        eng = SimEngine()
        with pytest.raises(SimError):
            AnyOf(eng, [])

    def test_pre_triggered_child(self):
        eng = SimEngine()
        ev = eng.event()
        ev.succeed("done")

        def proc():
            idx, val = yield AnyOf(eng, [ev, eng.timeout(9.0)])
            return (idx, val)

        assert eng.run_process(proc()) == (0, "done")


class TestAllOf:
    def test_waits_for_all(self):
        eng = SimEngine()

        def proc():
            values = yield AllOf(eng, [eng.timeout(1.0, value="a"), eng.timeout(4.0, value="b")])
            return (eng.now, values)

        assert eng.run_process(proc()) == (4.0, ["a", "b"])

    def test_empty_succeeds_immediately(self):
        eng = SimEngine()

        def proc():
            values = yield AllOf(eng, [])
            return values

        assert eng.run_process(proc()) == []

    def test_child_failure_fails_composite(self):
        eng = SimEngine()
        bad = eng.event()

        def proc():
            try:
                yield AllOf(eng, [eng.timeout(10.0), bad])
            except RuntimeError:
                return "failed-fast"

        eng.call_after(1.0, lambda: bad.fail(RuntimeError("x")))
        assert eng.run_process(proc()) == "failed-fast"


class TestInterrupt:
    def test_interrupt_wakes_waiting_process(self):
        eng = SimEngine()

        def victim():
            try:
                yield eng.timeout(100.0)
                return "finished"
            except Interrupt as i:
                return ("interrupted", eng.now, i.cause)

        proc = eng.process(victim())
        eng.call_after(3.0, lambda: proc.interrupt("SIGTERM"))
        eng.run()
        assert proc.value == ("interrupted", 3.0, "SIGTERM")

    def test_interrupt_finished_process_noop(self):
        eng = SimEngine()

        def quick():
            yield eng.timeout(1.0)
            return "done"

        proc = eng.process(quick())
        eng.run()
        proc.interrupt("late")  # must not raise
        assert proc.value == "done"

    def test_stale_event_does_not_resume_after_interrupt(self):
        eng = SimEngine()
        resumed = []

        def victim():
            try:
                yield eng.timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                yield eng.timeout(50.0)  # waits past the stale 10 s timeout
                resumed.append("post-interrupt")

        p = eng.process(victim())
        eng.call_after(2.0, lambda: p.interrupt())
        eng.run()
        assert resumed == ["post-interrupt"]
        assert eng.now >= 52.0

    def test_interrupt_during_graceful_phase_pattern(self):
        """The task-model idiom: interrupted step finishes before exit."""
        eng = SimEngine()
        log = []

        def task():
            step = 0
            while step < 100:
                t_left = 5.0
                try:
                    yield eng.timeout(t_left)
                    step += 1
                except Interrupt:
                    # graceful: finish the current step, then stop
                    yield eng.timeout(t_left)  # conservative re-do
                    log.append(("stopped-after-step", eng.now))
                    return step
            return step

        proc = eng.process(task())
        eng.call_after(12.0, lambda: proc.interrupt("stop"))
        eng.run()
        assert log and log[0][1] == 17.0  # 2 steps done at 10, interrupted at 12, finishes at 17
        assert proc.value == 2
