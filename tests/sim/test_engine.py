"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimTimeError
from repro.sim import SimEngine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert SimEngine().now == 0.0

    def test_timeout_fires_at_time(self):
        eng = SimEngine()
        fired = []
        eng.call_after(2.0, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [2.0]

    def test_negative_timeout_rejected(self):
        eng = SimEngine()
        with pytest.raises(SimTimeError):
            eng.timeout(-1)

    def test_call_at_in_past_rejected(self):
        eng = SimEngine()
        eng.call_after(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimTimeError):
            eng.call_at(1.0, lambda: None)

    def test_same_time_events_fifo(self):
        eng = SimEngine()
        order = []
        for i in range(5):
            eng.call_at(1.0, lambda i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_stops_clock(self):
        eng = SimEngine()
        fired = []
        eng.call_after(10.0, lambda: fired.append("late"))
        end = eng.run(until=5.0)
        assert end == 5.0 and eng.now == 5.0 and fired == []
        eng.run()
        assert fired == ["late"]

    def test_run_until_advances_clock_even_without_events(self):
        eng = SimEngine()
        eng.run(until=42.0)
        assert eng.now == 42.0

    def test_run_until_in_past_rejected(self):
        eng = SimEngine()
        eng.run(until=10.0)
        with pytest.raises(SimTimeError):
            eng.run(until=5.0)

    def test_peek(self):
        eng = SimEngine()
        assert eng.peek() is None
        eng.call_after(3.0, lambda: None)
        assert eng.peek() == 3.0

    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=1, max_size=50))
    def test_events_fire_in_time_order(self, delays):
        eng = SimEngine()
        fired = []
        for d in delays:
            eng.call_after(d, lambda d=d: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestProcesses:
    def test_process_return_value(self):
        eng = SimEngine()

        def proc():
            yield eng.timeout(1.0)
            return 42

        assert eng.run_process(proc()) == 42

    def test_process_sees_timeout_value(self):
        eng = SimEngine()

        def proc():
            got = yield eng.timeout(1.0, value="payload")
            return got

        assert eng.run_process(proc()) == "payload"

    def test_process_exception_propagates(self):
        eng = SimEngine()

        def proc():
            yield eng.timeout(1.0)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            eng.run_process(proc())

    def test_process_waits_on_process(self):
        eng = SimEngine()

        def child():
            yield eng.timeout(3.0)
            return "child-result"

        def parent():
            result = yield eng.process(child(), "child")
            return (eng.now, result)

        assert eng.run_process(parent()) == (3.0, "child-result")

    def test_processes_interleave(self):
        eng = SimEngine()
        log = []

        def ticker(name, dt, n):
            for _ in range(n):
                yield eng.timeout(dt)
                log.append((eng.now, name))

        eng.process(ticker("fast", 1.0, 3))
        eng.process(ticker("slow", 2.0, 2))
        eng.run()
        # At t=2.0 both fire; "slow"'s timeout was scheduled first (at t=0)
        # so it resumes first — ties break by schedule order.
        assert log == [(1.0, "fast"), (2.0, "slow"), (2.0, "fast"), (3.0, "fast"), (4.0, "slow")]

    def test_yield_non_event_fails_process(self):
        eng = SimEngine()

        def bad():
            yield 5

        proc = eng.process(bad())
        eng.run()
        assert proc.triggered and not proc.ok

    def test_wait_on_manual_event(self):
        eng = SimEngine()
        gate = eng.event("gate")
        log = []

        def waiter():
            value = yield gate
            log.append((eng.now, value))

        eng.process(waiter())
        eng.call_after(7.0, lambda: gate.succeed("open"))
        eng.run()
        assert log == [(7.0, "open")]
