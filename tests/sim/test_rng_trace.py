"""Tests for seeded RNG streams and the trace recorder."""

import pytest

from repro.sim import RngRegistry, TraceRecorder


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(42).stream("steps").random(5)
        b = RngRegistry(42).stream("steps").random(5)
        assert (a == b).all()

    def test_streams_differ_by_name(self):
        reg = RngRegistry(42)
        a = reg.stream("x").random(5)
        b = reg.stream("y").random(5)
        assert not (a == b).all()

    def test_streams_differ_by_seed(self):
        a = RngRegistry(1).stream("x").random(5)
        b = RngRegistry(2).stream("x").random(5)
        assert not (a == b).all()

    def test_creation_order_irrelevant(self):
        r1 = RngRegistry(7)
        r1.stream("b")
        a1 = r1.stream("a").random(3)
        r2 = RngRegistry(7)
        a2 = r2.stream("a").random(3)
        assert (a1 == a2).all()

    def test_fork_deterministic(self):
        a = RngRegistry(3).fork("child").stream("s").random(4)
        b = RngRegistry(3).fork("child").stream("s").random(4)
        assert (a == b).all()


class TestTraceRecorder:
    def test_open_close_span(self):
        tr = TraceRecorder()
        tr.open_span("XGC1", "run-0", 0.0)
        span = tr.close_span("XGC1", "run-0", 10.0, exit_code=0)
        assert span.duration == 10.0
        assert span.meta["exit_code"] == 0

    def test_double_open_rejected(self):
        tr = TraceRecorder()
        tr.open_span("t", "l", 0.0)
        with pytest.raises(ValueError):
            tr.open_span("t", "l", 1.0)

    def test_close_unopened_rejected(self):
        tr = TraceRecorder()
        with pytest.raises(ValueError):
            tr.close_span("t", "l", 1.0)

    def test_open_duration_raises(self):
        tr = TraceRecorder()
        span = tr.open_span("t", "l", 0.0)
        with pytest.raises(ValueError):
            _ = span.duration

    def test_filtering_and_ordering(self):
        tr = TraceRecorder()
        tr.add_span("B", "x", 5.0, 6.0)
        tr.add_span("A", "y", 1.0, 2.0, category="adjust")
        tr.add_span("A", "z", 3.0, 4.0)
        assert [s.track for s in tr.spans_for()] == ["A", "A", "B"]
        assert [s.label for s in tr.spans_for(track="A")] == ["y", "z"]
        assert [s.label for s in tr.spans_for(category="adjust")] == ["y"]

    def test_points(self):
        tr = TraceRecorder()
        tr.point(3.0, "switch", category="action")
        tr.point(1.0, "start", category="action")
        tr.point(2.0, "noise")
        assert [p.label for p in tr.points_for(category="action")] == ["start", "switch"]

    def test_tracks_first_appearance_order(self):
        tr = TraceRecorder()
        tr.add_span("sim", "a", 0, 1)
        tr.add_span("analysis", "b", 0, 1)
        tr.add_span("sim", "c", 2, 3)
        assert tr.tracks() == ["sim", "analysis"]

    def test_end_time(self):
        tr = TraceRecorder()
        assert tr.end_time() == 0.0
        tr.add_span("t", "a", 0.0, 9.0)
        tr.point(11.0, "late")
        assert tr.end_time() == 11.0
