"""Property-based XML round-trip over the *complete* element set.

Extends the basic round-trip test with the elements it leaves out —
sensor joins, monitor-task/use-sensor parameters, apply-policy
action-params, ``<resilience>`` (all six children), ``<telemetry>``,
``<journal>`` and ``<observability>`` (SLOs, anomaly detectors,
exports) — and checks the stronger *fixed-point* property: one
write/parse cycle normalizes a spec, after which further cycles change
nothing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import ExecutorSpec, TenantSpec, TenantsSpec
from repro.core import ActionType
from repro.core.policy import PolicyApplication, PolicySpec
from repro.core.sensors import GroupBySpec, JoinSpec, SensorSpec
from repro.fabric import LinkOverride, NetworkSpec, PartitionWindow
from repro.resilience import (
    CheckpointSpec,
    FaultModelSpec,
    QuarantineSpec,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)
from repro.journal import JournalSpec
from repro.observability import AnomalySpec, FleetSpec, ObservabilitySpec, SloSpec
from repro.telemetry import TelemetrySpec
from repro.wms.spec import CouplingType, DependencySpec
from repro.xmlspec import (
    DyflowSpec,
    MonitorTaskSpec,
    RuleSpec,
    parse_dyflow_xml,
    write_dyflow_xml,
)

names = st.text(alphabet="abcdefgXYZ_", min_size=1, max_size=8)
# Param *string* values must not look numeric (the parser coerces
# numeric-looking strings to int/float) nor spell inf/nan.
safe_text = st.text(alphabet="BCDGHJKLMNPQRSTVWXZ_", min_size=1, max_size=8)
param_values = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    safe_text,
)
params = st.dictionaries(names, param_values, max_size=3)
granularities = st.sampled_from(["task", "node-task", "workflow", "node-workflow"])
reductions = st.sampled_from(["MAX", "MIN", "AVG", "SUM", "MEDIAN", "FIRST", "LAST", "COUNT"])
positive = st.floats(min_value=0.01, max_value=1e5, allow_nan=False)


probs = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)
maybe_probs = st.one_of(st.none(), probs)
maybe_positive = st.one_of(st.none(), positive)


@st.composite
def network_specs(draw):
    clients = draw(st.lists(names, max_size=2, unique=True))
    links = tuple(
        LinkOverride(
            client=c,
            latency=draw(maybe_positive),
            jitter=draw(maybe_positive),
            drop_prob=draw(maybe_probs),
            dup_prob=draw(maybe_probs),
            reorder_prob=draw(maybe_probs),
            reorder_delay=draw(maybe_positive),
        )
        for c in clients
    )
    partitions = tuple(
        PartitionWindow(
            start=draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False)),
            duration=draw(positive),
            link=draw(st.one_of(st.none(), names)),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    return NetworkSpec(
        enabled=draw(st.booleans()),
        latency=draw(st.one_of(st.just(0.0), positive)),
        jitter=draw(st.one_of(st.just(0.0), positive)),
        drop_prob=draw(probs),
        dup_prob=draw(probs),
        reorder_prob=draw(probs),
        reorder_delay=draw(st.one_of(st.just(0.0), positive)),
        ack_timeout=draw(positive),
        ack_drop_prob=draw(probs),
        max_retransmits=draw(st.integers(0, 10)),
        retransmit_factor=draw(st.floats(min_value=1.0, max_value=8.0)),
        retransmit_max=draw(positive),
        retransmit_jitter=draw(st.floats(min_value=0.0, max_value=1.0)),
        send_buffer=draw(st.integers(1, 4096)),
        breaker_failures=draw(st.integers(0, 10)),
        breaker_reset=draw(positive),
        ingress_capacity=draw(st.integers(0, 4096)),
        drain_per_tick=draw(st.integers(0, 256)),
        stale_after=draw(st.one_of(st.just(0.0), positive)),
        degrade_after=draw(st.integers(1, 10)),
        recover_after=draw(st.integers(1, 10)),
        partitions=partitions,
        links=links,
    )


@st.composite
def resilience_specs(draw):
    def maybe(strat):
        return draw(st.one_of(st.none(), strat))

    return ResilienceSpec(
        retry=maybe(st.builds(
            RetryPolicy,
            max_retries=st.integers(0, 10),
            backoff_base=positive,
            backoff_factor=st.floats(min_value=1.0, max_value=8.0),
            backoff_max=positive,
            jitter=st.floats(min_value=0.0, max_value=1.0),
        )),
        watchdog=maybe(st.builds(
            WatchdogSpec,
            heartbeat_timeout=positive,
            poll=positive,
            kill_code=st.integers(129, 255),
        )),
        quarantine=maybe(st.builds(
            QuarantineSpec,
            failures=st.integers(1, 10),
            window=positive,
            cooldown=positive,
        )),
        checkpoint=maybe(st.builds(
            CheckpointSpec,
            every=st.integers(1, 1000),
            resume=st.booleans(),
        )),
        faults=maybe(st.builds(
            FaultModelSpec,
            node_mtbf=st.one_of(st.just(0.0), positive),
            node_dist=st.sampled_from(["exponential", "weibull"]),
            weibull_shape=st.floats(min_value=0.2, max_value=5.0),
            node_repair_time=positive,
            task_crash_mtbf=st.one_of(st.just(0.0), positive),
            task_hang_mtbf=st.one_of(st.just(0.0), positive),
            msg_drop_prob=st.floats(min_value=0.0, max_value=0.99),
            stage_drop_prob=st.floats(min_value=0.0, max_value=0.99),
            orch_crash_mtbf=st.one_of(st.just(0.0), positive),
        )),
        network=maybe(network_specs()),
    )


journal_specs = st.builds(
    JournalSpec,
    dir=safe_text,
    enabled=st.booleans(),
    fsync=st.sampled_from(["off", "always", "batch"]),
    batch_every=st.integers(1, 1000),
    snapshot_every=st.integers(1, 100),
)


telemetry_specs = st.builds(
    TelemetrySpec,
    enabled=st.booleans(),
    sample=st.floats(min_value=0.001, max_value=1.0),
    jsonl_path=st.one_of(st.none(), safe_text),
    chrome_trace_path=st.one_of(st.none(), safe_text),
)


slo_stats = st.sampled_from(["p50", "p95", "p99", "mean", "min", "max", "count", "value"])
severities = st.sampled_from(["info", "warning", "critical"])


@st.composite
def observability_specs(draw):
    # Unique (metric, stat) keys — duplicate objectives fail validation.
    slo_keys = draw(st.lists(st.tuples(names, slo_stats), max_size=3,
                             unique=True))
    slos = tuple(
        SloSpec(
            metric=metric, stat=stat,
            op=draw(st.sampled_from(["LT", "LE", "GT", "GE"])),
            threshold=draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
            severity=draw(severities),
            fire_after=draw(st.integers(1, 5)),
            clear_after=draw(st.integers(1, 5)),
            tenant=draw(st.one_of(st.just(""), names)),
        )
        for metric, stat in slo_keys
    )
    anomalies = tuple(
        AnomalySpec(
            metric=draw(names), stat=draw(slo_stats),
            window=draw(st.integers(2, 50)),
            z=draw(st.floats(min_value=0.5, max_value=10.0)),
            alpha=draw(st.floats(min_value=0.01, max_value=1.0)),
            min_points=draw(st.integers(2, 10)),
            severity=draw(severities),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    report_path = draw(st.one_of(st.none(), safe_text))
    report_json_path = draw(st.one_of(st.none(), safe_text))
    fleet = draw(st.one_of(st.none(), st.builds(
        FleetSpec,
        enabled=st.booleans(),
        openmetrics_path=st.one_of(st.none(), safe_text),
        top_k=st.integers(1, 10),
        watch_path=st.one_of(st.none(), safe_text),
        flight_recorder=st.integers(0, 1024),
    )))
    return ObservabilitySpec(
        enabled=draw(st.booleans()),
        eval_every=draw(positive),
        snapshot_every=draw(st.one_of(st.just(0.0), positive)),
        openmetrics_path=draw(st.one_of(st.none(), safe_text)),
        report_path=report_path,
        report_json_path=report_json_path,
        analysis=draw(st.booleans()),
        top_n=draw(st.integers(1, 20)),
        slos=slos,
        anomalies=anomalies,
        fleet=fleet,
    )


@st.composite
def tenants_specs(draw):
    ids = draw(st.lists(names, max_size=3, unique=True))
    tenants = tuple(
        TenantSpec(
            tenant_id=tid,
            quota_cores=draw(st.integers(0, 10_000)),
            weight=draw(st.floats(min_value=0.1, max_value=10.0)),
            max_queue=draw(st.integers(1, 64)),
        )
        for tid in ids
    )
    executor = draw(st.one_of(st.none(), st.builds(
        ExecutorSpec,
        workers=st.integers(0, 16),
        cell_timeout=st.one_of(st.just(0.0), positive),
        max_attempts=st.integers(1, 8),
        backoff_base=positive,
        backoff_factor=st.floats(min_value=1.0, max_value=8.0),
        backoff_max=positive,
        jitter=st.floats(min_value=0.0, max_value=1.0),
        kill_prob=st.floats(min_value=0.0, max_value=0.99),
    )))
    breaker = draw(st.one_of(st.none(), st.builds(
        QuarantineSpec,
        failures=st.integers(1, 10),
        window=positive,
        cooldown=positive,
    )))
    return TenantsSpec(
        nodes=draw(st.integers(0, 512)),
        cores_per_node=draw(st.integers(0, 128)),
        tenants=tenants,
        executor=executor,
        breaker=breaker,
    )


@st.composite
def sensor_specs(draw, sensor_id, all_ids):
    grans = draw(st.lists(granularities, min_size=1, max_size=4, unique=True))
    group_by = tuple(GroupBySpec(g, draw(reductions)) for g in grans)
    join = None
    if draw(st.booleans()):
        join = JoinSpec(draw(st.sampled_from(all_ids)),
                        draw(st.sampled_from(["DIV", "MUL", "ADD", "SUB"])))
    return SensorSpec(
        sensor_id=sensor_id,
        source_type=draw(st.sampled_from(
            ["ADIOS2", "TAUADIOS2", "DISKSCAN", "FILEREAD", "ERRORSTATUS"])),
        group_by=group_by,
        preprocess=draw(st.sampled_from(
            [None, "IDENTITY", "NORM", "MEAN", "SUM", "MAX", "MIN", "ABSMAX", "STD"])),
        join=join,
    )


@st.composite
def dyflow_specs(draw):
    sensor_ids = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    sensors = {sid: draw(sensor_specs(sid, sensor_ids)) for sid in sensor_ids}
    policies = {}
    applications = []
    for i in range(draw(st.integers(0, 3))):
        pid = f"P{i}"
        sid = draw(st.sampled_from(sensor_ids))
        gran = draw(st.sampled_from([g.granularity for g in sensors[sid].group_by]))
        window = draw(st.integers(1, 20))
        policies[pid] = PolicySpec(
            policy_id=pid,
            sensor_id=sid,
            granularity=gran,
            eval_op=draw(st.sampled_from(["GT", "LT", "EQ", "GE", "LE", "NE"])),
            threshold=draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
            action=draw(st.sampled_from(list(ActionType))),
            # Window 1 omits <history>, so the op must stay the parser default.
            history_window=window,
            history_op=draw(st.sampled_from(["AVG", "MAX", "MIN", "LAST"])) if window > 1 else "AVG",
            frequency=draw(st.floats(min_value=0.0, max_value=1e4, allow_nan=False)),
        )
        applications.append(
            PolicyApplication(
                policy_id=pid,
                workflow_id=draw(st.sampled_from(["WF", "WF2"])),
                act_on_tasks=tuple(draw(st.lists(names, min_size=1, max_size=3, unique=True))),
                assess_task=draw(st.sampled_from(["", "taskA"])),
                action_params=draw(params),
            )
        )
    rules = {}
    if draw(st.booleans()):
        rules["WF"] = RuleSpec(
            workflow_id="WF",
            task_priorities=draw(st.dictionaries(names, st.integers(0, 9), max_size=3)),
            policy_priorities={pid: i for i, pid in enumerate(policies)},
            dependencies=[
                DependencySpec(draw(names), draw(names),
                               draw(st.sampled_from(list(CouplingType))))
                for _ in range(draw(st.integers(0, 2)))
            ],
        )
    tasks = draw(st.lists(names, min_size=0, max_size=3, unique=True))
    monitor_tasks = [
        MonitorTaskSpec(
            task=t,
            workflow_id="WF",
            sensor_id=draw(st.sampled_from(sensor_ids)),
            info_source=draw(st.sampled_from([None, "glob.*"])),
            info=draw(st.sampled_from([None, "looptime"])),
            params=draw(params),
        )
        for t in tasks
    ]
    return DyflowSpec(
        sensors=sensors,
        monitor_tasks=monitor_tasks,
        policies=policies,
        applications=applications,
        rules=rules,
        resilience=draw(st.one_of(st.none(), resilience_specs())),
        telemetry=draw(st.one_of(st.none(), telemetry_specs)),
        journal=draw(st.one_of(st.none(), journal_specs)),
        observability=draw(st.one_of(st.none(), observability_specs())),
        tenants=draw(st.one_of(st.none(), tenants_specs())),
    )


class TestFixedPoint:
    @settings(max_examples=60, deadline=None)
    @given(dyflow_specs())
    def test_one_cycle_reaches_the_fixed_point(self, spec):
        """write → parse → write reproduces the document byte for byte."""
        xml1 = write_dyflow_xml(spec)
        spec2 = parse_dyflow_xml(xml1)
        xml2 = write_dyflow_xml(spec2)
        assert xml1 == xml2
        assert parse_dyflow_xml(xml2) == spec2

    @settings(max_examples=60, deadline=None)
    @given(dyflow_specs())
    def test_every_section_survives_the_cycle(self, spec):
        back = parse_dyflow_xml(write_dyflow_xml(spec))
        assert back.sensors == spec.sensors
        assert back.policies == spec.policies
        # apply-policy elements are regrouped under per-workflow
        # <apply-on> blocks on write, so compare as a multiset.
        def app_key(a):
            return (a.workflow_id, a.policy_id, a.act_on_tasks, a.assess_task,
                    tuple(sorted(a.action_params.items(), key=repr)))

        assert sorted(map(app_key, back.applications), key=repr) == \
            sorted(map(app_key, spec.applications), key=repr)
        assert back.rules == spec.rules
        assert back.resilience == spec.resilience
        assert back.telemetry == spec.telemetry
        assert back.journal == spec.journal
        assert back.observability == spec.observability
        assert back.tenants == spec.tenants
        # monitor-tasks are regrouped by (task, workflow, source) on
        # write; with unique tasks the binding set is order-stable.
        def key(m):
            return (m.task, m.sensor_id, m.info_source, m.info,
                    tuple(sorted(m.params.items(), key=repr)))

        assert sorted(map(key, back.monitor_tasks), key=repr) == \
            sorted(map(key, spec.monitor_tasks), key=repr)

    @settings(max_examples=30, deadline=None)
    @given(params)
    def test_param_coercion_is_type_stable(self, values):
        spec = DyflowSpec(
            sensors={"S": SensorSpec("S", "ADIOS2")},
            monitor_tasks=[MonitorTaskSpec("T", "WF", "S", params=values)],
        )
        back = parse_dyflow_xml(write_dyflow_xml(spec))
        [mt] = back.monitor_tasks
        assert mt.params == values
        assert {k: type(v) for k, v in mt.params.items()} == \
            {k: type(v) for k, v in values.items()}


def test_full_document_with_all_elements_round_trips():
    """One deterministic spec exercising every element at once."""
    spec = DyflowSpec(
        sensors={
            "PACE": SensorSpec("PACE", "TAUADIOS2",
                               (GroupBySpec("task", "MAX"), GroupBySpec("workflow", "AVG")),
                               preprocess="NORM"),
            "CYCLES": SensorSpec("CYCLES", "ADIOS2",
                                 (GroupBySpec("task", "SUM"),),
                                 join=JoinSpec("PACE", "DIV")),
        },
        monitor_tasks=[
            MonitorTaskSpec("Iso", "WF", "PACE", info_source="*.bp", info="looptime",
                            params={"info-type": "double", "depth": 3}),
        ],
        policies={
            "INC": PolicySpec("INC", "PACE", "GT", 36.0, ActionType.ADDCPU,
                              history_window=10, history_op="AVG", frequency=5.0),
        },
        applications=[
            PolicyApplication("INC", "WF", ("Iso",), assess_task="Iso",
                              action_params={"adjust-by": 20}),
        ],
        rules={
            "WF": RuleSpec("WF", task_priorities={"Sim": 10, "Iso": 5},
                           policy_priorities={"INC": 1},
                           dependencies=[DependencySpec("Iso", "Sim", CouplingType.TIGHT)]),
        },
        resilience=ResilienceSpec(
            retry=RetryPolicy(max_retries=5, backoff_base=1.0, backoff_factor=2.0,
                              backoff_max=60.0, jitter=0.5),
            watchdog=WatchdogSpec(heartbeat_timeout=90.0, poll=5.0, kill_code=142),
            quarantine=QuarantineSpec(failures=2, window=300.0, cooldown=900.0),
            checkpoint=CheckpointSpec(every=25, resume=True),
            faults=FaultModelSpec(node_mtbf=40_000.0, node_dist="weibull",
                                  weibull_shape=1.5, node_repair_time=600.0,
                                  msg_drop_prob=0.01),
            network=NetworkSpec(
                latency=0.2, jitter=0.1, drop_prob=0.1, dup_prob=0.05,
                reorder_prob=0.05, ack_timeout=2.0, max_retransmits=5,
                breaker_failures=3, ingress_capacity=128, drain_per_tick=32,
                stale_after=20.0, degrade_after=3, recover_after=3,
                partitions=(PartitionWindow(600.0, 30.0),
                            PartitionWindow(900.0, 10.0, link="c1")),
                links=(LinkOverride("c1", latency=1.0, drop_prob=0.3),),
            ),
        ),
        telemetry=TelemetrySpec(enabled=True, sample=0.5,
                                jsonl_path="run/events.jsonl",
                                chrome_trace_path="run/trace.json"),
        journal=JournalSpec(dir="run/journal", enabled=True, fsync="batch",
                            batch_every=32, snapshot_every=10),
        observability=ObservabilitySpec(
            enabled=True, eval_every=5.0, snapshot_every=60.0,
            openmetrics_path="run/metrics.prom",
            report_path="run/report.md", report_json_path="run/report.json",
            analysis=True, top_n=7,
            slos=(
                SloSpec(metric="plan.response", stat="p95", op="LT",
                        threshold=60.0, severity="warning",
                        fire_after=2, clear_after=3),
                SloSpec(metric="cluster.utilization", stat="value", op="GE",
                        threshold=0.5, severity="info"),
                SloSpec(metric="fleet.cell.latency", stat="p95", op="LT",
                        threshold=120.0, severity="warning", tenant="alice"),
            ),
            anomalies=(
                AnomalySpec(metric="stage.monitor.latency", stat="p95",
                            window=30, z=4.0, alpha=0.2, min_points=6,
                            severity="critical"),
            ),
        ),
        tenants=TenantsSpec(
            nodes=8, cores_per_node=42,
            tenants=(
                TenantSpec("alice", quota_cores=168, weight=2.0, max_queue=16),
                TenantSpec("bob", quota_cores=84, weight=1.0, max_queue=8),
            ),
            executor=ExecutorSpec(workers=4, cell_timeout=30.0, max_attempts=3,
                                  backoff_base=0.5, backoff_factor=2.0,
                                  backoff_max=30.0, jitter=0.25, kill_prob=0.1),
            breaker=QuarantineSpec(failures=3, window=600.0, cooldown=1800.0),
        ),
    )
    xml1 = write_dyflow_xml(spec)
    back = parse_dyflow_xml(xml1)
    assert back == spec
    assert write_dyflow_xml(back) == xml1
