"""Round-trip property: parse(write(spec)) == spec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ActionType
from repro.core.policy import PolicyApplication, PolicySpec
from repro.core.sensors import GroupBySpec, SensorSpec
from repro.wms.spec import CouplingType, DependencySpec
from repro.xmlspec import DyflowSpec, RuleSpec, MonitorTaskSpec, parse_dyflow_xml, write_dyflow_xml

names = st.text(alphabet="abcdefgXYZ_", min_size=1, max_size=8)
granularities = st.sampled_from(["task", "node-task", "workflow", "node-workflow"])
reductions = st.sampled_from(["MAX", "MIN", "AVG", "SUM", "FIRST", "LAST", "COUNT"])


@st.composite
def sensor_specs(draw, sensor_id):
    grans = draw(st.lists(granularities, min_size=1, max_size=4, unique=True))
    group_by = tuple(GroupBySpec(g, draw(reductions)) for g in grans)
    preprocess = draw(st.sampled_from([None, "NORM", "MEAN", "MAX"]))
    return SensorSpec(sensor_id=sensor_id, source_type=draw(
        st.sampled_from(["ADIOS2", "TAUADIOS2", "DISKSCAN", "ERRORSTATUS"])),
        group_by=group_by, preprocess=preprocess)


@st.composite
def dyflow_specs(draw):
    sensor_ids = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    sensors = {sid: draw(sensor_specs(sid)) for sid in sensor_ids}
    policies = {}
    applications = []
    for i in range(draw(st.integers(0, 3))):
        pid = f"P{i}"
        sid = draw(st.sampled_from(sensor_ids))
        gran = draw(st.sampled_from([g.granularity for g in sensors[sid].group_by]))
        policies[pid] = PolicySpec(
            policy_id=pid,
            sensor_id=sid,
            granularity=gran,
            eval_op=draw(st.sampled_from(["GT", "LT", "EQ", "GE", "LE", "NE"])),
            threshold=draw(st.integers(-100, 500)) * 1.0,
            action=draw(st.sampled_from(list(ActionType))),
            # With window=1 the writer omits <history>, so the op must be
            # the parser default (it is semantically unused anyway).
            history_window=(window := draw(st.integers(1, 20))),
            history_op=draw(st.sampled_from(["AVG", "MAX", "MIN", "LAST"])) if window > 1 else "AVG",
            frequency=float(draw(st.integers(1, 60))),
        )
        applications.append(
            PolicyApplication(
                policy_id=pid,
                workflow_id="WF",
                act_on_tasks=tuple(draw(st.lists(names, min_size=1, max_size=3, unique=True))),
                assess_task=draw(st.sampled_from(["", "taskA"])),
                action_params={"adjust-by": draw(st.integers(1, 50))} if draw(st.booleans()) else {},
            )
        )
    rules = {}
    if draw(st.booleans()):
        rules["WF"] = RuleSpec(
            workflow_id="WF",
            task_priorities={draw(names): draw(st.integers(0, 5))},
            policy_priorities={pid: i for i, pid in enumerate(policies)},
            dependencies=[
                DependencySpec("cons", "prod", draw(st.sampled_from(list(CouplingType))))
            ],
        )
    monitor_tasks = [
        MonitorTaskSpec(task="T", workflow_id="WF", sensor_id=draw(st.sampled_from(sensor_ids)),
                        info_source=draw(st.sampled_from([None, "glob.*"])),
                        info=draw(st.sampled_from([None, "looptime"])))
    ]
    return DyflowSpec(sensors=sensors, monitor_tasks=monitor_tasks,
                      policies=policies, applications=applications, rules=rules)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(dyflow_specs())
    def test_parse_write_roundtrip(self, spec):
        text = write_dyflow_xml(spec)
        back = parse_dyflow_xml(text)
        assert back.sensors == spec.sensors
        assert back.policies == spec.policies
        assert back.applications == spec.applications
        assert {k: (r.task_priorities, r.policy_priorities, r.dependencies)
                for k, r in back.rules.items()} == {
            k: (r.task_priorities, r.policy_priorities, r.dependencies)
            for k, r in spec.rules.items()
        }
        assert [(m.task, m.sensor_id, m.info_source, m.info) for m in back.monitor_tasks] == [
            (m.task, m.sensor_id, m.info_source, m.info) for m in spec.monitor_tasks
        ]

    def test_written_xml_is_pretty(self):
        spec = DyflowSpec(sensors={"S": SensorSpec("S", "ADIOS2")})
        text = write_dyflow_xml(spec)
        assert text.startswith("<?xml")
        assert "<dyflow>" in text and "\n" in text
