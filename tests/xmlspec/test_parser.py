"""Tests for the XML parser against the paper's figures."""

import pytest

from repro.core import ActionType
from repro.errors import XmlSpecError
from repro.wms import CouplingType
from repro.xmlspec import parse_dyflow_xml

# Fig. 3: the PACE sensor.
FIG3 = """
<monitor>
  <sensors>
    <sensor id="PACE" type="TAUADIOS2">
      <group-by> <group granularity="task" reduction-operation="MAX"/> </group-by>
    </sensor>
  </sensors>
  <monitor-tasks>
    <monitor-task name="Isosurface" workflowId="GS-WORKFLOW" info-source="tau-iso.bp.*">
      <use-sensor sensor-id="PACE" info="looptime">
        <parameter key="info-type" value="double"/>
      </use-sensor>
    </monitor-task>
  </monitor-tasks>
</monitor>
"""

# Fig. 4: the PACE policies.
FIG4 = """
<decision>
  <policies>
    <policy id="INC_ON_PACE">
      <eval operation="GT" threshold="36" />
      <sensors-to-use> <use-sensor id="PACE" granularity="task" /> </sensors-to-use>
      <action> ADDCPU </action>
      <history window="10" operation="AVG" />
      <frequency seconds="5" /> </policy>
    <policy id="DEC_ON_PACE">
      <eval operation="LT" threshold="24" />
      <sensors-to-use> <use-sensor id="PACE" granularity="task" /> </sensors-to-use>
      <action> RMCPU </action>
      <history window="10" operation="AVG" />
      <frequency seconds="5" /> </policy>
  </policies>
  <apply-on workflowId="GS-WORKFLOW">
    <apply-policy policyId="INC_ON_PACE" assess-task="Isosurface">
      <act-on-tasks> Isosurface </act-on-tasks>
      <action-params> <param key="adjust-by" value="20" /> </action-params>
    </apply-policy>
  </apply-on>
</decision>
"""

# Fig. 5: arbitration rules.
FIG5 = """
<arbitration>
  <rules>
    <rule-for workflowId="GS-WORKFLOW">
      <task-priorities>
        <task-priority name="GrayScott" priority="0" />
      </task-priorities>
      <task-dependencies workflowId="GS-WORKFLOW">
        <task-dep name="Isosurface" type="TIGHT" parent="GrayScott" />
      </task-dependencies>
    </rule-for>
  </rules>
</arbitration>
"""


class TestSectionParsing:
    def test_fig3_sensor(self):
        spec = parse_dyflow_xml(FIG3)
        pace = spec.sensors["PACE"]
        assert pace.source_type == "TAUADIOS2"
        assert pace.group_by[0].granularity == "task"
        assert pace.group_by[0].reduction == "MAX"
        mt = spec.monitor_tasks[0]
        assert mt.task == "Isosurface" and mt.info == "looptime"
        assert mt.info_source == "tau-iso.bp.*"
        assert mt.params == {"info-type": "double"}

    def test_fig4_policies(self):
        spec = parse_dyflow_xml(f"<dyflow>{FIG3}{FIG4}</dyflow>")
        inc = spec.policies["INC_ON_PACE"]
        assert inc.eval_op == "GT" and inc.threshold == 36.0
        assert inc.action == ActionType.ADDCPU
        assert inc.history_window == 10 and inc.history_op == "AVG"
        assert inc.frequency == 5.0
        app = spec.applications[0]
        assert app.assess_task == "Isosurface"
        assert app.act_on_tasks == ("Isosurface",)
        assert app.action_params == {"adjust-by": 20}

    def test_fig5_rules(self):
        spec = parse_dyflow_xml(FIG5)
        rule = spec.rules["GS-WORKFLOW"]
        assert rule.task_priorities == {"GrayScott": 0}
        dep = rule.dependencies[0]
        assert dep.task == "Isosurface" and dep.parent == "GrayScott"
        assert dep.type == CouplingType.TIGHT

    def test_full_document_validates(self):
        spec = parse_dyflow_xml(f"<dyflow>{FIG3}{FIG4}{FIG5}</dyflow>")
        assert set(spec.policies) == {"INC_ON_PACE", "DEC_ON_PACE"}

    def test_fig10_frequency_typo_tolerated(self):
        """The paper's Fig. 10 writes <frequency> seconds="5" </frequency>."""
        xml = """
        <dyflow><monitor><sensors>
          <sensor id="STATUS" type="ERRORSTATUS">
            <group-by><group granularity="task" reduction-operation="FIRST"/></group-by>
          </sensor></sensors></monitor>
        <decision><policies>
          <policy id="RESTART_ON_FAILURE">
            <eval operation="GT" threshold="128"/>
            <sensors-to-use><use-sensor id="STATUS" granularity="task"/></sensors-to-use>
            <action> RESTART </action>
            <frequency> seconds="5" </frequency>
          </policy></policies></decision></dyflow>
        """
        spec = parse_dyflow_xml(xml)
        assert spec.policies["RESTART_ON_FAILURE"].frequency == 5.0


class TestValidation:
    def test_malformed_xml(self):
        with pytest.raises(XmlSpecError):
            parse_dyflow_xml("<dyflow><monitor>")

    def test_unexpected_root(self):
        with pytest.raises(XmlSpecError):
            parse_dyflow_xml("<nonsense/>")

    def test_policy_with_unknown_sensor(self):
        with pytest.raises(XmlSpecError, match="uses unknown sensor"):
            parse_dyflow_xml(f"<dyflow>{FIG4}</dyflow>")

    def test_policy_missing_eval(self):
        xml = """
        <decision><policies><policy id="P">
          <sensors-to-use><use-sensor id="S"/></sensors-to-use>
          <action> STOP </action>
        </policy></policies></decision>"""
        with pytest.raises(XmlSpecError, match="missing <eval>"):
            parse_dyflow_xml(xml)

    def test_policy_bad_action(self):
        xml = """
        <decision><policies><policy id="P">
          <eval operation="GT" threshold="1"/>
          <sensors-to-use><use-sensor id="S"/></sensors-to-use>
          <action> EXPLODE </action>
        </policy></policies></decision>"""
        with pytest.raises(XmlSpecError, match="unknown action"):
            parse_dyflow_xml(xml)

    def test_apply_policy_needs_act_on_tasks(self):
        xml = """
        <decision><apply-on workflowId="W">
          <apply-policy policyId="P"/>
        </apply-on></decision>"""
        with pytest.raises(XmlSpecError, match="act-on-tasks"):
            parse_dyflow_xml(xml)

    def test_policy_granularity_must_exist_on_sensor(self):
        xml = """
        <dyflow><monitor><sensors>
          <sensor id="S" type="ADIOS2">
            <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
          </sensor></sensors></monitor>
        <decision><policies><policy id="P">
          <eval operation="GT" threshold="1"/>
          <sensors-to-use><use-sensor id="S" granularity="workflow"/></sensors-to-use>
          <action> STOP </action>
        </policy></policies></decision></dyflow>"""
        with pytest.raises(XmlSpecError, match="granularity"):
            parse_dyflow_xml(xml)

    def test_duplicate_sensor_ids(self):
        xml = """
        <monitor><sensors>
          <sensor id="S" type="ADIOS2"/>
          <sensor id="S" type="ADIOS2"/>
        </sensors></monitor>"""
        with pytest.raises(XmlSpecError, match="duplicate sensor"):
            parse_dyflow_xml(xml)

    def test_unknown_dependency_type(self):
        xml = """
        <arbitration><rules><rule-for workflowId="W">
          <task-dep name="a" type="MAGNETIC" parent="b"/>
        </rule-for></rules></arbitration>"""
        with pytest.raises(XmlSpecError, match="dependency type"):
            parse_dyflow_xml(xml)

    def test_param_coercion(self):
        spec = parse_dyflow_xml(f"<dyflow>{FIG3}{FIG4}</dyflow>")
        assert spec.applications[0].action_params["adjust-by"] == 20  # int, not str
        assert spec.monitor_tasks[0].params["info-type"] == "double"  # stays str


class TestScenarioXml:
    """The canned experiment XML documents must parse and validate."""

    def test_xgc_xml(self):
        from repro.experiments import XGC_XML
        spec = parse_dyflow_xml(XGC_XML)
        assert set(spec.policies) == {"RESTART_UNTIL_COND", "SWITCH_ON_COND", "STOP_ON_COND"}
        assert spec.rules["FUSION-WORKFLOW"].policy_priorities["STOP_ON_COND"] == 0

    def test_gray_scott_xml(self):
        from repro.experiments import GRAY_SCOTT_XML
        spec = parse_dyflow_xml(GRAY_SCOTT_XML)
        assert spec.policies["INC_ON_PACE"].threshold == 36.0
        assert len(spec.applications) == 8  # INC+DEC for 4 analyses

    def test_lammps_xml(self):
        from repro.experiments import LAMMPS_XML
        spec = parse_dyflow_xml(LAMMPS_XML)
        assert spec.policies["RESTART_ON_FAILURE"].threshold == 128.0
        assert spec.sensors["STATUS"].source_type == "ERRORSTATUS"


class TestStrictMode:
    """``strict=True`` rejects rule task references that name nothing the
    document monitors, acts on, assesses, or declares as a dependency —
    the latent defect the default (lenient) mode silently accepts."""

    UNMONITORED_RULE = """
    <dyflow>
      <monitor>
        <sensors>
          <sensor id="S" type="ADIOS2">
            <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
          </sensor>
        </sensors>
        <monitor-tasks>
          <monitor-task name="Sim" workflowId="W">
            <use-sensor sensor-id="S" info="x"/>
          </monitor-task>
        </monitor-tasks>
      </monitor>
      <arbitration><rules><rule-for workflowId="W">
        <task-priority name="Ghost" priority="3"/>
      </rule-for></rules></arbitration>
    </dyflow>"""

    def test_default_mode_accepts_unmonitored_rule_task(self):
        spec = parse_dyflow_xml(self.UNMONITORED_RULE)
        assert spec.rules["W"].task_priorities == {"Ghost": 3}

    def test_strict_mode_rejects_unmonitored_rule_task(self):
        with pytest.raises(XmlSpecError, match="Ghost"):
            parse_dyflow_xml(self.UNMONITORED_RULE, strict=True)

    def test_strict_mode_accepts_monitored_rule_task(self):
        xml = self.UNMONITORED_RULE.replace('name="Ghost"', 'name="Sim"')
        spec = parse_dyflow_xml(xml, strict=True)
        assert spec.rules["W"].task_priorities == {"Sim": 3}

    def test_strict_mode_accepts_dependency_endpoint(self):
        xml = self.UNMONITORED_RULE.replace(
            '<task-priority name="Ghost" priority="3"/>',
            '<task-priority name="Ana" priority="3"/>'
            '<task-dep name="Ana" parent="Sim" type="TIGHT"/>',
        )
        spec = parse_dyflow_xml(xml, strict=True)
        assert spec.rules["W"].task_priorities == {"Ana": 3}

    def test_paper_documents_pass_strict_mode(self):
        from repro.experiments import GRAY_SCOTT_XML, LAMMPS_XML, XGC_XML
        for xml in (XGC_XML, GRAY_SCOTT_XML, LAMMPS_XML):
            parse_dyflow_xml(xml, strict=True)
