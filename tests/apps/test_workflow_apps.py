"""Tests for the XGC / Gray-Scott / LAMMPS application models."""

import pytest

from repro.apps.gray_scott import (
    ANALYSIS_TASKS as GS_ANALYSES,
    GrayScottConfig,
    MODELS_BY_MACHINE,
    make_analysis_app,
    make_gray_scott_app,
)
from repro.apps.lammps import (
    LAMMPS_STEP_TIME,
    LammpsConfig,
    make_lammps_app,
    make_md_analysis_app,
)
from repro.apps.xgc import XGC1_STEP_TIME, XGCA_STEP_TIME, XgcApp, make_xgc1, make_xgca
from repro.sim import SimEngine
from tests.apps.test_iterative_app import make_ctx


class TestXgcModels:
    def test_speed_ratio_matches_paper(self):
        """XGC1 runs ≈2.5× slower than XGCa (§4.3)."""
        assert XGC1_STEP_TIME / XGCA_STEP_TIME == pytest.approx(2.5)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            XgcApp("XGC2", 1.0)

    def test_run_steps_default_100(self):
        assert make_xgc1().run_steps == 100
        assert make_xgca().run_steps == 100

    def test_progress_file_alternation(self):
        """XGC1 runs 100 steps; XGCa resumes from its progress record."""
        eng = SimEngine()
        ctx1 = make_ctx(eng, task="XGC1")
        eng.run_process(make_xgc1().run(ctx1))
        assert ctx1.notes["last_step"] == 100
        hub = ctx1.hub
        assert hub.filesystem.read("fusion/WF/progress")["step"] == 100
        ctx2 = make_ctx(eng, hub=hub, task="XGCA")
        eng.run_process(make_xgca().run(ctx2))
        assert ctx2.notes["first_step"] == 100
        assert ctx2.notes["last_step"] == 200

    def test_output_files_per_global_step(self):
        eng = SimEngine()
        ctx = make_ctx(eng, task="XGC1")
        app = XgcApp("XGC1", 1.0, total_steps=600, run_steps=5)
        eng.run_process(app.run(ctx))
        files = ctx.hub.filesystem.scan("out/WF/XGC1.out.*")
        assert [e.meta["step"] for e in files] == [0, 1, 2, 3, 4]

    def test_total_steps_cap(self):
        eng = SimEngine()
        ctx = make_ctx(eng, task="XGC1")
        app = XgcApp("XGC1", 0.5, total_steps=3, run_steps=100)
        eng.run_process(app.run(ctx))
        assert ctx.notes["last_step"] == 3
        assert ctx.notes["completed"] is True


class TestGrayScottModels:
    def test_summit_calibration_shape(self):
        """Iso gates at 20 procs, FFT gates after the first fix, 60 is in-band."""
        m = MODELS_BY_MACHINE["summit"]
        assert m["Isosurface"].nominal(20, 0) > 36
        assert m["FFT"].nominal(20, 0) > 36
        assert 24 < m["Isosurface"].nominal(60, 0) < 36
        assert m["GrayScott"].nominal(340, 0) < 36
        assert m["PDF_Calc"].nominal(20, 0) < 24

    def test_deepthought2_calibration_shape(self):
        m = MODELS_BY_MACHINE["deepthought2"]
        speed = 0.55
        assert m["Isosurface"].nominal(20, 0) / speed > 42
        assert 28 < m["Isosurface"].nominal(60, 0) / speed < 42
        assert m["GrayScott"].nominal(320, 0) / speed < 42

    def test_configs_match_table2(self):
        s = GrayScottConfig.summit()
        assert s.gs_procs == 340 and s.gs_procs_per_node == 34
        assert s.analysis_procs == 20
        assert all(s.analysis_procs_per_node[t] == 2 for t in GS_ANALYSES)
        d = GrayScottConfig.deepthought2()
        assert d.gs_procs == 320 and d.gs_procs_per_node == 16

    def test_summit_packing_is_exact(self):
        """34 + 2×4 analyses = 42 = a full Summit node."""
        s = GrayScottConfig.summit()
        per_node = s.gs_procs_per_node + sum(s.analysis_procs_per_node.values())
        assert per_node == 42

    def test_factories(self):
        config = GrayScottConfig.summit()
        gs = make_gray_scott_app(config)
        assert gs.total_steps == 50
        iso = make_analysis_app("Isosurface", config)
        assert iso.total_steps is None
        with pytest.raises(ValueError):
            make_analysis_app("Nope", config)


class TestLammpsModels:
    def test_configs_match_table3(self):
        s = LammpsConfig.summit()
        assert s.sim_procs == 1500 and s.sim_procs_per_node == 30
        assert s.analysis_procs == 200 and s.analysis_procs_per_node == 4
        assert s.total_atoms == 65_536_000
        d = LammpsConfig.deepthought2()
        assert d.sim_procs == 100 and d.total_atoms == 8_192_000

    def test_summit_packing_is_exact(self):
        """30 + 3×4 analyses = 42 = a full Summit node — a single node
        failure therefore kills the whole workflow (§4.5)."""
        s = LammpsConfig.summit()
        assert s.sim_procs_per_node + 3 * s.analysis_procs_per_node == 42

    def test_publish_every_matches_analysis_steps(self):
        assert LammpsConfig.summit().publish_every == 10
        assert LammpsConfig.deepthought2().publish_every == 20

    def test_checkpoint_lands_at_412_for_600s_failure(self):
        """The calibrated step time puts the last checkpoint before a
        600 s failure at step 412 — the paper's restart point."""
        steps_at_failure = int(600.0 / LAMMPS_STEP_TIME)
        last_cp = (steps_at_failure // 4) * 4
        assert last_cp == 412

    def test_factories(self):
        config = LammpsConfig.summit()
        sim = make_lammps_app(config)
        assert sim.checkpoint_every == 4
        assert sim.resume_from_checkpoint
        ana = make_md_analysis_app("RDF_Calc", config)
        assert ana.total_steps is None
        with pytest.raises(ValueError):
            make_md_analysis_app("Nope", config)
