"""Tests for the IterativeApp execution model on the sim kernel."""

import pytest

from repro.apps import ConstantModel, CouplingRegistry, IterativeApp
from repro.apps.base import Signal, TaskContext
from repro.cluster.machine import MachinePerf
from repro.sim import RngRegistry, SimEngine
from repro.staging import DataHub


def make_ctx(engine, hub=None, coupling=None, task="T", nprocs=4, incarnation=0,
             tight_parents=(), perf=None):
    return TaskContext(
        engine=engine,
        hub=hub if hub is not None else DataHub(),
        coupling=coupling if coupling is not None else CouplingRegistry(),
        perf=perf if perf is not None else MachinePerf(),
        rng=RngRegistry(0).stream(f"t:{task}:{incarnation}"),
        workflow_id="WF",
        task=task,
        incarnation=incarnation,
        nprocs=nprocs,
        rank_nodes={r: f"n{r % 2}" for r in range(nprocs)},
        tight_parents=list(tight_parents),
    )


class TestBasicRun:
    def test_runs_total_steps_and_exits_zero(self):
        eng = SimEngine()
        ctx = make_ctx(eng)
        app = IterativeApp(ConstantModel(2.0), total_steps=5)
        code = eng.run_process(app.run(ctx))
        assert code == 0
        assert ctx.notes["last_step"] == 5
        assert ctx.notes["completed"] is True
        assert eng.now == pytest.approx(10.0)

    def test_run_steps_limits_one_invocation(self):
        eng = SimEngine()
        ctx = make_ctx(eng)
        app = IterativeApp(ConstantModel(1.0), total_steps=100, run_steps=10)
        code = eng.run_process(app.run(ctx))
        assert code == 0
        assert ctx.notes["last_step"] == 10
        assert ctx.notes["completed"] is False

    def test_speed_factor_scales_step_time(self):
        eng = SimEngine()
        ctx = make_ctx(eng, perf=MachinePerf(speed_factor=0.5))
        app = IterativeApp(ConstantModel(2.0), total_steps=3)
        eng.run_process(app.run(ctx))
        assert eng.now == pytest.approx(12.0)

    def test_output_every_writes_store_and_markers(self):
        eng = SimEngine()
        hub = DataHub()
        ctx = make_ctx(eng, hub=hub)
        app = IterativeApp(ConstantModel(1.0), total_steps=6, output_every=2)
        eng.run_process(app.run(ctx))
        assert hub.get_store("WF/T.bp").num_steps == 3
        assert len(hub.filesystem.scan("out/WF/T.out.*")) == 3

    def test_profiler_stream_produced(self):
        eng = SimEngine()
        hub = DataHub()
        ctx = make_ctx(eng, hub=hub)
        app = IterativeApp(ConstantModel(3.0), total_steps=4, rank_jitter=0.0)
        eng.run_process(app.run(ctx))
        ch = hub.get_channel("tau-WF-T")
        steps = ch.open_reader().drain()
        # capacity default 16 >= 4, all retained
        assert len(steps) == 4
        looptimes = [s.data[0].value for s in steps]
        assert looptimes[1:] == pytest.approx([3.0, 3.0, 3.0])

    def test_output_channel_closed_on_completion(self):
        eng = SimEngine()
        hub = DataHub()
        ctx = make_ctx(eng, hub=hub)
        app = IterativeApp(ConstantModel(1.0), total_steps=2)
        eng.run_process(app.run(ctx))
        assert hub.get_channel("data-WF-T").closed

    def test_channel_left_open_when_run_steps_exhausted(self):
        eng = SimEngine()
        hub = DataHub()
        ctx = make_ctx(eng, hub=hub)
        app = IterativeApp(ConstantModel(1.0), total_steps=10, run_steps=2)
        eng.run_process(app.run(ctx))
        assert not hub.get_channel("data-WF-T").closed


class TestCheckpointing:
    def test_checkpoint_saved_and_resumed(self):
        eng = SimEngine()
        hub = DataHub()
        ctx = make_ctx(eng, hub=hub)
        app = IterativeApp(ConstantModel(1.0), total_steps=100, run_steps=10,
                           checkpoint_every=4, resume_from_checkpoint=True)
        eng.run_process(app.run(ctx))
        assert hub.filesystem.read("cp/WF/T")["step"] == 8
        ctx2 = make_ctx(eng, hub=hub, incarnation=1)
        app2 = IterativeApp(ConstantModel(1.0), total_steps=100, run_steps=10,
                            checkpoint_every=4, resume_from_checkpoint=True)
        eng.run_process(app2.run(ctx2))
        assert ctx2.notes["first_step"] == 8
        assert ctx2.notes["last_step"] == 18

    def test_no_checkpoint_starts_at_zero(self):
        eng = SimEngine()
        ctx = make_ctx(eng)
        app = IterativeApp(ConstantModel(1.0), total_steps=3, resume_from_checkpoint=True)
        eng.run_process(app.run(ctx))
        assert ctx.notes["first_step"] == 0


class TestSignals:
    def test_graceful_stop_finishes_current_step(self):
        eng = SimEngine()
        hub = DataHub()
        ctx = make_ctx(eng, hub=hub)
        app = IterativeApp(ConstantModel(10.0), total_steps=100, output_every=1)
        proc = eng.process(app.run(ctx))
        eng.call_after(13.0, lambda: proc.interrupt(Signal.term()))
        eng.run()
        assert proc.value == 0
        # Interrupted during step 1 (10..20): it completes at t=20.
        assert eng.now == pytest.approx(20.0, abs=0.5)
        assert ctx.notes["last_step"] == 2
        assert len(hub.filesystem.scan("out/WF/T.out.*")) == 2

    def test_kill_exits_immediately_with_code(self):
        eng = SimEngine()
        ctx = make_ctx(eng)
        app = IterativeApp(ConstantModel(10.0), total_steps=100)
        proc = eng.process(app.run(ctx))
        exit_time = []
        proc.callbacks.append(lambda _ev: exit_time.append(eng.now))
        eng.call_after(13.0, lambda: proc.interrupt(Signal.kill(137)))
        eng.run()
        assert proc.value == 137
        assert exit_time == [pytest.approx(13.0)]

    def test_second_signal_during_graceful_kills(self):
        eng = SimEngine()
        ctx = make_ctx(eng)
        app = IterativeApp(ConstantModel(10.0), total_steps=100)
        proc = eng.process(app.run(ctx))
        exit_time = []
        proc.callbacks.append(lambda _ev: exit_time.append(eng.now))
        eng.call_after(13.0, lambda: proc.interrupt(Signal.term()))
        eng.call_after(15.0, lambda: proc.interrupt(Signal.kill(137)))
        eng.run()
        assert proc.value == 137
        assert exit_time == [pytest.approx(15.0)]

    def test_signal_while_waiting_for_input_exits_clean(self):
        eng = SimEngine()
        hub = DataHub()
        coupling = CouplingRegistry()
        ctx = make_ctx(eng, hub=hub, coupling=coupling, tight_parents=["P"])
        hub.channel("data-WF-P")  # exists but empty: consumer waits
        app = IterativeApp(ConstantModel(1.0))
        proc = eng.process(app.run(ctx))
        eng.call_after(5.0, lambda: proc.interrupt(Signal.term()))
        eng.run()
        assert proc.value == 0
        assert ctx.notes["last_step"] == 0


class TestCoupledPipelines:
    def test_consumer_paced_by_producer(self):
        eng = SimEngine()
        hub = DataHub()
        coupling = CouplingRegistry()
        pctx = make_ctx(eng, hub=hub, coupling=coupling, task="P")
        cctx = make_ctx(eng, hub=hub, coupling=coupling, task="C", tight_parents=["P"])
        producer = IterativeApp(ConstantModel(5.0), total_steps=6)
        consumer = IterativeApp(ConstantModel(1.0))
        p = eng.process(producer.run(pctx))
        c = eng.process(consumer.run(cctx))
        eng.run()
        assert p.value == 0 and c.value == 0
        assert cctx.notes["last_step"] == 6  # consumed everything, then EOS

    def test_producer_backpressured_by_slow_consumer(self):
        eng = SimEngine()
        hub = DataHub()
        coupling = CouplingRegistry(max_inflight=2)
        pctx = make_ctx(eng, hub=hub, coupling=coupling, task="P")
        cctx = make_ctx(eng, hub=hub, coupling=coupling, task="C", tight_parents=["P"])
        producer = IterativeApp(ConstantModel(1.0), total_steps=10)
        consumer = IterativeApp(ConstantModel(5.0))
        eng.process(producer.run(pctx))
        eng.process(consumer.run(cctx))
        eng.run()
        # Producer gated near the consumer's 5 s pace, not its own 1 s.
        assert eng.now > 40.0
        assert cctx.notes["last_step"] == 10

    def test_three_stage_chain(self):
        eng = SimEngine()
        hub = DataHub()
        coupling = CouplingRegistry()
        actx = make_ctx(eng, hub=hub, coupling=coupling, task="A")
        bctx = make_ctx(eng, hub=hub, coupling=coupling, task="B", tight_parents=["A"])
        cctx = make_ctx(eng, hub=hub, coupling=coupling, task="C", tight_parents=["B"])
        eng.process(IterativeApp(ConstantModel(1.0), total_steps=5).run(actx))
        eng.process(IterativeApp(ConstantModel(1.0)).run(bctx))
        eng.process(IterativeApp(ConstantModel(1.0)).run(cctx))
        eng.run()
        assert bctx.notes["last_step"] == 5
        assert cctx.notes["last_step"] == 5
