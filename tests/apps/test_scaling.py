"""Tests for step-time models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import AmdahlModel, ConstantModel, PowerLawModel


class TestConstantModel:
    def test_independent_of_procs(self):
        m = ConstantModel(26.0)
        assert m.nominal(1, 0) == m.nominal(1000, 50) == 26.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantModel(0)


class TestAmdahlModel:
    def test_calibration_points(self):
        m = AmdahlModel(serial=18.0, parallel=440.0)
        assert m.nominal(20, 0) == pytest.approx(40.0)
        assert m.nominal(40, 0) == pytest.approx(29.0)
        assert m.nominal(60, 0) == pytest.approx(25.33, abs=0.01)

    def test_serial_floor(self):
        m = AmdahlModel(serial=10.0, parallel=100.0)
        assert m.nominal(10**9, 0) == pytest.approx(10.0, abs=1e-3)

    def test_rejects_zero_work(self):
        with pytest.raises(ValueError):
            AmdahlModel(serial=0.0, parallel=0.0)

    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError):
            AmdahlModel(serial=1.0, parallel=1.0).nominal(0, 0)

    @given(st.integers(1, 10_000), st.integers(1, 10_000))
    def test_monotone_in_procs(self, a, b):
        m = AmdahlModel(serial=5.0, parallel=300.0)
        lo, hi = min(a, b), max(a, b)
        assert m.nominal(lo, 0) >= m.nominal(hi, 0)


class TestPowerLawModel:
    def test_ideal_scaling(self):
        m = PowerLawModel(base=10.0, ref_procs=100, alpha=1.0)
        assert m.nominal(100, 0) == 10.0
        assert m.nominal(200, 0) == pytest.approx(5.0)

    def test_sublinear(self):
        m = PowerLawModel(base=10.0, ref_procs=100, alpha=0.5)
        assert m.nominal(400, 0) == pytest.approx(5.0)


class TestNoise:
    def test_no_rng_is_deterministic(self):
        m = ConstantModel(10.0)
        assert m.sample(4, 0, None, noise_cv=0.5) == 10.0

    def test_zero_cv_is_nominal(self):
        rng = np.random.default_rng(0)
        assert ConstantModel(10.0).sample(4, 0, rng, noise_cv=0.0) == 10.0

    def test_noise_stays_positive(self):
        rng = np.random.default_rng(0)
        m = ConstantModel(1.0)
        samples = [m.sample(4, i, rng, noise_cv=1.0) for i in range(500)]
        assert all(s > 0 for s in samples)

    def test_noise_centers_on_nominal(self):
        rng = np.random.default_rng(1)
        m = ConstantModel(10.0)
        samples = [m.sample(4, i, rng, noise_cv=0.03) for i in range(2000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.01)
