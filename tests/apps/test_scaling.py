"""Tests for step-time models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import (
    AmdahlModel,
    ConstantModel,
    PowerLawModel,
    RampModel,
    VectorizedStepModel,
)

MODELS = [
    ConstantModel(26.0),
    AmdahlModel(serial=18.0, parallel=440.0),
    RampModel(serial=5.0, parallel=120.0, growth=0.02),
    PowerLawModel(base=10.0, ref_procs=100, alpha=0.7),
]


class TestConstantModel:
    def test_independent_of_procs(self):
        m = ConstantModel(26.0)
        assert m.nominal(1, 0) == m.nominal(1000, 50) == 26.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantModel(0)


class TestAmdahlModel:
    def test_calibration_points(self):
        m = AmdahlModel(serial=18.0, parallel=440.0)
        assert m.nominal(20, 0) == pytest.approx(40.0)
        assert m.nominal(40, 0) == pytest.approx(29.0)
        assert m.nominal(60, 0) == pytest.approx(25.33, abs=0.01)

    def test_serial_floor(self):
        m = AmdahlModel(serial=10.0, parallel=100.0)
        assert m.nominal(10**9, 0) == pytest.approx(10.0, abs=1e-3)

    def test_rejects_zero_work(self):
        with pytest.raises(ValueError):
            AmdahlModel(serial=0.0, parallel=0.0)

    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError):
            AmdahlModel(serial=1.0, parallel=1.0).nominal(0, 0)

    @given(st.integers(1, 10_000), st.integers(1, 10_000))
    def test_monotone_in_procs(self, a, b):
        m = AmdahlModel(serial=5.0, parallel=300.0)
        lo, hi = min(a, b), max(a, b)
        assert m.nominal(lo, 0) >= m.nominal(hi, 0)


class TestPowerLawModel:
    def test_ideal_scaling(self):
        m = PowerLawModel(base=10.0, ref_procs=100, alpha=1.0)
        assert m.nominal(100, 0) == 10.0
        assert m.nominal(200, 0) == pytest.approx(5.0)

    def test_sublinear(self):
        m = PowerLawModel(base=10.0, ref_procs=100, alpha=0.5)
        assert m.nominal(400, 0) == pytest.approx(5.0)


class TestNoise:
    def test_no_rng_is_deterministic(self):
        m = ConstantModel(10.0)
        assert m.sample(4, 0, None, noise_cv=0.5) == 10.0

    def test_zero_cv_is_nominal(self):
        rng = np.random.default_rng(0)
        assert ConstantModel(10.0).sample(4, 0, rng, noise_cv=0.0) == 10.0

    def test_noise_stays_positive(self):
        rng = np.random.default_rng(0)
        m = ConstantModel(1.0)
        samples = [m.sample(4, i, rng, noise_cv=1.0) for i in range(500)]
        assert all(s > 0 for s in samples)

    def test_noise_centers_on_nominal(self):
        rng = np.random.default_rng(1)
        m = ConstantModel(10.0)
        samples = [m.sample(4, i, rng, noise_cv=0.03) for i in range(2000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.01)


class TestNominalBlock:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_block_matches_scalar_loop(self, model):
        steps = np.arange(0, 300, 7)
        block = model.nominal_block(16, steps)
        scalar = [model.nominal(16, int(s)) for s in steps]
        # Bit-identical, not approx: the vectorized wrapper's opt-in
        # contract is that precomputed tables never perturb a scenario.
        assert list(block) == scalar

    def test_base_class_fallback_loops(self):
        from repro.apps.scaling import StepTimeModel

        got = StepTimeModel.nominal_block(ConstantModel(3.0), 16, np.arange(5))
        assert list(got) == [3.0] * 5


class TestVectorizedStepModel:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_nominal_parity_with_base(self, model):
        vec = VectorizedStepModel(model, block=16)
        for nprocs in (1, 16, 300):
            for step in (0, 1, 15, 16, 17, 255, 1000):
                assert vec.nominal(nprocs, step) == model.nominal(nprocs, step)

    def test_nominal_block_parity_with_base(self):
        model = RampModel(serial=5.0, parallel=120.0, growth=0.02)
        vec = VectorizedStepModel(model, block=8)
        steps = np.array([0, 3, 9, 40, 2, 40])
        assert list(vec.nominal_block(16, steps)) == list(model.nominal_block(16, steps))
        assert list(vec.nominal_block(16, np.empty(0, dtype=int))) == []

    def test_table_grows_in_block_multiples(self):
        vec = VectorizedStepModel(ConstantModel(1.0), block=32)
        vec.nominal(4, 0)
        assert len(vec._tables[4]) == 32
        vec.nominal(4, 31)
        assert len(vec._tables[4]) == 32
        vec.nominal(4, 32)
        assert len(vec._tables[4]) == 64
        vec.nominal(4, 100)
        assert len(vec._tables[4]) == 128

    def test_shared_rng_sampling_is_draw_for_draw_identical(self):
        # Without a dedicated rng, the wrapper must consume the caller's
        # generator exactly like the base model: same draws, same values.
        model = AmdahlModel(serial=18.0, parallel=440.0)
        vec = VectorizedStepModel(model, block=16)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        for step in range(100):
            assert vec.sample(20, step, rng_a, noise_cv=0.1) == model.sample(
                20, step, rng_b, noise_cv=0.1
            )
        # Both generators advanced identically.
        assert rng_a.normal() == rng_b.normal()

    def test_dedicated_rng_leaves_caller_stream_untouched(self):
        vec = VectorizedStepModel(
            ConstantModel(10.0), block=8, rng=np.random.default_rng(7)
        )
        caller = np.random.default_rng(3)
        before = caller.bit_generator.state
        samples = [vec.sample(4, i, caller, noise_cv=0.2) for i in range(20)]
        assert caller.bit_generator.state == before
        assert all(s > 0 for s in samples)
        assert len(set(samples)) > 1  # noise actually applied

    def test_dedicated_rng_is_reproducible(self):
        def mk():
            return VectorizedStepModel(
                ConstantModel(10.0), block=8, rng=np.random.default_rng(7)
            )

        a, b = mk(), mk()
        draws_a = [a.sample(4, i, None, noise_cv=0.2) for i in range(20)]
        draws_b = [b.sample(4, i, None, noise_cv=0.2) for i in range(20)]
        assert draws_a == draws_b

    def test_dedicated_rng_redraws_block_on_cv_change(self):
        vec = VectorizedStepModel(
            ConstantModel(10.0), block=4, rng=np.random.default_rng(7)
        )
        vec.sample(4, 0, None, noise_cv=0.2)
        assert vec._noise_cv == 0.2
        vec.sample(4, 1, None, noise_cv=0.5)
        assert vec._noise_cv == 0.5
        assert vec._noise_pos == 1

    def test_zero_cv_skips_noise(self):
        vec = VectorizedStepModel(
            ConstantModel(10.0), block=8, rng=np.random.default_rng(7)
        )
        assert vec.sample(4, 0, None, noise_cv=0.0) == 10.0
