"""Tests for the real numerical kernels."""

import numpy as np
import pytest

from repro.apps.kernels import (
    GrayScottSolver,
    LjMdSimulator,
    centro_symmetry,
    common_neighbor_counts,
    fft_power_spectrum,
    isosurface_cell_count,
    pdf_norms,
    radial_distribution,
    render_projection,
)


class TestGrayScottSolver:
    def test_fields_bounded(self):
        gs = GrayScottSolver(shape=(32, 32), seed=0)
        gs.step(500)
        assert gs.u.min() >= 0 and gs.u.max() <= 1.5
        assert gs.v.min() >= 0 and gs.v.max() <= 1.5

    def test_pattern_forms(self):
        gs = GrayScottSolver.preset("spots", shape=(64, 64), seed=1)
        gs.step(2000)
        assert gs.v.max() > 0.2  # a live pattern, not decay to zero

    def test_deterministic_given_seed(self):
        a = GrayScottSolver(shape=(24, 24), seed=7)
        b = GrayScottSolver(shape=(24, 24), seed=7)
        a.step(100)
        b.step(100)
        assert np.array_equal(a.v, b.v)

    def test_3d_supported(self):
        gs = GrayScottSolver(shape=(12, 12, 12), seed=0)
        gs.step(10)
        assert gs.v.shape == (12, 12, 12)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            GrayScottSolver(shape=(8,))

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            GrayScottSolver.preset("nope")

    def test_snapshot_is_a_copy(self):
        gs = GrayScottSolver(shape=(16, 16))
        snap = gs.snapshot()
        gs.step(10)
        assert not np.array_equal(snap["v"], gs.v)

    def test_laplacian_of_constant_is_zero(self):
        field = np.full((8, 8), 3.0)
        assert np.allclose(GrayScottSolver._laplacian(field), 0.0)

    def test_laplacian_conserves_sum(self):
        rng = np.random.default_rng(0)
        field = rng.random((16, 16))
        assert GrayScottSolver._laplacian(field).sum() == pytest.approx(0.0, abs=1e-9)


class TestAnalysisKernels:
    def setup_method(self):
        gs = GrayScottSolver.preset("stripes", shape=(32, 32), seed=2)
        gs.step(1500)
        self.field = gs.snapshot()["v"]

    def test_fft_spectrum_shape_and_positivity(self):
        out = fft_power_spectrum(self.field, nbins=16)
        assert out["k"].shape == out["power"].shape == (16,)
        assert (out["power"] >= 0).all()

    def test_fft_dc_dominates_for_constant_field(self):
        out = fft_power_spectrum(np.full((16, 16), 2.0), nbins=8)
        assert out["power"][0] > 0
        assert np.allclose(out["power"][1:], 0.0)

    def test_pdf_norms(self):
        out = pdf_norms(self.field, nbins=32)
        assert out["hist"].sum() == self.field.size
        assert out["l2"] == pytest.approx(float(np.sqrt((self.field**2).sum())))
        assert out["linf"] == pytest.approx(float(np.abs(self.field).max()))

    def test_isosurface_counts_boundary_cells(self):
        field = np.zeros((10, 10))
        field[:5, :] = 1.0  # a flat interface at row 5
        count = isosurface_cell_count(field, isovalue=0.5)
        assert count == 9  # one row of straddling cells

    def test_isosurface_zero_for_uniform_field(self):
        assert isosurface_cell_count(np.zeros((8, 8)), 0.5) == 0
        assert isosurface_cell_count(np.ones((8, 8)), 0.5) == 0

    def test_isosurface_on_evolving_pattern_grows(self):
        gs = GrayScottSolver.preset("spots", shape=(64, 64), seed=1)
        gs.step(500)
        early = isosurface_cell_count(gs.snapshot()["v"], 0.15)
        gs.step(3000)
        late = isosurface_cell_count(gs.snapshot()["v"], 0.15)
        assert late > early > 0

    def test_render_projection_normalized(self):
        gs3 = GrayScottSolver(shape=(12, 12, 12), seed=0)
        gs3.step(200)
        image = render_projection(gs3.v, axis=0)
        assert image.shape == (12, 12)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_render_rejects_1d(self):
        with pytest.raises(ValueError):
            render_projection(np.zeros(8))


class TestLjMd:
    def test_energy_roughly_conserved(self):
        md = LjMdSimulator(n_per_side=4, density=0.8, temperature=0.5, dt=0.002, seed=3)
        md.step(20)  # settle the lattice start
        e0 = md.total_energy()
        md.step(100)
        e1 = md.total_energy()
        assert abs(e1 - e0) / (abs(e0) + 1e-12) < 0.05

    def test_momentum_zero(self):
        md = LjMdSimulator(n_per_side=4, seed=0)
        md.step(50)
        assert np.allclose(md.velocities.sum(axis=0), 0.0, atol=1e-8)

    def test_checkpoint_restore_bitexact(self):
        md = LjMdSimulator(n_per_side=3, seed=1)
        md.step(20)
        cp = md.checkpoint()
        pos = md.positions.copy()
        md.step(30)
        md.restore(cp)
        assert np.array_equal(md.positions, pos)
        assert md.step_count == 20

    def test_restore_then_rerun_reproduces(self):
        md = LjMdSimulator(n_per_side=3, seed=1)
        md.step(10)
        cp = md.checkpoint()
        md.step(10)
        after = md.positions.copy()
        md.restore(cp)
        md.step(10)
        assert np.allclose(md.positions, after)

    def test_temperature_positive(self):
        md = LjMdSimulator(n_per_side=4, temperature=1.2, seed=0)
        assert md.temperature() > 0


class TestMdAnalyses:
    def setup_method(self):
        self.md = LjMdSimulator(n_per_side=4, density=0.9, temperature=0.3, seed=5)
        self.md.step(30)
        self.pos = self.md.wrapped_positions()
        self.box = self.md.box

    def test_rdf_normalization(self):
        out = radial_distribution(self.pos, self.box, nbins=32)
        # g(r) ~ 0 inside the core, has a first-shell peak > 1.
        assert out["g"][:4].max() < 0.5
        assert out["g"].max() > 1.5

    def test_rdf_needs_atoms(self):
        with pytest.raises(ValueError):
            radial_distribution(self.pos[:1], self.box)

    def test_cna_counts_reasonable(self):
        counts = common_neighbor_counts(self.pos, self.box, cutoff=1.4)
        assert len(counts) > 0
        assert counts.min() >= 0

    def test_csp_perfect_lattice_near_zero(self):
        """A perfect simple-cubic lattice is centrosymmetric: its 6
        nearest neighbours pair into opposites, so CSP ≈ 0."""
        lattice = LjMdSimulator(n_per_side=4, density=1.0, temperature=1.0, seed=1)
        csp = centro_symmetry(lattice.wrapped_positions(), lattice.box, n_neighbors=6)
        assert csp.max() == pytest.approx(0.0, abs=1e-9)

    def test_csp_lattice_vs_melt(self):
        """A perfect lattice has lower centro-symmetry than a hot fluid."""
        lattice = LjMdSimulator(n_per_side=4, density=1.0, temperature=1.0, seed=1)
        hot = LjMdSimulator(n_per_side=4, density=0.7, temperature=2.5, dt=0.002, seed=1)
        hot.step(200)
        csp_cold = centro_symmetry(lattice.wrapped_positions(), lattice.box, n_neighbors=6).mean()
        csp_hot = centro_symmetry(hot.wrapped_positions(), hot.box, n_neighbors=6).mean()
        assert csp_cold < csp_hot

    def test_csp_needs_enough_atoms(self):
        with pytest.raises(ValueError):
            centro_symmetry(self.pos[:5], self.box)
