"""Tests for in-situ coupling flow control."""

from hypothesis import given
from hypothesis import strategies as st

from repro.apps import CouplingRegistry


class TestCouplingRegistry:
    def test_no_consumers_no_backpressure(self):
        reg = CouplingRegistry(max_inflight=2)
        assert reg.can_publish("sim", 1000)

    def test_consumer_limits_producer(self):
        reg = CouplingRegistry(max_inflight=2)
        reg.register_consumer("sim", "ana")
        assert reg.can_publish("sim", 0)
        assert reg.can_publish("sim", 1)
        assert not reg.can_publish("sim", 2)  # 2 - (-1) = 3 > 2

    def test_consumption_opens_window(self):
        reg = CouplingRegistry(max_inflight=2)
        reg.register_consumer("sim", "ana")
        reg.mark_produced("sim", 0)
        reg.mark_consumed("sim", "ana", 0)
        assert reg.can_publish("sim", 2)
        assert not reg.can_publish("sim", 3)

    def test_slowest_of_multiple_consumers_gates(self):
        reg = CouplingRegistry(max_inflight=1)
        reg.register_consumer("sim", "fast")
        reg.register_consumer("sim", "slow")
        reg.mark_consumed("sim", "fast", 9)
        reg.mark_consumed("sim", "slow", 2)
        assert reg.slowest_consumer_step("sim") == 2
        assert reg.can_publish("sim", 3)
        assert not reg.can_publish("sim", 4)

    def test_deregister_removes_backpressure(self):
        reg = CouplingRegistry(max_inflight=1)
        reg.register_consumer("sim", "ana")
        assert not reg.can_publish("sim", 5)
        reg.deregister_consumer("sim", "ana")
        assert reg.can_publish("sim", 5)

    def test_deregister_everywhere(self):
        reg = CouplingRegistry()
        reg.register_consumer("a", "x")
        reg.register_consumer("b", "x")
        reg.register_consumer("a", "y")
        reg.deregister_everywhere("x")
        assert reg.active_consumers("a") == ["y"]
        assert reg.active_consumers("b") == []

    def test_late_registration_catches_up(self):
        """A reconnecting consumer must not stall the producer on old steps."""
        reg = CouplingRegistry(max_inflight=2)
        reg.mark_produced("sim", 99)
        reg.register_consumer("sim", "ana")
        assert reg.can_publish("sim", 100)

    def test_mark_consumed_for_unregistered_is_noop(self):
        reg = CouplingRegistry()
        reg.mark_consumed("sim", "ghost", 5)
        assert reg.slowest_consumer_step("sim") is None

    def test_consumed_never_regresses(self):
        reg = CouplingRegistry()
        reg.register_consumer("sim", "ana")
        reg.mark_consumed("sim", "ana", 5)
        reg.mark_consumed("sim", "ana", 3)
        assert reg.slowest_consumer_step("sim") == 5

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=50), st.integers(1, 5))
    def test_invariant_gap_bounded_when_respected(self, consumed_steps, inflight):
        """If a producer only publishes when allowed, the gap stays bounded."""
        reg = CouplingRegistry(max_inflight=inflight)
        reg.register_consumer("p", "c")
        next_step = 0
        for c in consumed_steps:
            while reg.can_publish("p", next_step):
                reg.mark_produced("p", next_step)
                next_step += 1
            reg.mark_consumed("p", "c", min(c, next_step - 1))
            slowest = reg.slowest_consumer_step("p")
            assert next_step - 1 - slowest <= inflight + 1
