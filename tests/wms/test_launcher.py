"""Tests for the Savanna-like launcher (plugin ops, lifecycle, failures)."""

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.errors import LaunchError
from repro.sim import SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, TaskState, WorkflowSpec


def make_setup(tasks=None, deps=None, num_nodes=4):
    eng = SimEngine()
    m = summit(num_nodes)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    tasks = tasks or [
        TaskSpec("A", lambda: IterativeApp(ConstantModel(5.0), total_steps=10), nprocs=8),
    ]
    wf = WorkflowSpec("W", tasks, deps or [])
    return eng, m, Savanna(eng, wf, alloc)


class TestLaunchLifecycle:
    def test_launch_workflow_starts_autostart_tasks(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run(until=1.0)
        assert sav.record("A").is_running
        eng.run()
        inst = sav.record("A").current
        assert inst.state == TaskState.COMPLETED
        assert inst.exit_code == 0
        assert inst.notes["last_step"] == 10

    def test_autostart_false_stays_pending(self):
        eng, _m, sav = make_setup(tasks=[
            TaskSpec("A", lambda: IterativeApp(ConstantModel(1.0), total_steps=1), nprocs=4),
            TaskSpec("B", lambda: IterativeApp(ConstantModel(1.0), total_steps=1),
                     nprocs=4, autostart=False),
        ])
        sav.launch_workflow()
        eng.run()
        assert sav.record("A").incarnations == 1
        assert sav.record("B").incarnations == 0

    def test_resources_released_on_exit(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run()
        assert sav.rm.free_cores() == sav.allocation.total_cores

    def test_exit_status_recorded_for_errorstatus_sensor(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run()
        records = sav.hub.filesystem.read("status/W/A")
        assert records[-1]["code"] == 0
        assert records[-1]["state"] == "completed"

    def test_double_start_rejected(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run(until=1.0)
        rs = sav.rm.plan_placement(4)
        with pytest.raises(LaunchError):
            eng.run_process(sav.start_task_with_resources("A", rs))

    def test_launch_latency_applied(self):
        eng, m, sav = make_setup()
        sav.launch_workflow()
        eng.run(until=0.01)
        assert sav.record("A").current.state == TaskState.LAUNCHING
        eng.run(until=1.0)
        inst = sav.record("A").current
        expected = m.perf.launch_latency + m.perf.per_process_launch * 8
        assert inst.start_time == pytest.approx(expected, abs=1e-6)

    def test_user_script_adds_overhead(self):
        eng, m, sav = make_setup(tasks=[
            TaskSpec("A", lambda: IterativeApp(ConstantModel(1.0), total_steps=1),
                     nprocs=4, autostart=False),
        ])
        rs = sav.rm.plan_placement(4)

        def driver():
            inst = yield from sav.start_task_with_resources("A", rs, user_script="setup.sh")
            return inst

        inst = eng.run_process(driver())
        assert inst.start_time >= m.perf.script_overhead
        assert inst.ctx.params["user_script"] == "setup.sh"


class TestStopAndSignals:
    def test_graceful_stop_waits_for_step(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run(until=7.0)  # mid-step 2 (5..10)

        def stopper():
            inst = yield from sav.stop_task("A", graceful=True)
            return (eng.now, inst.state, inst.exit_code)

        t, state, code = eng.run_process(stopper())
        assert state == TaskState.STOPPED and code == 0
        assert t == pytest.approx(10.0 + sav.perf.signal_latency, abs=0.3)

    def test_kill_stop_is_fast(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run(until=7.0)

        def stopper():
            inst = yield from sav.stop_task("A", graceful=False)
            return (eng.now, inst.state, inst.exit_code)

        t, state, code = eng.run_process(stopper())
        assert state == TaskState.FAILED and code == 137
        assert t == pytest.approx(7.0 + sav.perf.signal_latency, abs=0.01)

    def test_stop_inactive_task_is_noop(self):
        eng, _m, sav = make_setup()

        def stopper():
            result = yield from sav.stop_task("A")
            return result

        assert eng.run_process(stopper()) is None

    def test_stop_during_launch_never_spawns(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()

        def stopper():
            yield eng.timeout(0.01)  # task still LAUNCHING
            yield from sav.stop_task("A")

        eng.process(stopper())
        eng.run()
        inst = sav.record("A").current
        assert inst.state == TaskState.STOPPED
        assert inst.proc is None

    def test_restart_increments_incarnation(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run(until=7.0)

        def restarter():
            yield from sav.stop_task("A")
            rs = sav.rm.plan_placement(8)
            yield from sav.start_task_with_resources("A", rs)

        eng.process(restarter())
        eng.run(until=20.0)
        assert sav.record("A").incarnations == 2
        assert sav.record("A").current.incarnation == 1


class TestFailureHandling:
    def test_node_failure_kills_spanning_tasks(self):
        eng, m, sav = make_setup(tasks=[
            TaskSpec("A", lambda: IterativeApp(ConstantModel(5.0), total_steps=100),
                     nprocs=8, procs_per_node=2),  # spans 4 nodes
            TaskSpec("B", lambda: IterativeApp(ConstantModel(5.0), total_steps=100),
                     nprocs=4, procs_per_node=1),
        ])
        sav.launch_workflow()
        eng.run(until=2.0)
        m.nodes[1].fail()
        affected = sav.handle_node_failure(m.nodes[1].node_id)
        assert set(affected) == {"A", "B"}
        eng.run(until=3.0)
        assert sav.record("A").current.state == TaskState.FAILED
        assert sav.record("A").current.exit_code == 137
        records = sav.hub.filesystem.read("status/W/A")
        assert records[-1]["code"] == 137

    def test_node_failure_spares_unaffected_tasks(self):
        eng, m, sav = make_setup(tasks=[
            TaskSpec("A", lambda: IterativeApp(ConstantModel(5.0), total_steps=100), nprocs=4),
        ], num_nodes=2)
        sav.launch_workflow()
        eng.run(until=2.0)
        # A sits entirely on node 0; fail node 1.
        m.nodes[1].fail()
        affected = sav.handle_node_failure(m.nodes[1].node_id)
        assert affected == []
        assert sav.record("A").is_running

    def test_walltime_timeout_kills_everything(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run(until=2.0)
        sav.handle_walltime_timeout()
        eng.run(until=3.0)
        inst = sav.record("A").current
        assert inst.state == TaskState.FAILED
        assert inst.exit_code == 140


class TestDependencyWiring:
    def test_tight_parents_passed_to_context(self):
        eng, _m, sav = make_setup(
            tasks=[
                TaskSpec("P", lambda: IterativeApp(ConstantModel(1.0), total_steps=3), nprocs=2),
                TaskSpec("C", lambda: IterativeApp(ConstantModel(1.0)), nprocs=2),
            ],
            deps=[DependencySpec("C", "P", CouplingType.TIGHT)],
        )
        sav.launch_workflow()
        eng.run(until=1.0)
        assert sav.record("C").current.ctx.tight_parents == ["P"]
        eng.run()
        assert sav.record("C").current.notes["last_step"] == 3

    def test_listeners_fire(self):
        eng, _m, sav = make_setup()
        started, ended = [], []
        sav.subscribe_start(lambda i: started.append(i.instance_id))
        sav.subscribe_end(lambda i: ended.append(i.instance_id))
        sav.launch_workflow()
        eng.run()
        assert started == ["A#0"] and ended == ["A#0"]

    def test_request_resources_reports_static_allocation(self):
        _eng, _m, sav = make_setup()
        assert sav.request_resources(2) is False


class TestWalltimeTimeout:
    def test_kills_every_active_task_with_code_140(self):
        eng, _m, sav = make_setup(tasks=[
            TaskSpec("A", lambda: IterativeApp(ConstantModel(5.0), total_steps=100), nprocs=4),
            TaskSpec("B", lambda: IterativeApp(ConstantModel(5.0), total_steps=100), nprocs=4),
            TaskSpec("C", lambda: IterativeApp(ConstantModel(5.0), total_steps=100),
                     nprocs=4, autostart=False),
        ])
        sav.launch_workflow()
        eng.run(until=10.0)
        sav.handle_walltime_timeout()
        eng.run(until=20.0)
        for name in ("A", "B"):
            inst = sav.record(name).current
            assert inst.state == TaskState.FAILED
            assert inst.exit_code == 140
            assert inst.kill_cause == "walltime"
        assert sav.record("C").current is None  # never started, untouched

    def test_emits_failure_trace_point(self):
        eng, _m, sav = make_setup()
        sav.launch_workflow()
        eng.run(until=2.0)
        sav.handle_walltime_timeout()
        points = [p for p in sav.trace.points if p.label == "walltime-timeout"]
        assert len(points) == 1
        assert points[0].category == "failure"

    def test_idempotent_when_nothing_active(self):
        eng, _m, sav = make_setup(tasks=[
            TaskSpec("A", lambda: IterativeApp(ConstantModel(1.0), total_steps=1), nprocs=4),
        ])
        sav.launch_workflow()
        eng.run()  # A completes
        sav.handle_walltime_timeout()  # no active tasks: only the trace point
        assert sav.record("A").current.state == TaskState.COMPLETED

    def test_walltime_kills_are_never_retried(self):
        from repro.resilience import ResilienceSpec, RetryPolicy

        eng, _m, sav = make_setup(tasks=[
            TaskSpec("A", lambda: IterativeApp(ConstantModel(5.0), total_steps=100), nprocs=4),
        ])
        sav.configure_resilience(ResilienceSpec(retry=RetryPolicy(max_retries=3)))
        sav.launch_workflow()
        eng.run(until=10.0)
        sav.handle_walltime_timeout()
        eng.run()
        rec = sav.record("A")
        assert rec.current.state == TaskState.FAILED
        assert rec.incarnations == 1  # deliberate kill: no resurrection
        assert rec.retries_used == 0
