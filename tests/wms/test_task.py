"""Tests for task lifecycle state transitions."""

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import ResourceSet
from repro.errors import TaskStateError
from repro.wms import TaskInstance, TaskRecord, TaskSpec, TaskState


def make_instance():
    return TaskInstance(
        task="T", workflow_id="W", incarnation=0, resources=ResourceSet({"n0": 4})
    )


class TestTransitions:
    def test_happy_path(self):
        inst = make_instance()
        for state in (TaskState.LAUNCHING, TaskState.RUNNING, TaskState.COMPLETED):
            inst.transition(state)
        assert inst.state == TaskState.COMPLETED

    def test_stop_path(self):
        inst = make_instance()
        inst.transition(TaskState.LAUNCHING)
        inst.transition(TaskState.RUNNING)
        inst.transition(TaskState.STOPPING)
        inst.transition(TaskState.STOPPED)
        assert not inst.is_active

    def test_illegal_transition_rejected(self):
        inst = make_instance()
        with pytest.raises(TaskStateError):
            inst.transition(TaskState.RUNNING)  # must launch first

    def test_terminal_states_frozen(self):
        inst = make_instance()
        inst.transition(TaskState.LAUNCHING)
        inst.transition(TaskState.RUNNING)
        inst.transition(TaskState.FAILED)
        with pytest.raises(TaskStateError):
            inst.transition(TaskState.RUNNING)

    def test_is_active(self):
        inst = make_instance()
        assert not inst.is_active
        inst.transition(TaskState.LAUNCHING)
        assert inst.is_active
        inst.transition(TaskState.RUNNING)
        assert inst.is_active

    def test_nprocs_from_resources(self):
        assert make_instance().nprocs == 4

    def test_instance_id(self):
        assert make_instance().instance_id == "T#0"


class TestTaskRecord:
    def test_record_flags(self):
        spec = TaskSpec("T", IterativeApp(ConstantModel(1.0)), nprocs=2)
        rec = TaskRecord(spec=spec)
        assert not rec.is_active and not rec.is_running
        inst = make_instance()
        inst.transition(TaskState.LAUNCHING)
        rec.current = inst
        assert rec.is_active and not rec.is_running
        inst.transition(TaskState.RUNNING)
        assert rec.is_running
