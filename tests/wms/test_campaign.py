"""Tests for Cheetah-like campaign composition."""

import re

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.campaign.statepoint import statepoint_id
from repro.wms import Campaign, Sweep, TaskSpec, WorkflowSpec


def factory(nprocs=4, steps=10, label="x"):
    return WorkflowSpec(
        f"wf-{label}-{nprocs}-{steps}",
        [TaskSpec("T", IterativeApp(ConstantModel(1.0), total_steps=steps), nprocs=nprocs)],
    )


class TestSweep:
    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            Sweep("n", [])

    def test_values_frozen_as_tuple(self):
        s = Sweep("n", [1, 2])
        assert s.values == (1, 2)


class TestCampaign:
    def test_no_sweeps_single_run(self):
        c = Campaign("c", factory, fixed={"nprocs": 8})
        runs = list(c.runs())
        assert len(runs) == 1
        run_id, params, wf = runs[0]
        assert run_id == statepoint_id("c", 0, {"nprocs": 8})
        assert params == {"nprocs": 8}
        assert wf.task("T").nprocs == 8

    def test_cartesian_grid(self):
        c = Campaign(
            "scan",
            factory,
            sweeps=[Sweep("nprocs", [2, 4]), Sweep("steps", [1, 5, 9])],
        )
        assert c.size() == 6
        points = list(c.points())
        assert len(points) == 6
        assert points[0] == {"nprocs": 2, "steps": 1}
        assert points[-1] == {"nprocs": 4, "steps": 9}

    def test_fixed_merged_with_sweeps(self):
        c = Campaign("c", factory, sweeps=[Sweep("nprocs", [2])], fixed={"label": "gs"})
        _id, params, wf = next(iter(c.runs()))
        assert params == {"label": "gs", "nprocs": 2}
        assert "gs" in wf.workflow_id

    def test_run_ids_are_statepoint_hashed(self):
        c = Campaign("c", factory, sweeps=[Sweep("nprocs", [1, 2, 3])])
        ids = [r[0] for r in c.runs()]
        # Ordinal prefix keeps grid order readable; the suffix is the
        # statepoint content hash.
        assert all(re.fullmatch(rf"c\.{i}-[0-9a-f]{{8}}", rid)
                   for i, rid in enumerate(ids))
        assert len(set(ids)) == 3
        assert ids == [r[0] for r in c.runs()]  # stable across iterations

    def test_run_ids_namespace_seed_and_machine(self):
        base = Campaign("c", factory, sweeps=[Sweep("nprocs", [2])])
        seeded = Campaign("c", factory, sweeps=[Sweep("nprocs", [2])], seed=7)
        machined = Campaign("c", factory, sweeps=[Sweep("nprocs", [2])],
                            machine="summit")
        ids = {next(iter(c.runs()))[0] for c in (base, seeded, machined)}
        # Same params, different content → three distinct ids: a renamed
        # or reseeded campaign can never replay the wrong ledger entry.
        assert len(ids) == 3

    def test_run_ids_content_addressed(self):
        a = Campaign("c", factory, sweeps=[Sweep("nprocs", [2, 4])])
        b = Campaign("c", factory, sweeps=[Sweep("nprocs", [2, 4])])
        assert [r[0] for r in a.runs()] == [r[0] for r in b.runs()]

    def test_deterministic_order(self):
        c = Campaign("c", factory, sweeps=[Sweep("nprocs", [4, 2]), Sweep("steps", [7, 3])])
        assert list(c.points()) == list(c.points())
