"""Tests for workflow specifications."""

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.errors import WorkflowSpecError
from repro.wms import CouplingType, DependencySpec, TaskSpec, WorkflowSpec


def ts(name, nprocs=4, **kw):
    return TaskSpec(name, IterativeApp(ConstantModel(1.0), total_steps=1), nprocs=nprocs, **kw)


class TestTaskSpec:
    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            ts("a", nprocs=0)

    def test_make_app_from_factory_vs_instance(self):
        app = IterativeApp(ConstantModel(1.0))
        spec_inst = TaskSpec("a", app, nprocs=1)
        assert spec_inst.make_app() is app
        spec_fact = TaskSpec("b", lambda: IterativeApp(ConstantModel(1.0)), nprocs=1)
        assert spec_fact.make_app() is not spec_fact.make_app()


class TestWorkflowSpec:
    def test_empty_rejected(self):
        with pytest.raises(WorkflowSpecError):
            WorkflowSpec("w", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkflowSpecError):
            WorkflowSpec("w", [ts("a"), ts("a")])

    def test_unknown_dep_endpoint_rejected(self):
        with pytest.raises(WorkflowSpecError):
            WorkflowSpec("w", [ts("a")], [DependencySpec("a", "ghost")])

    def test_self_dep_rejected(self):
        with pytest.raises(WorkflowSpecError):
            WorkflowSpec("w", [ts("a")], [DependencySpec("a", "a")])

    def test_tight_cycle_rejected(self):
        with pytest.raises(WorkflowSpecError):
            WorkflowSpec(
                "w",
                [ts("a"), ts("b")],
                [DependencySpec("a", "b"), DependencySpec("b", "a")],
            )

    def test_loose_cycle_allowed(self):
        """The XGC1/XGCa alternation is a loose mutual dependency."""
        wf = WorkflowSpec(
            "w",
            [ts("a"), ts("b")],
            [
                DependencySpec("a", "b", CouplingType.LOOSE),
                DependencySpec("b", "a", CouplingType.LOOSE),
            ],
        )
        assert wf.tight_parents("a") == []

    def test_tight_parent_and_dependent_queries(self):
        wf = WorkflowSpec(
            "w",
            [ts("sim"), ts("iso"), ts("render"), ts("pdf")],
            [
                DependencySpec("iso", "sim"),
                DependencySpec("render", "iso"),
                DependencySpec("pdf", "sim", CouplingType.LOOSE),
            ],
        )
        assert wf.tight_parents("iso") == ["sim"]
        assert wf.tight_parents("pdf") == []
        assert wf.parents("pdf") == ["sim"]
        assert wf.tight_dependents("sim") == ["iso"]
        assert wf.transitive_tight_dependents("sim") == ["iso", "render"]

    def test_autostart_filtering(self):
        wf = WorkflowSpec("w", [ts("a"), ts("b", autostart=False)])
        assert wf.autostart_tasks() == ["a"]
        assert wf.total_initial_procs() == 4

    def test_unknown_task_lookup(self):
        wf = WorkflowSpec("w", [ts("a")])
        with pytest.raises(WorkflowSpecError):
            wf.task("ghost")
