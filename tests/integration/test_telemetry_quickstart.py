"""End-to-end telemetry: the quickstart scenario with tracing enabled.

Runs the same two-task workflow as ``examples/quickstart.py`` under a
recording tracer and checks the whole pipeline: spans exist for all four
control-loop stages, per-stage latency histograms fill, the JSONL log
lands on disk, and the Chrome trace export is valid.
"""

import json

import pytest

from repro.api import (
    ActionType,
    Allocation,
    AmdahlModel,
    ConstantModel,
    CouplingType,
    DependencySpec,
    DyflowOrchestrator,
    GroupBySpec,
    IterativeApp,
    PolicyApplication,
    PolicySpec,
    RngRegistry,
    Savanna,
    SensorSpec,
    SimEngine,
    TaskSpec,
    TelemetrySpec,
    WorkflowSpec,
    summit,
)
from repro.runtime import RuntimeOptions

STAGES = ("monitor", "decision", "arbitration", "actuation")


def run_quickstart(telemetry=None, tracer=None, seed=1):
    engine = SimEngine()
    machine = summit(num_nodes=4)
    allocation = Allocation("alloc-0", machine, machine.nodes, walltime_limit=7200.0)
    workflow = WorkflowSpec(
        "QUICKSTART",
        [
            TaskSpec("Sim", lambda: IterativeApp(ConstantModel(8.0), total_steps=40), nprocs=40),
            TaskSpec("Analysis", lambda: IterativeApp(AmdahlModel(serial=4, parallel=240)), nprocs=12),
        ],
        [DependencySpec("Analysis", "Sim", CouplingType.TIGHT)],
    )
    launcher = Savanna(engine, workflow, allocation, rng=RngRegistry(seed=seed))
    orch = DyflowOrchestrator(launcher, warmup=40.0, settle=40.0, record_history=True,
                              options=RuntimeOptions(telemetry=telemetry), tracer=tracer)
    orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task("Analysis", "PACE", var="looptime")
    orch.add_policy(
        PolicySpec(
            "INC_ON_PACE", "PACE", eval_op="GT", threshold=12.0,
            action=ActionType.ADDCPU, history_window=4, history_op="AVG", frequency=5.0,
        )
    )
    orch.apply_policy(
        PolicyApplication("INC_ON_PACE", "QUICKSTART", ("Analysis",),
                          assess_task="Analysis", action_params={"adjust-by": 12})
    )
    launcher.launch_workflow()
    orch.start(stop_when=launcher.all_idle)
    engine.run(until=10_000)
    return engine, orch


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("telemetry")
    spec = TelemetrySpec(
        jsonl_path=str(tmp / "events.jsonl"),
        chrome_trace_path=str(tmp / "trace.json"),
    )
    engine, orch = run_quickstart(telemetry=spec)
    orch.finalize_telemetry()
    return engine, orch, spec


def test_run_still_adjusts_the_analysis(traced):
    _engine, orch, _spec = traced
    assert orch.plans, "the INC policy should have fired"
    final = orch.launcher.record("Analysis").current
    assert final.nprocs > 12


def test_spans_exist_for_all_four_stages(traced):
    _engine, orch, _spec = traced
    tracer = orch.tracer
    by_category = {c: tracer.finished_spans(category=c) for c in STAGES}
    for stage, spans in by_category.items():
        assert spans, f"no spans recorded for stage {stage!r}"
    # Specific span names on the canonical path.
    assert tracer.finished_spans("monitor.ingest", "monitor")
    assert tracer.finished_spans("decision.tick", "decision")
    assert tracer.finished_spans("arbitration.arbitrate", "arbitration")
    assert tracer.finished_spans("actuation.plan", "actuation")
    assert tracer.finished_spans("wms.launch", "wms")


def test_per_stage_latency_histograms_fill(traced):
    _engine, orch, _spec = traced
    metrics = orch.tracer.metrics
    for stage in STAGES:
        hist = metrics.histogram(f"stage.{stage}.latency")
        assert hist.count > 0, f"stage.{stage}.latency never observed"
        assert hist.p95 >= hist.p50 >= 0.0
    # Actuation (graceful stops) dominates the response, as in §4.6.
    assert metrics.histogram("stage.actuation.latency").p50 > \
        metrics.histogram("stage.decision.latency").p50
    assert metrics.histogram("plan.response").count == len(orch.plans)


def test_stage_spans_nest_under_loop_ticks(traced):
    _engine, orch, _spec = traced
    tracer = orch.tracer
    ticks = {s.span_id for s in tracer.finished_spans("loop.tick", "loop")}
    assert ticks
    arb = tracer.finished_spans("arbitration.arbitrate", "arbitration")
    assert arb and all(s.parent_id in ticks for s in arb)
    # Plan executions hang off a tick too, with per-op children below.
    plans = tracer.finished_spans("actuation.plan", "actuation")
    assert plans
    for plan_span in plans:
        children = tracer.children_of(plan_span)
        assert children, "plan span has no per-op child spans"
        assert all(c.name.startswith("op.") for c in children)


def test_jsonl_log_written(traced):
    _engine, _orch, spec = traced
    lines = [ln for ln in open(spec.jsonl_path, encoding="utf-8") if ln.strip()]
    assert lines
    records = [json.loads(ln) for ln in lines]
    assert all({"kind", "time"} <= set(r) for r in records)
    assert any(r["kind"] == "span" for r in records)


def test_chrome_export_is_valid_and_monotonic(traced):
    _engine, _orch, spec = traced
    doc = json.load(open(spec.chrome_trace_path, encoding="utf-8"))
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert complete
    ts = [e["ts"] for e in complete]
    assert ts == sorted(ts), "trace events must be in non-decreasing ts order"
    assert all(e["dur"] >= 0 for e in complete)
    assert all({"name", "cat", "pid", "tid", "args"} <= set(e) for e in complete)
    cats = {e["cat"] for e in complete}
    assert set(STAGES) <= cats
    # Metadata rows name the process and every track.
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in meta)


def test_identical_to_untraced_run(traced):
    """Telemetry must not perturb the simulation."""
    engine_traced, orch_traced, _spec = traced
    engine_plain, orch_plain = run_quickstart()
    assert not orch_plain.tracer.enabled
    assert engine_plain.now == engine_traced.now
    assert len(orch_plain.plans) == len(orch_traced.plans)
    assert [p.created for p in orch_plain.plans] == [p.created for p in orch_traced.plans]


def test_sampled_run_keeps_metrics_but_fewer_spans():
    spec = TelemetrySpec(sample=0.1)
    _engine, orch = run_quickstart(telemetry=spec)
    full = run_quickstart(telemetry=TelemetrySpec())[1]
    assert 0 < len(orch.tracer.finished_spans("loop.tick")) \
        < len(full.tracer.finished_spans("loop.tick"))
    # Per-stage metrics are recorded regardless of span sampling.
    assert orch.tracer.metrics.histogram("stage.actuation.latency").count == \
        full.tracer.metrics.histogram("stage.actuation.latency").count
