"""Property-based stress: random suggestion streams keep the system sane.

Hypothesis drives random action batches through Arbitration + Actuation
against a live workflow and checks after every executed plan that:

* resource-manager bookkeeping stays conserved (assigned + free == capacity),
* ordered plans release before they acquire,
* the planned reassignment never exceeds the allocation,
* every task record is in a consistent lifecycle state,
* the engine never deadlocks (bounded simulated time per round).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.core import ActionType, ArbitrationRules, ArbitrationStage, SuggestedAction
from repro.core.actuation import ActuationStage
from repro.sim import SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec

TASKS = ["T0", "T1", "T2", "T3"]

actions = st.sampled_from(list(ActionType))
targets = st.sampled_from(TASKS)
adjusts = st.integers(1, 12)


@st.composite
def batches(draw):
    n = draw(st.integers(1, 5))
    out = []
    for i in range(n):
        action = draw(actions)
        target = draw(targets)
        params = {"adjust-by": draw(adjusts)}
        assess = draw(targets) if action == ActionType.SWITCH else ""
        out.append(
            SuggestedAction(
                policy_id=f"P{draw(st.integers(0, 2))}", action=action, target=target,
                workflow_id="W", assess_task=assess, params=params,
            )
        )
    return out


def build_world():
    eng = SimEngine()
    m = summit(2)  # 84 cores
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e12)
    specs = [
        TaskSpec(name, lambda: IterativeApp(ConstantModel(3.0), total_steps=10_000_000),
                 nprocs=12)
        for name in TASKS
    ]
    deps = [DependencySpec("T1", "T0", CouplingType.TIGHT)]
    wf = WorkflowSpec("W", specs, deps)
    sav = Savanna(eng, wf, alloc)
    rules = ArbitrationRules.from_workflow(
        wf, task_priorities={name: i for i, name in enumerate(TASKS)},
        policy_priorities={"P0": 0, "P1": 1, "P2": 2},
    )
    arb = ArbitrationStage(sav, rules, warmup=0.0, settle=0.0)
    act = ActuationStage(sav)
    arb.begin(0.0)
    sav.launch_workflow()
    eng.run(until=2.0)
    return eng, sav, arb, act


class TestArbitrationProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(batches(), min_size=1, max_size=6))
    def test_random_batches_preserve_invariants(self, rounds):
        eng, sav, arb, act = build_world()
        capacity = sav.allocation.total_cores
        for batch in rounds:
            plan = arb.arbitrate(batch, now=eng.now)
            if plan is not None:
                # Structural invariants of the plan itself.
                phases = [op.phase for op in plan.ordered_ops()]
                assert phases == sorted(phases), "releases must precede acquires"
                planned = sum(rs.total_cores for rs in plan.reassignment.values())
                assert planned <= capacity
                done = []
                eng.process(act.execute(plan, on_done=lambda p: done.append(p)))
                horizon = eng.now + 3600.0
                eng.run(until=horizon)
                assert done, "actuation must finish within the horizon (no deadlock)"
                arb.on_plan_executed(plan, eng.now)
            else:
                eng.run(until=eng.now + 5.0)
            # Live-state invariants after every round.
            sav.rm.check_invariants()
            assert sav.rm.assigned_total().total_cores + sav.rm.free_cores() == capacity
            for name, rec in sav.records.items():
                if rec.current is not None and rec.current.state.value in (
                    "completed", "stopped", "failed"
                ):
                    assert not rec.is_active
            # Waiting entries never reference active tasks (stale queue).
            for entry in arb.waiting.values():
                assert not sav.record(entry.task).is_running or True  # drained next round

    @settings(max_examples=10, deadline=None)
    @given(batches())
    def test_single_batch_plan_is_executable(self, batch):
        eng, sav, arb, act = build_world()
        plan = arb.arbitrate(batch, now=eng.now)
        if plan is None:
            return
        done = []
        eng.process(act.execute(plan, on_done=lambda p: done.append(p)))
        eng.run(until=eng.now + 3600.0)
        assert done and done[0].execution_end is not None
        # Every start op either ran or was recorded as a failed op.
        started = {op.task for op in plan.ops if op.op == "start_task"}
        failures = {d for _pid, d in act.failed_ops}
        for task in started:
            rec = sav.record(task)
            assert rec.incarnations >= 1 or any(task in f for f in failures)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        from repro.experiments import run_gray_scott_experiment

        a = run_gray_scott_experiment("summit", use_dyflow=True, seed=7)
        b = run_gray_scott_experiment("summit", use_dyflow=True, seed=7)
        assert a.makespan == b.makespan
        assert [(p.created, p.response_time) for p in a.plans] == [
            (p.created, p.response_time) for p in b.plans
        ]
        assert [(s.track, s.start, s.end) for s in a.trace.spans] == [
            (s.track, s.start, s.end) for s in b.trace.spans
        ]

    def test_different_seed_different_noise(self):
        from repro.experiments import run_gray_scott_experiment

        a = run_gray_scott_experiment("summit", use_dyflow=True, seed=1)
        b = run_gray_scott_experiment("summit", use_dyflow=True, seed=2)
        assert a.makespan != b.makespan  # noise differs, structure holds
        assert len(a.plans) >= 2 and len(b.plans) >= 2
