"""Integration: the §4.5 LAMMPS failure-resilience experiment (Fig. 11)."""

import pytest

from repro.experiments import run_lammps_experiment


@pytest.fixture(scope="module")
def summit_run():
    return run_lammps_experiment("summit", use_dyflow=True)


class TestResilience:
    def test_simulation_completes_despite_failure(self, summit_run):
        assert summit_run.meta["sim_completed"]
        rows = {r["task"]: r for r in summit_run.summary_rows()}
        assert rows["LAMMPS"]["last_step"] == 1000

    def test_whole_workflow_failed_on_node_loss(self, summit_run):
        """All four tasks co-locate on every node, so all fail (§4.5)."""
        for task in ("LAMMPS", "CS_Calc", "CNA_Calc", "RDF_Calc"):
            assert summit_run.incarnations(task) == 2, task

    def test_restart_resumes_from_checkpoint_412(self, summit_run):
        """Paper: 'the simulation resumes from the last checkpoint
        (i.e., timestep 412)'. """
        assert summit_run.meta["restart_step"] == 412

    def test_restart_plan_excludes_failed_node(self, summit_run):
        failed = summit_run.meta["failed_node"]
        plan = [p for p in summit_run.plans if any("RESTART_ON_FAILURE" in a for a in p.accepted)][0]
        for op in plan.ops:
            if op.op == "start_task":
                assert op.resources.cores_on(failed) == 0

    def test_restart_response_subsecond(self, summit_run):
        """Paper: ≈0.2 s on Summit (excluding the frequency delay)."""
        plan = [p for p in summit_run.plans if p.ops][0]
        assert plan.response_time < 2.0

    def test_timesteps_repeated_after_restart(self, summit_run):
        """Failure hits past step 412; the restart repeats several steps."""
        failure_time = summit_run.meta["failure_time"]
        steps_at_failure = int(failure_time / 1.4475)
        assert summit_run.meta["restart_step"] < steps_at_failure

    def test_without_failure_single_incarnation(self):
        res = run_lammps_experiment("summit", use_dyflow=True, inject_failure=False)
        assert res.incarnations("LAMMPS") == 1
        assert res.plans == []
        assert res.meta["sim_completed"]

    def test_without_dyflow_workflow_stays_dead(self):
        res = run_lammps_experiment("summit", use_dyflow=False)
        assert not res.meta["sim_completed"]
        rows = {r["task"]: r for r in res.summary_rows()}
        assert rows["LAMMPS"]["state"] == "failed"
        assert rows["LAMMPS"]["exit_code"] == 137

    def test_deepthought2_same_shape_slower_response(self):
        s = run_lammps_experiment("summit", use_dyflow=True)
        d = run_lammps_experiment("deepthought2", use_dyflow=True)
        assert d.meta["sim_completed"]
        s_resp = [p.response_time for p in s.plans if p.ops][0]
        d_resp = [p.response_time for p in d.plans if p.ops][0]
        assert d_resp > s_resp  # paper: 0.4 s vs 0.2 s
