"""Integration: the DYFLOW service loop wired programmatically and via XML."""

import pytest

from repro.apps import AmdahlModel, ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.core import (
    ActionType,
    GroupBySpec,
    PolicyApplication,
    PolicySpec,
    SensorSpec,
)
from repro.errors import DyflowError
from repro.experiments import run_cost_analysis
from repro.runtime import DyflowOrchestrator
from repro.sim import RngRegistry, SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec
from repro.xmlspec import configure_orchestrator, parse_dyflow_xml


def make_launcher(num_nodes=4):
    eng = SimEngine()
    m = summit(num_nodes)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    tasks = [
        TaskSpec("Sim", lambda: IterativeApp(ConstantModel(8.0), total_steps=40), nprocs=40),
        TaskSpec("Ana", lambda: IterativeApp(AmdahlModel(serial=4, parallel=240)), nprocs=12),
    ]
    wf = WorkflowSpec("W", tasks, [DependencySpec("Ana", "Sim", CouplingType.TIGHT)])
    return eng, Savanna(eng, wf, alloc, rng=RngRegistry(1))


class TestProgrammaticWiring:
    def test_full_loop_adjusts_underprovisioned_analysis(self):
        eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav, warmup=40.0, settle=40.0, record_history=True)
        orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        orch.monitor_task("Ana", "PACE", var="looptime")
        orch.add_policy(PolicySpec("INC", "PACE", "GT", 12.0, ActionType.ADDCPU,
                                   history_window=4, history_op="AVG", frequency=5.0))
        orch.apply_policy(PolicyApplication("INC", "W", ("Ana",), assess_task="Ana",
                                            action_params={"adjust-by": 12}))
        sav.launch_workflow()
        orch.start(stop_when=sav.all_idle)
        eng.run(until=5000)
        assert sav.all_idle()
        # Ana: 12 procs (24 s/step) → 24 (14 s) → 36 (10.7 s, under the
        # 12 s threshold): two adjustments, then stable.
        assert sav.record("Ana").current.nprocs == 36
        assert len(orch.plans) == 2
        assert orch.server.forwarded > 0

    def test_duplicate_sensor_rejected(self):
        _eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav)
        orch.add_sensor(SensorSpec("S", "ADIOS2"))
        with pytest.raises(DyflowError):
            orch.add_sensor(SensorSpec("S", "ADIOS2"))

    def test_monitor_unknown_task_rejected(self):
        _eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav)
        orch.add_sensor(SensorSpec("S", "ADIOS2"))
        with pytest.raises(DyflowError):
            orch.monitor_task("Ghost", "S")

    def test_monitor_unknown_sensor_rejected(self):
        _eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav)
        with pytest.raises(DyflowError):
            orch.monitor_task("Sim", "NOPE")

    def test_double_start_rejected(self):
        eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav)
        orch.start()
        with pytest.raises(DyflowError):
            orch.start()

    def test_multiple_monitor_clients(self):
        eng, sav = make_launcher()
        orch = DyflowOrchestrator(sav, num_clients=3)
        orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        for i, task in enumerate(("Sim", "Ana")):
            orch.monitor_task(task, "PACE", var="looptime", client=i)
        assert len(orch.clients) == 3
        assert len(orch.clients[0].bindings) == 1
        assert len(orch.clients[1].bindings) == 1


class TestXmlWiring:
    XML = """
    <dyflow>
      <monitor>
        <sensors>
          <sensor id="PACE" type="TAUADIOS2">
            <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
          </sensor>
        </sensors>
        <monitor-tasks>
          <monitor-task name="Ana" workflowId="W">
            <use-sensor sensor-id="PACE" info="looptime"/>
          </monitor-task>
        </monitor-tasks>
      </monitor>
      <decision>
        <policies>
          <policy id="INC">
            <eval operation="GT" threshold="12"/>
            <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
            <action> ADDCPU </action>
            <history window="4" operation="AVG"/>
            <frequency seconds="5"/>
          </policy>
        </policies>
        <apply-on workflowId="W">
          <apply-policy policyId="INC" assess-task="Ana">
            <act-on-tasks> Ana </act-on-tasks>
            <action-params><param key="adjust-by" value="12"/></action-params>
          </apply-policy>
        </apply-on>
      </decision>
      <arbitration>
        <rules>
          <rule-for workflowId="W">
            <task-priorities>
              <task-priority name="Sim" priority="0"/>
              <task-priority name="Ana" priority="1"/>
            </task-priorities>
          </rule-for>
        </rules>
      </arbitration>
    </dyflow>
    """

    def test_xml_configured_orchestration(self):
        eng, sav = make_launcher()
        spec = parse_dyflow_xml(self.XML)
        orch = configure_orchestrator(sav, spec, warmup=40.0, settle=40.0)
        assert orch.rules.task_priority("Sim") == 0
        sav.launch_workflow()
        orch.start(stop_when=sav.all_idle)
        eng.run(until=5000)
        assert sav.record("Ana").current.nprocs == 36

    def test_mismatched_workflow_id_rejected(self):
        eng, sav = make_launcher()
        spec = parse_dyflow_xml(self.XML.replace('workflowId="W"', 'workflowId="OTHER"'))
        from repro.errors import XmlSpecError

        with pytest.raises(XmlSpecError):
            configure_orchestrator(sav, spec)


class TestCostAnalysis:
    def test_cost_report_matches_paper_shape(self):
        report = run_cost_analysis("summit")
        assert report.stream_lag == pytest.approx(0.5)   # §4.6: ≈0.5 s streamed
        assert report.file_lag == pytest.approx(0.2)     # §4.6: ≈0.2 s from file
        assert report.stop_share > 0.9                   # §4.6: ≈97%
        assert report.plan_time < 1.0                    # formulation is cheap

    def test_deepthought2_slower_everywhere(self):
        s = run_cost_analysis("summit")
        d = run_cost_analysis("deepthought2")
        assert d.stream_lag > s.stream_lag
        assert d.file_lag > s.file_lag
        assert d.response_time > s.response_time
