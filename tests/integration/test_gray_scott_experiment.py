"""Integration: the §4.4 Gray-Scott performance-driven experiment (Figs. 8–9)."""

import pytest

from repro.experiments import run_gray_scott_experiment


@pytest.fixture(scope="module")
def summit_run():
    return run_gray_scott_experiment("summit", use_dyflow=True)


def adjustment_plans(result):
    """Plans containing an accepted INC_ON_PACE action."""
    return [p for p in result.plans if any("INC_ON_PACE" in a for a in p.accepted)]


class TestSummitAdjustments:
    def test_two_adjustments(self, summit_run):
        assert len(adjustment_plans(summit_run)) == 2

    def test_first_adjustment_grows_iso_via_pdf(self, summit_run):
        plan = adjustment_plans(summit_run)[0]
        assert plan.victims == ["PDF_Calc"]
        start = [o for o in plan.ops if o.op == "start_task" and o.task == "Isosurface"][0]
        assert start.resources.total_cores == 40
        # Rendering restarted through its tight dependency on Isosurface.
        dep = [o for o in plan.ops if o.task == "Rendering" and o.op == "start_task"]
        assert dep and dep[0].reason == "dependency"

    def test_second_adjustment_grows_iso_via_fft(self, summit_run):
        plan = adjustment_plans(summit_run)[1]
        assert plan.victims == ["FFT"]
        start = [o for o in plan.ops if o.op == "start_task" and o.task == "Isosurface"][0]
        assert start.resources.total_cores == 60

    def test_finishes_inside_time_limit(self, summit_run):
        assert summit_run.makespan < summit_run.meta["time_limit"]

    def test_gray_scott_completes_all_steps(self, summit_run):
        rows = {r["task"]: r for r in summit_run.summary_rows()}
        assert rows["GrayScott"]["last_step"] == 50
        assert rows["GrayScott"]["state"] == "completed"

    def test_pace_settles_into_band(self, summit_run):
        """Fig. 9: after the second change every pace is within [24, 36]."""
        second = adjustment_plans(summit_run)[1]
        late = [v for t, v in summit_run.pace_series("Isosurface")
                if t > second.execution_end + 60]
        assert late, "no pace samples after the second adjustment"
        tail = late[2:]
        assert all(20 < v < 36 for v in tail)

    def test_responses_order_of_paper(self, summit_run):
        """First response (3 graceful stops) larger than sub-minute scale."""
        plans = adjustment_plans(summit_run)
        assert 10 < plans[0].response_time < 120   # paper: 107 s
        assert 5 < plans[1].response_time < 120    # paper: 36 s

    def test_graceful_stops_dominate_response(self, summit_run):
        for plan in adjustment_plans(summit_run):
            assert plan.stop_share() > 0.7  # paper: ≈97%


class TestBaseline:
    def test_static_run_times_out(self):
        res = run_gray_scott_experiment("summit", use_dyflow=False, enforce_walltime=True)
        assert res.meta["timed_out"]
        rows = {r["task"]: r for r in res.summary_rows()}
        assert rows["GrayScott"]["last_step"] < 50  # killed prematurely

    def test_static_overtime_factor(self):
        res = run_gray_scott_experiment("summit", use_dyflow=False, enforce_walltime=False)
        overtime = res.makespan / (30 * 60.0) - 1.0
        assert 0.05 < overtime < 0.25  # paper: 10–12%


class TestDeepthought2:
    def test_single_adjustment_with_two_victims(self):
        """Paper: Iso restarted acquiring resources from PDF_Calc *and*
        FFT_Calc in one plan; response 87 s."""
        res = run_gray_scott_experiment("deepthought2", use_dyflow=True)
        plans = adjustment_plans(res)
        assert len(plans) == 1
        assert set(plans[0].victims) == {"PDF_Calc", "FFT"}
        assert 40 < plans[0].response_time < 150
        assert res.makespan < res.meta["time_limit"]
