"""Integration: the §4.3 XGC1–XGCa science-driven experiment (Fig. 6)."""

import pytest

from repro.experiments import run_xgc_experiment
from repro.experiments.xgc_scenario import TARGET_STEPS


@pytest.fixture(scope="module")
def summit_run():
    return run_xgc_experiment("summit", use_dyflow=True)


@pytest.fixture(scope="module")
def summit_baseline():
    return run_xgc_experiment("summit", use_dyflow=False)


class TestAlternation:
    def test_experiment_reaches_target(self, summit_run):
        assert summit_run.meta["final_progress"] in range(TARGET_STEPS + 1, TARGET_STEPS + 6)

    def test_tasks_alternate_not_overlap(self, summit_run):
        """XGC1 and XGCa never run concurrently (one allocation's worth)."""
        runs = [("XGC1", a, b) for a, b in summit_run.task_runs("XGC1")]
        runs += [("XGCA", a, b) for a, b in summit_run.task_runs("XGCA")]
        runs.sort(key=lambda r: r[1])
        for (t1, _s1, e1), (t2, s2, _e2) in zip(runs, runs[1:]):
            assert s2 >= e1 - 1.0, f"{t1} overlaps {t2}"

    def test_xgca_started_three_times(self, summit_run):
        """Paper: 'XGCa starts three times ... when XGC1 terminates'."""
        # Three alternation starts plus the final short run stopped at >500.
        assert summit_run.incarnations("XGCA") == 3

    def test_xgc1_slower_per_step(self, summit_run):
        xgc1_runs = summit_run.task_runs("XGC1")
        xgca_runs = summit_run.task_runs("XGCA")
        # Compare the first full 100-step run of each.
        d1 = xgc1_runs[0][1] - xgc1_runs[0][0]
        da = xgca_runs[0][1] - xgca_runs[0][0]
        assert d1 / da == pytest.approx(2.5, rel=0.15)

    def test_switch_happened_near_374(self, summit_run):
        switch_plans = [
            p for p in summit_run.plans
            if any("SWITCH_ON_COND" in a for a in p.accepted)
        ]
        assert len(switch_plans) == 1

    def test_stop_happened_past_500(self, summit_run):
        stop_plans = [
            p for p in summit_run.plans if any("STOP_ON_COND" in a for a in p.accepted)
        ]
        assert stop_plans, "STOP_ON_COND never fired"


class TestResponseTimes:
    def test_xgca_starts_are_subsecond(self, summit_run):
        """Paper: 0.1–0.2 s to start XGCa from the waiting queue."""
        quick = [
            p.response_time
            for p in summit_run.plans
            if len(p.ops) == 1 and p.ops[0].task == "XGCA" and p.ops[0].op == "start_task"
        ]
        assert quick and all(r < 1.0 for r in quick)

    def test_xgc1_start_includes_script_overhead(self, summit_run):
        starts = [
            p.response_time
            for p in summit_run.plans
            if len(p.ops) == 1 and p.ops[0].task == "XGC1" and p.ops[0].op == "start_task"
        ]
        assert starts and all(3.0 < r < 10.0 for r in starts)  # paper ≈8 s incl. freq delay

    def test_all_plans_executed(self, summit_run):
        assert all(p.execution_end is not None for p in summit_run.plans)


class TestBaselineComparison:
    def test_dyflow_saves_about_25_percent(self, summit_run, summit_baseline):
        """Paper: XGC1-only takes ≈25% more time on each cluster."""
        ratio = summit_baseline.makespan / summit_run.makespan
        assert 1.15 < ratio < 1.45

    def test_deepthought2_slower_but_same_shape(self):
        d2 = run_xgc_experiment("deepthought2", use_dyflow=True)
        d2_base = run_xgc_experiment("deepthought2", use_dyflow=False)
        assert d2.meta["final_progress"] >= TARGET_STEPS + 1
        ratio = d2_base.makespan / d2.makespan
        assert 1.15 < ratio < 1.45
        # Every response is slower than (or comparable to) Summit's.
        s = run_xgc_experiment("summit", use_dyflow=True)
        assert min(r for _pid, r in d2.response_times()) > 0
        assert max(r for _pid, r in d2.response_times()) >= max(
            r for _pid, r in s.response_times()
        ) * 0.9
