"""Integration: the §2.1 sensor examples — memory at two granularities, IPC joins.

The paper motivates group-by with physical memory ("one metric per
compute node used, the other the overall physical memory") and joins
with IPC (instructions / cycles).  Both run end to end here.
"""

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.core import (
    ActionType,
    GroupBySpec,
    JoinSpec,
    PolicyApplication,
    PolicySpec,
    SensorSpec,
)
from repro.profiler import CounterModel
from repro.runtime import DyflowOrchestrator
from repro.sim import RngRegistry, SimEngine
from repro.wms import Savanna, TaskSpec, WorkflowSpec


def make_world(app, counters=None, nprocs=8):
    eng = SimEngine()
    m = summit(4)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    wf = WorkflowSpec("W", [TaskSpec("T", app, nprocs=nprocs, procs_per_node=2)])
    sav = Savanna(eng, wf, alloc, rng=RngRegistry(0), counters=counters)
    return eng, sav


class TestMemoryTwoGranularities:
    def make_orch(self, eng, sav):
        orch = DyflowOrchestrator(sav, warmup=10.0, settle=10.0, record_history=True)
        orch.add_sensor(
            SensorSpec(
                "MEM", "TAUADIOS2",
                (GroupBySpec("node-task", "SUM"), GroupBySpec("task", "SUM")),
            )
        )
        orch.monitor_task("T", "MEM", var="rss_mb")
        return orch

    def test_node_and_task_level_memory_metrics(self):
        def app():
            return IterativeApp(
                ConstantModel(5.0), total_steps=6, rank_jitter=0.0, memory_mb_per_rank=100.0
            )

        eng, sav = make_world(app)
        orch = self.make_orch(eng, sav)
        sav.launch_workflow()
        orch.start(stop_when=sav.all_idle)
        eng.run(until=1000)
        node_updates = [u for u in orch.server.history if u.granularity == "node-task"]
        task_updates = [u for u in orch.server.history if u.granularity == "task"]
        assert node_updates and task_updates
        # 8 ranks at 2/node over 4 nodes: 200 MB per node, 800 MB per task.
        assert node_updates[0].value == pytest.approx(200.0)
        assert task_updates[0].value == pytest.approx(800.0)
        nodes = {u.key[1] for u in node_updates}
        assert len(nodes) == 4

    def test_memory_growth_policy_fires_stop(self):
        """A leak-guard policy: STOP the task when its RSS crosses a cap."""
        def app():
            return IterativeApp(
                ConstantModel(5.0), total_steps=1000, rank_jitter=0.0,
                memory_mb_per_rank=100.0, memory_growth_mb_per_step=50.0,
            )

        eng, sav = make_world(app)
        orch = self.make_orch(eng, sav)
        orch.add_policy(
            PolicySpec("LEAK_GUARD", "MEM", "GT", 2000.0, ActionType.STOP,
                       granularity="task", frequency=5.0)
        )
        orch.apply_policy(PolicyApplication("LEAK_GUARD", "W", ("T",), assess_task="T"))
        sav.launch_workflow()
        orch.start(stop_when=sav.all_idle)
        eng.run(until=10_000)
        inst = sav.record("T").current
        assert inst.state.value == "stopped"
        # 800 + 400*step > 2000 at step 3; stopped shortly after (warmup 10s = step 2).
        assert inst.notes["last_step"] < 20


class TestIpcJoin:
    def test_ipc_metric_flows_to_decision(self):
        counters = CounterModel(clock_ghz=1.0, work_instructions=5e9, base_ipc=4.0)
        def app():
            return IterativeApp(ConstantModel(10.0), total_steps=6, rank_jitter=0.0)

        eng, sav = make_world(app, counters=counters)
        orch = DyflowOrchestrator(sav, warmup=5.0, settle=5.0, record_history=True)
        orch.add_sensor(
            SensorSpec("INS", "TAUADIOS2", (GroupBySpec("task", "SUM"),),
                       join=JoinSpec("CYC", "DIV"))
        )
        orch.add_sensor(SensorSpec("CYC", "TAUADIOS2", (GroupBySpec("task", "SUM"),)))
        orch.monitor_task("T", "INS", var="PAPI_TOT_INS")
        orch.monitor_task("T", "CYC", var="PAPI_TOT_CYC")
        sav.launch_workflow()
        orch.start(stop_when=sav.all_idle)
        eng.run(until=1000)
        ipc = [u.value for u in orch.server.history if u.sensor_id == "INS"]
        assert ipc
        # 5e9 instructions over 10 s at 1 GHz = 0.5 IPC per rank; the SUM
        # reduction cancels in the ratio.
        assert ipc[0] == pytest.approx(0.5, rel=0.05)
