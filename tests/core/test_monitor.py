"""Tests for the Monitor client/server stages."""

import pytest

from repro.cluster.machine import MachinePerf
from repro.core import MonitorClient, MonitorServer
from repro.core.sensors import GroupBySpec, JoinSpec, SensorInstance, SensorSpec, StreamSource
from repro.errors import SensorError
from repro.staging import DataHub, Sample
from repro.util import Envelope


def mk_sample(task="T", var="looptime", value=1.0, rank=0, step=0, time=0.0):
    return Sample(time=time, workflow_id="W", task=task, rank=rank, node_id="n0",
                  var=var, value=value, step=step)


def bind(client, hub, sensor_spec, task, channel, var=None):
    src = StreamSource(hub, channel, "W", task, var=var)
    inst = SensorInstance(spec=sensor_spec, workflow_id="W", task=task, source=src)
    client.add_binding(inst)
    return inst


class TestMonitorClient:
    def test_collect_emits_one_envelope_per_sensor(self):
        hub = DataHub()
        client = MonitorClient("c0", MachinePerf())
        pace = SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),))
        bind(client, hub, pace, "A", "tau-W-A", var="looptime")
        bind(client, hub, pace, "B", "tau-W-B", var="looptime")
        client.collect(0.0)  # connect
        hub.channel("tau-W-A").put([mk_sample(task="A", value=2.0)], 1.0)
        hub.channel("tau-W-B").put([mk_sample(task="B", value=3.0)], 1.0)
        out = client.collect(1.0)
        assert len(out) == 1  # one envelope for sensor PACE
        lag, env = out[0]
        assert lag == MachinePerf().stream_read_lag
        tasks = {u["task"] for u in env.payload["updates"]}
        assert tasks == {"A", "B"}

    def test_sequence_numbers_increase(self):
        hub = DataHub()
        client = MonitorClient("c0", MachinePerf())
        pace = SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),))
        bind(client, hub, pace, "A", "ch", var="looptime")
        client.collect(0.0)
        seqs = []
        for t in (1.0, 2.0, 3.0):
            hub.channel("ch").put([mk_sample(value=t, time=t)], t)
            out = client.collect(t)
            seqs.append(out[0][1].seq)
        assert seqs == [0, 1, 2]

    def test_empty_round_no_envelopes(self):
        client = MonitorClient("c0", MachinePerf())
        assert client.collect(0.0) == []

    def test_join_produces_derived_metric(self):
        """IPC = instructions / cycles, the paper's joined-sensor example."""
        hub = DataHub()
        client = MonitorClient("c0", MachinePerf())
        ins = SensorSpec("INS", "TAUADIOS2", (GroupBySpec("task", "SUM"),),
                         join=JoinSpec("CYC", "DIV"))
        cyc = SensorSpec("CYC", "TAUADIOS2", (GroupBySpec("task", "SUM"),))
        bind(client, hub, ins, "A", "tau-W-A", var="PAPI_TOT_INS")
        bind(client, hub, cyc, "A", "tau-W-A", var="PAPI_TOT_CYC")
        client.collect(0.0)
        hub.channel("tau-W-A").put([
            mk_sample(var="PAPI_TOT_INS", value=8e9),
            mk_sample(var="PAPI_TOT_CYC", value=4e9),
        ], 1.0)
        out = client.collect(1.0)
        by_sensor = {env.sender.split("/")[-1]: env for _lag, env in out}
        ipc = by_sensor["INS"].payload["updates"][0]
        assert ipc["value"] == pytest.approx(2.0)

    def test_join_without_partner_data_emits_nothing(self):
        hub = DataHub()
        client = MonitorClient("c0", MachinePerf())
        ins = SensorSpec("INS", "TAUADIOS2", (GroupBySpec("task", "SUM"),),
                         join=JoinSpec("CYC", "DIV"))
        bind(client, hub, ins, "A", "chan", var="PAPI_TOT_INS")
        client.collect(0.0)
        hub.channel("chan").put([mk_sample(var="PAPI_TOT_INS", value=1e9)], 1.0)
        assert client.collect(1.0) == []

    def test_on_task_restart_reconnects_bindings(self):
        hub = DataHub()
        client = MonitorClient("c0", MachinePerf())
        pace = SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),))
        inst = bind(client, hub, pace, "A", "ch", var="looptime")
        client.collect(0.0)
        reader_before = inst.source._reader
        client.on_task_restart("A")
        assert inst.source._reader is not None
        assert inst.source._reader is not reader_before


class TestMonitorServer:
    def _env(self, seq, updates=None, kind="sensor-update", sender="c0/PACE"):
        return Envelope(kind=kind, sender=sender, seq=seq, time=0.0,
                        payload={"updates": updates or []})

    def _update_dict(self, value=1.0):
        return {
            "sensor_id": "PACE", "workflow_id": "W", "task": "A",
            "granularity": "task", "key": ["A"], "value": value,
            "time": 0.0, "step": 0, "var": "looptime",
        }

    def test_forwards_to_sink(self):
        got = []
        server = MonitorServer(on_updates=got.extend)
        server.receive(self._env(0, [self._update_dict(5.0)]))
        assert len(got) == 1 and got[0].value == 5.0

    def test_out_of_order_dropped(self):
        got = []
        server = MonitorServer(on_updates=got.extend)
        server.receive(self._env(1, [self._update_dict(1.0)]))
        assert server.receive(self._env(0, [self._update_dict(2.0)])) == []
        assert server.dropped == 1
        assert len(got) == 1

    def test_restart_resets_epochs(self):
        server = MonitorServer()
        server.receive(self._env(5, [self._update_dict()]))
        assert server.receive(self._env(0, [self._update_dict()])) == []
        server.on_task_restart("A")
        assert len(server.receive(self._env(0, [self._update_dict()]))) == 1

    def test_wrong_kind_rejected(self):
        server = MonitorServer()
        with pytest.raises(SensorError):
            server.receive(self._env(0, kind="gossip"))

    def test_history_recording(self):
        server = MonitorServer(record_history=True)
        server.receive(self._env(0, [self._update_dict(1.0), self._update_dict(2.0)]))
        assert [u.value for u in server.history] == [1.0, 2.0]


class TestMonitorServerAccounting:
    """Dropped/received/forwarded counters and last-seen liveness times."""

    def _env(self, seq, updates=None, sender="c0/PACE", time=0.0):
        return Envelope(kind="sensor-update", sender=sender, seq=seq, time=time,
                        payload={"updates": updates or []})

    def _update_dict(self, value=1.0):
        return {
            "sensor_id": "PACE", "workflow_id": "W", "task": "A",
            "granularity": "task", "key": ["A"], "value": value,
            "time": 0.0, "step": 0, "var": "looptime",
        }

    def test_dropped_accounting_per_sender(self):
        server = MonitorServer()
        server.receive(self._env(3, [self._update_dict()], sender="c0/PACE"))
        server.receive(self._env(3, [self._update_dict()], sender="c1/PACE"))
        # Stale envelopes from either sender are dropped and counted.
        assert server.receive(self._env(1, [self._update_dict()], sender="c0/PACE")) == []
        assert server.receive(self._env(2, [self._update_dict()], sender="c1/PACE")) == []
        assert server.dropped == 2
        assert server.received == 4
        assert server.forwarded == 2

    def test_sequence_gaps_are_accepted_not_dropped(self):
        # A lossy transport (chaos msg-drop) leaves gaps; the filter only
        # rejects regressions, so gaps don't inflate the dropped counter.
        server = MonitorServer()
        server.receive(self._env(0, [self._update_dict()]))
        assert len(server.receive(self._env(7, [self._update_dict()]))) == 1
        assert server.dropped == 0
        assert server.forwarded == 2

    def test_last_seen_tracks_accepted_envelopes_only(self):
        server = MonitorServer()
        server.receive(self._env(0, [self._update_dict()], time=3.0))
        assert server.last_seen["A"] == 3.0
        server.receive(self._env(2, [self._update_dict()], time=8.0))
        assert server.last_seen["A"] == 8.0
        # Out-of-order envelope is dropped: last_seen must not move.
        server.receive(self._env(1, [self._update_dict()], time=99.0))
        assert server.last_seen["A"] == 8.0

    def test_last_seen_empty_payload_untouched(self):
        server = MonitorServer()
        server.receive(self._env(0, [], time=5.0))
        assert server.last_seen == {}
