"""Tests for policies and the Decision stage."""

import pytest

from repro.core import ActionType, DecisionStage, MetricUpdate, PolicyApplication, PolicySpec
from repro.core.policy import PolicyRuntime, eval_condition
from repro.errors import PolicyError


def update(sensor="PACE", task="Iso", gran="task", value=40.0, time=0.0, wf="W", step=-1):
    key = (task,) if gran in ("task", "node-task") else (wf,)
    return MetricUpdate(sensor_id=sensor, workflow_id=wf, task=task if gran in ("task", "node-task") else "",
                        granularity=gran, key=key, value=value, time=time, step=step)


def spec(**kw):
    defaults = dict(policy_id="P", sensor_id="PACE", eval_op="GT", threshold=36.0,
                    action=ActionType.ADDCPU, granularity="task",
                    history_window=1, frequency=5.0)
    defaults.update(kw)
    return PolicySpec(**defaults)


def app(**kw):
    defaults = dict(policy_id="P", workflow_id="W", act_on_tasks=("Iso",), assess_task="Iso")
    defaults.update(kw)
    return PolicyApplication(**defaults)


class TestEvalCondition:
    def test_all_ops(self):
        assert eval_condition("GT", 2, 1) and not eval_condition("GT", 1, 1)
        assert eval_condition("LT", 0, 1) and not eval_condition("LT", 1, 1)
        assert eval_condition("GE", 1, 1)
        assert eval_condition("LE", 1, 1)
        assert eval_condition("EQ", 374.0, 374) and not eval_condition("EQ", 374.5, 374)
        assert eval_condition("NE", 3, 4)

    def test_unknown_op(self):
        with pytest.raises(PolicyError):
            eval_condition("ALMOST", 1, 1)


class TestPolicyRuntime:
    def test_matching_rules(self):
        rt = PolicyRuntime(spec(), app())
        assert rt.ingest(update(task="Iso"))
        assert not rt.ingest(update(task="FFT"))          # wrong assess task
        assert not rt.ingest(update(sensor="OTHER"))       # wrong sensor
        assert not rt.ingest(update(gran="workflow"))      # wrong granularity
        assert not rt.ingest(update(wf="OTHERWF"))         # wrong workflow

    def test_workflow_granularity_ignores_assess_filter(self):
        rt = PolicyRuntime(spec(granularity="workflow"), app(assess_task="XGCA"))
        assert rt.ingest(update(gran="workflow"))

    def test_instantaneous_fires_on_any_pending_value(self):
        rt = PolicyRuntime(spec(eval_op="EQ", threshold=374.0), app())
        rt.ingest(update(value=373.0, time=1.0))
        rt.ingest(update(value=374.0, time=2.0))
        rt.ingest(update(value=375.0, time=3.0))
        actions = rt.evaluate(5.0)
        assert len(actions) == 1
        a = actions[0]
        assert a.metric_value == 374.0 and a.trigger_time == 2.0

    def test_instantaneous_values_consumed_once(self):
        rt = PolicyRuntime(spec(), app())
        rt.ingest(update(value=50.0))
        assert rt.evaluate(5.0)
        assert rt.evaluate(10.0) == []  # no new data

    def test_windowed_keeps_firing_without_new_data(self):
        rt = PolicyRuntime(spec(history_window=5, history_op="AVG"), app())
        rt.ingest(update(value=50.0))
        assert rt.evaluate(5.0)
        assert rt.evaluate(10.0)  # window still in violation

    def test_window_average_gates_firing(self):
        rt = PolicyRuntime(spec(history_window=4, history_op="AVG"), app())
        for v in (50.0, 30.0, 30.0, 30.0):  # avg 35 < 36
            rt.ingest(update(value=v))
        assert rt.evaluate(5.0) == []

    def test_frequency_gating_on_absolute_grid(self):
        rt = PolicyRuntime(spec(), app())
        rt.ingest(update(value=50.0))
        assert rt.evaluate(7.0)   # first evaluation
        rt.ingest(update(value=50.0))
        assert rt.evaluate(9.0) == []  # same 5 s bucket
        rt.ingest(update(value=50.0))
        assert rt.evaluate(10.0)  # next bucket

    def test_action_params_merge_spec_defaults(self):
        s = spec(default_params={"adjust-by": 10, "mode": "soft"})
        a = app(action_params={"adjust-by": 20})
        rt = PolicyRuntime(s, a)
        rt.ingest(update(value=99.0))
        action = rt.evaluate(5.0)[0]
        assert action.params == {"adjust-by": 20, "mode": "soft"}

    def test_one_action_per_act_on_task(self):
        rt = PolicyRuntime(spec(), app(act_on_tasks=("A", "B")))
        rt.ingest(update(value=99.0))
        actions = rt.evaluate(5.0)
        assert [a.target for a in actions] == ["A", "B"]

    def test_mismatched_ids_rejected(self):
        with pytest.raises(PolicyError):
            PolicyRuntime(spec(policy_id="X"), app(policy_id="Y"))

    def test_trend_preanalysis(self):
        rt = PolicyRuntime(
            spec(history_window=5, history_op="TREND", eval_op="GT", threshold=1.0), app()
        )
        for i, v in enumerate([10.0, 12.0, 14.0, 16.0]):
            rt.ingest(update(value=v, time=float(i)))
        actions = rt.evaluate(5.0)
        assert actions and actions[0].metric_value == pytest.approx(2.0)

    def test_reset_history(self):
        rt = PolicyRuntime(spec(history_window=5), app())
        rt.ingest(update(value=99.0))
        rt.reset_history()
        assert rt.evaluate(5.0) == []


class TestDecisionStage:
    def make_stage(self):
        stage = DecisionStage()
        stage.add_policy(spec())
        stage.apply_policy(app())
        return stage

    def test_ingest_and_tick(self):
        stage = self.make_stage()
        stage.ingest([update(value=50.0)])
        actions = stage.tick(5.0)
        assert len(actions) == 1 and actions[0].action == ActionType.ADDCPU
        assert stage.updates_seen == 1 and stage.updates_matched == 1

    def test_duplicate_policy_rejected(self):
        stage = self.make_stage()
        with pytest.raises(PolicyError):
            stage.add_policy(spec())

    def test_apply_unknown_policy_rejected(self):
        stage = DecisionStage()
        with pytest.raises(PolicyError):
            stage.apply_policy(app())

    def test_tick_envelope_packages_batch(self):
        stage = self.make_stage()
        stage.ingest([update(value=50.0)])
        env = stage.tick_envelope(5.0)
        assert env is not None and env.kind == "decision"
        s = env.payload["suggestions"][0]
        assert s["action"] == "ADDCPU" and s["target"] == "Iso"

    def test_tick_envelope_none_when_quiet(self):
        stage = self.make_stage()
        assert stage.tick_envelope(5.0) is None

    def test_on_task_restart_clears_windowed_only(self):
        stage = DecisionStage()
        stage.add_policy(spec(policy_id="WINDOWED", history_window=5))
        stage.add_policy(spec(policy_id="INSTANT"))
        rt_w = stage.apply_policy(app(policy_id="WINDOWED"))
        rt_i = stage.apply_policy(app(policy_id="INSTANT"))
        stage.ingest([update(value=99.0)])
        stage.on_task_restart("Iso")
        assert rt_w.evaluate(5.0) == []   # window cleared
        assert rt_i.evaluate(5.0)          # pending kept

    def test_multiple_policies_same_sensor(self):
        stage = DecisionStage()
        stage.add_policy(spec(policy_id="INC", eval_op="GT", threshold=36.0))
        stage.add_policy(spec(policy_id="DEC", eval_op="LT", threshold=24.0,
                              action=ActionType.RMCPU))
        stage.apply_policy(app(policy_id="INC"))
        stage.apply_policy(app(policy_id="DEC"))
        stage.ingest([update(value=20.0)])
        actions = stage.tick(5.0)
        assert [a.policy_id for a in actions] == ["DEC"]
