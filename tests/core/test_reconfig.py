"""Tests for the §6 extension: in-place RECONFIG (no stop-and-relaunch)."""

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.core import (
    ActionType,
    GroupBySpec,
    PolicyApplication,
    PolicySpec,
    SensorSpec,
)
from repro.runtime import DyflowOrchestrator
from repro.sim import RngRegistry, SimEngine
from repro.wms import Savanna, TaskSpec, WorkflowSpec
from tests.core.test_arbitration import make_world, suggestion


class TestControlMailbox:
    def test_drain_merges_updates(self):
        from tests.apps.test_iterative_app import make_ctx

        eng = SimEngine()
        ctx = make_ctx(eng)
        ctx.deliver_control({"a": 1, "b": 2})
        ctx.deliver_control({"b": 3})
        merged = ctx.drain_control()
        assert merged == {"a": 1, "b": 3}
        assert ctx.params["b"] == 3
        assert ctx.drain_control() == {}

    def test_step_scale_changes_pace_in_place(self):
        from tests.apps.test_iterative_app import make_ctx

        eng = SimEngine()
        ctx = make_ctx(eng)
        app = IterativeApp(ConstantModel(10.0), total_steps=4, rank_jitter=0.0)
        proc = eng.process(app.run(ctx))
        # Halve the work after two steps.
        eng.call_after(15.0, lambda: ctx.deliver_control({"step-scale": 0.5}))
        eng.run()
        # Steps: 10 + 10 + (reconfig applies at step 3 boundary) 5 + 5 = 30.
        assert proc.value == 0
        assert eng.now == pytest.approx(30.0)
        assert ctx.notes["last_reconfig"] == {"step-scale": 0.5}


class TestArbitrationMapping:
    def test_reconfig_plans_single_op_without_restart(self):
        eng, sav, arb = make_world()
        plan = arb.arbitrate(
            [suggestion(action=ActionType.RECONFIG, target="B", params={"step-scale": 0.5})],
            now=5.0,
        )
        assert [o.op for o in plan.ops] == ["reconfig_task"]
        assert plan.ops[0].params == {"step-scale": 0.5}
        assert plan.victims == []

    def test_reconfig_on_dead_task_dropped(self):
        eng, sav, arb = make_world(tasks=(("A", 10, True), ("B", 10, False)))
        assert arb.arbitrate(
            [suggestion(action=ActionType.RECONFIG, target="B")], now=5.0
        ) is None

    def test_stop_beats_reconfig_by_policy_priority(self):
        eng, sav, arb = make_world(policy_priorities={"HIGH": 0, "LOW": 1})
        plan = arb.arbitrate(
            [
                suggestion(policy="LOW", action=ActionType.RECONFIG, target="B"),
                suggestion(policy="HIGH", action=ActionType.STOP, target="B"),
            ],
            now=5.0,
        )
        assert [o.op for o in plan.ops] == ["stop_task"]

    def test_reconfig_does_not_restart_dependents(self):
        from repro.wms import CouplingType, DependencySpec

        eng, sav, arb = make_world(
            tasks=(("Sim", 10, True), ("Iso", 10, True), ("Render", 10, True)),
            deps=(
                DependencySpec("Iso", "Sim", CouplingType.TIGHT),
                DependencySpec("Render", "Iso", CouplingType.TIGHT),
            ),
        )
        plan = arb.arbitrate(
            [suggestion(action=ActionType.RECONFIG, target="Iso")], now=5.0
        )
        assert {o.task for o in plan.ops} == {"Iso"}


class TestEndToEndReconfig:
    def test_policy_driven_reconfig_restores_pace(self):
        """The full loop: slow analysis reconfigured in place, no restart."""
        eng = SimEngine()
        m = summit(4)
        alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
        wf = WorkflowSpec("W", [
            TaskSpec("Ana", lambda: IterativeApp(ConstantModel(20.0), total_steps=60), nprocs=10),
        ])
        sav = Savanna(eng, wf, alloc, rng=RngRegistry(0))
        orch = DyflowOrchestrator(sav, warmup=30.0, settle=30.0, record_history=True)
        orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
        orch.monitor_task("Ana", "PACE", var="looptime")
        orch.add_policy(
            PolicySpec("TUNE", "PACE", "GT", 12.0, ActionType.RECONFIG,
                       history_window=3, history_op="AVG", frequency=5.0)
        )
        orch.apply_policy(
            PolicyApplication("TUNE", "W", ("Ana",), assess_task="Ana",
                              action_params={"step-scale": 0.5})
        )
        sav.launch_workflow()
        orch.start(stop_when=sav.all_idle)
        eng.run(until=10_000)
        plans = [p for p in orch.plans if p.execution_end is not None]
        assert plans and plans[0].ops[0].op == "reconfig_task"
        # No restart happened: one incarnation only.
        assert sav.record("Ana").incarnations == 1
        # Response time is a signal latency, not a graceful stop.
        assert plans[0].response_time < 0.5
        # Pace halves after the reconfig.
        paces = [u.value for u in orch.server.history if u.task == "Ana"]
        assert paces[0] == pytest.approx(20.0, rel=0.1)
        assert paces[-1] == pytest.approx(10.0, rel=0.1)
