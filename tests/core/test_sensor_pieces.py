"""Tests for reductions, preprocessing, group-by, and joins."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sensors import (
    GroupBySpec,
    JoinSpec,
    REDUCTIONS,
    group_key,
    preprocess_value,
    reduce_values,
)
from repro.core.sensors.groupby import task_of_key
from repro.errors import SensorError
from repro.staging import Sample

finite = st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=20)


class TestReductions:
    def test_all_paper_reductions_present(self):
        for op in ("MAX", "MIN", "AVG", "SUM", "FIRST", "LAST", "COUNT"):
            assert op in REDUCTIONS

    def test_basic_values(self):
        values = [3.0, 1.0, 2.0]
        assert reduce_values("MAX", values) == 3.0
        assert reduce_values("MIN", values) == 1.0
        assert reduce_values("AVG", values) == 2.0
        assert reduce_values("SUM", values) == 6.0
        assert reduce_values("FIRST", values) == 3.0
        assert reduce_values("LAST", values) == 2.0
        assert reduce_values("COUNT", values) == 3.0
        assert reduce_values("MEDIAN", values) == 2.0

    def test_case_insensitive(self):
        assert reduce_values("max", [1.0, 2.0]) == 2.0

    def test_unknown_op(self):
        with pytest.raises(SensorError):
            reduce_values("NOPE", [1.0])

    def test_empty_group(self):
        with pytest.raises(SensorError):
            reduce_values("MAX", [])

    @given(finite)
    def test_bounds_property(self, values):
        tol = 1e-6 * max(1.0, max(abs(v) for v in values))
        avg = reduce_values("AVG", values)
        assert reduce_values("MIN", values) - tol <= avg <= reduce_values("MAX", values) + tol


class TestPreprocess:
    def test_identity_requires_scalar(self):
        assert preprocess_value(None, 3.5) == 3.5
        with pytest.raises(SensorError):
            preprocess_value(None, [1, 2])

    def test_norm_of_vector(self):
        assert preprocess_value("NORM", [3.0, 4.0]) == pytest.approx(5.0)

    def test_mean_max_min_sum(self):
        v = [1.0, 2.0, 3.0]
        assert preprocess_value("MEAN", v) == 2.0
        assert preprocess_value("MAX", v) == 3.0
        assert preprocess_value("MIN", v) == 1.0
        assert preprocess_value("SUM", v) == 6.0

    def test_absmax(self):
        assert preprocess_value("ABSMAX", [-7.0, 3.0]) == 7.0

    def test_matrix_input(self):
        m = np.arange(6, dtype=float).reshape(2, 3)
        assert preprocess_value("SUM", m) == 15.0

    def test_unknown_op(self):
        with pytest.raises(SensorError):
            preprocess_value("WAT", [1.0])

    def test_empty_value(self):
        with pytest.raises(SensorError):
            preprocess_value("MEAN", [])


class TestGroupBy:
    def sample(self, task="Iso", node="n3", wf="GS"):
        return Sample(time=0.0, workflow_id=wf, task=task, rank=0, node_id=node,
                      var="x", value=1.0)

    def test_all_paper_granularities(self):
        s = self.sample()
        assert group_key("task", s) == ("Iso",)
        assert group_key("node-task", s) == ("Iso", "n3")
        assert group_key("workflow", s) == ("GS",)
        assert group_key("node-workflow", s) == ("GS", "n3")

    def test_unknown_granularity(self):
        with pytest.raises(SensorError):
            group_key("galaxy", self.sample())

    def test_task_of_key(self):
        assert task_of_key("task", ("Iso",)) == "Iso"
        assert task_of_key("node-task", ("Iso", "n1")) == "Iso"
        assert task_of_key("workflow", ("GS",)) == ""

    def test_groupby_spec_validates(self):
        with pytest.raises(ValueError):
            GroupBySpec("galaxy")


class TestJoinSpec:
    def test_div(self):
        assert JoinSpec("cyc", "DIV").apply(10.0, 4.0) == 2.5

    def test_div_by_zero(self):
        with pytest.raises(SensorError):
            JoinSpec("cyc", "DIV").apply(1.0, 0.0)

    def test_other_ops(self):
        assert JoinSpec("x", "MUL").apply(3.0, 4.0) == 12.0
        assert JoinSpec("x", "ADD").apply(3.0, 4.0) == 7.0
        assert JoinSpec("x", "SUB").apply(3.0, 4.0) == -1.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            JoinSpec("x", "POW")
