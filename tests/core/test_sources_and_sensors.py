"""Tests for source adapters and bound sensor instances."""

import pytest

from repro.cluster.machine import MachinePerf
from repro.core.sensors import (
    DiskScanSource,
    ErrorStatusSource,
    FileReadSource,
    GroupBySpec,
    SensorInstance,
    SensorSpec,
    StreamSource,
    make_source,
)
from repro.errors import SensorError
from repro.staging import DataHub, Sample


def mk_sample(task="T", rank=0, node="n0", var="looptime", value=1.0, step=0, time=0.0):
    return Sample(time=time, workflow_id="W", task=task, rank=rank, node_id=node,
                  var=var, value=value, step=step)


class TestStreamSource:
    def test_reads_profiler_samples(self):
        hub = DataHub()
        ch = hub.channel("tau-W-T")
        src = StreamSource(hub, "tau-W-T", "W", "T", var="looptime")
        assert src.poll(0.0) == []  # connects, sees nothing yet
        ch.put([mk_sample(value=2.0), mk_sample(rank=1, value=3.0)], 1.0)
        out = src.poll(1.5)
        assert [s.value for s in out] == [2.0, 3.0]
        assert src.poll(2.0) == []  # consumed

    def test_var_filter(self):
        hub = DataHub()
        ch = hub.channel("c")
        src = StreamSource(hub, "c", "W", "T", var="looptime")
        src.poll(0.0)
        ch.put([mk_sample(var="looptime"), mk_sample(var="rss")], 1.0)
        assert [s.var for s in src.poll(1.0)] == ["looptime"]

    def test_dict_payload_wrapped(self):
        hub = DataHub()
        ch = hub.channel("data-W-T")
        src = StreamSource(hub, "data-W-T", "W", "T")
        src.poll(0.0)
        ch.put({"nsteps": 7}, 2.0)
        out = src.poll(2.0)
        assert len(out) == 1 and out[0].var == "nsteps" and out[0].value == 7

    def test_reconnect_skips_staged_backlog(self):
        hub = DataHub()
        ch = hub.channel("c")
        src = StreamSource(hub, "c", "W", "T")
        src.poll(0.0)
        src.reconnect()
        ch2_data = [mk_sample(value=9.0)]
        ch.put(ch2_data, 5.0)
        assert [s.value for s in src.poll(5.0)] == [9.0]

    def test_stream_lag_larger_than_file_lag(self):
        perf = MachinePerf()
        hub = DataHub()
        stream = StreamSource(hub, "c", "W", "T")
        disk = DiskScanSource(hub.filesystem, "x.*", "W", "T")
        assert stream.read_lag(perf) > disk.read_lag(perf)


class TestDiskScanSource:
    def test_new_files_become_samples(self):
        hub = DataHub()
        fs = hub.filesystem
        src = DiskScanSource(fs, "out/T.out.*", "W", "T")
        fs.write("out/T.out.0", {"step": 0}, mtime=1.0, step=0)
        fs.write("out/T.out.1", {"step": 1}, mtime=2.0, step=1)
        out = src.poll(2.0)
        assert [s.value for s in out] == [1.0, 2.0]  # steps completed
        assert src.poll(3.0) == []  # already seen
        fs.write("out/T.out.2", {"step": 2}, mtime=3.0, step=2)
        assert [s.value for s in src.poll(3.0)] == [3.0]

    def test_value_from_data_dict(self):
        hub = DataHub()
        hub.filesystem.write("f.0", {"step": 4}, mtime=1.0)
        src = DiskScanSource(hub.filesystem, "f.*", "W", "T")
        assert src.poll(1.0)[0].value == 5.0

    def test_custom_value_fn(self):
        hub = DataHub()
        hub.filesystem.write("f.0", "blob", mtime=1.0, size=10)
        src = DiskScanSource(hub.filesystem, "f.*", "W", "T", var="size",
                             value_fn=lambda e: e.size)
        assert src.poll(1.0)[0].value == 10.0

    def test_unextractable_value_raises(self):
        hub = DataHub()
        hub.filesystem.write("f.0", "blob", mtime=1.0)
        src = DiskScanSource(hub.filesystem, "f.*", "W", "T")
        with pytest.raises(SensorError):
            src.poll(1.0)


class TestFileReadSource:
    def test_reads_on_mtime_change_only(self):
        hub = DataHub()
        fs = hub.filesystem
        src = FileReadSource(fs, "progress", "W", "T", var="step")
        assert src.poll(0.0) == []  # file absent
        fs.write("progress", {"step": 10}, mtime=1.0)
        assert src.poll(1.0)[0].value == 10
        assert src.poll(2.0) == []  # unchanged
        fs.write("progress", {"step": 11}, mtime=3.0)
        assert src.poll(3.0)[0].value == 11

    def test_missing_variable_raises(self):
        hub = DataHub()
        hub.filesystem.write("f", {"other": 1}, mtime=1.0)
        src = FileReadSource(hub.filesystem, "f", "W", "T", var="step")
        with pytest.raises(SensorError):
            src.poll(1.0)


class TestErrorStatusSource:
    def test_new_records_only(self):
        hub = DataHub()
        fs = hub.filesystem
        src = ErrorStatusSource(fs, "status/W/T", "W", "T")
        assert src.poll(0.0) == []
        fs.append_record("status/W/T", {"code": 0, "time": 1.0, "rank": 0}, mtime=1.0)
        out = src.poll(1.0)
        assert out[0].value == 0.0 and out[0].var == "exit_code"
        fs.append_record("status/W/T", {"code": 137, "time": 5.0, "rank": 0}, mtime=5.0)
        out = src.poll(5.0)
        assert [s.value for s in out] == [137.0]


class TestMakeSource:
    def test_all_source_types(self):
        hub = DataHub()
        assert isinstance(make_source("TAUADIOS2", hub, "W", "T"), StreamSource)
        assert isinstance(make_source("ADIOS2", hub, "W", "T"), StreamSource)
        assert isinstance(make_source("DISKSCAN", hub, "W", "T", info_source="x.*"), DiskScanSource)
        assert isinstance(make_source("FILEREAD", hub, "W", "T", info_source="f", var="v"), FileReadSource)
        assert isinstance(make_source("ERRORSTATUS", hub, "W", "T"), ErrorStatusSource)

    def test_conventions(self):
        hub = DataHub()
        s = make_source("TAUADIOS2", hub, "W", "T")
        assert s.channel_name == "tau-W-T"
        s = make_source("ADIOS2", hub, "W", "T")
        assert s.channel_name == "data-W-T"
        e = make_source("ERRORSTATUS", hub, "W", "T")
        assert e.path == "status/W/T"

    def test_diskscan_requires_pattern(self):
        with pytest.raises(SensorError):
            make_source("DISKSCAN", DataHub(), "W", "T")

    def test_unknown_type(self):
        with pytest.raises(SensorError):
            make_source("CARRIERPIGEON", DataHub(), "W", "T")


class TestSensorInstance:
    def make(self, group_by, preprocess=None):
        hub = DataHub()
        ch = hub.channel("tau-W-T")
        spec = SensorSpec("PACE", "TAUADIOS2", tuple(group_by), preprocess=preprocess)
        src = StreamSource(hub, "tau-W-T", "W", "T", var="looptime")
        inst = SensorInstance(spec=spec, workflow_id="W", task="T", source=src)
        inst.poll(0.0)  # connect
        return hub, ch, inst

    def test_task_granularity_max_over_ranks(self):
        _hub, ch, inst = self.make([GroupBySpec("task", "MAX")])
        ch.put([mk_sample(rank=0, value=2.0), mk_sample(rank=1, value=5.0)], 1.0)
        ups = inst.poll(1.0)
        assert len(ups) == 1
        u = ups[0]
        assert u.key == ("T",) and u.value == 5.0 and u.granularity == "task"
        assert u.task == "T"

    def test_node_task_granularity_splits_by_node(self):
        _hub, ch, inst = self.make([GroupBySpec("node-task", "AVG")])
        ch.put([
            mk_sample(rank=0, node="n0", value=2.0),
            mk_sample(rank=1, node="n0", value=4.0),
            mk_sample(rank=2, node="n1", value=10.0),
        ], 1.0)
        ups = inst.poll(1.0)
        assert {(u.key, u.value) for u in ups} == {(("T", "n0"), 3.0), (("T", "n1"), 10.0)}

    def test_multiple_granularities_emit_parallel_streams(self):
        _hub, ch, inst = self.make([GroupBySpec("task", "MAX"), GroupBySpec("workflow", "MAX")])
        ch.put([mk_sample(value=7.0)], 1.0)
        ups = inst.poll(1.0)
        grans = {u.granularity for u in ups}
        assert grans == {"task", "workflow"}

    def test_distinct_steps_stay_distinct(self):
        """EQ policies need every progress value, not just the batch max."""
        _hub, ch, inst = self.make([GroupBySpec("task", "MAX")])
        ch.put([mk_sample(value=1.0, step=0, time=1.0)], 1.0)
        ch.put([mk_sample(value=2.0, step=1, time=2.0)], 2.0)
        ups = inst.poll(2.5)
        assert [u.value for u in ups] == [1.0, 2.0]

    def test_preprocess_applied_before_reduction(self):
        _hub, ch, inst = self.make([GroupBySpec("task", "MAX")], preprocess="NORM")
        ch.put([mk_sample(value=[3.0, 4.0])], 1.0)
        assert inst.poll(1.0)[0].value == pytest.approx(5.0)

    def test_empty_poll_no_updates(self):
        _hub, _ch, inst = self.make([GroupBySpec("task", "MAX")])
        assert inst.poll(1.0) == []

    def test_spec_validation(self):
        with pytest.raises(SensorError):
            SensorSpec("s", "ADIOS2", ())
        with pytest.raises(SensorError):
            SensorSpec("s", "ADIOS2", (GroupBySpec("task"), GroupBySpec("task", "AVG")))
