"""Tests for the Arbitration stage (Algorithm 1)."""


from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.core import ActionType, ArbitrationRules, ArbitrationStage, SuggestedAction
from repro.core.actions import actions_conflict
from repro.sim import SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec


def suggestion(policy="P", action=ActionType.ADDCPU, target="B", assess="", params=None, t=0.0):
    return SuggestedAction(
        policy_id=policy, action=action, target=target, workflow_id="W",
        assess_task=assess, params=params or {}, trigger_time=t,
    )


def make_world(
    tasks=(("A", 10, True), ("B", 10, True), ("C", 10, True)),
    deps=(),
    num_nodes=1,
    cores_per_node=42,
    priorities=None,
    policy_priorities=None,
    warmup=0.0,
    settle=0.0,
    core_quota=None,
):
    """A running workflow on one node; tasks run long unless stopped."""
    eng = SimEngine()
    m = summit(num_nodes, cores_per_node=cores_per_node)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    specs = [
        TaskSpec(name, lambda: IterativeApp(ConstantModel(4.0), total_steps=10_000),
                 nprocs=n, autostart=auto)
        for name, n, auto in tasks
    ]
    wf = WorkflowSpec("W", specs, list(deps))
    sav = Savanna(eng, wf, alloc)
    rules = ArbitrationRules.from_workflow(
        wf, task_priorities=priorities or {}, policy_priorities=policy_priorities or {}
    )
    arb = ArbitrationStage(
        sav, rules, warmup=warmup, settle=settle, core_quota=core_quota
    )
    arb.begin(0.0)
    sav.launch_workflow()
    eng.run(until=5.0)  # everyone running
    return eng, sav, arb


class TestGating:
    def test_warmup_discards(self):
        eng, sav, arb = make_world(warmup=120.0)
        assert arb.arbitrate([suggestion()], now=eng.now) is None
        assert arb.discarded_batches == 1

    def test_settle_after_execution(self):
        eng, sav, arb = make_world(settle=60.0)
        plan = arb.arbitrate([suggestion(params={"adjust-by": 2})], now=5.0)
        assert plan is not None
        arb.on_plan_executed(plan, now=10.0)
        assert arb.gated(50.0)
        assert not arb.gated(70.1)

    def test_in_flight_blocks_new_plans(self):
        eng, sav, arb = make_world()
        plan = arb.arbitrate([suggestion(params={"adjust-by": 2})], now=5.0)
        assert plan is not None
        assert arb.arbitrate([suggestion(params={"adjust-by": 2}, target="C")], now=6.0) is None
        arb.on_plan_executed(plan, now=7.0)
        assert arb.arbitrate([suggestion(params={"adjust-by": 2}, target="C")], now=8.0) is not None


class TestConflictResolution:
    def test_conflicting_pairs(self):
        assert actions_conflict(ActionType.STOP, ActionType.START)
        assert actions_conflict(ActionType.RMCPU, ActionType.ADDCPU)
        assert actions_conflict(ActionType.STOP, ActionType.RESTART)
        assert not actions_conflict(ActionType.ADDCPU, ActionType.ADDCPU)

    def test_policy_priority_wins(self):
        eng, sav, arb = make_world(policy_priorities={"HIGH": 0, "LOW": 1})
        plan = arb.arbitrate(
            [
                suggestion(policy="LOW", action=ActionType.ADDCPU, target="B", params={"adjust-by": 2}),
                suggestion(policy="HIGH", action=ActionType.STOP, target="B"),
            ],
            now=5.0,
        )
        ops = plan.ordered_ops()
        assert [o.op for o in ops] == ["stop_task"]
        assert any("LOW" in d for d in plan.discarded) or "HIGH:STOP:B" in plan.accepted

    def test_duplicate_suggestions_deduped(self):
        eng, sav, arb = make_world()
        s = suggestion(params={"adjust-by": 2})
        plan = arb.arbitrate([s, s, s], now=5.0)
        starts = [o for o in plan.ops if o.op == "start_task"]
        assert len(starts) == 1


class TestNoopDropping:
    def test_start_of_running_task_dropped(self):
        eng, sav, arb = make_world()
        assert arb.arbitrate([suggestion(action=ActionType.START, target="B")], now=5.0) is None

    def test_stop_of_inactive_task_dropped_and_purges_queue(self):
        eng, sav, arb = make_world(tasks=(("A", 40, True), ("B", 40, False)))
        # B cannot start (A holds 40 of 42): it parks in the waiting queue.
        assert arb.arbitrate([suggestion(action=ActionType.START, target="B")], now=5.0) is None
        assert "B" in arb.waiting
        assert arb.arbitrate([suggestion(action=ActionType.STOP, target="B")], now=6.0) is None
        assert "B" not in arb.waiting

    def test_addcpu_on_dead_task_dropped(self):
        eng, sav, arb = make_world(tasks=(("A", 10, True), ("B", 10, False)))
        assert arb.arbitrate([suggestion(action=ActionType.ADDCPU, target="B")], now=5.0) is None


class TestResourceProtocol:
    def test_addcpu_from_free_pool(self):
        eng, sav, arb = make_world()  # 30 of 42 used
        plan = arb.arbitrate([suggestion(params={"adjust-by": 8})], now=5.0)
        ops = plan.ordered_ops()
        assert [o.op for o in ops] == ["stop_task", "start_task"]
        assert ops[1].resources.total_cores == 18
        assert plan.victims == []

    def test_victim_selected_by_priority(self):
        eng, sav, arb = make_world(
            tasks=(("A", 14, True), ("B", 14, True), ("C", 14, True)),  # node full
            priorities={"A": 0, "B": 1, "C": 2},
        )
        plan = arb.arbitrate([suggestion(target="B", params={"adjust-by": 10})], now=5.0)
        assert plan.victims == ["C"]
        assert "C" in arb.waiting
        ops = plan.ordered_ops()
        assert ops[0].op == "stop_task" and ops[0].task == "C"
        start = [o for o in ops if o.op == "start_task"][0]
        assert start.task == "B" and start.resources.total_cores == 24

    def test_no_victim_with_higher_priority_only(self):
        """A task never victimizes equal or higher priority tasks."""
        eng, sav, arb = make_world(
            tasks=(("A", 21, True), ("B", 21, True)),
            priorities={"A": 0, "B": 0},
        )
        plan = arb.arbitrate([suggestion(target="B", params={"adjust-by": 10})], now=5.0)
        assert plan is None  # growth discarded, no victims, nothing to do

    def test_rmcpu_shrinks(self):
        eng, sav, arb = make_world()
        plan = arb.arbitrate(
            [suggestion(action=ActionType.RMCPU, target="B", params={"adjust-by": 4})], now=5.0
        )
        start = [o for o in plan.ordered_ops() if o.op == "start_task"][0]
        assert start.resources.total_cores == 6

    def test_rmcpu_floors_at_one(self):
        eng, sav, arb = make_world()
        plan = arb.arbitrate(
            [suggestion(action=ActionType.RMCPU, target="B", params={"adjust-by": 999})], now=5.0
        )
        start = [o for o in plan.ordered_ops() if o.op == "start_task"][0]
        assert start.resources.total_cores == 1

    def test_restart_of_failed_task_uses_spec_size(self):
        eng, sav, arb = make_world(tasks=(("A", 10, True),))
        # Kill A out-of-band, then RESTART it.
        inst = sav.record("A").current
        inst.proc.interrupt(__import__("repro.apps.base", fromlist=["Signal"]).Signal.kill(137))
        eng.run(until=6.0)
        assert not sav.record("A").is_active
        plan = arb.arbitrate([suggestion(action=ActionType.RESTART, target="A")], now=7.0)
        start = [o for o in plan.ordered_ops() if o.op == "start_task"][0]
        assert start.resources.total_cores == 10

    def test_plan_never_exceeds_allocation(self):
        eng, sav, arb = make_world(
            tasks=(("A", 14, True), ("B", 14, True), ("C", 14, True)),
            priorities={"A": 0, "B": 1, "C": 2},
        )
        plan = arb.arbitrate(
            [
                suggestion(target="A", params={"adjust-by": 6}),
                suggestion(target="B", params={"adjust-by": 6}),
                suggestion(target="C", params={"adjust-by": 6}),
            ],
            now=5.0,
        )
        total = sum(rs.total_cores for rs in plan.reassignment.values())
        assert total <= sav.allocation.total_cores

    def test_ordering_releases_before_acquires(self):
        eng, sav, arb = make_world(
            tasks=(("A", 14, True), ("B", 14, True), ("C", 14, True)),
            priorities={"A": 0, "B": 1, "C": 2},
        )
        plan = arb.arbitrate([suggestion(target="B", params={"adjust-by": 10})], now=5.0)
        kinds = [o.op for o in plan.ordered_ops()]
        assert kinds == sorted(kinds, key=lambda k: 0 if k == "stop_task" else 1)


class TestDependentActions:
    def make_chain(self):
        return make_world(
            tasks=(("Sim", 10, True), ("Iso", 10, True), ("Render", 10, True)),
            deps=(
                DependencySpec("Iso", "Sim", CouplingType.TIGHT),
                DependencySpec("Render", "Iso", CouplingType.TIGHT),
            ),
            priorities={"Sim": 0, "Iso": 1, "Render": 2},
        )

    def test_addcpu_restarts_tight_dependents(self):
        eng, sav, arb = self.make_chain()
        plan = arb.arbitrate([suggestion(target="Iso", params={"adjust-by": 4})], now=5.0)
        by_task = {(o.task, o.op) for o in plan.ops}
        assert ("Render", "stop_task") in by_task
        assert ("Render", "start_task") in by_task
        render_start = [o for o in plan.ops if o.task == "Render" and o.op == "start_task"][0]
        assert render_start.reason == "dependency"
        assert render_start.resources.total_cores == 10  # same size

    def test_dependency_restart_supersedes_dependent_resize(self):
        eng, sav, arb = self.make_chain()
        plan = arb.arbitrate(
            [
                suggestion(target="Iso", params={"adjust-by": 4}),
                suggestion(target="Render", params={"adjust-by": 4}, policy="P2"),
            ],
            now=5.0,
        )
        render_start = [o for o in plan.ops if o.task == "Render" and o.op == "start_task"][0]
        assert render_start.resources.total_cores == 10  # restarted, not grown
        assert any("dependency restart" in d for d in plan.discarded)

    def test_stop_propagates_to_transitive_dependents(self):
        eng, sav, arb = self.make_chain()
        plan = arb.arbitrate([suggestion(action=ActionType.STOP, target="Sim")], now=5.0)
        restarted = {o.task for o in plan.ops if o.op == "start_task"}
        # Iso and Render are restarted to re-establish connections.
        assert restarted == {"Iso", "Render"}

    def test_untouched_parent_leaves_dependents_alone(self):
        eng, sav, arb = self.make_chain()
        plan = arb.arbitrate([suggestion(action=ActionType.ADDCPU, target="Render",
                                         params={"adjust-by": 2})], now=5.0)
        assert {o.task for o in plan.ops} == {"Render"}


class TestWaitingQueue:
    def test_unsatisfiable_start_parks(self):
        eng, sav, arb = make_world(tasks=(("A", 40, True), ("B", 40, False)),
                                   priorities={"A": 0, "B": 0})
        assert arb.arbitrate([suggestion(action=ActionType.START, target="B")], now=5.0) is None
        assert "B" in arb.waiting

    def test_waiting_task_starts_when_resources_free(self):
        eng, sav, arb = make_world(tasks=(("A", 40, True), ("B", 40, False)),
                                   priorities={"A": 0, "B": 0})
        arb.arbitrate([suggestion(action=ActionType.START, target="B",
                                  params={"restart-script": "r.sh"})], now=5.0)
        # A exits; resources free; next round drains the queue.
        def stop_a():
            yield from sav.stop_task("A", graceful=False)
        eng.process(stop_a())
        eng.run(until=10.0)
        plan = arb.arbitrate([], now=10.0)
        assert plan is not None
        start = plan.ordered_ops()[0]
        assert start.task == "B" and start.op == "start_task"
        assert start.user_script == "r.sh"
        assert "B" not in arb.waiting

    def test_waiting_has_priority_over_fresh_equal_priority_start(self):
        """The XGC alternation: the queued code wins over the fresh START."""
        eng, sav, arb = make_world(
            tasks=(("RUN", 40, True), ("A", 40, False), ("B", 40, False)),
            priorities={"RUN": 0, "A": 0, "B": 0},
        )
        # RUN holds the node; both starts park — B first (queue seniority).
        assert arb.arbitrate([suggestion(action=ActionType.START, target="B")], now=5.0) is None
        assert arb.arbitrate([suggestion(action=ActionType.START, target="A")], now=6.0) is None
        assert set(arb.waiting) == {"A", "B"}
        def stop_run():
            yield from sav.stop_task("RUN", graceful=False)
        eng.process(stop_run())
        eng.run(until=10.0)
        plan = arb.arbitrate([suggestion(action=ActionType.START, target="A")], now=10.0)
        started = [o.task for o in plan.ordered_ops() if o.op == "start_task"]
        assert started == ["B"]
        assert "A" in arb.waiting  # A stays parked behind B

    def test_victims_enter_waiting_queue(self):
        eng, sav, arb = make_world(
            tasks=(("A", 14, True), ("B", 14, True), ("C", 14, True)),
            priorities={"A": 0, "B": 1, "C": 2},
        )
        plan = arb.arbitrate([suggestion(target="B", params={"adjust-by": 10})], now=5.0)
        arb.on_plan_executed(plan, now=6.0)
        assert "C" in arb.waiting

    def test_switch_stops_assessed_and_starts_target(self):
        eng, sav, arb = make_world(tasks=(("A", 40, True), ("B", 40, False)),
                                   priorities={"A": 0, "B": 0})
        plan = arb.arbitrate(
            [suggestion(action=ActionType.SWITCH, target="B", assess="A")], now=5.0
        )
        ops = plan.ordered_ops()
        assert (ops[0].op, ops[0].task) == ("stop_task", "A")
        assert (ops[1].op, ops[1].task) == ("start_task", "B")


class TestTenancyQuota:
    """core_quota: the machine has room, but the tenant's lease does not."""

    def test_start_beyond_quota_parks(self):
        # A holds 10 of the node's 42 cores; quota 15 blocks a second
        # 10-core start even though the machine itself has room.
        eng, sav, arb = make_world(
            tasks=(("A", 10, True), ("B", 10, False)), core_quota=15
        )
        assert arb.arbitrate([suggestion(action=ActionType.START, target="B")], now=5.0) is None
        assert "B" in arb.waiting

    def test_start_within_quota_proceeds(self):
        eng, sav, arb = make_world(
            tasks=(("A", 10, True), ("B", 10, False)), core_quota=20
        )
        plan = arb.arbitrate([suggestion(action=ActionType.START, target="B")], now=5.0)
        assert plan is not None
        assert [o.task for o in plan.ordered_ops() if o.op == "start_task"] == ["B"]

    def test_growth_beyond_quota_discarded(self):
        eng, sav, arb = make_world(tasks=(("A", 10, True),), core_quota=15)
        plan = arb.arbitrate([suggestion(target="A", params={"adjust-by": 10})], now=5.0)
        assert plan is None  # growth is discarded, not queued
        assert "A" not in arb.waiting

    def test_growth_within_quota_proceeds(self):
        eng, sav, arb = make_world(tasks=(("A", 10, True),), core_quota=25)
        plan = arb.arbitrate([suggestion(target="A", params={"adjust-by": 10})], now=5.0)
        assert plan is not None
        assert plan.reassignment["A"].total_cores == 20

    def test_no_quota_means_no_gate(self):
        eng, sav, arb = make_world(tasks=(("A", 10, True), ("B", 10, False)))
        plan = arb.arbitrate([suggestion(action=ActionType.START, target="B")], now=5.0)
        assert plan is not None

    def test_waiting_task_drains_once_quota_frees(self):
        # B parks behind the quota; stopping A frees A's 10 held cores
        # and the next batch drains B from the waiting queue.
        eng, sav, arb = make_world(
            tasks=(("A", 10, True), ("B", 10, False)), core_quota=15
        )
        assert arb.arbitrate([suggestion(action=ActionType.START, target="B")], now=5.0) is None
        plan = arb.arbitrate([suggestion(action=ActionType.STOP, target="A")], now=6.0)
        assert plan is not None
        ops = plan.ordered_ops()
        assert [o.op for o in ops] == ["stop_task", "start_task"]
        assert [o.task for o in ops] == ["A", "B"]
        assert "B" not in arb.waiting
