"""Tests for the paper-vs-measured report generator."""

import pytest

from repro.experiments.report import Report, build_report, format_report


class TestReportContainer:
    def test_add_and_flags(self):
        r = Report()
        r.add("e", "m", "q", "p", "v", True)
        r.add("e", "m", "q2", "p", "v", False)
        assert not r.all_ok
        assert len(r.failures()) == 1

    def test_format_alignment_and_status(self):
        r = Report()
        r.add("exp", "summit", "quantity", "paper-claim", "measured-value", True)
        text = format_report(r)
        assert "EXPERIMENT" in text and "✓" in text
        assert "ALL SHAPES REPRODUCED" in text

    def test_format_reports_failures(self):
        r = Report()
        r.add("exp", "summit", "q", "p", "v", False)
        assert "1 COMPARISONS OFF" in format_report(r)


class TestBuildReport:
    @pytest.fixture(scope="class")
    def summit_report(self):
        return build_report(machines=("summit",))

    def test_all_summit_shapes_reproduce(self, summit_report):
        assert summit_report.all_ok, format_report(summit_report)

    def test_covers_all_experiments(self, summit_report):
        experiments = {r.experiment for r in summit_report.rows}
        assert experiments == {"xgc (§4.3)", "gray-scott (§4.4)", "lammps (§4.5)", "cost (§4.6)"}

    def test_checkpoint_row_present(self, summit_report):
        rows = [r for r in summit_report.rows if "checkpoint" in r.quantity]
        assert rows and rows[0].measured == "412"
