"""Committed scenario fingerprints: the bit-identity regression oracle.

Every performance change to the discrete-event core (slot-indexed event
heap, batched envelope delivery, the cached JSON codec, memoized
placement feasibility, vectorized step models) is sold on one promise:
*zero* observable behaviour change.  These hashes pin that promise to
the repository.  ``scenario_fingerprint`` digests the full scenario
trace — task events, plans, metric history — so a single reordered
event, dropped envelope, or float that differs in its last bit changes
the hash.

If a test here fails, the change under review altered simulation
behaviour.  That is only acceptable for an *intentional* semantic
change (new feature, bug fix in the model); in that case regenerate the
constants below and say so in the commit message.  A performance PR
must never need to touch them.
"""

import pytest

from repro.experiments.grayscott_scenario import run_gray_scott_experiment
from repro.experiments.lammps_scenario import run_lammps_experiment
from repro.experiments.xgc_scenario import run_xgc_experiment
from repro.journal.resume import scenario_fingerprint

CHAOS_XML = """
  <resilience>
    <network latency="0.2" jitter="0.1" drop-prob="0.10" dup-prob="0.05"
             reorder-prob="0.05" ack-timeout="2.0" max-retransmits="5"
             ingress-capacity="64" drain-per-tick="32"
             stale-after="20.0" degrade-after="3" recover-after="3">
      <partition start="600.0" duration="30.0"/>
    </network>
  </resilience>"""

# Regenerate with:
#   PYTHONPATH=src python -c "
#   from tests.experiments.test_fingerprint_regression import *
#   for name, run in SCENARIOS.items(): print(name, scenario_fingerprint(run()))"
EXPECTED = {
    "xgc": "b62635e327b28a08e30beb0d565bf975791f1322be57d09e1d90a17f8f786071",
    "gray_scott": "cd686eeb1f267df778bc5e7e6448194f982659267f44d56a36c1215b27e9c7ef",
    "lammps": "99dcceda543fc294100da991d9e68163ce15a8d65bad53456433e7e55372c8f1",
    "fabric_faults": "13f01de06fbbfb12c7e13c8271f4074e4e3d50f14a19bc4bd6ad974517edaddf",
}

SCENARIOS = {
    "xgc": lambda: run_xgc_experiment(seed=1),
    "gray_scott": lambda: run_gray_scott_experiment(seed=1),
    "lammps": lambda: run_lammps_experiment(seed=1),
    "fabric_faults": lambda: run_gray_scott_experiment(seed=3, xml_extra=CHAOS_XML),
}


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_scenario_fingerprint_is_bit_identical(name):
    assert scenario_fingerprint(SCENARIOS[name]()) == EXPECTED[name]
