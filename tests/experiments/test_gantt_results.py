"""Tests for Gantt rendering and the scenario result container."""


from repro.experiments.gantt import render_gantt, timeline_events
from repro.experiments.results import ScenarioResult
from repro.sim import TraceRecorder


def make_trace():
    tr = TraceRecorder()
    tr.add_span("XGC1", "XGC1#0", 0.0, 50.0)
    tr.add_span("XGCA", "XGCA#0", 50.0, 75.0)
    tr.add_span("XGC1", "XGC1#1", 75.0, 100.0)
    tr.add_span("DYFLOW", "plan-0", 49.0, 51.0, category="adjust")
    tr.point(50.0, "start:XGCA", category="plan")
    return tr


class TestRenderGantt:
    def test_empty_trace(self):
        assert render_gantt(TraceRecorder()) == "(empty trace)"

    def test_tracks_rendered_as_rows(self):
        out = render_gantt(make_trace(), width=50)
        lines = out.splitlines()
        assert any(line.startswith("XGC1") for line in lines)
        assert any(line.startswith("XGCA") for line in lines)

    def test_bars_cover_the_right_halves(self):
        out = render_gantt(make_trace(), width=100)
        xgc1 = next(ln for ln in out.splitlines() if ln.startswith("XGC1"))
        bar = xgc1.split("|")[1]
        # Runs 0-50 and 75-100: the first half is filled, 55-70 is not.
        assert bar[10] == "=" and bar[40] == "="
        assert bar[60] == " "
        assert bar[85] == "="

    def test_adjust_row_marks_response_windows(self):
        out = render_gantt(make_trace(), width=100)
        dyflow = next(ln for ln in out.splitlines() if ln.startswith("DYFLOW"))
        assert "!" in dyflow

    def test_end_time_override(self):
        out = render_gantt(make_trace(), width=50, end_time=200.0)
        assert "0 .. 200s" in out

    def test_timeline_events(self):
        events = timeline_events(make_trace(), category="plan")
        assert len(events) == 1 and "start:XGCA" in events[0]


class TestScenarioResult:
    def make_result(self):
        return ScenarioResult(
            name="t", machine="summit", use_dyflow=True, makespan=100.0,
            trace=make_trace(),
        )

    def test_task_runs(self):
        res = self.make_result()
        assert res.task_runs("XGC1") == [(0.0, 50.0), (75.0, 100.0)]
        assert res.task_runs("GHOST") == []

    def test_response_times_empty_without_plans(self):
        assert self.make_result().response_times() == []
