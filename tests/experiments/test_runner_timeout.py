"""The max_time cap error must carry per-task progress evidence."""

import pytest

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.errors import ReproError
from repro.experiments.runner import execute_scenario
from repro.sim import SimEngine
from repro.wms import Savanna, TaskSpec, WorkflowSpec


def test_timeout_error_names_hung_tasks_with_progress(tmp_path):
    eng = SimEngine()
    m = summit(4)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    tasks = [
        TaskSpec("fast", lambda: IterativeApp(ConstantModel(1.0), total_steps=1),
                 nprocs=2),
        TaskSpec("hung", lambda: IterativeApp(ConstantModel(5.0), total_steps=1000),
                 nprocs=2),
    ]
    sav = Savanna(eng, WorkflowSpec("W", tasks, []), alloc)
    with pytest.raises(ReproError) as exc:
        execute_scenario(eng, sav, None, max_time=20.0)
    msg = str(exc.value)
    # The cap and the culprit are both in the message...
    assert "hit the 20.0s cap" in msg
    assert "hung (1 instance(s), last progress t=" in msg
    # ...and the finished task is not blamed.
    assert "fast" not in msg


def test_timeout_error_counts_every_incarnation(tmp_path):
    from repro.resilience import ResilienceSpec, RetryPolicy

    eng = SimEngine()
    m = summit(4)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    tasks = [
        TaskSpec("fast", lambda: IterativeApp(ConstantModel(1.0), total_steps=1),
                 nprocs=2),
        TaskSpec("hung", lambda: IterativeApp(ConstantModel(5.0), total_steps=1000),
                 nprocs=2, procs_per_node=1),
    ]
    sav = Savanna(eng, WorkflowSpec("W", tasks, []), alloc)
    sav.configure_resilience(ResilienceSpec(retry=RetryPolicy(max_retries=3)))

    def chaos():
        yield eng.timeout(8.0)
        m.nodes[1].fail()
        sav.handle_node_failure(m.nodes[1].node_id)

    eng.process(chaos())
    with pytest.raises(ReproError) as exc:
        execute_scenario(eng, sav, None, max_time=30.0)
    # The killed-and-retried task reports both incarnations, so the error
    # distinguishes "hung since launch" from "restarting in a loop".
    assert "hung (2 instance(s), last progress t=" in str(exc.value)
