"""The repro.api facade: one import surface for scripts and examples."""

import ast
import importlib
import pathlib

import pytest

import repro
from repro import api

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_all_names_resolve():
    for name in api.__all__:
        assert hasattr(api, name), f"repro.api.__all__ lists missing name {name!r}"


def test_all_is_sorted_unique():
    assert len(api.__all__) == len(set(api.__all__))


def test_star_import_matches_all():
    ns: dict = {}
    exec("from repro.api import *", ns)
    exported = {k for k in ns if not k.startswith("_")}
    assert exported == set(api.__all__)


def test_facade_reachable_from_package_root():
    assert repro.api is api
    assert "api" in repro.__all__
    assert importlib.import_module("repro.api") is api


def test_facade_covers_the_main_entry_points():
    for name in (
        "SimEngine", "Savanna", "WorkflowSpec", "DyflowOrchestrator",
        "ThreadedDyflow", "parse_dyflow_xml", "write_dyflow_xml",
        "configure_orchestrator", "TelemetrySpec", "Tracer",
        "build_tracer", "to_chrome_trace", "ResilienceSpec",
        "run_gray_scott_experiment", "ReproError",
    ):
        assert name in api.__all__, f"facade is missing {name}"


def test_facade_objects_are_the_canonical_ones():
    from repro.runtime.sim_driver import DyflowOrchestrator
    from repro.sim.engine import SimEngine
    from repro.telemetry import TelemetrySpec

    assert api.SimEngine is SimEngine
    assert api.DyflowOrchestrator is DyflowOrchestrator
    assert api.TelemetrySpec is TelemetrySpec


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_import_only_from_repro_api(path):
    """Every example must go through the facade, never submodules."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "repro" or node.module.startswith("repro."):
                assert node.module == "repro.api", (
                    f"{path.name} imports from {node.module}; use repro.api"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                assert not alias.name.startswith("repro"), (
                    f"{path.name} imports {alias.name}; use 'from repro.api import ...'"
                )
