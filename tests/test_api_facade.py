"""The repro.api facade: one import surface for scripts and examples.

Includes the API-surface snapshot: the flat surface below is a frozen
contract — removing or renaming a name is a breaking change and must be
deliberate (update the snapshot in the commit that documents the
break).  The test fails on *any* drift, in either direction, so the
diff always shows exactly what changed.
"""

import ast
import importlib
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro import api

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))

#: The committed flat surface of ``repro.api``.
API_SURFACE = [
    "ANALYSIS_TASKS",
    "ActionPlan",
    "ActionType",
    "Allocation",
    "AmdahlModel",
    "AnomalySpec",
    "AppliedOpsLedger",
    "BatchScheduler",
    "BoundedShedQueue",
    "Campaign",
    "CampaignRunner",
    "CampaignService",
    "ChaosEngine",
    "CheckpointSpec",
    "ConstantModel",
    "CoreProfiler",
    "CouplingType",
    "DegradedModeController",
    "DependencySpec",
    "Diagnostic",
    "DyflowOrchestrator",
    "DyflowSpec",
    "ExecutorSpec",
    "FabricLink",
    "FaultModelSpec",
    "FleetHealthEngine",
    "FleetSpec",
    "GRAY_SCOTT_XML",
    "GrayScottSolver",
    "GroupBySpec",
    "HEALTH_TASK",
    "HealthAlert",
    "HealthEngine",
    "IterativeApp",
    "JoinSpec",
    "Journal",
    "JournalSpec",
    "JournalState",
    "JsonlEventLog",
    "LAMMPS_XML",
    "LinkOverride",
    "LiveTaskSpec",
    "MetricUpdate",
    "MetricsRegistry",
    "NetworkSpec",
    "NullTracer",
    "ObservabilitySpec",
    "PartitionWindow",
    "PolicyApplication",
    "PolicySpec",
    "PowerLawModel",
    "PreflightWarning",
    "ProfileSpec",
    "QuarantineSpec",
    "RampModel",
    "ReproError",
    "ResilienceSpec",
    "RetryPolicy",
    "RngRegistry",
    "RunRecord",
    "RunStore",
    "RuntimeOptions",
    "Savanna",
    "ScenarioResult",
    "SensorSpec",
    "Severity",
    "SimEngine",
    "SloSpec",
    "SpanView",
    "SuggestedAction",
    "SupervisedExecutor",
    "Sweep",
    "TaskSpec",
    "TaskState",
    "TelemetrySpec",
    "TenantCell",
    "TenantSpec",
    "TenantsSpec",
    "ThreadedDyflow",
    "TraceSpan",
    "Tracer",
    "VectorizedStepModel",
    "VerificationError",
    "WatchStream",
    "WatchdogSpec",
    "WorkflowSpec",
    "XGC_XML",
    "analyze_dataflow",
    "bottlenecks",
    "build_report",
    "build_tracer",
    "configure_orchestrator",
    "critical_path",
    "deepthought2",
    "fix_xml_text",
    "format_report",
    "isosurface_cell_count",
    "lint_xml_text",
    "load_record",
    "parse_dyflow_xml",
    "parse_openmetrics",
    "read_journal",
    "read_watch_stream",
    "render_gantt",
    "render_labeled_openmetrics",
    "render_markdown",
    "render_openmetrics",
    "render_sarif",
    "report_from_jsonl",
    "report_from_run",
    "run_gray_scott_experiment",
    "run_lammps_experiment",
    "run_preflight",
    "run_selflint",
    "run_xgc_experiment",
    "scenario_fingerprint",
    "statepoint_id",
    "summit",
    "to_chrome_trace",
    "utilization_from_events",
    "utilization_from_launcher",
    "verify_spec",
    "write_chrome_trace",
    "write_dyflow_xml",
    "write_openmetrics",
    "write_report",
]

#: Sub-facade -> names it must expose, in order.
SUBFACADES = {
    "runtime": [
        "DyflowOrchestrator", "ThreadedDyflow", "LiveTaskSpec",
        "RuntimeOptions", "SimEngine", "RngRegistry", "Savanna",
        "DyflowSpec", "configure_orchestrator", "parse_dyflow_xml",
        "write_dyflow_xml",
    ],
    "telemetry": [
        "TelemetrySpec", "Tracer", "NullTracer", "TraceSpan",
        "MetricsRegistry", "JsonlEventLog", "build_tracer",
        "to_chrome_trace", "write_chrome_trace",
    ],
    "fault": [
        "ResilienceSpec", "RetryPolicy", "WatchdogSpec", "QuarantineSpec",
        "CheckpointSpec", "FaultModelSpec", "ChaosEngine",
    ],
    "journal": [
        "Journal", "JournalSpec", "JournalState", "AppliedOpsLedger",
        "read_journal", "scenario_fingerprint", "CampaignRunner",
    ],
    "lint": [
        "Diagnostic", "Severity", "WitnessEvent", "FixHint", "FixResult",
        "FIXABLE_CODES", "PreflightWarning", "VerificationError",
        "analyze_dataflow", "verify_spec", "lint_xml_text", "fix_spec",
        "fix_xml_text", "run_selflint", "run_preflight", "render_sarif",
    ],
    "fabric": [
        "NetworkSpec", "PartitionWindow", "LinkOverride", "FabricLink",
        "DegradedModeController", "BoundedShedQueue",
    ],
    "campaign": [
        "AdmissionController", "AdmissionResult", "Campaign",
        "CampaignRunner", "CampaignService", "CellFailure", "CellOutcome",
        "ExecutorSpec", "Lease", "MachineArbiter", "SupervisedExecutor",
        "Sweep", "TenantBreaker", "TenantCell", "TenantRegistry",
        "TenantSpec", "TenantState", "TenantsSpec", "canonical_json",
        "run_cell_scenario", "statepoint_hash", "statepoint_id",
    ],
}


def test_surface_snapshot():
    assert list(api.__all__) == API_SURFACE


def test_dir_covers_surface_and_subfacades():
    listing = set(dir(api))
    assert set(API_SURFACE) <= listing
    assert set(SUBFACADES) <= listing


def test_unknown_name_raises_attribute_error():
    with pytest.raises(AttributeError, match="definitely_not_an_api_name"):
        api.definitely_not_an_api_name


def test_subfacades_expose_documented_names():
    for sub, names in SUBFACADES.items():
        mod = getattr(api, sub)
        assert list(mod.__all__) == names
        for name in names:
            assert getattr(mod, name) is not None, f"{sub}.{name}"


def test_subfacade_names_are_flat_aliases():
    # The sub-facades are views of the flat surface, not copies.
    for sub, names in SUBFACADES.items():
        mod = getattr(api, sub)
        for name in names:
            if name in api.__all__:
                assert getattr(api, name) is getattr(mod, name), f"{sub}.{name}"


def test_subfacades_importable_as_modules():
    for sub in SUBFACADES:
        mod = importlib.import_module(f"repro.api.{sub}")
        assert mod is getattr(api, sub)


def test_flat_resolution_is_lazy():
    """``import repro.api`` must not pull in corners nobody touched.

    ``repro/__init__`` eagerly wires the runtime, so much of the tree
    loads regardless — but the experiments and lint packages are only
    reachable through the facade and must load on first attribute
    access, not at import.  Run in a subprocess for a clean module
    graph.
    """
    src = pathlib.Path(repro.__file__).resolve().parent.parent
    code = (
        "import sys\n"
        "import repro.api as api\n"
        "for mod in ('repro.experiments', 'repro.lint'):\n"
        "    assert mod not in sys.modules, f'{mod} loaded eagerly'\n"
        "api.run_xgc_experiment, api.verify_spec\n"
        "assert 'repro.experiments' in sys.modules\n"
        "assert 'repro.lint' in sys.modules\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run([sys.executable, "-c", code], check=True, env=env)


def test_all_names_resolve():
    for name in api.__all__:
        assert hasattr(api, name), f"repro.api.__all__ lists missing name {name!r}"


def test_all_is_sorted_unique():
    assert len(api.__all__) == len(set(api.__all__))


def test_star_import_matches_all():
    ns: dict = {}
    exec("from repro.api import *", ns)
    exported = {k for k in ns if not k.startswith("_")}
    assert exported == set(api.__all__)


def test_facade_reachable_from_package_root():
    assert repro.api is api
    assert "api" in repro.__all__
    assert importlib.import_module("repro.api") is api


def test_facade_covers_the_main_entry_points():
    for name in (
        "SimEngine", "Savanna", "WorkflowSpec", "DyflowOrchestrator",
        "ThreadedDyflow", "parse_dyflow_xml", "write_dyflow_xml",
        "configure_orchestrator", "TelemetrySpec", "Tracer",
        "build_tracer", "to_chrome_trace", "ResilienceSpec",
        "run_gray_scott_experiment", "ReproError",
    ):
        assert name in api.__all__, f"facade is missing {name}"


def test_facade_objects_are_the_canonical_ones():
    from repro.runtime.sim_driver import DyflowOrchestrator
    from repro.sim.engine import SimEngine
    from repro.telemetry import TelemetrySpec

    assert api.SimEngine is SimEngine
    assert api.DyflowOrchestrator is DyflowOrchestrator
    assert api.TelemetrySpec is TelemetrySpec


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_import_only_from_repro_api(path):
    """Every example must go through the facade, never submodules."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "repro" or node.module.startswith("repro."):
                assert node.module == "repro.api", (
                    f"{path.name} imports from {node.module}; use repro.api"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                assert not alias.name.startswith("repro"), (
                    f"{path.name} imports {alias.name}; use 'from repro.api import ...'"
                )
