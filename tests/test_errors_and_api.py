"""Tests for the exception hierarchy and the top-level public API."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.SimTimeError, errors.ProcessError, errors.AllocationError,
            errors.NodeStateError, errors.SchedulerError, errors.ChannelClosedError,
            errors.BufferOverflowError, errors.StoreError, errors.WorkflowSpecError,
            errors.TaskStateError, errors.LaunchError, errors.CheckpointError,
            errors.SensorError, errors.PolicyError, errors.ArbitrationError,
            errors.ActuationError, errors.XmlSpecError,
        ]
        for exc in leaves:
            assert issubclass(exc, errors.ReproError), exc

    def test_subsystem_bases(self):
        assert issubclass(errors.SimTimeError, errors.SimError)
        assert issubclass(errors.AllocationError, errors.ClusterError)
        assert issubclass(errors.BufferOverflowError, errors.StagingError)
        assert issubclass(errors.LaunchError, errors.WmsError)
        assert issubclass(errors.SensorError, errors.DyflowError)

    def test_catching_the_base_catches_library_failures(self):
        from repro.staging import StreamChannel

        ch = StreamChannel("c")
        ch.close()
        with pytest.raises(errors.ReproError):
            ch.put("x", 0.0)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_headline_classes_exported(self):
        assert repro.DyflowOrchestrator is not None
        assert repro.Savanna is not None
        assert callable(repro.parse_dyflow_xml)
        assert callable(repro.summit) and callable(repro.deepthought2)

    def test_docstrings_on_public_api(self):
        """Every exported object is documented."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, str):
                assert obj.__doc__, f"{name} lacks a docstring"
