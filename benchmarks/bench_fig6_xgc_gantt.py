"""Figure 6 (+ §4.3): the XGC1–XGCa Gantt chart and response times.

Paper observations the reproduction must match in shape:
* XGC1 ≈ 2.5× slower than XGCa per 100-step run;
* XGCa starts three times, each in ≈0.1–0.2 s (Summit);
* XGC1 starts in ≈8 s (4 s frequency delay + restart script);
* the switch stops XGCa right after global step 374;
* STOP_ON_COND ends the run just past 502 global steps;
* without DYFLOW (XGC1 only) the experiment takes ≈25 % longer;
* Deepthought2 responses are uniformly slower than Summit's.
"""


from repro.experiments import render_gantt, run_xgc_experiment

from benchmarks.conftest import emit, write_bench

PAPER = {
    "summit": {"start_xgca": (0.1, 0.2), "start_xgc1": 8.0, "stop": 2.0, "overhead_pct": 25},
    "deepthought2": {"start_xgca": (0.2, 0.8), "start_xgc1": 11.0, "stop": 42.0, "overhead_pct": 25},
}


def summarize(result, baseline):
    lines = [render_gantt(result.trace, end_time=result.makespan), ""]
    for plan in result.plans:
        ops = "; ".join(op.describe() for op in plan.ordered_ops())
        lines.append(f"t={plan.created:8.1f}s  response={plan.response_time:6.2f}s  {ops}")
    lines.append(f"final global step: {result.meta['final_progress']} (paper: 502)")
    ratio = baseline.makespan / result.makespan
    lines.append(
        f"makespan with DYFLOW {result.makespan:.0f}s vs XGC1-only {baseline.makespan:.0f}s "
        f"→ static is {100 * (ratio - 1):.0f}% slower (paper ≈25%)"
    )
    return lines, ratio


def test_fig6_summit(benchmark, xgc_summit_baseline):
    result = benchmark.pedantic(
        lambda: run_xgc_experiment("summit", use_dyflow=True), rounds=1, iterations=1
    )
    lines, ratio = summarize(result, xgc_summit_baseline)
    emit("Figure 6 — XGC1–XGCa on Summit", lines)

    xgca_starts = [
        p.response_time for p in result.plans
        if len(p.ops) == 1 and p.ops[0].task == "XGCA" and p.ops[0].op == "start_task"
    ]
    assert len(xgca_starts) == 3, "XGCa must start three times"
    assert all(r < 1.0 for r in xgca_starts)
    assert 500 < result.meta["final_progress"] < 506
    assert 1.15 < ratio < 1.45
    benchmark.extra_info["xgca_start_responses"] = [round(r, 3) for r in xgca_starts]
    benchmark.extra_info["static_vs_dyflow_ratio"] = round(ratio, 3)
    benchmark.extra_info["paper"] = PAPER["summit"]
    write_bench(
        "fig6_xgc_gantt",
        {"machine": "summit", "paper": PAPER["summit"]},
        {
            "xgca_start_responses": [round(r, 3) for r in xgca_starts],
            "static_vs_dyflow_ratio": round(ratio, 3),
            "final_progress": result.meta["final_progress"],
        },
    )


def test_fig6_deepthought2(benchmark, xgc_summit):
    result = benchmark.pedantic(
        lambda: run_xgc_experiment("deepthought2", use_dyflow=True), rounds=1, iterations=1
    )
    baseline = run_xgc_experiment("deepthought2", use_dyflow=False)
    lines, ratio = summarize(result, baseline)
    emit("§4.3 — XGC1–XGCa on Deepthought2", lines)

    # Shape: every Deepthought2 response slower than its Summit counterpart.
    d2 = sorted(r for _p, r in result.response_times())
    s = sorted(r for _p, r in xgc_summit.response_times())
    assert d2[0] > s[0] and d2[-1] > s[-1]
    assert 1.15 < ratio < 1.45
    benchmark.extra_info["d2_responses"] = [round(r, 2) for r in d2]
    benchmark.extra_info["paper"] = PAPER["deepthought2"]
