"""Write-ahead journal overhead on the Gray-Scott control loop.

Measures the wall-clock cost of crash-recoverability at its three
durability levels against the journal-free seed path, on both machine
models:

* ``off``      — no journal at all (the seed path);
* ``fsync=off``    — journal every tick, leave flushing to the OS;
* ``fsync=batch``  — fsync every 64 records and at snapshots (default);
* ``fsync=always`` — fsync after every record (maximum durability).

Two gates: a *disabled* journal spec (``enabled=False``) must cost
nothing measurable (< 2 % over the seed path, same budget as the
NullTracer), and every journaled mode must still produce a bit-identical
scenario fingerprint — durability must never change decisions.
"""

import json
import shutil
import tempfile
import time

from repro.experiments import run_gray_scott_experiment
from repro.journal import JournalSpec, scenario_fingerprint

from benchmarks.conftest import emit, write_bench

ROUNDS = 5


def one_run(machine: str, journal: JournalSpec | None) -> tuple[float, str]:
    """Wall time + fingerprint of a single scenario run."""
    workdir = None
    spec = journal
    if journal is not None and journal.enabled:
        workdir = tempfile.mkdtemp(prefix="bench-journal-")
        spec = JournalSpec(
            dir=workdir, enabled=True, fsync=journal.fsync,
            batch_every=journal.batch_every, snapshot_every=journal.snapshot_every,
        )
    t0 = time.perf_counter()
    result = run_gray_scott_experiment(machine, use_dyflow=True, journal=spec)
    elapsed = time.perf_counter() - t0
    fingerprint = scenario_fingerprint(result)
    if workdir is not None:
        shutil.rmtree(workdir, ignore_errors=True)
    return elapsed, fingerprint


def measure(machine: str) -> dict:
    modes = {
        "off": None,
        "disabled": JournalSpec(dir="unused", enabled=False),
        "fsync_off": JournalSpec(dir="x", fsync="off"),
        "fsync_batch": JournalSpec(dir="x", fsync="batch", batch_every=64),
        "fsync_always": JournalSpec(dir="x", fsync="always"),
    }
    one_run(machine, None)  # warm caches/allocator before any timing
    # Interleave the modes round-robin and keep each mode's best time:
    # slow drift (GC pressure, CPU frequency) then hits every mode
    # equally instead of biasing whichever ran first.
    times = {mode: float("inf") for mode in modes}
    prints = {}
    for _ in range(ROUNDS):
        for mode, spec in modes.items():
            elapsed, prints[mode] = one_run(machine, spec)
            times[mode] = min(times[mode], elapsed)
    seed = times["off"]
    return {
        "machine": machine,
        "seconds": {m: round(t, 4) for m, t in times.items()},
        "overhead_pct": {
            m: round(100 * (t / seed - 1.0), 2) for m, t in times.items() if m != "off"
        },
        "fingerprints_identical": len(set(prints.values())) == 1,
    }


def report(payload: dict) -> None:
    lines = [f"{'mode':<14} {'wall(s)':>9} {'overhead':>9}"]
    for mode, t in payload["seconds"].items():
        over = payload["overhead_pct"].get(mode)
        lines.append(
            f"{mode:<14} {t:>9.4f} " + (f"{over:>+8.2f}%" if over is not None else "     seed")
        )
    lines.append(
        "fingerprints identical across all modes: "
        f"{payload['fingerprints_identical']}"
    )
    emit(f"journal overhead ({payload['machine']})", lines)
    print("BENCH " + json.dumps(payload, sort_keys=True))


def check(payload: dict) -> None:
    # Durability must never change decisions: every mode, journaled or
    # not, reproduces the exact same run.
    assert payload["fingerprints_identical"], "journaling changed the run"
    # A disabled spec takes the seed path; its cost must be noise.
    assert payload["overhead_pct"]["disabled"] < 2.0, (
        f"disabled-journal overhead {payload['overhead_pct']['disabled']}% exceeds 2%"
    )


def test_journal_overhead_summit(benchmark):
    payload = benchmark.pedantic(lambda: measure("summit"), rounds=1, iterations=1)
    report(payload)
    check(payload)
    benchmark.extra_info["bench"] = payload
    write_bench(
        "journal_overhead",
        {"machine": "summit", "rounds": ROUNDS},
        {
            "seconds": payload["seconds"],
            "overhead_pct": payload["overhead_pct"],
            "fingerprints_identical": payload["fingerprints_identical"],
        },
    )


def test_journal_overhead_deepthought2(benchmark):
    payload = benchmark.pedantic(lambda: measure("deepthought2"), rounds=1, iterations=1)
    report(payload)
    check(payload)
    benchmark.extra_info["bench"] = payload
