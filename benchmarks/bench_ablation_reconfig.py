"""Extension (paper §6): in-place RECONFIG vs stop-and-relaunch.

The paper's future work asks for "finer-grained control operations,
beyond just stopping and relaunching, to reconfigure a workflow".  This
bench compares correcting an over-paced analysis two ways:

* **RESTART-based** (the paper's ADDCPU): graceful stop + relaunch —
  response dominated by termination, analysis steps lost across the
  restart;
* **RECONFIG** (the extension): deliver a ``step-scale`` parameter to
  the running task — response is one signal latency, nothing lost.
"""


from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.core import (
    ActionType,
    GroupBySpec,
    PolicyApplication,
    PolicySpec,
    SensorSpec,
)
from repro.runtime import DyflowOrchestrator
from repro.sim import RngRegistry, SimEngine
from repro.wms import Savanna, TaskSpec, WorkflowSpec

from benchmarks.conftest import emit, write_bench


def run(action: ActionType, params: dict):
    eng = SimEngine()
    m = summit(4)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    wf = WorkflowSpec("W", [
        TaskSpec("Ana", lambda: IterativeApp(ConstantModel(20.0), total_steps=60), nprocs=10),
    ])
    sav = Savanna(eng, wf, alloc, rng=RngRegistry(0))
    orch = DyflowOrchestrator(sav, warmup=30.0, settle=30.0, record_history=True)
    orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task("Ana", "PACE", var="looptime")
    orch.add_policy(PolicySpec("FIX", "PACE", "GT", 12.0, action,
                               history_window=3, history_op="AVG", frequency=5.0))
    orch.apply_policy(PolicyApplication("FIX", "W", ("Ana",), assess_task="Ana",
                                        action_params=params))
    sav.launch_workflow()
    orch.start(stop_when=sav.all_idle)
    eng.run(until=20_000)
    plan = [p for p in orch.plans if p.execution_end is not None][0]
    return {
        "response": plan.response_time,
        "incarnations": sav.record("Ana").incarnations,
        "makespan": eng.now if not sav.record("Ana").is_active else float("inf"),
        "final_step": sav.record("Ana").current.notes.get("last_step"),
    }


def test_ablation_reconfig_vs_restart(benchmark):
    def run_both():
        # ADDCPU restarts with double the procs (20 s -> 10 s at 2× procs
        # only if the model scaled; ConstantModel doesn't, so compare the
        # like-for-like pace fix: RECONFIG step-scale vs RESTART+scale param.
        restart = run(ActionType.RESTART, {"nprocs": 10, "step-scale": 0.5})
        reconfig = run(ActionType.RECONFIG, {"step-scale": 0.5})
        return restart, reconfig

    restart, reconfig = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "Extension — RECONFIG vs stop-and-relaunch for the same pace fix",
        [
            f"restart:  response {restart['response']:6.2f}s, "
            f"{restart['incarnations']} incarnations, final step {restart['final_step']}",
            f"reconfig: response {reconfig['response']:6.2f}s, "
            f"{reconfig['incarnations']} incarnation, final step {reconfig['final_step']}",
            f"response reduction: {restart['response'] / reconfig['response']:.0f}×, "
            f"no lost in-flight step, no dependent restarts",
        ],
    )
    assert reconfig["incarnations"] == 1 and restart["incarnations"] == 2
    assert reconfig["response"] < 0.1 * restart["response"]
    assert reconfig["final_step"] == 60
    benchmark.extra_info["restart_response"] = round(restart["response"], 2)
    benchmark.extra_info["reconfig_response"] = round(reconfig["response"], 3)
    write_bench(
        "ablation_reconfig",
        {"machine": "summit", "seed": 0, "step_scale": 0.5},
        {
            "restart_response": round(restart["response"], 2),
            "reconfig_response": round(reconfig["response"], 3),
            "restart_incarnations": restart["incarnations"],
            "reconfig_incarnations": reconfig["incarnations"],
        },
    )
