"""Figure 8 (+ §4.4): Gray-Scott under-provisioning correction Gantt.

Paper shape: at +2 min Arbitration grows Isosurface 20→40 using
PDF_Calc's cores (Rendering restarts through its tight dependency;
response 107 s); after the settle window it grows Isosurface 40→60 using
FFT's cores (response 36 s); then every pace is inside the desired
interval and the 50 steps finish within the 30-minute limit, while the
static baseline needs 10–12 % more than the limit.
"""


from repro.experiments import render_gantt, run_gray_scott_experiment

from benchmarks.conftest import emit, write_bench

PAPER = {
    "summit": {"adjustments": [("PDF_Calc", 40, 107.0), ("FFT", 60, 36.0)], "overtime_pct": (10, 12)},
    "deepthought2": {"adjustments": [("PDF_Calc+FFT", 60, 87.0)], "overtime_pct": (10, 12)},
}


def adjustment_plans(result):
    return [p for p in result.plans if any("INC_ON_PACE" in a for a in p.accepted)]


def report(result, baseline):
    lines = [render_gantt(result.trace, end_time=result.makespan), ""]
    for plan in adjustment_plans(result):
        iso = [o for o in plan.ops if o.task == "Isosurface" and o.op == "start_task"]
        size = iso[0].resources.total_cores if iso else "?"
        lines.append(
            f"t={plan.created:7.1f}s  Isosurface → {size} procs, victims={plan.victims}, "
            f"response={plan.response_time:.1f}s, stop-share={plan.stop_share():.0%}"
        )
    lines.append(
        f"DYFLOW makespan {result.makespan:.0f}s (limit {result.meta['time_limit']:.0f}s); "
        f"static baseline {baseline.makespan:.0f}s "
        f"→ {100 * (baseline.makespan / result.meta['time_limit'] - 1):.0f}% over the limit"
    )
    return lines


def test_fig8_summit(benchmark):
    result = benchmark.pedantic(
        lambda: run_gray_scott_experiment("summit", use_dyflow=True), rounds=1, iterations=1
    )
    baseline = run_gray_scott_experiment("summit", use_dyflow=False, enforce_walltime=False)
    emit("Figure 8 — Gray-Scott under-provisioning on Summit", report(result, baseline))

    plans = adjustment_plans(result)
    assert len(plans) == 2
    assert plans[0].victims == ["PDF_Calc"]
    assert plans[1].victims == ["FFT"]
    sizes = [
        [o for o in p.ops if o.task == "Isosurface" and o.op == "start_task"][0].resources.total_cores
        for p in plans
    ]
    assert sizes == [40, 60]
    assert result.makespan < result.meta["time_limit"]
    overtime = baseline.makespan / result.meta["time_limit"] - 1
    assert 0.05 < overtime < 0.25
    benchmark.extra_info["responses"] = [round(p.response_time, 1) for p in plans]
    benchmark.extra_info["paper_responses"] = [107.0, 36.0]
    benchmark.extra_info["overtime_pct"] = round(100 * overtime, 1)
    write_bench(
        "fig8_gs_gantt",
        {"machine": "summit", "seed": 0, "paper": PAPER["summit"]},
        {
            "responses": [round(p.response_time, 1) for p in plans],
            "isosurface_sizes": sizes,
            "makespan": round(result.makespan, 1),
            "baseline_overtime_pct": round(100 * overtime, 1),
        },
    )


def test_fig8_deepthought2(benchmark):
    result = benchmark.pedantic(
        lambda: run_gray_scott_experiment("deepthought2", use_dyflow=True), rounds=1, iterations=1
    )
    baseline = run_gray_scott_experiment("deepthought2", use_dyflow=False, enforce_walltime=False)
    emit("§4.4 — Gray-Scott under-provisioning on Deepthought2", report(result, baseline))

    plans = adjustment_plans(result)
    assert len(plans) == 1, "Deepthought2 corrects in a single adjustment"
    assert set(plans[0].victims) == {"PDF_Calc", "FFT"}
    assert 40 < plans[0].response_time < 150  # paper: 87 s
    assert result.makespan < result.meta["time_limit"]
    benchmark.extra_info["response"] = round(plans[0].response_time, 1)
    benchmark.extra_info["paper_response"] = 87.0


def test_fig8_baseline_times_out(benchmark):
    result = benchmark.pedantic(
        lambda: run_gray_scott_experiment("summit", use_dyflow=False, enforce_walltime=True),
        rounds=1, iterations=1,
    )
    rows = {r["task"]: r for r in result.summary_rows()}
    emit(
        "§4.4 — static baseline under walltime enforcement",
        [
            f"timed out at t={result.meta['timeout_at']:.0f}s: "
            f"GrayScott reached step {rows['GrayScott']['last_step']}/50, "
            f"exit code {rows['GrayScott']['exit_code']}",
        ],
    )
    assert result.meta["timed_out"]
    assert rows["GrayScott"]["last_step"] < 50
