"""Table 2: the Gray-Scott under-provisioning configuration."""

from repro.apps.gray_scott import ANALYSIS_TASKS, GrayScottConfig
from repro.experiments.grayscott_scenario import TIME_LIMITS, build_workflow

from benchmarks.conftest import emit, write_bench

PAPER_SUMMIT = {
    "GRAY-SCOTT": (340, 34),
    "ISOSURFACE": (20, 2),
    "RENDERING": (20, 2),
    "FFT": (20, 2),
    "PDF_CALC": (20, 2),
    "TOTAL STEPS": 50,
    "TIME LIMIT (MIN)": 30,
}


def test_table2_configuration(benchmark):
    config = benchmark(GrayScottConfig.summit)
    workflow = build_workflow(config)
    rows = [f"{'TASK':<12} {'PROCS':<8} {'PER NODE':<9} {'PAPER':<12}"]
    gs = workflow.task("GrayScott")
    rows.append(f"{'GRAY-SCOTT':<12} {gs.nprocs:<8} {gs.procs_per_node:<9} {PAPER_SUMMIT['GRAY-SCOTT']}")
    for t in ANALYSIS_TASKS:
        spec = workflow.task(t)
        rows.append(f"{t:<12} {spec.nprocs:<8} {spec.procs_per_node:<9} {PAPER_SUMMIT[t.upper()]}")
    rows.append(f"{'TOTAL STEPS':<12} {config.total_steps:<8} {'':<9} {PAPER_SUMMIT['TOTAL STEPS']}")
    rows.append(f"{'TIME LIMIT':<12} {TIME_LIMITS['summit']/60:.0f} min {'':<5} {PAPER_SUMMIT['TIME LIMIT (MIN)']} min")
    emit("Table 2 — Gray-Scott initial configuration (Summit)", rows)

    assert gs.nprocs == 340 and gs.procs_per_node == 34
    assert all(workflow.task(t).nprocs == 20 for t in ANALYSIS_TASKS)
    assert config.total_steps == 50
    benchmark.extra_info["paper"] = {k: str(v) for k, v in PAPER_SUMMIT.items()}
    write_bench(
        "table2_gs_config",
        {"machine": "summit", "paper": {k: str(v) for k, v in PAPER_SUMMIT.items()}},
        {
            "gs_procs": gs.nprocs,
            "gs_procs_per_node": gs.procs_per_node,
            "analysis_procs": {t: workflow.task(t).nprocs for t in ANALYSIS_TASKS},
            "total_steps": config.total_steps,
        },
    )


def test_table2_deepthought2(benchmark):
    config = benchmark(GrayScottConfig.deepthought2)
    workflow = build_workflow(config)
    gs = workflow.task("GrayScott")
    rows = [
        f"GRAY-SCOTT: {gs.nprocs} procs ({gs.procs_per_node}/node)  paper: 320 (16/node)",
        f"analyses: {[workflow.task(t).nprocs for t in ANALYSIS_TASKS]} procs "
        f"(paper: 20 each; per-node adjusted to pack 20-core nodes — see EXPERIMENTS.md)",
        f"time limit: {TIME_LIMITS['deepthought2']/60:.0f} min (paper: 35)",
    ]
    emit("Table 2 — Gray-Scott initial configuration (Deepthought2)", rows)
    assert gs.nprocs == 320 and gs.procs_per_node == 16
