"""Shared fixtures and reporting helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The
measured series/rows are printed (run pytest with ``-s`` to see them)
and attached to the benchmark's ``extra_info`` so the JSON output
carries the paper-vs-measured comparison.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    run_gray_scott_experiment,
    run_lammps_experiment,
    run_xgc_experiment,
)

# Scenario runs are deterministic; cache them per session so every bench
# that reads a figure's data shares one run.
_CACHE: dict = {}


def cached(key, fn):
    if key not in _CACHE:
        _CACHE[key] = fn()
    return _CACHE[key]


@pytest.fixture(scope="session")
def xgc_summit():
    return cached("xgc-summit", lambda: run_xgc_experiment("summit", use_dyflow=True))


@pytest.fixture(scope="session")
def xgc_summit_baseline():
    return cached("xgc-summit-base", lambda: run_xgc_experiment("summit", use_dyflow=False))


@pytest.fixture(scope="session")
def xgc_dt2():
    return cached("xgc-dt2", lambda: run_xgc_experiment("deepthought2", use_dyflow=True))


@pytest.fixture(scope="session")
def gs_summit():
    return cached("gs-summit", lambda: run_gray_scott_experiment("summit", use_dyflow=True))


@pytest.fixture(scope="session")
def gs_dt2():
    return cached("gs-dt2", lambda: run_gray_scott_experiment("deepthought2", use_dyflow=True))


@pytest.fixture(scope="session")
def lammps_summit():
    return cached("lammps-summit", lambda: run_lammps_experiment("summit", use_dyflow=True))


@pytest.fixture(scope="session")
def lammps_dt2():
    return cached("lammps-dt2", lambda: run_lammps_experiment("deepthought2", use_dyflow=True))


def emit(title: str, lines: list[str]) -> str:
    """Print a report block; returns the joined text."""
    text = "\n".join([f"== {title} ==", *lines])
    print("\n" + text)
    return text
