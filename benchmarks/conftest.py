"""Shared fixtures and reporting helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The
measured series/rows are printed (run pytest with ``-s`` to see them)
and attached to the benchmark's ``extra_info`` so the JSON output
carries the paper-vs-measured comparison.  Each bench also writes a
machine-readable ``BENCH_<name>.json`` artifact via :func:`write_bench`
with the uniform schema ``{"name", "config", "metrics": {...}}`` so CI
and the comparison scripts can collect every result the same way.

``benchmarks/`` (this directory) is the **one canonical location** for
those artifacts — it is where the committed baselines live, what
``RunStore`` indexes, and what CI gates against.  ``write_bench``
defaults there regardless of the invoking working directory; set
``$BENCH_OUTPUT_DIR`` to redirect (e.g. to a scratch dir in CI).
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

import pytest

from repro.experiments import (
    run_gray_scott_experiment,
    run_lammps_experiment,
    run_xgc_experiment,
)


def write_bench(
    name: str, config: Mapping[str, Any], metrics: Mapping[str, Any]
) -> dict[str, Any]:
    """Write the standard ``BENCH_<name>.json`` artifact; returns the payload.

    *config* records the knobs that produced the numbers (machine, seed,
    rounds, ...); *metrics* the measured values.  The same payload is
    printed as a single ``BENCH {...}`` line for log scraping.
    """
    payload = {"name": name, "config": dict(config), "metrics": dict(metrics)}
    out_dir = os.environ.get(
        "BENCH_OUTPUT_DIR", os.path.dirname(os.path.abspath(__file__))
    )
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    print("BENCH " + json.dumps(payload, sort_keys=True, default=str))
    return payload


# Scenario runs are deterministic; cache them per session so every bench
# that reads a figure's data shares one run.
_CACHE: dict = {}


def cached(key, fn):
    if key not in _CACHE:
        _CACHE[key] = fn()
    return _CACHE[key]


@pytest.fixture(scope="session")
def xgc_summit():
    return cached("xgc-summit", lambda: run_xgc_experiment("summit", use_dyflow=True))


@pytest.fixture(scope="session")
def xgc_summit_baseline():
    return cached("xgc-summit-base", lambda: run_xgc_experiment("summit", use_dyflow=False))


@pytest.fixture(scope="session")
def xgc_dt2():
    return cached("xgc-dt2", lambda: run_xgc_experiment("deepthought2", use_dyflow=True))


@pytest.fixture(scope="session")
def gs_summit():
    return cached("gs-summit", lambda: run_gray_scott_experiment("summit", use_dyflow=True))


@pytest.fixture(scope="session")
def gs_dt2():
    return cached("gs-dt2", lambda: run_gray_scott_experiment("deepthought2", use_dyflow=True))


@pytest.fixture(scope="session")
def lammps_summit():
    return cached("lammps-summit", lambda: run_lammps_experiment("summit", use_dyflow=True))


@pytest.fixture(scope="session")
def lammps_dt2():
    return cached("lammps-dt2", lambda: run_lammps_experiment("deepthought2", use_dyflow=True))


def emit(title: str, lines: list[str]) -> str:
    """Print a report block; returns the joined text."""
    text = "\n".join([f"== {title} ==", *lines])
    print("\n" + text)
    return text
