"""Fabric fault sweep: Monitor-transport loss vs delivery and staleness.

Sweeps the fabric's per-copy drop probability (with duplication and
reordering riding along, plus one timed partition window at the heavier
loss rates) over the Gray-Scott scenario.  The figures of merit are the
delivery ledger — sent / retried / shed / duplicate-suppressed — and
the p95 ingest staleness the Decision stage plans on: loss costs
retransmit traffic and data age, but the ack/retransmit layer keeps the
control loop fed and the workflow finishing at every swept rate.

Runs as a pytest benchmark (``pytest benchmarks/bench_fabric_faults.py``)
or standalone (``python benchmarks/bench_fabric_faults.py [--smoke]``);
both write ``BENCH_fabric_faults.json``.
"""

from __future__ import annotations

import os
import sys

from repro.experiments import run_gray_scott_experiment
from repro.journal import scenario_fingerprint

try:
    from benchmarks.conftest import emit, write_bench
except ModuleNotFoundError:  # standalone: python benchmarks/bench_fabric_faults.py
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.conftest import emit, write_bench

SEED = 7
# (drop probability, partition windows "start:duration;...")
SWEEP = [0.0, 0.05, 0.10, 0.20]
PARTITION_FROM = 0.10  # rates >= this also get a 30 s partition window
PARTITION = (600.0, 30.0)


def chaos_xml(drop: float) -> str:
    windows = ""
    if drop >= PARTITION_FROM:
        windows = (
            f'<partition start="{PARTITION[0]!r}" duration="{PARTITION[1]!r}"/>'
        )
    return (
        "<resilience><network "
        'latency="0.2" jitter="0.1" '
        f'drop-prob="{drop!r}" dup-prob="0.05" reorder-prob="0.05" '
        'ack-timeout="2.0" max-retransmits="5" '
        'ingress-capacity="64" drain-per-tick="32" '
        'stale-after="20.0" degrade-after="3" recover-after="3">'
        f"{windows}</network></resilience>"
    )


def run_point(drop: float, seed: int = SEED) -> dict:
    result = run_gray_scott_experiment(xml_extra=chaos_xml(drop), seed=seed)
    fab = result.meta["fabric"]
    links, server = fab["links"], fab["server"]
    return {
        "drop_prob": drop,
        "partition": drop >= PARTITION_FROM,
        "makespan": result.makespan,
        "sent": links["sent"],
        # Unique envelopes the Decision stage actually saw: receive()
        # calls minus the retransmit/dup copies the dedup filter caught.
        "delivered": server["received"] - server["duplicates"],
        "dropped": links["dropped"] + links["partition_dropped"],
        "retried": links["retransmits"],
        "gave_up": links["gave_up"],
        "shed": server["shed_sensor"] + server["shed_health"],
        "duplicates_suppressed": server["duplicates"],
        "degraded_entered": fab["degraded_entered"],
        "staleness_p95": fab["staleness_p95"],
        "fingerprint": scenario_fingerprint(result),
    }


def run_sweep(rates=SWEEP) -> list[dict]:
    return [run_point(d) for d in rates]


def report(rows: list[dict], smoke: bool = False) -> dict:
    lines = [
        f"{'drop':>6} {'part':>5} {'sent':>6} {'deliv':>6} {'retry':>6} "
        f"{'shed':>5} {'dup':>4} {'p95 stale':>10} {'makespan':>9}"
    ]
    for r in rows:
        lines.append(
            f"{r['drop_prob']:>6.2f} {str(r['partition']):>5} {r['sent']:>6} "
            f"{r['delivered']:>6} {r['retried']:>6} {r['shed']:>5} "
            f"{r['duplicates_suppressed']:>4} {r['staleness_p95']:>10.2f} "
            f"{r['makespan']:>9.0f}"
        )
    emit("Fabric fault sweep — delivery vs loss rate", lines)
    return write_bench(
        "fabric_faults",
        {"machine": "summit", "seed": SEED, "smoke": smoke,
         "drop_sweep": [r["drop_prob"] for r in rows],
         "partition": {"start": PARTITION[0], "duration": PARTITION[1],
                       "from_drop": PARTITION_FROM}},
        {"sweep": [{k: v for k, v in r.items() if k != "fingerprint"}
                   for r in rows]},
    )


def check(rows: list[dict]) -> None:
    clean = rows[0]
    assert clean["drop_prob"] == 0.0
    assert clean["retried"] == 0 and clean["dropped"] == 0
    for r in rows:
        # The workflow finishes under every swept loss rate.
        assert r["makespan"] > 0
    lossy = [r for r in rows if r["drop_prob"] > 0]
    if lossy:
        # Loss costs retransmit traffic and data age.
        assert all(r["retried"] > 0 for r in lossy)
        assert lossy[-1]["staleness_p95"] >= clean["staleness_p95"]


def test_fabric_fault_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    check(rows)
    benchmark.extra_info["sweep"] = [
        {"drop_prob": r["drop_prob"], "delivered": r["delivered"],
         "retried": r["retried"], "staleness_p95": round(r["staleness_p95"], 3)}
        for r in rows
    ]
    report(rows)


def test_fabric_sweep_is_deterministic(benchmark):
    a, b = benchmark.pedantic(
        lambda: (run_point(0.10), run_point(0.10)), rounds=1, iterations=1
    )
    emit("Fabric fault sweep — fixed-seed replay",
         [f"run 1: {a['fingerprint']}", f"run 2: {b['fingerprint']}"])
    assert a == b


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    rates = [0.0, 0.10] if smoke else SWEEP
    rows = run_sweep(rates)
    check(rows)
    report(rows, smoke=smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
