"""Ablation: victim selection (Alg. 1 line 7) vs denying requests.

Without victims, the fully packed Gray-Scott allocation has zero free
cores: every ADDCPU is denied, the under-provisioning is never
corrected, and the workflow pace never enters the desired interval.
"""


from repro.experiments import run_gray_scott_experiment

from benchmarks.conftest import emit, write_bench


def test_ablation_victim_selection(benchmark):
    def run_both():
        with_victims = run_gray_scott_experiment("summit", use_dyflow=True)
        without = run_gray_scott_experiment("summit", use_dyflow=True, allow_victims=False)
        return with_victims, without

    with_victims, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    adjusted = [p for p in with_victims.plans if any("INC_ON_PACE" in a for a in p.accepted)]
    not_adjusted = [p for p in without.plans if any("INC_ON_PACE" in a for a in p.accepted)]
    emit(
        "Ablation — victim selection vs request denial",
        [
            f"with victims:    {len(adjusted)} adjustments, Isosurface ends at "
            f"{with_victims.final_nprocs('Isosurface')} procs, makespan {with_victims.makespan:.0f}s "
            f"(limit {with_victims.meta['time_limit']:.0f}s)",
            f"without victims: {len(not_adjusted)} adjustments, Isosurface ends at "
            f"{without.final_nprocs('Isosurface')} procs, makespan {without.makespan:.0f}s",
        ],
    )
    assert len(adjusted) == 2
    assert len(not_adjusted) == 0, "no victims → growth denied on a packed allocation"
    assert with_victims.makespan < with_victims.meta["time_limit"]
    assert without.makespan > with_victims.makespan
    benchmark.extra_info["makespan_with"] = round(with_victims.makespan, 1)
    benchmark.extra_info["makespan_without"] = round(without.makespan, 1)
    write_bench(
        "ablation_victims",
        {"machine": "summit", "seed": 0},
        {
            "adjustments_with_victims": len(adjusted),
            "adjustments_without_victims": len(not_adjusted),
            "makespan_with": round(with_victims.makespan, 1),
            "makespan_without": round(without.makespan, 1),
            "time_limit": with_victims.meta["time_limit"],
        },
    )
