"""Multi-tenant campaign service: throughput, containment, resume replay.

Three tenants share one simulated machine through the campaign service:
two healthy parameter grids (``bob``, ``carol``) and one crash-looping
tenant (``alice``) whose workflow factory always raises.  The figures of
merit are per-tenant throughput (cells completed per wall second of
service time), the breaker's quarantine counts (containment), and the
resume-replay ratio after a mid-campaign supervisor crash (every cell
finished before the crash must replay from its tenant's WAL instead of
re-executing).

Two gates ride along: the bulkhead-isolation proof (``bob``'s scenario
fingerprints are bit-identical solo vs next to the crash loop) and
replay-verbatim (resumed results equal the pre-crash ones).

Runs as a pytest benchmark (``pytest benchmarks/bench_multitenant.py``)
or standalone (``python benchmarks/bench_multitenant.py [--smoke]``);
both write ``BENCH_multitenant.json``.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time

from repro.apps import ConstantModel, IterativeApp
from repro.campaign import (
    CampaignService,
    ExecutorSpec,
    TenantCell,
    TenantSpec,
    TenantsSpec,
)
from repro.resilience import QuarantineSpec
from repro.wms import TaskSpec, WorkflowSpec

try:
    from benchmarks.conftest import emit, write_bench
except ModuleNotFoundError:  # standalone: python benchmarks/bench_multitenant.py
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.conftest import emit, write_bench

SEED = 7
FULL_CELLS = {"alice": 6, "bob": 6, "carol": 4}
SMOKE_CELLS = {"alice": 3, "bob": 3, "carol": 2}


def wf_factory(n=2, steps=3):
    return WorkflowSpec(
        f"wf-{n}-{steps}",
        [TaskSpec("T", IterativeApp(ConstantModel(1.0), total_steps=steps),
                  nprocs=n)],
    )


def broken_factory(**_params):
    raise RuntimeError("alice's workflow factory always crashes")


def make_spec(tenants) -> TenantsSpec:
    return TenantsSpec(
        nodes=4, cores_per_node=8, tenants=tenants,
        executor=ExecutorSpec(max_attempts=2, backoff_base=0.0, jitter=0.0),
        breaker=QuarantineSpec(failures=4, window=100.0, cooldown=50.0),
    )


HEALTHY = {"bob": wf_factory, "carol": wf_factory}


def submit_grid(svc: CampaignService, cells: dict[str, int]) -> None:
    for tid, count in cells.items():
        factory = HEALTHY.get(tid, broken_factory)
        for i in range(count):
            svc.submit(TenantCell(
                tid, factory, params={"n": 2, "steps": 3 + (i % 3)},
                nprocs=2, seed=SEED,
            ))


def make_service(cells: dict[str, int], journal_root: str | None,
                 tenants=None) -> CampaignService:
    spec = make_spec(tenants or (
        TenantSpec("alice", quota_cores=8),
        TenantSpec("bob", quota_cores=16),
        TenantSpec("carol", quota_cores=16),
    ))
    svc = CampaignService(spec, journal_root=journal_root, rng_seed=SEED)
    submit_grid(svc, cells)
    return svc


def fingerprints(records, tenant: str) -> dict[str, str]:
    return {
        r["cell_id"]: r["result"]["fingerprint"]
        for r in records
        if r["tenant"] == tenant and r["status"] == "completed"
    }


def run_campaign(cells: dict[str, int]) -> dict:
    root = tempfile.mkdtemp(prefix="bench-multitenant-")
    try:
        # Phase 1: run until a mid-campaign supervisor crash.
        crash_after = max(2, sum(cells.values()) // 2)
        first = make_service(cells, root)
        t0 = time.perf_counter()
        before = first.run_pending(stop_after=crash_after)
        pre_crash = first.tenant_summary()
        # Phase 2: a fresh supervisor resumes over the same WAL root.
        second = make_service(cells, root)
        after = second.run_pending()
        wall = time.perf_counter() - t0
        # Drain anything parked behind a quarantine cooldown.
        while second.admission.pending():
            second.advance_time(second.breaker.spec.cooldown + 1.0)
            if not second.run_pending():
                break
        replayed = [r for r in after if r["replayed"]]
        done_before = {r["cell_id"]: r for r in before}
        verbatim = all(
            r["status"] == done_before[r["cell_id"]]["status"]
            and r["result"] == done_before[r["cell_id"]]["result"]
            for r in replayed
            if r["cell_id"] in done_before
        )
        summary = second.tenant_summary()
        shared_bob = fingerprints(before + after, "bob")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    # Isolation proof: bob alone on the same machine shape, same cells.
    solo = make_service(
        {"bob": cells["bob"]}, None,
        tenants=(TenantSpec("bob", quota_cores=16),),
    )
    solo_bob = fingerprints(solo.run_pending(), "bob")

    tenants = {}
    for tid, s in summary.items():
        # Completed/poisoned counters already span the whole campaign
        # (the resumed service replays them from the WAL); failures,
        # breaker trips, and alerts are in-memory state, so the
        # pre-crash supervisor's share is merged back in.
        pre = pre_crash[tid]
        done = s["completed"] + s["poisoned"]
        tenants[tid] = {
            "completed": s["completed"],
            "failed": s["failed"] + pre["failed"],
            "poisoned": s["poisoned"],
            "queued": s["queued"],
            "quarantine_trips": s["quarantine_trips"] + pre["quarantine_trips"],
            "alerts": len(s["alerts"]) + len(pre["alerts"]),
            "throughput_cells_per_s": round(done / wall, 2) if wall else 0.0,
        }
    executed = [r for r in after if not r["replayed"]]
    return {
        "tenants": tenants,
        "resume": {
            "crash_after": crash_after,
            "replayed": len(replayed),
            "executed_after_resume": len(executed),
            "replay_ratio": round(len(replayed) / max(1, len(after)), 3),
            "replay_verbatim": verbatim,
        },
        "isolation": {
            "bob_cells": len(solo_bob),
            "solo_equals_shared": bool(solo_bob) and solo_bob == shared_bob,
        },
        "wall_s": round(wall, 3),
    }


def report(result: dict, cells: dict[str, int], smoke: bool = False) -> dict:
    lines = [f"{'tenant':>8} {'done':>5} {'fail':>5} {'poison':>6} "
             f"{'trips':>5} {'alerts':>6} {'cells/s':>8}"]
    for tid, t in sorted(result["tenants"].items()):
        lines.append(
            f"{tid:>8} {t['completed']:>5} {t['failed']:>5} {t['poisoned']:>6} "
            f"{t['quarantine_trips']:>5} {t['alerts']:>6} "
            f"{t['throughput_cells_per_s']:>8.2f}"
        )
    res = result["resume"]
    lines.append(
        f"resume: crashed after {res['crash_after']} cells, "
        f"{res['replayed']} replayed ({res['replay_ratio']:.0%}), "
        f"verbatim={res['replay_verbatim']}"
    )
    lines.append(
        f"isolation: solo == shared fingerprints: "
        f"{result['isolation']['solo_equals_shared']}"
    )
    emit("Multi-tenant campaign — containment and resume", lines)
    return write_bench(
        "multitenant",
        {"machine": "4x8", "seed": SEED, "smoke": smoke, "cells": cells},
        result,
    )


def check(result: dict) -> None:
    # Containment: alice crash-loops and trips the breaker; her neighbors
    # finish their entire grids regardless.
    alice = result["tenants"]["alice"]
    assert alice["completed"] == 0
    assert alice["failed"] > 0
    assert alice["quarantine_trips"] >= 1
    assert alice["alerts"] >= 1
    for tid in ("bob", "carol"):
        t = result["tenants"][tid]
        assert t["failed"] == 0 and t["poisoned"] == 0
        assert t["completed"] > 0
    # Crash recovery: everything finished pre-crash replays, verbatim.
    assert result["resume"]["replayed"] == result["resume"]["crash_after"]
    assert result["resume"]["replay_verbatim"]
    # Bulkhead isolation: the crash loop never touched bob's results.
    assert result["isolation"]["solo_equals_shared"]


def test_multitenant_campaign(benchmark):
    result = benchmark.pedantic(
        lambda: run_campaign(FULL_CELLS), rounds=1, iterations=1
    )
    check(result)
    benchmark.extra_info["tenants"] = result["tenants"]
    benchmark.extra_info["resume"] = result["resume"]
    report(result, FULL_CELLS)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    cells = SMOKE_CELLS if smoke else FULL_CELLS
    result = run_campaign(cells)
    report(result, cells, smoke=smoke)
    check(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
