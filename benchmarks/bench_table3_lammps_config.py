"""Table 3: the LAMMPS workflow configuration for failure resilience."""

from repro.apps.lammps import ANALYSIS_TASKS, LammpsConfig
from repro.experiments.lammps_scenario import build_workflow

from benchmarks.conftest import emit, write_bench

PAPER_SUMMIT = {
    "LAMMPS": (1500, 30),
    "TOTAL ATOMS": 65_536_000,
    "TOTAL STEPS": 1000,
    "ANALYSES": (200, 4),
    "ANALYSIS STEPS": 100,
}
PAPER_DT2 = {
    "LAMMPS": (100, 14),
    "TOTAL ATOMS": 8_192_000,
    "ANALYSES": (20, 2),
    "ANALYSIS STEPS": 50,
}


def test_table3_summit(benchmark):
    config = benchmark(LammpsConfig.summit)
    workflow = build_workflow(config)
    sim = workflow.task("LAMMPS")
    rows = [
        f"LAMMPS: {sim.nprocs} procs ({sim.procs_per_node}/node)  paper: {PAPER_SUMMIT['LAMMPS']}",
        f"total atoms: {config.total_atoms:,}  paper: {PAPER_SUMMIT['TOTAL ATOMS']:,}",
        f"total steps: {config.total_steps}  paper: {PAPER_SUMMIT['TOTAL STEPS']}",
    ]
    for t in ANALYSIS_TASKS:
        spec = workflow.task(t)
        rows.append(f"{t}: {spec.nprocs} procs ({spec.procs_per_node}/node)  paper: {PAPER_SUMMIT['ANALYSES']}")
    rows.append(
        f"per-node packing: {sim.procs_per_node} + 3×{config.analysis_procs_per_node} = "
        f"{sim.procs_per_node + 3 * config.analysis_procs_per_node} of 42 cores"
    )
    emit("Table 3 — LAMMPS configuration (Summit)", rows)

    assert sim.nprocs == 1500 and sim.procs_per_node == 30
    assert all(workflow.task(t).nprocs == 200 for t in ANALYSIS_TASKS)
    assert config.total_atoms == PAPER_SUMMIT["TOTAL ATOMS"]
    assert config.analysis_steps == PAPER_SUMMIT["ANALYSIS STEPS"]
    benchmark.extra_info["paper"] = {k: str(v) for k, v in PAPER_SUMMIT.items()}
    write_bench(
        "table3_lammps_config",
        {"machine": "summit", "paper": {k: str(v) for k, v in PAPER_SUMMIT.items()}},
        {
            "lammps_procs": sim.nprocs,
            "lammps_procs_per_node": sim.procs_per_node,
            "analysis_procs": {t: workflow.task(t).nprocs for t in ANALYSIS_TASKS},
            "total_atoms": config.total_atoms,
            "analysis_steps": config.analysis_steps,
        },
    )


def test_table3_deepthought2(benchmark):
    config = benchmark(LammpsConfig.deepthought2)
    workflow = build_workflow(config)
    sim = workflow.task("LAMMPS")
    emit(
        "Table 3 — LAMMPS configuration (Deepthought2)",
        [
            f"LAMMPS: {sim.nprocs} procs ({sim.procs_per_node}/node)  "
            f"paper: {PAPER_DT2['LAMMPS']} (per-node adjusted to pack 20-core nodes)",
            f"total atoms: {config.total_atoms:,}  paper: {PAPER_DT2['TOTAL ATOMS']:,}",
            f"analyses: {config.analysis_procs} procs ({config.analysis_procs_per_node}/node), "
            f"{config.analysis_steps} steps  paper: {PAPER_DT2['ANALYSES']}, {PAPER_DT2['ANALYSIS STEPS']}",
        ],
    )
    assert sim.nprocs == 100
    assert config.total_atoms == PAPER_DT2["TOTAL ATOMS"]
    assert config.analysis_steps == 50
