"""Micro-benchmark: the arbitration protocol itself (Algorithm 1).

The paper notes "the time spent formulating the plan is low" — this
bench measures plan formulation over a non-trivial workflow as a real
hot-loop pytest-benchmark (many rounds), unlike the scenario benches.
"""


from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, summit
from repro.core import ActionType, ArbitrationRules, ArbitrationStage, SuggestedAction
from repro.sim import SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec

from benchmarks.conftest import write_bench


def make_world(n_tasks=12):
    eng = SimEngine()
    m = summit(8)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    tasks = [TaskSpec("Sim", lambda: IterativeApp(ConstantModel(60.0), total_steps=10_000), nprocs=64)]
    deps = []
    for i in range(n_tasks):
        name = f"Ana{i}"
        tasks.append(TaskSpec(name, lambda: IterativeApp(ConstantModel(30.0), total_steps=10_000), nprocs=16))
        deps.append(DependencySpec(name, "Sim", CouplingType.TIGHT))
    wf = WorkflowSpec("W", tasks, deps)
    sav = Savanna(eng, wf, alloc)
    rules = ArbitrationRules.from_workflow(
        wf, task_priorities={"Sim": 0, **{f"Ana{i}": i + 1 for i in range(n_tasks)}}
    )
    arb = ArbitrationStage(sav, rules, warmup=0.0, settle=0.0)
    arb.begin(0.0)
    sav.launch_workflow()
    eng.run(until=5.0)
    return eng, sav, arb, n_tasks


def test_arbitration_plan_formulation_speed(benchmark):
    eng, sav, arb, n = make_world()
    suggestions = [
        SuggestedAction(policy_id="INC", action=ActionType.ADDCPU, target=f"Ana{i}",
                        workflow_id="W", params={"adjust-by": 8})
        for i in range(n)
    ]

    def formulate():
        plan = arb.arbitrate(list(suggestions), now=eng.now)
        # Reset so every round starts from the same state.
        if plan is not None:
            arb._in_flight = None
            arb._gate_until = None
            arb.waiting.clear()
            arb.plans.clear()
        return plan

    plan = benchmark(formulate)
    assert plan is not None and plan.ops
    benchmark.extra_info["suggestions"] = n
    benchmark.extra_info["ops_in_plan"] = len(plan.ops)
    write_bench(
        "arbitration_protocol",
        {"tasks": n, "machine": "summit"},
        {
            "mean_seconds": benchmark.stats.stats.mean,
            "ops_in_plan": len(plan.ops),
        },
    )


def test_conflict_resolution_speed(benchmark):
    eng, sav, arb, n = make_world()
    suggestions = []
    for i in range(n):
        for action in (ActionType.ADDCPU, ActionType.RMCPU, ActionType.STOP):
            suggestions.append(
                SuggestedAction(policy_id=f"P-{action.value}", action=action,
                                target=f"Ana{i}", workflow_id="W")
            )
    result = benchmark(lambda: arb._resolve_conflicts(list(suggestions)))
    assert len(result) <= len(suggestions)
    benchmark.extra_info["input_suggestions"] = len(suggestions)
