"""Fleet-plane observability overhead on the multi-tenant campaign.

Measures the wall-clock cost of the fleet observability plane (rollup
engine + watch stream + WAL barriers) against the plain campaign path:

* ``off``      — no ObservabilitySpec at all (the seed path);
* ``disabled`` — a spec with ``enabled=False`` (must cost nothing);
* ``fleet``    — in-memory fleet plane: rollups + watch stream;
* ``durable``  — fleet plane with WAL barriers, watch JSONL, and the
  OpenMetrics export (the crash-recoverable configuration).

Two gates: a *disabled* spec must cost nothing measurable (< 2 % over
the seed path, the shared budget of every disabled observability knob),
and the fleet plane must never change decisions — every mode produces
identical cell outcomes.
"""

import json
import os
import shutil
import tempfile
import time

from repro.campaign import CampaignService, TenantCell, TenantSpec, TenantsSpec
from repro.observability import FleetSpec, ObservabilitySpec, read_watch_stream

from benchmarks.conftest import emit, write_bench

ROUNDS = 5
TENANTS = ("alice", "bob", "carol")
CELLS_PER_TENANT = 15


def burn_cell(cell, lease):
    """Cheap deterministic cell: a small compute burn + a fake makespan."""
    i = cell.params["i"]
    acc = 0
    for k in range(5_000):
        acc = (acc + k * i) % 1_000_003
    return {"makespan": 10.0 + (i % 7), "acc": acc, "cores": lease.cores}


def build_service(mode: str, workdir: str | None):
    observability = None
    journal_root = None
    if mode == "disabled":
        observability = ObservabilitySpec(enabled=False, fleet=FleetSpec())
    elif mode == "fleet":
        observability = ObservabilitySpec(fleet=FleetSpec())
    elif mode == "durable":
        journal_root = os.path.join(workdir, "wal")
        observability = ObservabilitySpec(fleet=FleetSpec(
            openmetrics_path=os.path.join(workdir, "fleet.om"),
        ))
    svc = CampaignService(
        TenantsSpec(nodes=8, cores_per_node=4,
                    tenants=tuple(TenantSpec(t) for t in TENANTS)),
        journal_root=journal_root,
        run_cell=burn_cell,
        observability=observability,
    )
    for i in range(CELLS_PER_TENANT):
        for tenant in TENANTS:
            svc.submit(TenantCell(tenant, dict, params={"i": i}))
    return svc


def one_sample(mode: str) -> tuple[float, str]:
    """Wall time of one full campaign + an outcome digest, in *mode*."""
    workdir = tempfile.mkdtemp(prefix="bench-fleet-") if mode == "durable" else None
    try:
        t0 = time.perf_counter()
        svc = build_service(mode, workdir)
        records = svc.run_pending()
        elapsed = time.perf_counter() - t0
        digest = json.dumps(
            [(r["tenant"], r["cell_id"], r["status"], r["result"]) for r in records],
            sort_keys=True,
        )
        if mode == "durable":
            # The durable stream must replay byte-for-byte through the reader.
            assert read_watch_stream(svc.watch_path) == svc.watch()
        return elapsed, digest
    finally:
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)


def measure() -> dict:
    modes = ("off", "disabled", "fleet", "durable")
    one_sample("off")  # warm caches/allocator before any timing
    # Interleave the modes round-robin and keep each mode's best time so
    # slow drift hits every mode equally instead of biasing the first.
    times = {mode: float("inf") for mode in modes}
    digests = {}
    for _ in range(ROUNDS):
        for mode in modes:
            elapsed, digests[mode] = one_sample(mode)
            times[mode] = min(times[mode], elapsed)
    seed = times["off"]
    cells = len(TENANTS) * CELLS_PER_TENANT
    return {
        "seconds": {m: round(t, 4) for m, t in times.items()},
        "overhead_pct": {
            m: round(100 * (t / seed - 1.0), 2) for m, t in times.items() if m != "off"
        },
        "cells_per_sec": round(cells / seed, 1),
        "outcomes_identical": len(set(digests.values())) == 1,
    }


def report(payload: dict) -> None:
    lines = [f"{'mode':<10} {'wall(s)':>9} {'overhead':>9}"]
    for mode, t in payload["seconds"].items():
        over = payload["overhead_pct"].get(mode)
        lines.append(
            f"{mode:<10} {t:>9.4f} " + (f"{over:>+8.2f}%" if over is not None else "     seed")
        )
    lines.append(f"cells/sec (seed path): {payload['cells_per_sec']}")
    lines.append(
        f"cell outcomes identical across all modes: {payload['outcomes_identical']}"
    )
    emit("fleet observability overhead (3-tenant campaign)", lines)
    print("BENCH " + json.dumps(payload, sort_keys=True))


def check(payload: dict) -> None:
    # The fleet plane is an observer: it must never change outcomes.
    assert payload["outcomes_identical"], "fleet plane changed cell outcomes"
    # A disabled spec takes the seed path; its cost must be noise.
    assert payload["overhead_pct"]["disabled"] < 2.0, (
        f"disabled-fleet overhead {payload['overhead_pct']['disabled']}% exceeds 2%"
    )


def test_fleet_observability_overhead(benchmark):
    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(payload)
    check(payload)
    benchmark.extra_info["bench"] = payload
    write_bench(
        "fleet_observability",
        {"tenants": len(TENANTS), "cells_per_tenant": CELLS_PER_TENANT,
         "rounds": ROUNDS, "machine": "8x4"},
        {
            "seconds": payload["seconds"],
            "overhead_pct": payload["overhead_pct"],
            "cells_per_sec": payload["cells_per_sec"],
            "outcomes_identical": payload["outcomes_identical"],
        },
    )
