"""Ablation: history window + pre-analysis vs instantaneous evaluation.

DESIGN.md: with window=1 the PACE policies react to single noisy
timesteps; spurious threshold crossings trigger extra adjustments
(restarts that lose analysis steps).  The paper's 10-value running
average "avoid[s] decisions based on a single timestep" (§4.4).
"""


from repro.experiments import run_gray_scott_experiment

from benchmarks.conftest import emit, write_bench


def count_adjustments(result):
    return sum(1 for p in result.plans if any("INC_ON_PACE" in a or "DEC_ON_PACE" in a
                                              for a in p.accepted))


def test_ablation_history_window(benchmark):
    def run_both():
        windowed = run_gray_scott_experiment("summit", use_dyflow=True, seed=3)
        instant = run_gray_scott_experiment("summit", use_dyflow=True, seed=3,
                                            history_window=1, settle=30.0)
        return windowed, instant

    windowed, instant = benchmark.pedantic(run_both, rounds=1, iterations=1)
    w_n, i_n = count_adjustments(windowed), count_adjustments(instant)
    w_restarts = sum(windowed.incarnations(t) - 1 for t in ("Isosurface", "Rendering", "FFT", "PDF_Calc"))
    i_restarts = sum(instant.incarnations(t) - 1 for t in ("Isosurface", "Rendering", "FFT", "PDF_Calc"))
    emit(
        "Ablation — history window (10, AVG) vs instantaneous (window=1)",
        [
            f"window=10: {w_n} adjustments, {w_restarts} analysis restarts, "
            f"makespan {windowed.makespan:.0f}s",
            f"window=1:  {i_n} adjustments, {i_restarts} analysis restarts, "
            f"makespan {instant.makespan:.0f}s",
        ],
    )
    # Instantaneous evaluation reacts to noise: at least as many plans,
    # and it must not beat the windowed policy's makespan meaningfully.
    assert i_n >= w_n
    benchmark.extra_info["windowed_adjustments"] = w_n
    benchmark.extra_info["instant_adjustments"] = i_n
    write_bench(
        "ablation_history",
        {"machine": "summit", "seed": 3, "windows": [10, 1]},
        {
            "windowed_adjustments": w_n,
            "instant_adjustments": i_n,
            "windowed_restarts": w_restarts,
            "instant_restarts": i_restarts,
            "windowed_makespan": round(windowed.makespan, 1),
            "instant_makespan": round(instant.makespan, 1),
        },
    )
