"""Extension (paper §6): predictive arbitration via trend pre-analysis.

The paper's future work proposes extending Arbitration "from a reactive
to ... a pro-active or predictive stage".  The TREND history operation
implements the Decision-side half: a policy on the pace *slope* fires
while the task is still under the absolute threshold, so the adjustment
lands before the workflow ever violates its deadline budget.

Workload: an analysis whose per-step cost ramps with the data
(RampModel), as the paper says of Isosurface/Rendering.
"""


from repro.apps import ConstantModel, IterativeApp, RampModel
from repro.cluster import Allocation, summit
from repro.core import (
    ActionType,
    GroupBySpec,
    PolicyApplication,
    PolicySpec,
    SensorSpec,
)
from repro.runtime import DyflowOrchestrator
from repro.sim import RngRegistry, SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec

from benchmarks.conftest import emit, write_bench

THRESHOLD = 30.0


def run(policy: PolicySpec) -> tuple[float, float]:
    """Run a ramping workload under one policy.

    Returns (time of first adjustment, peak pace observed).
    """
    eng = SimEngine()
    m = summit(4)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e9)
    tasks = [
        TaskSpec("Sim", lambda: IterativeApp(ConstantModel(10.0), total_steps=80), nprocs=40),
        TaskSpec("Ana", lambda: IterativeApp(RampModel(serial=2.0, parallel=160.0, growth=0.05)),
                 nprocs=10),
    ]
    wf = WorkflowSpec("W", tasks, [DependencySpec("Ana", "Sim", CouplingType.TIGHT)])
    sav = Savanna(eng, wf, alloc, rng=RngRegistry(0))
    orch = DyflowOrchestrator(sav, warmup=30.0, settle=60.0, record_history=True)
    orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task("Ana", "PACE", var="looptime")
    orch.add_policy(policy)
    orch.apply_policy(
        PolicyApplication(policy.policy_id, "W", ("Ana",), assess_task="Ana",
                          action_params={"adjust-by": 30})
    )
    sav.launch_workflow()
    orch.start(stop_when=sav.all_idle)
    eng.run(until=20_000)
    first = orch.plans[0].created if orch.plans else float("inf")
    peak = max((u.value for u in orch.server.history if u.task == "Ana"), default=0.0)
    return first, peak


def test_ablation_predictive_vs_reactive(benchmark):
    reactive = PolicySpec("REACTIVE", "PACE", "GT", THRESHOLD, ActionType.ADDCPU,
                          history_window=5, history_op="AVG", frequency=5.0)
    predictive = PolicySpec("PREDICT", "PACE", "GT", 0.4, ActionType.ADDCPU,
                            history_window=5, history_op="TREND", frequency=5.0)

    def run_both():
        return run(reactive), run(predictive)

    (r_first, r_peak), (p_first, p_peak) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "Extension — predictive (TREND) vs reactive (threshold) policy",
        [
            f"reactive:   first adjustment at t={r_first:.0f}s, peak pace {r_peak:.1f}s",
            f"predictive: first adjustment at t={p_first:.0f}s, peak pace {p_peak:.1f}s",
            f"prediction acts {r_first - p_first:.0f}s earlier and caps the pace "
            f"{r_peak - p_peak:.1f}s lower",
        ],
    )
    assert p_first < r_first, "trend policy must fire before the threshold policy"
    assert p_peak <= r_peak + 1e-6
    benchmark.extra_info["reactive_first"] = round(r_first, 1)
    benchmark.extra_info["predictive_first"] = round(p_first, 1)
    write_bench(
        "ablation_predictive",
        {"machine": "summit", "seed": 0, "threshold": THRESHOLD},
        {
            "reactive_first": round(r_first, 1),
            "predictive_first": round(p_first, 1),
            "reactive_peak": round(r_peak, 2),
            "predictive_peak": round(p_peak, 2),
        },
    )
