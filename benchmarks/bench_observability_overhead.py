"""Observability overhead on the Gray-Scott control loop.

Measures the wall-clock cost of the observability engine against the
seed path at three levels:

* ``off``      — no ObservabilitySpec at all (the seed path);
* ``disabled`` — a spec with ``enabled=False`` (must cost nothing);
* ``health``   — SLO/anomaly evaluation every 5 s, no exports;
* ``full``     — evaluation plus run-report + OpenMetrics export.

Two gates: a *disabled* spec must cost nothing measurable (< 2 % over
the seed path, the same budget as the NullTracer and the disabled
journal), and observability must never change decisions — every mode
reproduces a bit-identical scenario fingerprint.
"""

import json
import os
import shutil
import tempfile
import time

from repro.experiments import run_gray_scott_experiment
from repro.journal import scenario_fingerprint
from repro.observability import AnomalySpec, ObservabilitySpec, SloSpec
from repro.telemetry import TelemetrySpec

from benchmarks.conftest import emit, write_bench

ROUNDS = 5
# One scenario run is ~0.1 s; timing single runs puts the 2 % gate inside
# scheduler jitter.  Each sample therefore times a burst of runs.
RUNS_PER_SAMPLE = 3

SLOS = (SloSpec(metric="plan.response", stat="p95", op="LT", threshold=60.0),)
ANOMALIES = (AnomalySpec(metric="stage.monitor.latency", stat="p95", window=20, z=4.0),)


def one_sample(mode: str) -> tuple[float, str]:
    """Wall time of a burst of runs + fingerprint, in *mode*."""
    workdir = None
    spec = None
    if mode == "disabled":
        spec = ObservabilitySpec(enabled=False)
    elif mode == "health":
        spec = ObservabilitySpec(eval_every=5.0, slos=SLOS, anomalies=ANOMALIES)
    elif mode == "full":
        workdir = tempfile.mkdtemp(prefix="bench-obs-")
        spec = ObservabilitySpec(
            eval_every=5.0, slos=SLOS, anomalies=ANOMALIES,
            report_path=os.path.join(workdir, "report.md"),
            report_json_path=os.path.join(workdir, "report.json"),
            openmetrics_path=os.path.join(workdir, "metrics.prom"),
        )
    t0 = time.perf_counter()
    for _ in range(RUNS_PER_SAMPLE):
        result = run_gray_scott_experiment(
            "summit", use_dyflow=True, telemetry=TelemetrySpec(enabled=True),
            observability=spec,
        )
    elapsed = time.perf_counter() - t0
    fingerprint = scenario_fingerprint(result)
    if workdir is not None:
        shutil.rmtree(workdir, ignore_errors=True)
    return elapsed, fingerprint


def measure() -> dict:
    modes = ("off", "disabled", "health", "full")
    one_sample("off")  # warm caches/allocator before any timing
    # Interleave the modes round-robin and keep each mode's best time
    # (same protocol as the journal-overhead bench): slow drift then
    # hits every mode equally instead of biasing whichever ran first.
    times = {mode: float("inf") for mode in modes}
    prints = {}
    for _ in range(ROUNDS):
        for mode in modes:
            elapsed, prints[mode] = one_sample(mode)
            times[mode] = min(times[mode], elapsed)
    seed = times["off"]
    return {
        "seconds": {m: round(t, 4) for m, t in times.items()},
        "overhead_pct": {
            m: round(100 * (t / seed - 1.0), 2) for m, t in times.items() if m != "off"
        },
        "fingerprints_identical": len(set(prints.values())) == 1,
    }


def report(payload: dict) -> None:
    lines = [f"{'mode':<10} {'wall(s)':>9} {'overhead':>9}"]
    for mode, t in payload["seconds"].items():
        over = payload["overhead_pct"].get(mode)
        lines.append(
            f"{mode:<10} {t:>9.4f} " + (f"{over:>+8.2f}%" if over is not None else "     seed")
        )
    lines.append(
        "fingerprints identical across all modes: "
        f"{payload['fingerprints_identical']}"
    )
    emit("observability overhead (summit)", lines)
    print("BENCH " + json.dumps(payload, sort_keys=True))


def check(payload: dict) -> None:
    # Health evaluation is read-only over the metrics registry: it must
    # never change decisions, whatever mode it runs in.
    assert payload["fingerprints_identical"], "observability changed the run"
    # A disabled spec takes the seed path; its cost must be noise.
    assert payload["overhead_pct"]["disabled"] < 2.0, (
        f"disabled-observability overhead {payload['overhead_pct']['disabled']}% exceeds 2%"
    )


def test_observability_overhead(benchmark):
    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(payload)
    check(payload)
    benchmark.extra_info["bench"] = payload
    write_bench(
        "observability_overhead",
        {"machine": "summit", "rounds": ROUNDS,
         "slos": len(SLOS), "anomalies": len(ANOMALIES)},
        {
            "seconds": payload["seconds"],
            "overhead_pct": payload["overhead_pct"],
            "fingerprints_identical": payload["fingerprints_identical"],
        },
    )
