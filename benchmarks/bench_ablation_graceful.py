"""Ablation: graceful vs immediate termination.

"The response times significantly reduce on both clusters if the tasks
are not allowed to terminate gracefully" (§4.4) — at the price of
killing tasks mid-timestep (in-flight work lost, exit codes > 128).
"""


from repro.experiments import run_gray_scott_experiment

from benchmarks.conftest import emit, write_bench


def test_ablation_graceful_termination(benchmark):
    def run_both():
        graceful = run_gray_scott_experiment("summit", use_dyflow=True)
        immediate = run_gray_scott_experiment("summit", use_dyflow=True, graceful_stops=False)
        return graceful, immediate

    graceful, immediate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    g_resp = [p.response_time for p in graceful.plans
              if any("INC_ON_PACE" in a for a in p.accepted)]
    i_resp = [p.response_time for p in immediate.plans
              if any("INC_ON_PACE" in a for a in p.accepted)]
    emit(
        "Ablation — graceful vs immediate termination",
        [
            f"graceful:  responses {[round(r, 1) for r in g_resp]} s "
            f"(stop share {graceful.plans[0].stop_share():.0%})",
            f"immediate: responses {[round(r, 1) for r in i_resp]} s",
            f"speedup of the first response: {g_resp[0] / i_resp[0]:.1f}×",
        ],
    )
    assert i_resp and g_resp
    assert i_resp[0] < 0.3 * g_resp[0], "immediate stops must collapse response time"
    benchmark.extra_info["graceful_first_response"] = round(g_resp[0], 2)
    benchmark.extra_info["immediate_first_response"] = round(i_resp[0], 2)
    write_bench(
        "ablation_graceful",
        {"machine": "summit", "seed": 0},
        {
            "graceful_responses": [round(r, 2) for r in g_resp],
            "immediate_responses": [round(r, 2) for r in i_resp],
            "first_response_speedup": round(g_resp[0] / i_resp[0], 2),
        },
    )
