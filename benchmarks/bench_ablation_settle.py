"""Ablation: the settle-down window after actuation.

"It discards all the suggested actions for 2 mins after the running
workflow is modified" (§4.4).  Without the window, metric values
produced under the *old* configuration — still sitting in policy
windows — immediately retrigger adjustments before the new
configuration has produced a single clean measurement.
"""


from repro.experiments import run_gray_scott_experiment

from benchmarks.conftest import emit, write_bench


def test_ablation_settle_window(benchmark):
    def run_both():
        settled = run_gray_scott_experiment("summit", use_dyflow=True)
        unsettled = run_gray_scott_experiment("summit", use_dyflow=True, settle=1.0)
        return settled, unsettled

    settled, unsettled = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def churn(result):
        plans = [p for p in result.plans
                 if any("INC_ON_PACE" in a or "DEC_ON_PACE" in a for a in p.accepted)]
        restarts = sum(result.incarnations(t) - 1
                       for t in ("Isosurface", "Rendering", "FFT", "PDF_Calc"))
        return len(plans), restarts

    s_plans, s_restarts = churn(settled)
    u_plans, u_restarts = churn(unsettled)
    emit(
        "Ablation — settle-down window (120 s) vs none",
        [
            f"settle=120s: {s_plans} adjustment plans, {s_restarts} analysis restarts",
            f"settle=1s:   {u_plans} adjustment plans, {u_restarts} analysis restarts",
        ],
    )
    assert u_plans >= s_plans, "removing the settle window must not reduce churn"
    benchmark.extra_info["settled_plans"] = s_plans
    benchmark.extra_info["unsettled_plans"] = u_plans
    write_bench(
        "ablation_settle",
        {"machine": "summit", "seed": 0, "settle_seconds": [120.0, 1.0]},
        {
            "settled_plans": s_plans,
            "unsettled_plans": u_plans,
            "settled_restarts": s_restarts,
            "unsettled_restarts": u_restarts,
        },
    )
