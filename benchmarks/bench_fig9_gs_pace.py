"""Figure 9: average time per timestep as the Decision stage receives it.

The paper's series shows every task starting near 40 s (above the 36 s
threshold), dropping after each adjustment, resetting across restarts,
and settling inside the desired [24, 36] s interval.
"""


from repro.apps.gray_scott import ANALYSIS_TASKS
from repro.experiments import run_gray_scott_experiment

from benchmarks.conftest import emit, write_bench

INC_THRESHOLD = 36.0
DEC_THRESHOLD = 24.0


def test_fig9_pace_series(benchmark, gs_summit):
    result = benchmark.pedantic(
        lambda: run_gray_scott_experiment("summit", use_dyflow=True), rounds=1, iterations=1
    )
    lines = []
    for task in ("GrayScott",) + ANALYSIS_TASKS:
        series = result.pace_series(task)
        if not series:
            continue
        rendered = " ".join(f"{v:.0f}" for _t, v in series)
        lines.append(f"{task:<11} {rendered}")
    adjustments = [p for p in result.plans if any("INC_ON_PACE" in a for a in p.accepted)]
    lines.append(f"adjustments at t={[round(p.created) for p in adjustments]}s "
                 f"(thresholds: INC>{INC_THRESHOLD}, DEC<{DEC_THRESHOLD})")
    emit("Figure 9 — average time per timestep (per task)", lines)

    iso = result.pace_series("Isosurface")
    # Before the first adjustment: above the INC threshold.
    first = adjustments[0].created
    early = [v for t, v in iso if t < first]
    assert early and max(early) > INC_THRESHOLD
    # After the last adjustment settles: inside the desired interval.
    last_end = adjustments[-1].execution_end
    tail = [v for t, v in iso if t > last_end + 120][2:]
    assert tail and all(DEC_THRESHOLD - 2 < v < INC_THRESHOLD for v in tail)
    benchmark.extra_info["early_max"] = round(max(early), 1)
    benchmark.extra_info["settled_range"] = (round(min(tail), 1), round(max(tail), 1))
    benchmark.extra_info["paper_interval"] = (DEC_THRESHOLD, INC_THRESHOLD)
    write_bench(
        "fig9_gs_pace",
        {"machine": "summit", "seed": 0,
         "thresholds": {"inc": INC_THRESHOLD, "dec": DEC_THRESHOLD}},
        {
            "early_max": round(max(early), 1),
            "settled_range": [round(min(tail), 1), round(max(tail), 1)],
            "adjustment_times": [round(p.created, 1) for p in adjustments],
        },
    )
