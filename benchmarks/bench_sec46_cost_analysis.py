"""§4.6: cost analysis of DYFLOW itself.

Paper numbers: event→response lag below 1 s on average (excluding the
decision-frequency delay) — ≈0.2 s for a file variable, ≈0.5 s for
streamed TAU data; ≈97 % of response time spent waiting for graceful
termination; plan formulation itself is cheap.
"""

import pytest

from repro.experiments import run_cost_analysis

from benchmarks.conftest import emit, write_bench

PAPER = {"file_lag": 0.2, "stream_lag": 0.5, "stop_share": 0.97}


def test_sec46_summit(benchmark):
    report = benchmark.pedantic(lambda: run_cost_analysis("summit"), rounds=1, iterations=1)
    emit(
        "§4.6 — DYFLOW cost analysis (Summit)",
        [
            f"file read lag:   {report.file_lag:.2f}s   (paper ≈{PAPER['file_lag']}s)",
            f"stream read lag: {report.stream_lag:.2f}s   (paper ≈{PAPER['stream_lag']}s)",
            f"stop share of response: {report.stop_share:.0%} (paper ≈97%)",
            f"plan formulation time: {report.plan_time:.3f}s (paper: low)",
            f"total response: {report.response_time:.2f}s",
        ],
    )
    assert report.file_lag == pytest.approx(PAPER["file_lag"], abs=0.1)
    assert report.stream_lag == pytest.approx(PAPER["stream_lag"], abs=0.15)
    assert report.stream_lag > report.file_lag
    assert report.stop_share > 0.9
    assert report.plan_time < 0.5
    benchmark.extra_info["measured"] = {
        "file_lag": report.file_lag,
        "stream_lag": report.stream_lag,
        "stop_share": round(report.stop_share, 3),
    }
    benchmark.extra_info["paper"] = PAPER
    write_bench(
        "sec46_cost_analysis",
        {"machine": "summit", "paper": PAPER},
        {
            "file_lag": report.file_lag,
            "stream_lag": report.stream_lag,
            "stop_share": round(report.stop_share, 3),
            "plan_time": round(report.plan_time, 4),
            "response_time": round(report.response_time, 2),
        },
    )


def test_sec46_both_machines_average_lag_below_1s(benchmark):
    reports = benchmark.pedantic(
        lambda: [run_cost_analysis("summit"), run_cost_analysis("deepthought2")],
        rounds=1, iterations=1,
    )
    lags = [r.file_lag for r in reports] + [r.stream_lag for r in reports]
    avg = sum(lags) / len(lags)
    emit(
        "§4.6 — average event→response lag across clusters",
        [f"average lag {avg:.2f}s over {len(lags)} source/machine pairs (paper: <1 s)"],
    )
    assert avg < 1.0
    benchmark.extra_info["average_lag"] = round(avg, 3)
