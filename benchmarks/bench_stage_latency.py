"""Per-stage response-time breakdown of the DYFLOW control loop (§4.6).

Runs the Gray-Scott scenario with telemetry enabled on both machine
models and reports p50/p95 of the four stage-latency histograms the
instrumentation fills:

* ``stage.monitor.latency``     — envelope staleness at server ingest
  (sensor read lag + transport), the paper's 0.2 s file / ≈0.5 s stream
  figures;
* ``stage.decision.latency``    — metric event → suggested action
  (includes the policy's evaluation-frequency gate);
* ``stage.arbitration.latency`` — suggestion batch → granted plan handoff;
* ``stage.actuation.latency``   — plan execution, dominated by waiting
  for graceful termination (the paper's ≈97 % share).

Each test prints one ``BENCH {...}`` JSON line with the full breakdown,
and the same payload rides on the pytest-benchmark ``extra_info``.
The overhead test checks the NullTracer claim: an instrumented-but-
disabled run must stay within 2 % wall time of the untraced seed path.
"""

import json
import time

from repro.experiments import run_gray_scott_experiment
from repro.telemetry import TelemetrySpec

from benchmarks.conftest import emit, write_bench

STAGES = ("monitor", "decision", "arbitration", "actuation")


def stage_breakdown(machine: str) -> dict:
    result = run_gray_scott_experiment(machine, use_dyflow=True,
                                       telemetry=TelemetrySpec())
    metrics = result.tracer.metrics
    stages = {}
    for stage in STAGES:
        hist = metrics.histogram(f"stage.{stage}.latency")
        stages[stage] = {
            "count": hist.count,
            "p50": round(hist.p50, 4),
            "p95": round(hist.p95, 4),
            "mean": round(hist.mean, 4),
        }
    response = metrics.histogram("plan.response")
    return {
        "machine": machine,
        "makespan": round(result.makespan, 1),
        "plans": len(result.plans),
        "stages": stages,
        "response": {"count": response.count,
                     "p50": round(response.p50, 2),
                     "p95": round(response.p95, 2)},
    }


def report(payload: dict) -> None:
    lines = [
        f"{'stage':<12} {'count':>6} {'p50(s)':>10} {'p95(s)':>10}",
        *(
            f"{stage:<12} {row['count']:>6} {row['p50']:>10.4f} {row['p95']:>10.4f}"
            for stage, row in payload["stages"].items()
        ),
        f"plan response: p50={payload['response']['p50']}s "
        f"p95={payload['response']['p95']}s over {payload['plans']} plans",
    ]
    emit(f"per-stage control-loop latency ({payload['machine']})", lines)
    print("BENCH " + json.dumps(payload, sort_keys=True))


def check(payload: dict) -> None:
    for stage in STAGES:
        row = payload["stages"][stage]
        assert row["count"] > 0, f"no {stage} latency observations"
        assert 0.0 <= row["p50"] <= row["p95"]
    # The paper's shape: actuation (graceful stops) dominates, while
    # monitor ingest stays sub-second.
    assert payload["stages"]["actuation"]["p50"] > payload["stages"]["monitor"]["p50"]
    assert payload["stages"]["monitor"]["p95"] < 1.0


def test_stage_latency_summit(benchmark):
    payload = benchmark.pedantic(lambda: stage_breakdown("summit"), rounds=1, iterations=1)
    report(payload)
    check(payload)
    benchmark.extra_info["bench"] = payload
    write_bench(
        "stage_latency",
        {"machine": "summit", "seed": 0},
        {"stages": payload["stages"], "response": payload["response"]},
    )


def test_stage_latency_deepthought2(benchmark):
    payload = benchmark.pedantic(lambda: stage_breakdown("deepthought2"), rounds=1, iterations=1)
    report(payload)
    check(payload)
    benchmark.extra_info["bench"] = payload


def test_null_tracer_overhead_below_two_percent(benchmark):
    """Telemetry off (the default NullTracer path) vs the seed run."""

    def timed(telemetry):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            run_gray_scott_experiment("summit", use_dyflow=True, telemetry=telemetry)
            best = min(best, time.perf_counter() - t0)
        return best

    def measure():
        return {"seed": timed(None), "disabled": timed(TelemetrySpec(enabled=False))}

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = out["disabled"] / out["seed"] - 1.0
    payload = {
        "seed_s": round(out["seed"], 4),
        "disabled_s": round(out["disabled"], 4),
        "overhead_pct": round(100 * overhead, 2),
    }
    emit(
        "NullTracer overhead (telemetry disabled vs seed path)",
        [f"seed {payload['seed_s']}s, disabled {payload['disabled_s']}s "
         f"-> {payload['overhead_pct']:+.2f}% (budget < 2%)"],
    )
    print("BENCH " + json.dumps(payload, sort_keys=True))
    assert overhead < 0.02, f"NullTracer overhead {100 * overhead:.2f}% exceeds 2%"
    benchmark.extra_info["bench"] = payload
    write_bench(
        "null_tracer_overhead",
        {"machine": "summit", "seed": 0, "repeats": 3},
        payload,
    )
