"""Figure 11 (+ §4.5): LAMMPS node-failure resilience.

Paper shape: 10 minutes in, a node is taken out of service and the whole
workflow fails (every task co-locates on every node).  DYFLOW restarts
all tasks excluding the failed node, using a spare node from the
allocation; the simulation resumes from checkpoint 412 and repeats a few
timesteps.  Response ≈0.2 s on Summit, ≈0.4 s on Deepthought2.
"""


from repro.experiments import render_gantt, run_lammps_experiment

from benchmarks.conftest import emit, write_bench

PAPER = {"restart_step": 412, "summit_response": 0.2, "dt2_response": 0.4}


def test_fig11_summit(benchmark):
    result = benchmark.pedantic(
        lambda: run_lammps_experiment("summit", use_dyflow=True), rounds=1, iterations=1
    )
    plan = [p for p in result.plans if p.ops][0]
    lines = [
        render_gantt(result.trace, end_time=result.makespan),
        "",
        f"node {result.meta['failed_node']} failed at t={result.meta['failure_time']:.0f}s",
        f"restart plan at t={plan.created:.1f}s, response={plan.response_time:.2f}s "
        f"(paper ≈{PAPER['summit_response']}s)",
        f"simulation resumed from checkpoint step {result.meta['restart_step']} "
        f"(paper: {PAPER['restart_step']})",
        f"simulation completed: {result.meta['sim_completed']}, makespan {result.makespan:.0f}s",
    ]
    emit("Figure 11 — LAMMPS node-failure resilience on Summit", lines)

    assert result.meta["restart_step"] == PAPER["restart_step"]
    assert result.meta["sim_completed"]
    assert plan.response_time < 2.0
    failed = result.meta["failed_node"]
    for op in plan.ops:
        if op.op == "start_task":
            assert op.resources.cores_on(failed) == 0
    benchmark.extra_info["response"] = round(plan.response_time, 3)
    benchmark.extra_info["restart_step"] = result.meta["restart_step"]
    benchmark.extra_info["paper"] = PAPER
    write_bench(
        "fig11_lammps_failure",
        {"machine": "summit", "paper": PAPER},
        {
            "response": round(plan.response_time, 3),
            "restart_step": result.meta["restart_step"],
            "makespan": round(result.makespan, 1),
        },
    )


def test_fig11_deepthought2(benchmark, lammps_summit):
    result = benchmark.pedantic(
        lambda: run_lammps_experiment("deepthought2", use_dyflow=True), rounds=1, iterations=1
    )
    plan = [p for p in result.plans if p.ops][0]
    s_plan = [p for p in lammps_summit.plans if p.ops][0]
    emit(
        "§4.5 — LAMMPS resilience on Deepthought2",
        [
            f"response={plan.response_time:.2f}s vs Summit {s_plan.response_time:.2f}s "
            f"(paper: 0.4s vs 0.2s)",
            f"simulation completed: {result.meta['sim_completed']}",
        ],
    )
    assert result.meta["sim_completed"]
    assert plan.response_time > s_plan.response_time
    benchmark.extra_info["response"] = round(plan.response_time, 3)


def test_fig11_no_dyflow_counterfactual(benchmark):
    result = benchmark.pedantic(
        lambda: run_lammps_experiment("summit", use_dyflow=False), rounds=1, iterations=1
    )
    rows = {r["task"]: r for r in result.summary_rows()}
    emit(
        "§4.5 — without DYFLOW the failed workflow never recovers",
        [f"{t}: state={r['state']}, exit={r['exit_code']}, last step {r['last_step']}"
         for t, r in rows.items()],
    )
    assert rows["LAMMPS"]["state"] == "failed"
    assert not result.meta["sim_completed"]
