"""Figure 1: DYFLOW improves in-situ workflow throughput by rebalancing.

The figure shows average time per timestep falling into the desired
interval after DYFLOW's response windows (red bars): resources are taken
from running analysis tasks and used to grow the bottleneck analysis.
We regenerate the throughput (steps/hour) time series before and after
each response window from the Gray-Scott run.
"""


from repro.experiments import run_gray_scott_experiment

from benchmarks.conftest import emit, write_bench


def throughput_series(result, bucket=120.0):
    """Workflow throughput (completed sim steps per hour) per time bucket."""
    store_times = [
        (u.time, u.value) for u in result.metric_history if u.task == "Isosurface"
    ]
    # Use simulation output markers for true completed steps.
    fs = result.launcher.hub.filesystem
    marks = sorted(e.mtime for e in fs.scan("out/GS-WORKFLOW/GrayScott.out.*"))
    series = []
    t = 0.0
    while t < result.makespan:
        n = sum(1 for m in marks if t <= m < t + bucket)
        series.append((t, 3600.0 * n / bucket))
        t += bucket
    return series


def test_fig1_throughput_improves(benchmark, gs_summit):
    result = benchmark.pedantic(
        lambda: run_gray_scott_experiment("summit", use_dyflow=True), rounds=1, iterations=1
    )
    series = throughput_series(result)
    windows = [
        (p.execution_start, p.execution_end)
        for p in result.plans
        if p.execution_end is not None and any("INC_ON_PACE" in a for a in p.accepted)
    ]
    lines = ["time(s)  steps/hour"]
    for t, rate in series:
        marker = " <-- DYFLOW response window" if any(
            lo <= t <= hi or (t <= lo < t + 120) for lo, hi in windows
        ) else ""
        lines.append(f"{t:7.0f}  {rate:8.1f}{marker}")
    emit("Figure 1 — in-situ workflow throughput around rebalancing", lines)

    # Bucketed rates are coarse (3–5 steps per bucket); judge the
    # improvement on mean step intervals: the rebalanced tail vs the
    # steady pace of a never-rebalanced (static) run.
    fs = result.launcher.hub.filesystem
    marks = sorted(e.mtime for e in fs.scan("out/GS-WORKFLOW/GrayScott.out.*"))
    last_window_end = max(hi for _lo, hi in windows)
    after_marks = [m for m in marks if m > last_window_end]
    after_dt = (after_marks[-1] - after_marks[0]) / max(1, len(after_marks) - 1)
    static = run_gray_scott_experiment("summit", use_dyflow=False, enforce_walltime=False)
    s_marks = sorted(
        e.mtime for e in static.launcher.hub.filesystem.scan("out/GS-WORKFLOW/GrayScott.out.*")
    )[5:]  # skip the buffer-fill burst
    static_dt = (s_marks[-1] - s_marks[0]) / max(1, len(s_marks) - 1)
    assert static_dt > 1.2 * after_dt, "throughput must improve materially after rebalancing"
    benchmark.extra_info["sec_per_step_static"] = round(static_dt, 1)
    benchmark.extra_info["sec_per_step_after"] = round(after_dt, 1)
    benchmark.extra_info["response_windows"] = [(round(a, 1), round(b, 1)) for a, b in windows]
    write_bench(
        "fig1_throughput",
        {"machine": "summit", "seed": 0, "bucket_seconds": 120.0},
        {
            "sec_per_step_static": round(static_dt, 1),
            "sec_per_step_after": round(after_dt, 1),
            "response_windows": [[round(a, 1), round(b, 1)] for a, b in windows],
        },
    )
