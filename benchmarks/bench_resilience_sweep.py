"""Resilience sweep: useful throughput vs injected failure rate.

Sweeps the chaos engine's task-crash MTBF over a fixed four-task
workload with the full recovery stack enabled (retry/backoff,
checkpoint-restart, watchdog, quarantine).  The figure of merit is
*completed steps per core-hour*: injected failures burn core-hours on
re-run work and backoff idle time, so throughput decays as the failure
rate rises — but with checkpoint-restart every scenario still finishes.
"""


from repro.cluster import Allocation, summit
from repro.resilience import (
    ChaosEngine,
    CheckpointSpec,
    FaultModelSpec,
    QuarantineSpec,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)
from repro.sim import SimEngine
from repro.sim.rng import RngRegistry
from repro.wms import Savanna, TaskSpec, TaskState, WorkflowSpec
from repro.apps import ConstantModel, IterativeApp

from benchmarks.conftest import emit, write_bench

NTASKS = 4
NPROCS = 8
TOTAL_STEPS = 300
HORIZON = 50_000.0
SEED = 42

RESILIENCE = ResilienceSpec(
    retry=RetryPolicy(max_retries=200, backoff_base=2.0, backoff_factor=2.0,
                      backoff_max=60.0, jitter=0.25),
    watchdog=WatchdogSpec(heartbeat_timeout=120.0, poll=10.0),
    quarantine=QuarantineSpec(failures=5, window=3600.0, cooldown=600.0),
    checkpoint=CheckpointSpec(every=20, resume=True),
)

# task-crash MTBF sweep (seconds); 0 disables injection entirely.
SWEEP = [0.0, 1000.0, 250.0, 60.0]


def workload_done(sav) -> bool:
    return all(
        rec.current is not None and rec.current.state == TaskState.COMPLETED
        for rec in sav.records.values()
    )


def run_scenario(task_crash_mtbf: float, seed: int = SEED):
    eng = SimEngine()
    machine = summit(6)
    alloc = Allocation("a0", machine, machine.nodes, walltime_limit=HORIZON)
    tasks = [
        TaskSpec(
            f"T{i}",
            lambda: IterativeApp(ConstantModel(1.0), total_steps=TOTAL_STEPS),
            nprocs=NPROCS,
        )
        for i in range(NTASKS)
    ]
    sav = Savanna(eng, WorkflowSpec("SWEEP", tasks, []), alloc,
                  rng=RngRegistry(seed), resilience=RESILIENCE)
    chaos = None
    if task_crash_mtbf > 0:
        chaos = ChaosEngine(sav, FaultModelSpec(task_crash_mtbf=task_crash_mtbf,
                                                node_mtbf=8 * task_crash_mtbf,
                                                node_repair_time=300.0))
        chaos.start()
    sav.launch_workflow()
    # Advance in slices so injection stops once the workload is done —
    # otherwise the chaos loops keep firing against an idle allocation
    # all the way to the horizon.
    while eng.now < HORIZON:
        eng.run(until=min(eng.now + 100.0, HORIZON))
        if workload_done(sav):
            break
    if chaos is not None:
        chaos.stop()

    makespan = 0.0
    completed_steps = 0
    restarts = 0
    all_done = True
    for i in range(NTASKS):
        rec = sav.record(f"T{i}")
        restarts += rec.incarnations - 1
        done = rec.current.state.value == "completed"
        all_done = all_done and done
        if done:
            completed_steps += TOTAL_STEPS
            makespan = max(makespan, rec.current.end_time)
        else:
            makespan = HORIZON
    core_hours = NTASKS * NPROCS * makespan / 3600.0
    return {
        "mtbf": task_crash_mtbf,
        "faults": len(chaos.history) if chaos else 0,
        "restarts": restarts,
        "all_done": all_done,
        "makespan": makespan,
        "steps_per_core_hour": completed_steps / core_hours if core_hours else 0.0,
    }


def test_resilience_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_scenario(mtbf) for mtbf in SWEEP], rounds=1, iterations=1
    )
    lines = [f"{'MTBF':>8} {'faults':>7} {'restarts':>9} {'makespan':>9} {'steps/core-h':>13}"]
    for r in rows:
        label = "none" if r["mtbf"] == 0 else f"{r['mtbf']:.0f}"
        lines.append(
            f"{label:>8} {r['faults']:>7} {r['restarts']:>9} "
            f"{r['makespan']:>9.0f} {r['steps_per_core_hour']:>13.1f}"
        )
    emit("Resilience sweep — throughput vs task-crash MTBF", lines)

    assert all(r["all_done"] for r in rows)  # recovery always finishes the work
    baseline, heaviest = rows[0], rows[-1]
    assert baseline["faults"] == 0 and baseline["restarts"] == 0
    assert heaviest["faults"] > 0 and heaviest["restarts"] > 0
    # Injected failures cost real throughput.
    assert heaviest["steps_per_core_hour"] < baseline["steps_per_core_hour"]
    benchmark.extra_info["sweep"] = [
        {"mtbf": r["mtbf"], "steps_per_core_hour": round(r["steps_per_core_hour"], 2),
         "restarts": r["restarts"]} for r in rows
    ]
    write_bench(
        "resilience_sweep",
        {"machine": "summit", "seed": SEED, "mtbf_sweep": SWEEP,
         "tasks": NTASKS, "total_steps": TOTAL_STEPS},
        {"sweep": benchmark.extra_info["sweep"]},
    )


def test_resilience_sweep_is_deterministic(benchmark):
    a, b = benchmark.pedantic(
        lambda: (run_scenario(60.0), run_scenario(60.0)), rounds=1, iterations=1
    )
    emit(
        "Resilience sweep — fixed-seed replay",
        [f"run 1: {a}", f"run 2: {b}"],
    )
    assert a == b
