"""Core-kernel throughput: events/ticks/envelopes per wall-second.

Drives the synthetic N-task scenario (``repro.experiments.synthetic``)
at 1k/5k/10k tasks and reports how fast the discrete-event core and the
four-stage control loop chew through it.  The artifact
(``BENCH_core_throughput.json``) is the budget every future PR is held
to: the ``core-throughput-smoke`` CI job re-runs the smoke size and
fails when ticks/sec regresses more than 10% against the committed
numbers.

CLI usage (what CI runs)::

    PYTHONPATH=src python benchmarks/bench_core_throughput.py --smoke \
        --check benchmarks/BENCH_core_throughput.json

``--smoke`` runs only the 1k-task size; ``--check`` compares
calibration-normalized ticks/sec against a committed artifact (each
run divides by its own bare-engine event rate, so machine speed
cancels out).  Without ``--check`` the run just writes the artifact
(``$BENCH_OUTPUT_DIR``, default ``benchmarks/`` — the canonical
artifact location).

Reading the JSON: one row per scenario size under ``metrics.sizes``;
``ticks_per_sec`` is the headline number (control-loop iterations per
wall-second, launch included), ``events_per_sec`` the raw engine rate,
``envelopes_per_sec`` the monitor-fabric delivery rate.
``metrics.calibration_events_per_sec`` is the machine-speed yardstick
used by ``--check``.  Raw counters ride along so rates can be
recomputed.  See docs/performance.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.synthetic import run_synthetic_experiment
from repro.sim import SimEngine

SMOKE_SIZES = (1000,)
FULL_SIZES = (1000, 5000, 10000)
REGRESSION_BUDGET = 0.10  # fail --check beyond 10% normalized ticks/sec loss
CALIBRATION_EVENTS = 200_000


def calibrate(repeats: int = 3) -> float:
    """Events/sec of a bare engine loop — the machine-speed yardstick.

    Absolute ticks/sec cannot be compared across machines (or even
    across runs on a loaded CI box), so :func:`check_regression`
    normalizes by this rate: the same event-heap code path the scenario
    exercises, with no model or fabric work, measured in-process right
    before the suite.  Best of *repeats* to shed scheduler noise.
    """
    best = float("inf")
    for _ in range(repeats):
        engine = SimEngine()
        for i in range(CALIBRATION_EVENTS):
            engine.call_at((i % 64) * 0.5, lambda: None)
        t0 = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - t0)
    return round(CALIBRATION_EVENTS / best, 1)


def measure(num_tasks: int, repeats: int = 1) -> dict:
    """Run the synthetic scenario; return rates from the best repeat."""
    best = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        res = run_synthetic_experiment(num_tasks)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, res)
    wall, res = best
    m = res.meta
    return {
        "num_tasks": num_tasks,
        "wall_seconds": round(wall, 3),
        "makespan": res.makespan,
        "events_executed": m["events_executed"],
        "ticks": m["ticks"],
        "envelopes": m["envelopes"],
        "updates_seen": m["updates_seen"],
        "events_per_sec": round(m["events_executed"] / wall, 1),
        "ticks_per_sec": round(m["ticks"] / wall, 2),
        "envelopes_per_sec": round(m["envelopes"] / wall, 1),
        "updates_per_sec": round(m["updates_seen"] / wall, 1),
    }


def run_suite(sizes=FULL_SIZES, repeats: int = 1) -> dict:
    return {
        "calibration_events_per_sec": calibrate(),
        "sizes": {str(n): measure(n, repeats=repeats) for n in sizes},
    }


def check_regression(metrics: dict, committed_path: str) -> list[str]:
    """Compare calibration-normalized ticks/sec against a committed artifact.

    Each run's ticks/sec is divided by its own :func:`calibrate` rate,
    cancelling machine speed and load out of the comparison; what is
    left is the scenario's per-event overhead relative to a bare engine
    loop — the thing a core regression actually changes.  Only sizes
    present in both runs are compared (the smoke job measures 1k
    against the committed full suite).  Returns failure messages.
    """
    with open(committed_path, encoding="utf-8") as fh:
        committed = json.load(fh)
    failures: list[str] = []
    base_metrics = committed["metrics"]
    base_sizes = base_metrics["sizes"]
    base_calib = base_metrics.get("calibration_events_per_sec")
    calib = metrics.get("calibration_events_per_sec")
    for size, row in metrics["sizes"].items():
        base = base_sizes.get(size)
        if base is None:
            continue
        if base_calib and calib:
            ours = row["ticks_per_sec"] / calib
            theirs = base["ticks_per_sec"] / base_calib
            unit = "normalized ticks/sec"
        else:  # pre-calibration artifact: fall back to absolute rates
            ours, theirs = row["ticks_per_sec"], base["ticks_per_sec"]
            unit = "ticks/sec"
        floor = theirs * (1.0 - REGRESSION_BUDGET)
        if ours < floor:
            failures.append(
                f"{size} tasks: {ours:.4g} {unit} < "
                f"{floor:.4g} (committed {theirs:.4g} - 10%)"
            )
    return failures


def _write(metrics: dict, repeats: int) -> None:
    from benchmarks.conftest import write_bench

    write_bench(
        "core_throughput",
        {"sizes": sorted(int(s) for s in metrics["sizes"]), "repeats": repeats, "seed": 0},
        metrics,
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="run only the 1k-task size")
    ap.add_argument("--sizes", type=int, nargs="*", help="explicit task counts")
    ap.add_argument("--repeats", type=int, default=1, help="repeats per size (best wins)")
    ap.add_argument("--check", metavar="JSON", help="fail if ticks/sec regresses >10%% vs this artifact")
    ap.add_argument("--no-write", action="store_true", help="skip writing the artifact")
    args = ap.parse_args(argv)
    sizes = tuple(args.sizes) if args.sizes else (SMOKE_SIZES if args.smoke else FULL_SIZES)
    metrics = run_suite(sizes, repeats=args.repeats)
    for size, row in metrics["sizes"].items():
        print(
            f"{size:>6} tasks: {row['ticks_per_sec']:>8} ticks/s "
            f"{row['events_per_sec']:>10} events/s {row['envelopes_per_sec']:>8} envelopes/s "
            f"({row['wall_seconds']}s wall)"
        )
    if not args.no_write:
        _write(metrics, args.repeats)
    if args.check:
        failures = check_regression(metrics, args.check)
        if failures:
            for f in failures:
                print("REGRESSION:", f, file=sys.stderr)
            return 1
        print("throughput within budget of", args.check)
    return 0


# -- pytest entry point (rides the regular bench suite) -------------------------
def test_core_throughput_smoke(benchmark):
    metrics = benchmark.pedantic(lambda: run_suite(SMOKE_SIZES), rounds=1, iterations=1)
    row = metrics["sizes"]["1000"]
    assert row["ticks"] > 0 and row["envelopes"] > 0
    assert row["updates_seen"] >= 1000
    benchmark.extra_info["bench"] = metrics
    _write(metrics, repeats=1)


if __name__ == "__main__":
    sys.path.insert(0, ".")
    raise SystemExit(main())
