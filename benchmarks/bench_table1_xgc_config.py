"""Table 1: the XGC1/XGCa single-run configuration.

Regenerates the table rows from the scenario builders and benchmarks
workflow composition + allocation (the static Cheetah/Savanna path).
"""

from repro.cluster import BatchScheduler, summit
from repro.experiments.xgc_scenario import NUM_NODES, PROCS_PER_NODE, build_workflow, _make_machine
from repro.sim import SimEngine

from benchmarks.conftest import emit, write_bench

PAPER_TABLE1 = {
    "PROCESSES": "192 (14 per node)",
    "THREADS PER PROCESS": 10,
    "TIMESTEPS PER RUN": 100,
    "PARTICLES PER PROCESS": "250K",
}


def test_table1_configuration(benchmark):
    def compose():
        engine = SimEngine()
        machine = _make_machine("summit")
        scheduler = BatchScheduler(engine, machine)
        job = scheduler.submit(NUM_NODES, walltime_limit=10_000.0)
        engine.run(until=0)
        workflow = build_workflow(use_dyflow=True)
        return workflow, job.allocation

    workflow, allocation = benchmark(compose)

    xgc1 = workflow.task("XGC1")
    xgca = workflow.task("XGCA")
    rows = [
        f"{'TASK':<8} {'SETTING':<22} {'MEASURED':<20} {'PAPER':<20}",
        f"{'XGC1':<8} {'PROCESSES':<22} {f'{xgc1.nprocs} ({xgc1.procs_per_node}/node)':<20} {PAPER_TABLE1['PROCESSES']:<20}",
        f"{'XGCA':<8} {'PROCESSES':<22} {f'{xgca.nprocs} ({xgca.procs_per_node}/node)':<20} {PAPER_TABLE1['PROCESSES']:<20}",
        f"{'BOTH':<8} {'TIMESTEPS PER RUN':<22} {xgc1.make_app().run_steps:<20} {PAPER_TABLE1['TIMESTEPS PER RUN']:<20}",
        f"{'BOTH':<8} {'ALLOCATED NODES':<22} {len(allocation.nodes):<20} {'(192/14 = 14)':<20}",
    ]
    emit("Table 1 — XGC1/XGCa run configuration", rows)

    assert xgc1.nprocs == xgca.nprocs == 192
    assert xgc1.procs_per_node == PROCS_PER_NODE == 14
    assert xgc1.make_app().run_steps == 100
    benchmark.extra_info["paper"] = PAPER_TABLE1
    benchmark.extra_info["measured_procs"] = xgc1.nprocs
    write_bench(
        "table1_xgc_config",
        {"machine": "summit", "paper": PAPER_TABLE1},
        {
            "xgc1_procs": xgc1.nprocs,
            "xgca_procs": xgca.nprocs,
            "procs_per_node": xgc1.procs_per_node,
            "allocated_nodes": len(allocation.nodes),
        },
    )
