"""Continuous core profiling: a sampling profiler over the sim kernel.

Where :class:`~repro.profiler.instrument.TaskProfiler` models the
paper's TAU instrumentation *inside* application tasks, the
:class:`CoreProfiler` watches the orchestrator's own machinery: every
``sample_every`` runtime seconds it captures

* engine throughput — events executed since the last sample,
* queue shape — distinct heap slots and undrained pending events,
* codec efficiency — :func:`repro.util.jsonmsg.codec_stats` hit rate,
* arbitration memo efficiency — placement-feasibility memo hit rate,

into a bounded **flight recorder** (a ring of the most recent samples)
that :meth:`dump` writes as JSON when a run crashes or a campaign
quarantines a poison cell — the last seconds of kernel behaviour,
post-mortem, at O(ring) memory.

Cumulative counter sources are process-global (codec stats) or
engine-lifetime (``events_executed``), so every sample records *deltas*
against journaled baselines; after a crash/resume in a fresh process the
baselines re-anchor to the live counters instead of going negative.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import TelemetryError
from repro.util.jsonmsg import codec_stats

_EPS = 1e-9


@dataclass(frozen=True)
class ProfileSpec:
    """Core-profiler configuration.

    Attributes:
        enabled: master switch; disabled profiling costs one boolean
            check per tick.
        sample_every: sampling cadence in runtime seconds.
        ring: flight-recorder capacity in samples (oldest evicted).
        dump_path: where :meth:`CoreProfiler.dump` writes on crash /
            poison-quarantine; ``None`` leaves dumping to the caller.
    """

    enabled: bool = False
    sample_every: float = 5.0
    ring: int = 256
    dump_path: str | None = None

    def validate(self) -> None:
        if self.sample_every <= 0.0:
            raise TelemetryError(f"profile sample_every must be > 0, got {self.sample_every}")
        if self.ring < 1:
            raise TelemetryError(f"profile ring must be >= 1, got {self.ring}")


class CoreProfiler:
    """Cadenced sampler + flight recorder over the sim engine."""

    def __init__(self, spec: ProfileSpec | None = None) -> None:
        self.spec = spec or ProfileSpec()
        self.spec.validate()
        self._engine: Any = None
        self._arbitration: Any = None
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.spec.ring)
        self._next = 0.0
        self._last_now: float | None = None
        self.samples_taken = 0
        # Delta baselines for cumulative counter sources.
        self._base = {"events": 0, "codec_hits": 0, "codec_misses": 0,
                      "memo_hits": 0, "memo_misses": 0}

    def bind(self, engine: Any = None, arbitration: Any = None) -> None:
        """Attach the live engine / arbitration stage to sample from.

        Re-anchors the counter baselines to the current live values so
        the first sample after binding (including after a crash/resume
        into a fresh process) measures only new activity.
        """
        if engine is not None:
            self._engine = engine
        if arbitration is not None:
            self._arbitration = arbitration
        self._base = self._cumulative()

    def _cumulative(self) -> dict[str, int]:
        codec = codec_stats()
        out = {
            "events": self._engine.events_executed if self._engine is not None else 0,
            "codec_hits": codec["encode_hits"],
            "codec_misses": codec["encode_misses"],
            "memo_hits": 0,
            "memo_misses": 0,
        }
        if self._arbitration is not None:
            memo = self._arbitration.memo_stats()
            out["memo_hits"] = memo["hits"]
            out["memo_misses"] = memo["misses"]
        return out

    @property
    def enabled(self) -> bool:
        return self.spec.enabled

    def maybe_sample(self, now: float) -> dict[str, Any] | None:
        """Take a sample if one is due (MetricsSnapshotter cadence)."""
        if not self.spec.enabled or now + _EPS < self._next:
            return None
        sample = self.sample(now)
        while self._next <= now + _EPS:
            self._next += self.spec.sample_every
        return sample

    def sample(self, now: float) -> dict[str, Any]:
        """Capture one sample unconditionally and append it to the ring."""
        cur = self._cumulative()
        # A counter below its baseline means the source restarted (fresh
        # process after resume); re-anchor rather than report negatives.
        for key, value in cur.items():
            if value < self._base[key]:
                self._base[key] = value
        d_events = cur["events"] - self._base["events"]
        dt = None if self._last_now is None else now - self._last_now

        def rate(hits: int, misses: int) -> float | None:
            total = hits + misses
            return hits / total if total else None

        sample: dict[str, Any] = {
            "time": now,
            "events": d_events,
            "events_per_sec": (d_events / dt) if dt else None,
            "pending_slots": (
                self._engine.pending_slots() if self._engine is not None else 0
            ),
            "pending_events": (
                self._engine.pending_events() if self._engine is not None else 0
            ),
            "codec_hit_rate": rate(
                cur["codec_hits"] - self._base["codec_hits"],
                cur["codec_misses"] - self._base["codec_misses"],
            ),
            "memo_hit_rate": rate(
                cur["memo_hits"] - self._base["memo_hits"],
                cur["memo_misses"] - self._base["memo_misses"],
            ),
        }
        self._base = cur
        self._last_now = now
        self._ring.append(sample)
        self.samples_taken += 1
        return sample

    def record(self, now: float, kind: str, **payload: Any) -> None:
        """Append a non-sample marker (crash, poison, ...) to the ring."""
        self._ring.append({"time": now, "marker": kind, **payload})

    def ring(self) -> list[dict[str, Any]]:
        """The flight recorder's current contents, oldest first."""
        return list(self._ring)

    def dump(self, path: str | None = None, reason: str = "") -> str | None:
        """Write the flight recorder as JSON; returns the path written.

        Uses ``spec.dump_path`` when *path* is omitted; with neither set
        the dump is skipped (returns ``None``).
        """
        path = path or self.spec.dump_path
        if path is None:
            return None
        doc = {
            "schema": "dyflow-flight-recorder/1",
            "reason": reason,
            "samples_taken": self.samples_taken,
            "ring": self.ring(),
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path

    # -- persistence ---------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {
            "next": self._next,
            "last_now": self._last_now,
            "samples_taken": self.samples_taken,
            "ring": self.ring(),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self._next = float(state.get("next", 0.0))
        last_now = state.get("last_now")
        self._last_now = None if last_now is None else float(last_now)
        self.samples_taken = int(state.get("samples_taken", 0))
        self._ring.clear()
        self._ring.extend(state.get("ring", []))
        # Counter baselines are process-local; re-anchor on the next bind.
        self._base = self._cumulative()
