"""Hardware-counter models.

The paper's example of a joined metric is IPC = instructions / cycles
(§2.1 "Join").  Real counters come from PAPI via TAU; here a simple model
derives plausible counter values from observed loop times: cycles follow
wall time at the core clock, instructions follow the useful work done, so
IPC degrades when a task slows down for non-compute reasons (waiting on a
stalled consumer) — exactly the situation the Gray-Scott experiment's
under-provisioning creates.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.util.validation import check_positive


class CounterModel:
    """Derives PAPI-style instruction/cycle counts from loop times."""

    def __init__(
        self,
        clock_ghz: float = 2.8,
        work_instructions: float = 5e9,
        base_ipc: float = 1.6,
    ) -> None:
        """
        Args:
            clock_ghz: core clock; cycles per step = looptime * clock.
            work_instructions: instructions a rank retires for one step's
                *useful* work (independent of how long the step takes).
            base_ipc: IPC when the step runs at full efficiency; the
                implied minimum looptime is work / (clock * base_ipc).
        """
        check_positive(clock_ghz, "clock_ghz")
        check_positive(work_instructions, "work_instructions")
        check_positive(base_ipc, "base_ipc")
        self.clock_hz = clock_ghz * 1e9
        self.work_instructions = work_instructions
        self.base_ipc = base_ipc

    def counters_for_step(
        self, loop_times: Mapping[int, float]
    ) -> tuple[dict[int, float], dict[int, float]]:
        """Per-rank (instructions, cycles) for one step.

        Instructions are constant per step (the work is fixed); cycles grow
        with elapsed time, so IPC = work / cycles falls as the step drags.
        """
        instr: dict[int, float] = {}
        cycles: dict[int, float] = {}
        for rank, t in loop_times.items():
            cyc = max(t, 1e-9) * self.clock_hz
            instr[rank] = self.work_instructions
            cycles[rank] = cyc
        return instr, cycles

    def ipc(self, looptime: float) -> float:
        """Model IPC for a single step of the given duration."""
        cycles = max(looptime, 1e-9) * self.clock_hz
        return min(self.base_ipc, self.work_instructions / cycles)
