"""TAU-like online profiler substrate.

The paper's PACE sensor consumes "TAU-generated information ... collected
in real-time using ADIOS2" — per-process main-loop times produced by code
instrumentation, streamed while the task runs.  This package provides:

* :class:`TaskProfiler` — per-task instrumentation that publishes
  per-rank, per-step measurement samples into a staging stream channel.
* :class:`CounterModel` — hardware-counter models (instructions, cycles)
  so joined sensors can compute IPC, the paper's example of a complex
  metric built from multiple inputs.
* :class:`CoreProfiler` — a sampling profiler over the orchestrator's
  own sim kernel (events/sec, queue depth, codec/memo cache hit rates)
  with a bounded flight-recorder ring dumped on crash.
"""

from repro.profiler.instrument import TaskProfiler
from repro.profiler.counters import CounterModel
from repro.profiler.sampling import CoreProfiler, ProfileSpec

__all__ = ["TaskProfiler", "CounterModel", "CoreProfiler", "ProfileSpec"]
