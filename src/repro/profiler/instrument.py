"""Per-task instrumentation publishing measurement streams."""

from __future__ import annotations

from collections.abc import Mapping

from repro.profiler.counters import CounterModel
from repro.staging.serialization import Sample
from repro.staging.stream import StreamChannel


class TaskProfiler:
    """Publishes per-rank measurements for one task into a stream channel.

    One profiler instance lives with one running task instance; when the
    task restarts, a fresh profiler is attached to the (reopened) channel.
    Variables follow TAU naming used in the paper's XML: ``looptime`` for
    the main-iteration time, plus any counter-model outputs.
    """

    def __init__(
        self,
        workflow_id: str,
        task: str,
        channel: StreamChannel,
        rank_nodes: Mapping[int, str],
        counters: CounterModel | None = None,
    ) -> None:
        self.workflow_id = workflow_id
        self.task = task
        self.channel = channel
        self.rank_nodes = dict(rank_nodes)
        self.counters = counters
        self._steps_published = 0

    @property
    def nranks(self) -> int:
        return len(self.rank_nodes)

    @property
    def steps_published(self) -> int:
        return self._steps_published

    def emit_step(
        self,
        time: float,
        step: int,
        loop_times: Mapping[int, float],
        extra_vars: Mapping[str, Mapping[int, float]] | None = None,
    ) -> list[Sample]:
        """Publish one application step's measurements.

        Args:
            time: publish timestamp.
            step: application step index.
            loop_times: per-rank main-loop seconds for this step.
            extra_vars: optional additional per-rank variables.

        Returns the samples published (also pushed into the channel as one
        stream step, matching TAU's one-ADIOS2-step-per-iteration output).
        """
        samples: list[Sample] = []

        def emit(var: str, per_rank: Mapping[int, float]) -> None:
            for rank, value in sorted(per_rank.items()):
                samples.append(
                    Sample(
                        time=time,
                        workflow_id=self.workflow_id,
                        task=self.task,
                        rank=rank,
                        node_id=self.rank_nodes.get(rank, ""),
                        var=var,
                        value=float(value),
                        step=step,
                    )
                )

        emit("looptime", loop_times)
        if self.counters is not None:
            instr, cycles = self.counters.counters_for_step(loop_times)
            emit("PAPI_TOT_INS", instr)
            emit("PAPI_TOT_CYC", cycles)
        for var, per_rank in (extra_vars or {}).items():
            emit(var, per_rank)

        self.channel.put(samples, time)
        self._steps_published += 1
        return samples
