"""``repro.api.journal`` — crash-recovery journaling and fingerprints."""

from repro.journal import (
    AppliedOpsLedger,
    Journal,
    JournalSpec,
    JournalState,
    read_journal,
    scenario_fingerprint,
)
from repro.wms import CampaignRunner

__all__ = [
    "Journal",
    "JournalSpec",
    "JournalState",
    "AppliedOpsLedger",
    "read_journal",
    "scenario_fingerprint",
    "CampaignRunner",
]
