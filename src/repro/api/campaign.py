"""``repro.api.campaign`` — the multi-tenant campaign service.

Bulkhead-isolated workflow tenants on a shared simulated machine: the
admission controller and fair-share registry, per-tenant circuit
breakers, the machine arbiter handing out core leases, the
crash-supervised parallel executor, and signac-style statepoint ids.
"""

from repro.campaign import (
    AdmissionController,
    AdmissionResult,
    CampaignService,
    CellFailure,
    CellOutcome,
    ExecutorSpec,
    Lease,
    MachineArbiter,
    SupervisedExecutor,
    TenantBreaker,
    TenantCell,
    TenantRegistry,
    TenantSpec,
    TenantsSpec,
    TenantState,
    canonical_json,
    run_cell_scenario,
    statepoint_hash,
    statepoint_id,
)
from repro.wms import Campaign, CampaignRunner, Sweep

__all__ = [
    "AdmissionController",
    "AdmissionResult",
    "Campaign",
    "CampaignRunner",
    "CampaignService",
    "CellFailure",
    "CellOutcome",
    "ExecutorSpec",
    "Lease",
    "MachineArbiter",
    "SupervisedExecutor",
    "Sweep",
    "TenantBreaker",
    "TenantCell",
    "TenantRegistry",
    "TenantSpec",
    "TenantState",
    "TenantsSpec",
    "canonical_json",
    "run_cell_scenario",
    "statepoint_hash",
    "statepoint_id",
]
