"""``repro.api.fault`` — resilience specs and fault injection.

Retry/backoff, the node circuit breaker, checkpoint cadence, the
heartbeat watchdog, and the chaos engine that drives the paper's
failure experiments.
"""

from repro.resilience import (
    ChaosEngine,
    CheckpointSpec,
    FaultModelSpec,
    QuarantineSpec,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)

__all__ = [
    "ResilienceSpec",
    "RetryPolicy",
    "WatchdogSpec",
    "QuarantineSpec",
    "CheckpointSpec",
    "FaultModelSpec",
    "ChaosEngine",
]
