"""``repro.api.fabric`` — the lossy Monitor-fabric transport model."""

from repro.fabric import (
    BoundedShedQueue,
    DegradedModeController,
    FabricLink,
    LinkOverride,
    NetworkSpec,
    PartitionWindow,
)

__all__ = [
    "NetworkSpec",
    "PartitionWindow",
    "LinkOverride",
    "FabricLink",
    "DegradedModeController",
    "BoundedShedQueue",
]
