"""``repro.api.lint`` — static verification, auto-fix, preflight, SARIF."""

from repro.lint import (
    FIXABLE_CODES,
    Diagnostic,
    FixHint,
    FixResult,
    PreflightWarning,
    Severity,
    VerificationError,
    WitnessEvent,
    analyze_dataflow,
    fix_spec,
    fix_xml_text,
    lint_xml_text,
    render_sarif,
    run_preflight,
    run_selflint,
    verify_spec,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "WitnessEvent",
    "FixHint",
    "FixResult",
    "FIXABLE_CODES",
    "PreflightWarning",
    "VerificationError",
    "analyze_dataflow",
    "verify_spec",
    "lint_xml_text",
    "fix_spec",
    "fix_xml_text",
    "run_selflint",
    "run_preflight",
    "render_sarif",
]
