"""``repro.api.lint`` — static verification, preflight, and SARIF."""

from repro.lint import (
    Diagnostic,
    PreflightWarning,
    Severity,
    VerificationError,
    lint_xml_text,
    render_sarif,
    run_preflight,
    run_selflint,
    verify_spec,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "PreflightWarning",
    "VerificationError",
    "verify_spec",
    "lint_xml_text",
    "run_selflint",
    "run_preflight",
    "render_sarif",
]
