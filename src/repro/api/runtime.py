"""``repro.api.runtime`` — drivers, options, substrate, bootstrap.

The namespaced view of everything needed to build and run an
orchestrator: the simulated and threaded drivers, the consolidated
:class:`RuntimeOptions` bundle, the event engine and rng substrate,
and the XML entry points.
"""

from repro.runtime import DyflowOrchestrator, LiveTaskSpec, RuntimeOptions, ThreadedDyflow
from repro.sim import RngRegistry, SimEngine
from repro.wms import Savanna
from repro.xmlspec import DyflowSpec, configure_orchestrator, parse_dyflow_xml, write_dyflow_xml

__all__ = [
    "DyflowOrchestrator",
    "ThreadedDyflow",
    "LiveTaskSpec",
    "RuntimeOptions",
    "SimEngine",
    "RngRegistry",
    "Savanna",
    "DyflowSpec",
    "configure_orchestrator",
    "parse_dyflow_xml",
    "write_dyflow_xml",
]
