"""The stable public API of the DYFLOW reproduction.

``repro.api`` is the single import surface users should program against:

    from repro.api import (
        DyflowOrchestrator, RuntimeOptions, Savanna, SimEngine, summit,
        SensorSpec, PolicySpec, PolicyApplication, ActionType,
    )

Everything re-exported here is covered by the API-surface snapshot test
(``tests/test_api_facade.py``) and keeps working across internal
refactors; importing from the implementation packages (``repro.core``,
``repro.wms``, ...) still works but offers no such guarantee.  The
examples under ``examples/`` import exclusively from this package.

Besides the flat names, the surface is organised into **namespaced
sub-facades** so related pieces can be imported as a group::

    from repro.api import runtime, telemetry, fault, journal, lint, fabric, campaign

    orch = runtime.DyflowOrchestrator(launcher, options=runtime.RuntimeOptions())
    spec = fault.ResilienceSpec(retry=fault.RetryPolicy(max_retries=2))

* ``repro.api.runtime`` — the two drivers, :class:`RuntimeOptions`,
  the engine/rng substrate, and the XML bootstrap.
* ``repro.api.telemetry`` — tracer, metrics, Chrome-trace export.
* ``repro.api.fault`` — resilience specs and the chaos engine.
* ``repro.api.journal`` — crash-recovery journaling and fingerprints.
* ``repro.api.lint`` — static verification, preflight, SARIF.
* ``repro.api.fabric`` — the lossy Monitor-fabric transport model.
* ``repro.api.campaign`` — the multi-tenant campaign service.

Every flat name remains importable directly from ``repro.api`` (the
sub-facades are views, not a migration), and resolution is lazy (PEP
562): importing ``repro.api`` pulls in no implementation module until
the first attribute access, which keeps ``import repro.api`` cheap for
CLI tools that touch one corner of the surface.
"""

from __future__ import annotations

import importlib

#: Namespaced sub-facade modules, loaded on first attribute access.
_SUBFACADES = frozenset(
    {"runtime", "telemetry", "fault", "journal", "lint", "fabric", "campaign"}
)

#: Flat name -> implementation module.  This table *is* the public
#: surface; the snapshot test pins its keys.
_FLAT = {
    # simulation substrate
    "SimEngine": "repro.sim",
    "RngRegistry": "repro.sim",
    # cluster models
    "summit": "repro.cluster",
    "deepthought2": "repro.cluster",
    "Allocation": "repro.cluster",
    "BatchScheduler": "repro.cluster",
    # workflows and the WMS
    "WorkflowSpec": "repro.wms",
    "TaskSpec": "repro.wms",
    "DependencySpec": "repro.wms",
    "CouplingType": "repro.wms",
    "TaskState": "repro.wms",
    "Savanna": "repro.wms",
    "Campaign": "repro.wms",
    "CampaignRunner": "repro.wms",
    "Sweep": "repro.wms",
    # multi-tenant campaign service
    "TenantSpec": "repro.campaign",
    "TenantsSpec": "repro.campaign",
    "ExecutorSpec": "repro.campaign",
    "CampaignService": "repro.campaign",
    "TenantCell": "repro.campaign",
    "SupervisedExecutor": "repro.campaign",
    "statepoint_id": "repro.campaign",
    # applications
    "IterativeApp": "repro.apps",
    "AmdahlModel": "repro.apps",
    "ConstantModel": "repro.apps",
    "PowerLawModel": "repro.apps",
    "RampModel": "repro.apps",
    "VectorizedStepModel": "repro.apps",
    "GrayScottSolver": "repro.apps.kernels",
    "isosurface_cell_count": "repro.apps.kernels",
    "ANALYSIS_TASKS": "repro.apps.gray_scott",
    # control loop
    "SensorSpec": "repro.core",
    "GroupBySpec": "repro.core",
    "JoinSpec": "repro.core",
    "PolicySpec": "repro.core",
    "PolicyApplication": "repro.core",
    "ActionType": "repro.core",
    "SuggestedAction": "repro.core",
    "MetricUpdate": "repro.core",
    "ActionPlan": "repro.core",
    "DyflowOrchestrator": "repro.runtime",
    "ThreadedDyflow": "repro.runtime",
    "LiveTaskSpec": "repro.runtime",
    "RuntimeOptions": "repro.runtime",
    # XML interface
    "parse_dyflow_xml": "repro.xmlspec",
    "write_dyflow_xml": "repro.xmlspec",
    "configure_orchestrator": "repro.xmlspec",
    "DyflowSpec": "repro.xmlspec",
    # resilience
    "ResilienceSpec": "repro.resilience",
    "RetryPolicy": "repro.resilience",
    "WatchdogSpec": "repro.resilience",
    "QuarantineSpec": "repro.resilience",
    "CheckpointSpec": "repro.resilience",
    "FaultModelSpec": "repro.resilience",
    "ChaosEngine": "repro.resilience",
    # monitor fabric
    "NetworkSpec": "repro.fabric",
    "PartitionWindow": "repro.fabric",
    "LinkOverride": "repro.fabric",
    "FabricLink": "repro.fabric",
    "DegradedModeController": "repro.fabric",
    "BoundedShedQueue": "repro.fabric",
    # crash recovery
    "Journal": "repro.journal",
    "JournalSpec": "repro.journal",
    "JournalState": "repro.journal",
    "AppliedOpsLedger": "repro.journal",
    "read_journal": "repro.journal",
    "scenario_fingerprint": "repro.journal",
    # telemetry
    "TelemetrySpec": "repro.telemetry",
    "Tracer": "repro.telemetry",
    "NullTracer": "repro.telemetry",
    "TraceSpan": "repro.telemetry",
    "MetricsRegistry": "repro.telemetry",
    "JsonlEventLog": "repro.telemetry",
    "build_tracer": "repro.telemetry",
    "to_chrome_trace": "repro.telemetry",
    "write_chrome_trace": "repro.telemetry",
    # observability
    "ObservabilitySpec": "repro.observability",
    "SloSpec": "repro.observability",
    "AnomalySpec": "repro.observability",
    "HealthAlert": "repro.observability",
    "HealthEngine": "repro.observability",
    "HEALTH_TASK": "repro.observability",
    "SpanView": "repro.observability",
    "critical_path": "repro.observability",
    "bottlenecks": "repro.observability",
    "utilization_from_launcher": "repro.observability",
    "utilization_from_events": "repro.observability",
    "render_openmetrics": "repro.observability",
    "parse_openmetrics": "repro.observability",
    "write_openmetrics": "repro.observability",
    "report_from_run": "repro.observability",
    "report_from_jsonl": "repro.observability",
    "render_markdown": "repro.observability",
    "write_report": "repro.observability",
    # fleet observability plane
    "FleetSpec": "repro.observability",
    "FleetHealthEngine": "repro.observability",
    "WatchStream": "repro.observability",
    "read_watch_stream": "repro.observability",
    "render_labeled_openmetrics": "repro.observability",
    "RunStore": "repro.observability",
    "RunRecord": "repro.observability",
    "load_record": "repro.observability",
    # core profiler
    "ProfileSpec": "repro.profiler",
    "CoreProfiler": "repro.profiler",
    # canned experiments
    "run_xgc_experiment": "repro.experiments",
    "run_gray_scott_experiment": "repro.experiments",
    "run_lammps_experiment": "repro.experiments",
    "render_gantt": "repro.experiments",
    "ScenarioResult": "repro.experiments",
    "XGC_XML": "repro.experiments",
    "GRAY_SCOTT_XML": "repro.experiments",
    "LAMMPS_XML": "repro.experiments",
    "build_report": "repro.experiments.report",
    "format_report": "repro.experiments.report",
    # static analysis
    "Diagnostic": "repro.lint",
    "Severity": "repro.lint",
    "PreflightWarning": "repro.lint",
    "VerificationError": "repro.lint",
    "analyze_dataflow": "repro.lint",
    "verify_spec": "repro.lint",
    "lint_xml_text": "repro.lint",
    "fix_xml_text": "repro.lint",
    "run_selflint": "repro.lint",
    "run_preflight": "repro.lint",
    "render_sarif": "repro.lint",
    # errors
    "ReproError": "repro.errors",
}

__all__ = sorted(_FLAT)


def __getattr__(name: str):
    if name in _SUBFACADES:
        module = importlib.import_module(f"{__name__}.{name}")
        globals()[name] = module  # cache: next access skips __getattr__
        return module
    impl = _FLAT.get(name)
    if impl is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    obj = getattr(importlib.import_module(impl), name)
    globals()[name] = obj
    return obj


def __dir__() -> list[str]:
    return sorted(set(__all__) | _SUBFACADES)
