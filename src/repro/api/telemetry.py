"""``repro.api.telemetry`` — tracing, metrics, and trace export."""

from repro.telemetry import (
    JsonlEventLog,
    MetricsRegistry,
    NullTracer,
    TelemetrySpec,
    Tracer,
    TraceSpan,
    build_tracer,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "TelemetrySpec",
    "Tracer",
    "NullTracer",
    "TraceSpan",
    "MetricsRegistry",
    "JsonlEventLog",
    "build_tracer",
    "to_chrome_trace",
    "write_chrome_trace",
]
