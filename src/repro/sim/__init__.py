"""Deterministic discrete-event simulation kernel.

Everything in the reproduction that the paper measured in wall-clock time
(task launches, graceful terminations, sensor lags, arbitration response
windows) runs on this kernel in *simulated seconds*, which makes every
Gantt chart and response time deterministic and unit-testable.

The kernel is a small coroutine-style engine in the spirit of SimPy:

* :class:`SimEngine` owns the clock and the event heap.
* Processes are Python generators that ``yield`` waitable
  :class:`SimEvent` objects (usually :meth:`SimEngine.timeout`).
* Processes can be interrupted (:class:`Interrupt`), which is how task
  kill signals and node failures propagate.
"""

from repro.sim.events import AllOf, AnyOf, Interrupt, SimEvent
from repro.sim.engine import SimEngine
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import PointEvent, Span, TraceRecorder

__all__ = [
    "SimEngine",
    "SimEvent",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Process",
    "RngRegistry",
    "TraceRecorder",
    "Span",
    "PointEvent",
]
