"""The discrete-event engine: clock + event heap + process spawning."""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimTimeError
from repro.sim.events import SimEvent
from repro.sim.process import ProcGen, Process


class SimEngine:
    """Owns simulated time and executes events in timestamp order.

    Events scheduled at the same timestamp run in FIFO (schedule) order,
    which keeps multi-stage pipelines deterministic.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, SimEvent]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction -------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create an untriggered waitable event."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> SimEvent:
        """An event that succeeds ``delay`` seconds from now."""
        if delay < 0:
            raise SimTimeError(f"negative timeout {delay}")
        ev = SimEvent(self, name)
        ev._pending = (True, value)
        self._push(self._now + delay, ev)
        return ev

    def process(self, gen: ProcGen, name: str = "proc") -> Process:
        """Spawn *gen* as a process starting at the current time."""
        return Process(self, gen, name)

    def call_at(
        self,
        time: float,
        fn: Callable[[], None],
        name: str = "call",
        seq: int | None = None,
    ) -> SimEvent:
        """Run ``fn()`` at absolute simulated *time*.

        ``seq`` re-registers the call at an explicit heap slot (crash
        recovery: a resumed controller re-creates its pending callbacks at
        their original sequence numbers so same-timestamp tie-breaking is
        bit-identical to an uninterrupted run).
        """
        if time < self._now:
            raise SimTimeError(f"call_at({time}) is in the past (now={self._now})")
        ev = SimEvent(self, name)
        ev.callbacks.append(lambda _ev: fn())
        ev._pending = (True, None)
        self._push(time, ev, seq=seq)
        return ev

    def call_after(self, delay: float, fn: Callable[[], None], name: str = "call") -> SimEvent:
        """Run ``fn()`` *delay* seconds from now."""
        return self.call_at(self._now + delay, fn, name)

    # -- scheduling internals ------------------------------------------------
    def _schedule_event(self, ev: SimEvent) -> None:
        """Queue an already-triggered event's callbacks to run *now*."""
        self._push(self._now, ev)

    def _push(self, time: float, ev: SimEvent, seq: int | None = None) -> None:
        if seq is None:
            self._seq += 1
            seq = self._seq
        ev.heap_time = time
        ev.heap_seq = seq
        heapq.heappush(self._heap, (time, seq, ev))

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next live event; return False when the heap is empty."""
        while self._heap:
            time, _seq, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if time < self._now:
                raise SimTimeError(f"clock would move backwards: {time} < {self._now}")
            self._now = time
            if ev._ok is None and ev._pending is not None:
                # A scheduled (timeout/call_at) event triggers when it fires.
                ev._ok, ev._value = ev._pending
            ev._run_callbacks()
            return True
        return False

    def peek(self) -> float | None:
        """Timestamp of the next pending event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains or the clock reaches *until*.

        Returns the final simulated time.  With ``until`` given, the clock
        is advanced to exactly ``until`` even if the last event fired
        earlier, so back-to-back ``run`` calls compose predictably.
        """
        if until is not None and until < self._now:
            raise SimTimeError(f"run(until={until}) is in the past (now={self._now})")
        while self._heap:
            nxt = self._heap[0][0]
            if until is not None and nxt > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_process(self, gen: ProcGen, name: str = "proc") -> Any:
        """Spawn *gen*, run the simulation to completion, return its value.

        Convenience for tests and small examples.
        """
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise SimTimeError(f"process {name!r} never finished (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
