"""The discrete-event engine: clock + slot-indexed event queue + processes."""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimTimeError
from repro.sim.events import SimEvent
from repro.sim.process import ProcGen, Process


class _Slot:
    """All events scheduled at one timestamp, in sequence order.

    Entries are ``(seq, event)`` pairs.  Auto-assigned sequence numbers
    are monotonically increasing, so the common case is a plain append;
    only an explicit-``seq`` registration (crash recovery re-creating a
    callback at its journaled slot) can land out of order, which marks
    the slot dirty and triggers a sort of the undrained tail on the next
    pop.  ``head`` is the drain cursor — callbacks firing at the current
    timestamp append behind it and run in the same engine step loop,
    exactly as they would have popped from a global heap.
    """

    __slots__ = ("entries", "head", "dirty")

    def __init__(self) -> None:
        self.entries: list[tuple[int, SimEvent]] = []
        self.head = 0
        self.dirty = False

    def add(self, seq: int, ev: SimEvent) -> None:
        entries = self.entries
        if entries and seq < entries[-1][0]:
            self.dirty = True
        entries.append((seq, ev))


class SimEngine:
    """Owns simulated time and executes events in timestamp order.

    Events scheduled at the same timestamp run in FIFO (schedule) order,
    which keeps multi-stage pipelines deterministic.  The queue is
    slot-indexed: a heap orders the distinct timestamps, and each
    timestamp's events live in an append-ordered list — scheduling onto
    an existing timestamp is O(1) instead of an O(log n) heap push,
    which is the dominant case in lockstep scenarios (thousands of
    same-tick timeouts and deliveries).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._times: list[float] = []  # heap of distinct timestamps
        self._slots: dict[float, _Slot] = {}
        self._seq = 0
        #: Count of live (non-cancelled) events executed — throughput
        #: telemetry for the core benchmark; never journaled.
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction -------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create an untriggered waitable event."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> SimEvent:
        """An event that succeeds ``delay`` seconds from now."""
        if delay < 0:
            raise SimTimeError(f"negative timeout {delay}")
        ev = SimEvent(self, name)
        ev._pending = (True, value)
        self._push(self._now + delay, ev)
        return ev

    def process(self, gen: ProcGen, name: str = "proc") -> Process:
        """Spawn *gen* as a process starting at the current time."""
        return Process(self, gen, name)

    def call_at(
        self,
        time: float,
        fn: Callable[[], None],
        name: str = "call",
        seq: int | None = None,
    ) -> SimEvent:
        """Run ``fn()`` at absolute simulated *time*.

        ``seq`` re-registers the call at an explicit heap slot (crash
        recovery: a resumed controller re-creates its pending callbacks at
        their original sequence numbers so same-timestamp tie-breaking is
        bit-identical to an uninterrupted run).
        """
        if time < self._now:
            raise SimTimeError(f"call_at({time}) is in the past (now={self._now})")
        ev = SimEvent(self, name)
        ev.callbacks.append(lambda _ev: fn())
        ev._pending = (True, None)
        self._push(time, ev, seq=seq)
        return ev

    def call_after(self, delay: float, fn: Callable[[], None], name: str = "call") -> SimEvent:
        """Run ``fn()`` *delay* seconds from now."""
        return self.call_at(self._now + delay, fn, name)

    # -- scheduling internals ------------------------------------------------
    def _schedule_event(self, ev: SimEvent) -> None:
        """Queue an already-triggered event's callbacks to run *now*."""
        self._push(self._now, ev)

    def _push(self, time: float, ev: SimEvent, seq: int | None = None) -> None:
        if seq is None:
            self._seq += 1
            seq = self._seq
        ev.heap_time = time
        ev.heap_seq = seq
        slot = self._slots.get(time)
        if slot is None:
            slot = self._slots[time] = _Slot()
            heapq.heappush(self._times, time)
        slot.add(seq, ev)

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next live event; return False when the queue is empty."""
        times, slots = self._times, self._slots
        while times:
            time = times[0]
            slot = slots[time]
            entries = slot.entries
            while True:
                if slot.dirty:
                    tail = entries[slot.head:]
                    tail.sort()
                    entries[slot.head:] = tail
                    slot.dirty = False
                if slot.head >= len(entries):
                    del slots[time]
                    heapq.heappop(times)
                    break
                _seq, ev = entries[slot.head]
                slot.head += 1
                if ev.cancelled:
                    continue
                if time < self._now:
                    raise SimTimeError(f"clock would move backwards: {time} < {self._now}")
                self._now = time
                if ev._ok is None and ev._pending is not None:
                    # A scheduled (timeout/call_at) event triggers when it fires.
                    ev._ok, ev._value = ev._pending
                self.events_executed += 1
                ev._run_callbacks()
                # Drop the slot the moment it drains (callbacks may have
                # appended same-time events — then it stays), so `peek`
                # and `run(until)` never see a spent timestamp: the old
                # global heap popped entries eagerly and `heap[0]` was
                # always a still-pending event.
                if slot.head >= len(entries) and not slot.dirty:
                    del slots[time]
                    heapq.heappop(times)
                return True
        return False

    def peek(self) -> float | None:
        """Timestamp of the next pending event, or None when idle."""
        return self._times[0] if self._times else None

    def pending_slots(self) -> int:
        """How many distinct timestamps are queued (heap depth)."""
        return len(self._slots)

    def pending_events(self) -> int:
        """Undrained queued events across all slots (cancelled included).

        O(#slots), not O(#events) — cheap enough for the profiler to
        sample every tick.
        """
        return sum(len(s.entries) - s.head for s in self._slots.values())

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains or the clock reaches *until*.

        Returns the final simulated time.  With ``until`` given, the clock
        is advanced to exactly ``until`` even if the last event fired
        earlier, so back-to-back ``run`` calls compose predictably.
        """
        if until is not None and until < self._now:
            raise SimTimeError(f"run(until={until}) is in the past (now={self._now})")
        while self._times:
            nxt = self._times[0]
            if until is not None and nxt > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_process(self, gen: ProcGen, name: str = "proc") -> Any:
        """Spawn *gen*, run the simulation to completion, return its value.

        Convenience for tests and small examples.
        """
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise SimTimeError(f"process {name!r} never finished (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
