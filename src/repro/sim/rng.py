"""Named, seeded random streams.

Every stochastic component (step-time noise, failure injection, workload
generators) draws from its own named stream derived from a single root
seed, so adding a new consumer never perturbs existing ones and whole
experiments replay bit-identically.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically.

        The per-stream seed is derived by hashing ``(root_seed, name)`` so
        stream identity depends only on the name, not creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose root seed is derived from *name*."""
        digest = hashlib.sha256(f"{self._seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))

    # -- crash recovery -----------------------------------------------------
    def state_dict(self, names: list[str] | None = None) -> dict:
        """JSON-serializable positions of (a subset of) the named streams."""
        if names is None:
            names = sorted(self._streams)
        return {
            "seed": self._seed,
            "streams": {
                name: self._streams[name].bit_generator.state
                for name in names
                if name in self._streams
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore stream positions captured by :meth:`state_dict`.

        Streams absent from *state* are left untouched; streams named in
        *state* are (re)created at the recorded position.
        """
        for name, bg_state in state.get("streams", {}).items():
            self.stream(name).bit_generator.state = bg_state
