"""Waitable events for the simulation kernel."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import SimEngine


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    The ``cause`` is whatever the interrupter supplied — in this library
    usually a signal name such as ``"SIGTERM"`` or a failure record.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot waitable event.

    A process waits by ``yield``-ing the event; when the event *succeeds*
    (or *fails*) every waiting process is resumed at the current simulation
    time.  Events may only be triggered once.
    """

    _uids = itertools.count()

    def __init__(self, engine: "SimEngine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self.callbacks: list[Callable[["SimEvent"], None]] | None = []
        self._value: Any = None
        self._ok: bool | None = None
        # For engine-scheduled events (timeouts): (ok, value) applied when
        # the event fires, so `triggered` stays False until then.
        self._pending: tuple[bool, Any] | None = None
        self._uid = next(SimEvent._uids)
        self.cancelled = False
        # Heap placement of the most recent engine push — lets crash
        # recovery re-register an equivalent event at the exact same
        # (time, seq) slot so tie-breaking stays bit-identical.
        self.heap_time: float | None = None
        self.heap_seq: int | None = None

    def __lt__(self, other: "SimEvent") -> bool:
        # Heap tuples only reach the event on an exact (time, seq) tie,
        # which happens when a cancelled event is re-registered at its old
        # slot; creation order keeps that comparison deterministic.
        return self._uid < other._uid

    def cancel(self) -> None:
        """Mark a scheduled event dead; the engine skips it when popped."""
        self.cancelled = True

    # -- state --------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimError(f"event {self.name!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._ok is None:
            raise SimError(f"event {self.name!r} not yet triggered")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        """Mark the event successful and schedule waiter resumption now."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Mark the event failed; waiters will have *exc* thrown into them."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._ok is not None:
            raise SimError(f"event {self.name!r} already triggered")
        self._ok = ok
        self._value = value
        self.engine._schedule_event(self)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks or ():
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<SimEvent {self.name!r} {state}>"


class AnyOf(SimEvent):
    """Succeeds as soon as any child event triggers.

    Value is ``(index, child.value)`` of the first child to trigger.  A
    failed child fails the composite.
    """

    def __init__(self, engine: "SimEngine", events: list[SimEvent], name: str = "any") -> None:
        super().__init__(engine, name)
        if not events:
            raise SimError("AnyOf requires at least one event")
        self._children = list(events)
        for i, ev in enumerate(self._children):
            if ev.triggered:
                self._on_child(i, ev)
                break
            ev.callbacks.append(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, ev: SimEvent) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed((index, ev.value))
        else:
            self.fail(ev.value)


class AllOf(SimEvent):
    """Succeeds when every child event has succeeded.

    Value is the list of child values in input order.  A failed child fails
    the composite immediately.
    """

    def __init__(self, engine: "SimEngine", events: list[SimEvent], name: str = "all") -> None:
        super().__init__(engine, name)
        self._children = list(events)
        self._pending = 0
        for ev in self._children:
            if ev.triggered:
                if not ev.ok:
                    self.fail(ev.value)
                    return
                continue
            self._pending += 1
            ev.callbacks.append(self._on_child)
        if self._pending == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._children])

    def _on_child(self, ev: SimEvent) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])
