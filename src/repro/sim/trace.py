"""Execution tracing: the data behind every Gantt chart in the paper.

The paper's figures 6, 8 and 11 are Gantt charts of task runs (bars) with
dynamic-adjustment windows (red intervals) and annotated response times.
:class:`TraceRecorder` collects exactly that: named *spans* with open/close
times plus *point events*, and can slice them per task or per category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """A half-open interval ``[start, end)`` attributed to a track.

    ``end`` is None while the span is still open.
    """

    track: str
    label: str
    start: float
    end: float | None = None
    category: str = "task"
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.label!r} still open")
        return self.end - self.start


@dataclass(frozen=True)
class PointEvent:
    """An instantaneous annotated event."""

    time: float
    label: str
    category: str = "event"
    meta: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects spans and point events during a simulation run."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._points: list[PointEvent] = []
        self._open: dict[tuple[str, str], Span] = {}

    # -- recording -----------------------------------------------------------
    def open_span(
        self,
        track: str,
        label: str,
        start: float,
        category: str = "task",
        **meta: Any,
    ) -> Span:
        """Open a span; at most one open span per (track, label) pair."""
        key = (track, label)
        if key in self._open:
            raise ValueError(f"span already open for {key}")
        span = Span(track=track, label=label, start=start, category=category, meta=dict(meta))
        self._spans.append(span)
        self._open[key] = span
        return span

    def close_span(self, track: str, label: str, end: float, **meta: Any) -> Span:
        """Close the open span for (track, label)."""
        span = self._open.pop((track, label), None)
        if span is None:
            raise ValueError(f"no open span for {(track, label)}")
        span.end = end
        span.meta.update(meta)
        return span

    def add_span(
        self,
        track: str,
        label: str,
        start: float,
        end: float,
        category: str = "task",
        **meta: Any,
    ) -> Span:
        """Record an already-closed span."""
        span = Span(track=track, label=label, start=start, end=end, category=category, meta=dict(meta))
        self._spans.append(span)
        return span

    def point(self, time: float, label: str, category: str = "event", **meta: Any) -> PointEvent:
        ev = PointEvent(time=time, label=label, category=category, meta=dict(meta))
        self._points.append(ev)
        return ev

    # -- queries -------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        return list(self._spans)

    @property
    def points(self) -> list[PointEvent]:
        return list(self._points)

    def spans_for(self, track: str | None = None, category: str | None = None) -> list[Span]:
        """Spans filtered by track and/or category, in start order."""
        out = [
            s
            for s in self._spans
            if (track is None or s.track == track) and (category is None or s.category == category)
        ]
        out.sort(key=lambda s: (s.start, s.track, s.label))
        return out

    def points_for(self, category: str | None = None, label: str | None = None) -> list[PointEvent]:
        out = [
            p
            for p in self._points
            if (category is None or p.category == category) and (label is None or p.label == label)
        ]
        out.sort(key=lambda p: p.time)
        return out

    def tracks(self) -> list[str]:
        """All track names, in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self._spans:
            seen.setdefault(s.track, None)
        return list(seen)

    def end_time(self) -> float:
        """Latest closed-span end or point time (0.0 when empty)."""
        times = [s.end for s in self._spans if s.end is not None]
        times.extend(p.time for p in self._points)
        return max(times, default=0.0)
