"""Generator-based simulated processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import ProcessError
from repro.sim.events import Interrupt, SimEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import SimEngine

ProcGen = Generator[SimEvent, Any, Any]


class Process(SimEvent):
    """A running coroutine inside the simulation.

    A process wraps a generator that yields :class:`SimEvent` instances.
    The process itself is a :class:`SimEvent` that succeeds with the
    generator's return value (or fails with its uncaught exception), so
    processes can wait on other processes.
    """

    def __init__(self, engine: "SimEngine", gen: ProcGen, name: str = "proc") -> None:
        super().__init__(engine, name)
        self._gen = gen
        self._waiting_on: SimEvent | None = None
        # Kick the process off at the current time.
        start = SimEvent(engine, f"{name}:start")
        start.callbacks.append(lambda _ev: self._resume(None, None))
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, matching the semantics
        of sending a signal to an already-exited task.
        """
        if self.triggered:
            return
        # Detach from whatever the process was waiting on so a later
        # trigger of that event does not resume us twice.
        wake = SimEvent(self.engine, f"{self.name}:interrupt")
        wake.callbacks.append(lambda _ev: self._resume(None, Interrupt(cause)))
        wake.succeed()

    # ------------------------------------------------------------------ #
    def _resume(self, value: Any, exc: BaseException | None) -> None:
        if self.triggered:
            return
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is not None and not waiting.triggered and exc is None:
            # Spurious resume (event no longer relevant); ignore.
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate via event
            self.fail(err)
            return
        if not isinstance(target, SimEvent):
            self.fail(ProcessError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        if target.triggered:
            self._on_event(target)
        else:
            target.callbacks.append(self._on_event)

    def _on_event(self, ev: SimEvent) -> None:
        if self._waiting_on is not ev:
            return  # interrupted while waiting; stale wake-up
        if ev.ok:
            self._resume(ev.value, None)
        else:
            self._resume(None, ev.value)
