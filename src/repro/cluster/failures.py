"""Failure injection for the resilience experiments (paper §4.5).

The LAMMPS experiment takes a node out of service 10 minutes into the run
and watches DYFLOW restart the workflow excluding the failed node.  The
injector schedules such events on the simulation clock and notifies
subscribers (the launcher and the resource manager).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.sim.engine import SimEngine

FailureCallback = Callable[[Node, float], None]


@dataclass(frozen=True)
class FailureRecord:
    """One injected failure, for post-run inspection."""

    time: float
    node_id: str
    kind: str


class FailureInjector:
    """Schedules node failures/recoveries and fans out notifications."""

    def __init__(self, engine: SimEngine, machine: Machine) -> None:
        self.engine = engine
        self.machine = machine
        self._on_failure: list[FailureCallback] = []
        self._on_recovery: list[FailureCallback] = []
        self.history: list[FailureRecord] = []

    # -- subscriptions -----------------------------------------------------------
    def subscribe_failure(self, cb: FailureCallback) -> None:
        self._on_failure.append(cb)

    def subscribe_recovery(self, cb: FailureCallback) -> None:
        self._on_recovery.append(cb)

    # -- scheduling -------------------------------------------------------------
    def fail_node_at(self, time: float, node_id: str) -> None:
        """Mark *node_id* DOWN at absolute simulated *time*."""
        self.engine.call_at(time, lambda: self._do_fail(node_id), name=f"fail:{node_id}")

    def recover_node_at(self, time: float, node_id: str) -> None:
        """Return *node_id* to service at absolute simulated *time*."""
        self.engine.call_at(time, lambda: self._do_recover(node_id), name=f"recover:{node_id}")

    def fail_node_now(self, node_id: str) -> None:
        self._do_fail(node_id)

    def recover_node_now(self, node_id: str) -> None:
        self._do_recover(node_id)

    # -- internals -----------------------------------------------------------------
    def _do_fail(self, node_id: str) -> None:
        node = self.machine.node(node_id)
        if not node.is_up:
            # Already down: injecting twice is a no-op, but the skip is
            # recorded so replay comparisons see identical histories.
            self.history.append(FailureRecord(self.engine.now, node_id, "failure-skipped"))
            return
        node.fail()
        self.history.append(FailureRecord(self.engine.now, node_id, "failure"))
        for cb in self._on_failure:
            cb(node, self.engine.now)

    def _do_recover(self, node_id: str) -> None:
        node = self.machine.node(node_id)
        if node.is_up:
            self.history.append(FailureRecord(self.engine.now, node_id, "recovery-skipped"))
            return
        node.recover()
        self.history.append(FailureRecord(self.engine.now, node_id, "recovery"))
        for cb in self._on_recovery:
            cb(node, self.engine.now)
