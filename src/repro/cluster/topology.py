"""Interconnect model used by the staging layer for transfer-time estimates."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Interconnect:
    """A flat latency/bandwidth network model.

    The experiments never saturate the fabric, so a linear model
    (latency + size/bandwidth) is sufficient to order in-situ stream
    delivery against file I/O.
    """

    latency_us: float = 1.0
    bandwidth_gbps: float = 100.0

    def __post_init__(self) -> None:
        check_positive(self.latency_us, "latency_us")
        check_positive(self.bandwidth_gbps, "bandwidth_gbps")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move *nbytes* node-to-node."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency_us * 1e-6 + nbytes * 8.0 / (self.bandwidth_gbps * 1e9)
