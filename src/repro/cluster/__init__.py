"""Cluster substrate: machines, nodes, batch scheduler, resource manager.

This package substitutes for the two physical clusters in the paper
(Summit and Deepthought2).  It models the parts of a supercomputer that
DYFLOW's behaviour actually depends on:

* node inventories (cores / GPUs / memory) and node health,
* a batch scheduler handing out *allocations* with walltime limits,
* an in-allocation resource manager that assigns cores to workflow tasks
  (the service Arbitration consults and Actuation drives),
* per-machine latency constants (launch, signal, script overheads) that
  reproduce the paper's measured response-time differences between the
  two clusters, and
* a failure injector for the resilience experiments (§4.5).
"""

from repro.cluster.node import Node, NodeState
from repro.cluster.machine import Machine, MachinePerf, deepthought2, summit
from repro.cluster.allocation import Allocation, ResourceSet
from repro.cluster.resource_manager import ResourceManager
from repro.cluster.scheduler import BatchJob, BatchScheduler, JobState
from repro.cluster.failures import FailureInjector
from repro.cluster.topology import Interconnect

__all__ = [
    "Node",
    "NodeState",
    "Machine",
    "MachinePerf",
    "summit",
    "deepthought2",
    "Allocation",
    "ResourceSet",
    "ResourceManager",
    "BatchScheduler",
    "BatchJob",
    "JobState",
    "FailureInjector",
    "Interconnect",
]
