"""Compute-node model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import NodeStateError
from repro.util.validation import check_nonneg, check_positive


class NodeState(enum.Enum):
    """Lifecycle of a compute node.

    ``UP`` — healthy and usable; ``DOWN`` — failed / removed from service
    (paper §4.5: "one of the allocated nodes was taken out of service");
    ``DRAINING`` — scheduled for maintenance, no new work accepted.
    """

    UP = "up"
    DOWN = "down"
    DRAINING = "draining"


@dataclass
class Node:
    """A compute node with a fixed hardware inventory.

    Cores are the unit of assignment: the paper's ADDCPU/RMCPU actions move
    CPU cores (and thereby processes) between tasks.
    """

    node_id: str
    cores: int
    memory_gb: float = 128.0
    gpus: int = 0
    hw_threads_per_core: int = 1
    state: NodeState = NodeState.UP
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(self.cores, "cores")
        check_positive(self.memory_gb, "memory_gb")
        check_nonneg(self.gpus, "gpus")
        check_positive(self.hw_threads_per_core, "hw_threads_per_core")

    @property
    def is_up(self) -> bool:
        return self.state == NodeState.UP

    def fail(self) -> None:
        """Take the node out of service."""
        if self.state == NodeState.DOWN:
            raise NodeStateError(f"node {self.node_id} already down")
        self.state = NodeState.DOWN

    def drain(self) -> None:
        if self.state != NodeState.UP:
            raise NodeStateError(f"cannot drain node {self.node_id} in state {self.state.value}")
        self.state = NodeState.DRAINING

    def recover(self) -> None:
        """Return a DOWN or DRAINING node to service."""
        if self.state == NodeState.UP:
            raise NodeStateError(f"node {self.node_id} already up")
        self.state = NodeState.UP

    def __hash__(self) -> int:
        return hash(self.node_id)
