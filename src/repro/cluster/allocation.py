"""Allocations and resource sets.

A :class:`ResourceSet` is the currency Arbitration reasons about: a
mapping from node id to a number of cores on that node.  An
:class:`Allocation` is what the batch scheduler hands a job: a set of
whole nodes with a walltime limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.cluster.machine import Machine
from repro.cluster.node import Node, NodeState
from repro.errors import AllocationError


class ResourceSet:
    """An immutable bag of cores spread over nodes.

    Supports the set algebra the arbitration protocol needs: union,
    subtraction, total counts, and per-node views.  Node ids with zero
    cores are never stored.
    """

    __slots__ = ("_cores",)

    def __init__(self, cores: Mapping[str, int] | None = None) -> None:
        clean: dict[str, int] = {}
        for node_id, n in (cores or {}).items():
            if n < 0:
                raise AllocationError(f"negative core count {n} on node {node_id}")
            if n > 0:
                clean[node_id] = int(n)
        self._cores = clean

    # -- views ----------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return sum(self._cores.values())

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._cores)

    def cores_on(self, node_id: str) -> int:
        return self._cores.get(node_id, 0)

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._cores.items()))

    def as_dict(self) -> dict[str, int]:
        return dict(self._cores)

    def __bool__(self) -> bool:
        return bool(self._cores)

    def __len__(self) -> int:
        return len(self._cores)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceSet):
            return NotImplemented
        return self._cores == other._cores

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._cores.items())))

    # -- algebra ----------------------------------------------------------------
    def union(self, other: "ResourceSet") -> "ResourceSet":
        """Core-wise sum of two resource sets."""
        merged = dict(self._cores)
        for node_id, n in other._cores.items():
            merged[node_id] = merged.get(node_id, 0) + n
        return ResourceSet(merged)

    def subtract(self, other: "ResourceSet") -> "ResourceSet":
        """Remove *other*'s cores; raises if *other* is not contained."""
        remaining = dict(self._cores)
        for node_id, n in other._cores.items():
            have = remaining.get(node_id, 0)
            if n > have:
                raise AllocationError(
                    f"cannot subtract {n} cores on {node_id}: only {have} present"
                )
            remaining[node_id] = have - n
        return ResourceSet(remaining)

    def contains(self, other: "ResourceSet") -> bool:
        return all(self._cores.get(node_id, 0) >= n for node_id, n in other._cores.items())

    def restrict_to(self, node_ids: set[str]) -> "ResourceSet":
        """Keep only cores on the given nodes (e.g. exclude failed ones)."""
        return ResourceSet({k: v for k, v in self._cores.items() if k in node_ids})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._cores.items()))
        return f"ResourceSet({{{inner}}})"

    @classmethod
    def empty(cls) -> "ResourceSet":
        return cls({})


@dataclass
class Allocation:
    """A batch job's set of whole nodes, with a walltime limit."""

    alloc_id: str
    machine: Machine
    nodes: list[Node]
    walltime_limit: float
    start_time: float = 0.0
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise AllocationError("allocation must contain at least one node")
        if self.walltime_limit <= 0:
            raise AllocationError(f"walltime_limit must be > 0, got {self.walltime_limit}")

    @property
    def deadline(self) -> float:
        """Absolute simulated time at which the allocation expires."""
        return self.start_time + self.walltime_limit

    def healthy_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.state == NodeState.UP]

    def node_ids(self) -> list[str]:
        return [n.node_id for n in self.nodes]

    def full_resources(self) -> ResourceSet:
        """All cores on all healthy nodes of the allocation."""
        return ResourceSet({n.node_id: n.cores for n in self.healthy_nodes()})

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.healthy_nodes())
