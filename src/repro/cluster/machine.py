"""Machine models with performance profiles for Summit and Deepthought2.

The paper's two testbeds differ in hardware inventory and — observably, via
the reported response times — in task launch/teardown cost and per-core
speed.  :class:`MachinePerf` captures exactly those constants; the factory
functions bake in values calibrated so the reproduction's response-time
*shape* matches §4.3–§4.6 (Summit responses are consistently faster than
Deepthought2's, launch cost dominates start actions, graceful termination
dominates stop actions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import Node, NodeState
from repro.cluster.topology import Interconnect
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachinePerf:
    """Per-machine latency and speed constants (simulated seconds).

    Attributes:
        speed_factor: relative per-core compute speed (1.0 = Summit-class).
            Application step-time models divide by this factor.
        launch_latency: fixed cost to spawn a parallel task (jsrun / srun
            startup, library load).
        per_process_launch: additional launch cost per process spawned.
        signal_latency: time for a kill/stop signal to reach all processes.
        script_overhead: cost of running a user shell script (e.g.
            ``restart-xgc.sh``) before a START/RESTART.
        connect_latency: time to (re)establish a staging/stream connection.
        file_read_lag: sensor lag when reading a single variable from a
            file on disk (paper §4.6: ≈0.2 s).
        stream_read_lag: sensor lag when reading actively streamed profiler
            output (paper §4.6: ≈0.5 s).
        scheduler_poll: period at which the batch scheduler surfaces node
            status changes.
    """

    speed_factor: float = 1.0
    launch_latency: float = 0.1
    per_process_launch: float = 0.0002
    signal_latency: float = 0.02
    script_overhead: float = 3.5
    connect_latency: float = 0.05
    file_read_lag: float = 0.2
    stream_read_lag: float = 0.5
    scheduler_poll: float = 1.0


@dataclass
class Machine:
    """A named cluster: a node inventory plus a performance profile."""

    name: str
    nodes: list[Node]
    perf: MachinePerf = field(default_factory=MachinePerf)
    interconnect: Interconnect = field(default_factory=Interconnect)

    def __post_init__(self) -> None:
        ids = [n.node_id for n in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in machine {self.name!r}")
        self._by_id = {n.node_id: n for n in self.nodes}

    # -- queries -------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        return self._by_id[node_id]

    def up_nodes(self) -> list[Node]:
        """Healthy nodes, in inventory order."""
        return [n for n in self.nodes if n.state == NodeState.UP]

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.nodes)

    @property
    def cores_per_node(self) -> int:
        """Core count of the (homogeneous) node type."""
        return self.nodes[0].cores if self.nodes else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        up = len(self.up_nodes())
        return f"<Machine {self.name}: {len(self.nodes)} nodes ({up} up), {self.cores_per_node} cores/node>"


def _make_nodes(prefix: str, count: int, cores: int, memory_gb: float, gpus: int, hw_threads: int) -> list[Node]:
    return [
        Node(
            node_id=f"{prefix}{i:04d}",
            cores=cores,
            memory_gb=memory_gb,
            gpus=gpus,
            hw_threads_per_core=hw_threads,
        )
        for i in range(count)
    ]


def summit(num_nodes: int = 16, cores_per_node: int = 42) -> Machine:
    """A Summit-like machine (§4.1).

    Real Summit has 4,608 nodes; experiments use a handful, so *num_nodes*
    selects the allocation-scale inventory.  Each node: 2×IBM Power9 =
    42 usable cores, 4-way SMT, 6 Volta GPUs, 512 GB DDR4.

    ``cores_per_node`` lets scenarios model *process slots* instead of
    raw cores — e.g. XGC runs 14 processes of 10 threads per node, so a
    node offers 14 schedulable slots.
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(cores_per_node, "cores_per_node")
    return Machine(
        name="summit",
        nodes=_make_nodes("summit", num_nodes, cores=cores_per_node, memory_gb=512.0, gpus=6, hw_threads=4),
        perf=MachinePerf(
            speed_factor=1.0,
            launch_latency=0.08,
            per_process_launch=0.0002,
            signal_latency=0.02,
            script_overhead=3.5,
            connect_latency=0.05,
            file_read_lag=0.2,
            stream_read_lag=0.5,
            scheduler_poll=1.0,
        ),
        interconnect=Interconnect(latency_us=1.0, bandwidth_gbps=100.0),  # EDR 100G IB
    )


def deepthought2(num_nodes: int = 24, cores_per_node: int = 20) -> Machine:
    """A Deepthought2-like machine (§4.1).

    Each node: dual Intel Ivy Bridge E5-2680v2 = 20 cores, 2 HW threads
    per core, 128 GB DDR3.  The perf profile is slower across the board:
    older cores (lower ``speed_factor``), slower launcher and filesystem —
    this reproduces the paper's consistently larger Deepthought2 response
    times (11 s vs 8 s XGC1 start, 42 s vs 2 s stop, 87 s vs 36 s plan).

    ``cores_per_node`` models process slots, as for :func:`summit`.
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(cores_per_node, "cores_per_node")
    return Machine(
        name="deepthought2",
        nodes=_make_nodes("dt2-", num_nodes, cores=cores_per_node, memory_gb=128.0, gpus=0, hw_threads=2),
        perf=MachinePerf(
            speed_factor=0.55,
            launch_latency=0.35,
            per_process_launch=0.001,
            signal_latency=0.05,
            script_overhead=7.0,
            connect_latency=0.15,
            file_read_lag=0.25,
            stream_read_lag=0.6,
            scheduler_poll=2.0,
        ),
        interconnect=Interconnect(latency_us=1.5, bandwidth_gbps=56.0),  # FDR IB
    )
