"""In-allocation resource manager.

This is the service the paper's Arbitration stage keeps "recent information"
from (total allocated resources, resource health, current assignment) and
that Actuation drives through low-level operations.  It owns the invariant

    assigned(node) + free(node) == node.cores        for every healthy node
    assigned(node) == free(node) == 0                for every failed node

which the property-based tests check after arbitrary operation sequences.
"""

from __future__ import annotations

from repro.cluster.allocation import Allocation, ResourceSet
from repro.cluster.node import NodeState
from repro.errors import AllocationError


def place_cores(
    free: ResourceSet,
    nodes,
    ncores: int,
    per_node_limit: int | None = None,
    exclude_nodes: set[str] | None = None,
) -> ResourceSet:
    """Deterministically pick *ncores* from *free* over *nodes*.

    Standalone placement used both by the live resource manager and by
    Arbitration's shadow bookkeeping while it builds a plan.  Nodes are
    filled in inventory order; unhealthy and excluded nodes are skipped.
    Raises :class:`AllocationError` when the request cannot be met.
    """
    if ncores <= 0:
        raise AllocationError(f"ncores must be > 0, got {ncores}")
    exclude = exclude_nodes or set()
    chosen: dict[str, int] = {}
    remaining = ncores
    for node in nodes:
        if remaining == 0:
            break
        if node.state != NodeState.UP or node.node_id in exclude:
            continue
        avail = free.cores_on(node.node_id)
        if per_node_limit is not None:
            avail = min(avail, per_node_limit)
        take = min(avail, remaining)
        if take > 0:
            chosen[node.node_id] = take
            remaining -= take
    if remaining > 0:
        raise AllocationError(
            f"cannot place {ncores} cores"
            f"{f' (limit {per_node_limit}/node)' if per_node_limit else ''}: "
            f"{ncores - remaining} available under constraints"
        )
    return ResourceSet(chosen)


class ResourceManager:
    """Assigns cores of one allocation to named owners (workflow tasks).

    ``quarantine`` (a :class:`repro.resilience.NodeQuarantine`, optional)
    is the node circuit breaker: nodes it reports as quarantined are
    excluded from every placement even while the scheduler says UP.
    """

    def __init__(self, allocation: Allocation, quarantine=None) -> None:
        self.allocation = allocation
        self.quarantine = quarantine
        self._assigned: dict[str, ResourceSet] = {}
        # Incremental per-node totals mirroring _assigned, so
        # assigned_total()/free() stay O(nodes) instead of unioning every
        # owner's set (O(owners x nodes) per call made task launch
        # quadratic at 10k tasks).
        self._per_node: dict[str, int] = {}
        #: Bumped on every assignment mutation; Arbitration keys its
        #: placement-feasibility cache on it (plus node health and
        #: quarantine state, which change outside this class).
        self.version = 0

    def _account(self, rs: ResourceSet, sign: int) -> None:
        self.version += 1
        per_node = self._per_node
        for node_id, n in rs.as_dict().items():
            c = per_node.get(node_id, 0) + sign * n
            if c:
                per_node[node_id] = c
            else:
                per_node.pop(node_id, None)

    # -- views ----------------------------------------------------------------
    def owners(self) -> list[str]:
        return sorted(self._assigned)

    def assignment(self, owner: str) -> ResourceSet:
        """Current resources of *owner* (empty set if none)."""
        return self._assigned.get(owner, ResourceSet.empty())

    def assigned_total(self) -> ResourceSet:
        return ResourceSet(self._per_node)

    def free(self) -> ResourceSet:
        """Unassigned cores on healthy nodes."""
        return self.allocation.full_resources().subtract(
            self.assigned_total().restrict_to(
                {n.node_id for n in self.allocation.healthy_nodes()}
            )
        )

    def free_cores(self) -> int:
        return self.free().total_cores

    def healthy_node_ids(self) -> set[str]:
        return {n.node_id for n in self.allocation.healthy_nodes()}

    def node_status(self) -> dict[str, str]:
        """Health of every allocation node — `get_resource_status` plugin op."""
        status = {n.node_id: n.state.value for n in self.allocation.nodes}
        for node_id in self.excluded_nodes():
            if status.get(node_id) == NodeState.UP.value:
                status[node_id] = "quarantined"
        return status

    def excluded_nodes(self) -> set[str]:
        """Nodes the circuit breaker currently bars from placement."""
        return self.quarantine.active() if self.quarantine is not None else set()

    # -- placement --------------------------------------------------------------
    def plan_placement(
        self,
        ncores: int,
        per_node_limit: int | None = None,
        exclude_nodes: set[str] | None = None,
        avoid: ResourceSet | None = None,
    ) -> ResourceSet:
        """Choose *ncores* free cores without committing them.

        Placement is deterministic: nodes are filled in inventory order,
        taking up to ``per_node_limit`` cores per node (the tables in the
        paper specify exactly this, e.g. "20 processes, 2 per node").
        ``exclude_nodes`` supports failure resilience — Arbitration
        "ensures the exclusion of problematic resources" (§4.5).
        ``avoid`` subtracts cores that an in-flight plan already claimed.

        Raises :class:`AllocationError` when the request cannot be met.
        """
        free = self.free()
        if avoid is not None:
            free = free.subtract(avoid)
        exclude = set(exclude_nodes) if exclude_nodes else set()
        exclude |= self.excluded_nodes()
        return place_cores(free, self.allocation.nodes, ncores, per_node_limit, exclude)

    # -- mutation ----------------------------------------------------------------
    def assign(
        self,
        owner: str,
        ncores: int,
        per_node_limit: int | None = None,
        exclude_nodes: set[str] | None = None,
    ) -> ResourceSet:
        """Assign *ncores* fresh cores to *owner* (must not hold any)."""
        if owner in self._assigned:
            raise AllocationError(f"owner {owner!r} already holds resources; use grow()")
        rs = self.plan_placement(ncores, per_node_limit, exclude_nodes)
        self._assigned[owner] = rs
        self._account(rs, +1)
        return rs

    def assign_set(self, owner: str, rs: ResourceSet) -> ResourceSet:
        """Assign an explicit, already-planned resource set to *owner*."""
        if owner in self._assigned:
            raise AllocationError(f"owner {owner!r} already holds resources")
        if not self.free().contains(rs):
            raise AllocationError(f"resource set {rs!r} not free")
        self._assigned[owner] = rs
        self._account(rs, +1)
        return rs

    def grow(
        self,
        owner: str,
        ncores: int,
        per_node_limit: int | None = None,
        exclude_nodes: set[str] | None = None,
    ) -> ResourceSet:
        """Add *ncores* to an existing owner; returns the added set."""
        if owner not in self._assigned:
            raise AllocationError(f"owner {owner!r} holds no resources; use assign()")
        added = self.plan_placement(ncores, per_node_limit, exclude_nodes)
        self._assigned[owner] = self._assigned[owner].union(added)
        self._account(added, +1)
        return added

    def shrink(self, owner: str, ncores: int) -> ResourceSet:
        """Remove *ncores* from *owner* (released back to the free pool).

        Cores are shed from the highest-index nodes first so the remaining
        assignment stays packed — mirroring how RMCPU reduces the process
        count from the tail of the rank list.
        """
        current = self._assigned.get(owner)
        if current is None:
            raise AllocationError(f"owner {owner!r} holds no resources")
        if ncores <= 0:
            raise AllocationError(f"ncores must be > 0, got {ncores}")
        if ncores > current.total_cores:
            raise AllocationError(
                f"owner {owner!r} holds {current.total_cores} cores, cannot shed {ncores}"
            )
        shed: dict[str, int] = {}
        remaining = ncores
        for node_id, have in sorted(current.as_dict().items(), reverse=True):
            if remaining == 0:
                break
            take = min(have, remaining)
            shed[node_id] = take
            remaining -= take
        shed_rs = ResourceSet(shed)
        new_rs = current.subtract(shed_rs)
        if new_rs:
            self._assigned[owner] = new_rs
        else:
            del self._assigned[owner]
        self._account(shed_rs, -1)
        return shed_rs

    def release(self, owner: str) -> ResourceSet:
        """Release everything *owner* holds; returns the released set."""
        rs = self._assigned.pop(owner, None)
        if rs is None:
            raise AllocationError(f"owner {owner!r} holds no resources")
        self._account(rs, -1)
        return rs

    def release_if_held(self, owner: str) -> ResourceSet:
        """Like :meth:`release` but a no-op for unknown owners."""
        rs = self._assigned.pop(owner, ResourceSet.empty())
        self._account(rs, -1)
        return rs

    # -- failure handling ----------------------------------------------------------
    def on_node_failure(self, node_id: str) -> list[str]:
        """Strip a failed node's cores from every assignment.

        Returns the owners that lost cores — the launcher uses this to mark
        those tasks as failed.  (The node itself is marked DOWN by the
        failure injector; this method only fixes up the bookkeeping.)
        """
        affected = []
        for owner, rs in list(self._assigned.items()):
            lost = rs.cores_on(node_id)
            if lost > 0:
                affected.append(owner)
                stripped = ResourceSet({k: v for k, v in rs.as_dict().items() if k != node_id})
                if stripped:
                    self._assigned[owner] = stripped
                else:
                    del self._assigned[owner]
                self._account(ResourceSet({node_id: lost}), -1)
        return sorted(affected)

    # -- crash recovery ----------------------------------------------------------------
    def state_dict(self) -> dict:
        """Owner → per-node core map (journal snapshot audit)."""
        return {owner: rs.as_dict() for owner, rs in sorted(self._assigned.items())}

    def load_state_dict(self, state: dict) -> None:
        self._assigned = {
            owner: ResourceSet({n: int(c) for n, c in cores.items()})
            for owner, cores in state.items()
        }
        self._per_node = {}
        self.version += 1  # even an empty snapshot invalidates feasibility memos
        for rs in self._assigned.values():
            self._account(rs, +1)

    # -- invariants ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`AllocationError` if bookkeeping is inconsistent."""
        per_node: dict[str, int] = {}
        for rs in self._assigned.values():
            for node_id, n in rs.items():
                per_node[node_id] = per_node.get(node_id, 0) + n
        for node in self.allocation.nodes:
            used = per_node.pop(node.node_id, 0)
            if node.state != NodeState.UP and used > 0:
                raise AllocationError(f"cores assigned on unhealthy node {node.node_id}")
            if used > node.cores:
                raise AllocationError(
                    f"node {node.node_id} oversubscribed: {used} > {node.cores}"
                )
        if per_node:
            raise AllocationError(f"assignments on unknown nodes: {sorted(per_node)}")
