"""Batch scheduler: FIFO job queue handing out whole-node allocations.

Savanna "communicates with the cluster scheduler [and] allocates the
required resources" (paper §3).  The reproduction needs a scheduler that
can (a) grant whole-node allocations, (b) enforce walltime limits — the
Gray-Scott experiment's failure mode without DYFLOW is precisely a
walltime timeout — and (c) report node-status changes, which Arbitration
"(indirectly) relies on the underlying job scheduler to provide" (§4.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.allocation import Allocation
from repro.cluster.machine import Machine
from repro.cluster.node import Node, NodeState
from repro.errors import SchedulerError
from repro.sim.engine import SimEngine
from repro.sim.events import SimEvent
from repro.util.ids import IdGenerator


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"


@dataclass
class BatchJob:
    """A submitted batch job and its lifecycle."""

    job_id: str
    num_nodes: int
    walltime_limit: float
    state: JobState = JobState.PENDING
    allocation: Allocation | None = None
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    granted: SimEvent | None = None
    on_timeout: Callable[["BatchJob"], None] | None = None
    _deadline_event: SimEvent | None = field(default=None, repr=False)


class BatchScheduler:
    """Scheduler over one machine's node inventory.

    Dispatch is FIFO by default; with ``backfill=True`` it runs EASY
    backfilling: the queue head gets a reservation at the earliest time
    enough nodes will be free (running jobs release nodes at their
    walltime deadlines at the latest), and later jobs may jump ahead only
    if doing so cannot delay that reservation — either they finish before
    it, or they fit in the nodes the reservation does not need.
    """

    def __init__(self, engine: SimEngine, machine: Machine, backfill: bool = False) -> None:
        self.engine = engine
        self.machine = machine
        self.backfill = backfill
        self._ids = IdGenerator()
        self._queue: list[BatchJob] = []
        self._running: dict[str, BatchJob] = {}
        self._busy_nodes: set[str] = set()
        self.backfilled_jobs = 0

    # -- submission -------------------------------------------------------------
    def submit(
        self,
        num_nodes: int,
        walltime_limit: float,
        on_timeout: Callable[[BatchJob], None] | None = None,
    ) -> BatchJob:
        """Queue a job; ``job.granted`` succeeds with its Allocation."""
        if num_nodes <= 0:
            raise SchedulerError(f"num_nodes must be > 0, got {num_nodes}")
        if num_nodes > len(self.machine.nodes):
            raise SchedulerError(
                f"requested {num_nodes} nodes; machine {self.machine.name} has "
                f"{len(self.machine.nodes)}"
            )
        if walltime_limit <= 0:
            raise SchedulerError(f"walltime_limit must be > 0, got {walltime_limit}")
        job = BatchJob(
            job_id=self._ids.next("job"),
            num_nodes=num_nodes,
            walltime_limit=walltime_limit,
            submit_time=self.engine.now,
            granted=self.engine.event("job-granted"),
            on_timeout=on_timeout,
        )
        self._queue.append(job)
        self._try_dispatch()
        return job

    # -- completion -----------------------------------------------------------------
    def complete(self, job: BatchJob) -> None:
        """Job finished normally; its nodes return to the pool."""
        if job.state != JobState.RUNNING:
            raise SchedulerError(f"job {job.job_id} not running (state={job.state.value})")
        self._finish(job, JobState.COMPLETED)

    def cancel(self, job: BatchJob) -> None:
        """Cancel a pending or running job."""
        if job.state == JobState.PENDING:
            self._queue.remove(job)
            job.state = JobState.CANCELLED
            job.end_time = self.engine.now
            return
        if job.state == JobState.RUNNING:
            self._finish(job, JobState.CANCELLED)
            return
        raise SchedulerError(f"cannot cancel job {job.job_id} in state {job.state.value}")

    def _finish(self, job: BatchJob, state: JobState) -> None:
        job.state = state
        job.end_time = self.engine.now
        del self._running[job.job_id]
        assert job.allocation is not None
        for node in job.allocation.nodes:
            self._busy_nodes.discard(node.node_id)
        self._try_dispatch()

    # -- dispatch ------------------------------------------------------------------
    def _available_nodes(self) -> list[Node]:
        return [
            n
            for n in self.machine.nodes
            if n.state == NodeState.UP and n.node_id not in self._busy_nodes
        ]

    def _try_dispatch(self) -> None:
        """Start queued jobs: FIFO while the head fits, then backfill."""
        while self._queue:
            job = self._queue[0]
            if len(self._available_nodes()) < job.num_nodes:
                break
            self._queue.pop(0)
            self._start_job(job)
        if self.backfill and self._queue:
            self._try_backfill()

    def _start_job(self, job: BatchJob) -> None:
        avail = self._available_nodes()
        nodes = avail[: job.num_nodes]
        for node in nodes:
            self._busy_nodes.add(node.node_id)
        alloc = Allocation(
            alloc_id=self._ids.next("alloc"),
            machine=self.machine,
            nodes=nodes,
            walltime_limit=job.walltime_limit,
            start_time=self.engine.now,
        )
        job.allocation = alloc
        job.state = JobState.RUNNING
        job.start_time = self.engine.now
        self._running[job.job_id] = job
        job._deadline_event = self.engine.call_at(
            alloc.deadline, lambda j=job: self._on_deadline(j), name=f"{job.job_id}:deadline"
        )
        assert job.granted is not None
        job.granted.succeed(alloc)

    def _head_reservation(self) -> tuple[float, int]:
        """(earliest start time for the queue head, spare nodes then).

        Running jobs release their nodes at their walltime deadlines at
        the latest; walking those deadlines in order finds the first
        instant the head's request fits.
        """
        head = self._queue[0]
        free = len(self._available_nodes())
        releases = sorted(
            (j.allocation.deadline, len(j.allocation.nodes))
            for j in self._running.values()
            if j.allocation is not None
        )
        t = self.engine.now
        for deadline, released in releases:
            if free >= head.num_nodes:
                break
            t = deadline
            free += released
        return t, free - head.num_nodes

    def _try_backfill(self) -> None:
        """EASY backfill: later jobs may start now if the head's
        reservation cannot be delayed by it."""
        reservation_time, spare = self._head_reservation()
        i = 1
        while i < len(self._queue):
            job = self._queue[i]
            free_now = len(self._available_nodes())
            if job.num_nodes > free_now:
                i += 1
                continue
            finishes_before = self.engine.now + job.walltime_limit <= reservation_time
            fits_in_spare = job.num_nodes <= spare
            if finishes_before or fits_in_spare:
                self._queue.pop(i)
                self._start_job(job)
                self.backfilled_jobs += 1
                if fits_in_spare and not finishes_before:
                    spare -= job.num_nodes
            else:
                i += 1

    def _on_deadline(self, job: BatchJob) -> None:
        """Walltime expired: the scheduler kills the job."""
        if job.state != JobState.RUNNING:
            return
        self._finish(job, JobState.TIMEOUT)
        if job.on_timeout is not None:
            job.on_timeout(job)

    # -- introspection ---------------------------------------------------------------
    @property
    def pending_jobs(self) -> list[BatchJob]:
        return list(self._queue)

    @property
    def running_jobs(self) -> list[BatchJob]:
        return list(self._running.values())
