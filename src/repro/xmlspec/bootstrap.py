"""Bootstrap: wire a parsed XML spec into a running orchestrator.

This is the paper's Bootstrap module: "parses the XML file with user
orchestration specifications of the workflow and initiates threads
corresponding to the Monitor, Decision, Arbitrator modules providing
them with essential information."
"""

from __future__ import annotations

from repro.core.rules import ArbitrationRules
from repro.errors import XmlSpecError
from repro.runtime.options import RuntimeOptions
from repro.runtime.sim_driver import DyflowOrchestrator
from repro.telemetry.config import TelemetrySpec
from repro.wms.launcher import Savanna
from repro.xmlspec.model import DyflowSpec


def configure_orchestrator(
    launcher: Savanna,
    spec: DyflowSpec,
    warmup: float = 120.0,
    settle: float = 120.0,
    poll_interval: float = 1.0,
    num_clients: int = 1,
    allow_victims: bool = True,
    record_history: bool = False,
    graceful_stops: bool = True,
    telemetry: TelemetrySpec | None = None,
    tracer=None,
    observability=None,
    journal=None,
    ignore_crash_requests: bool = False,
    on_crash=None,
    preflight: str = "off",
    options: RuntimeOptions | None = None,
) -> DyflowOrchestrator:
    """Build a :class:`DyflowOrchestrator` for *launcher* from *spec*.

    Sensors, monitor-task bindings, policies, applications and rules are
    installed; the XML's rule dependencies are merged over the workflow's
    own dependency declarations.  Runtime configuration starts from
    :meth:`RuntimeOptions.from_spec` — the XML's ``<resilience>``,
    ``<telemetry>``, ``<journal>`` and ``<observability>`` sections — and
    each convenience argument (*telemetry*, *journal*, *observability*,
    *preflight*) overrides its section when given; pass an explicit
    *options* to replace the spec-derived bundle wholesale (combining it
    with the per-section arguments is an error).  These convenience
    keywords remain first-class here — only the orchestrator constructors
    deprecate them.  A spec/options resilience section configures the
    launcher's recovery layer *before* the orchestrator is built, so the
    orchestrator can wire the watchdog and the chaos engine; without one,
    any programmatically installed resilience spec is left intact.
    *tracer*, *ignore_crash_requests* and *on_crash* pass straight
    through to the orchestrator (used when rebuilding one for
    :meth:`DyflowOrchestrator.resume_from`).
    """
    workflow_id = launcher.workflow.workflow_id
    overrides = {
        k: v
        for k, v in (
            ("telemetry", telemetry),
            ("journal", journal),
            ("observability", observability),
        )
        if v is not None
    }
    if preflight != "off":
        overrides["preflight"] = preflight
    if options is not None:
        if overrides:
            raise XmlSpecError(
                f"configure_orchestrator: {sorted(overrides)} passed alongside "
                "options=; fold them into the RuntimeOptions"
            )
        opts = options
    else:
        opts = RuntimeOptions.from_spec(spec).override(**overrides)
    rule = spec.rules.get(workflow_id)
    rules = ArbitrationRules.from_workflow(
        launcher.workflow,
        task_priorities=rule.task_priorities if rule else None,
        policy_priorities=rule.policy_priorities if rule else None,
    )
    if rule is not None:
        known = {(d.task, d.parent) for d in rules.dependencies}
        for dep in rule.dependencies:
            if (dep.task, dep.parent) not in known:
                rules.dependencies.append(dep)

    orch = DyflowOrchestrator(
        launcher,
        rules,
        warmup=warmup,
        settle=settle,
        poll_interval=poll_interval,
        num_clients=num_clients,
        allow_victims=allow_victims,
        record_history=record_history,
        graceful_stops=graceful_stops,
        options=opts,
        tracer=tracer,
        ignore_crash_requests=ignore_crash_requests,
        on_crash=on_crash,
    )
    for sensor in spec.sensors.values():
        orch.add_sensor(sensor)
    for i, mt in enumerate(spec.monitor_tasks):
        if mt.workflow_id != workflow_id:
            continue
        orch.monitor_task(
            mt.task,
            mt.sensor_id,
            info_source=mt.info_source,
            var=mt.info,
            client=i % num_clients,
        )
    for policy in spec.policies.values():
        orch.add_policy(policy)
    applied = 0
    for app in spec.applications:
        if app.workflow_id != workflow_id:
            continue
        orch.apply_policy(app)
        applied += 1
    if spec.applications and applied == 0:
        raise XmlSpecError(
            f"spec has policy applications but none for workflow {workflow_id!r}"
        )
    return orch
