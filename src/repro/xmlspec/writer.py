"""Emit DYFLOW XML from a :class:`DyflowSpec` (round-trips with the parser)."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.xmlspec.model import DyflowSpec


def write_dyflow_xml(spec: DyflowSpec) -> str:
    """Serialize *spec* into an indented ``<dyflow>`` document."""
    root = ET.Element("dyflow")
    _write_monitor(root, spec)
    _write_decision(root, spec)
    _write_arbitration(root, spec)
    _write_resilience(root, spec)
    _write_telemetry(root, spec)
    _write_journal(root, spec)
    _write_observability(root, spec)
    _write_tenants(root, spec)
    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")


def _write_monitor(root: ET.Element, spec: DyflowSpec) -> None:
    if not spec.sensors and not spec.monitor_tasks:
        return  # a fix pass may have emptied the section; omit it
    monitor = ET.SubElement(root, "monitor")
    sensors = ET.SubElement(monitor, "sensors")
    for sensor in spec.sensors.values():
        s = ET.SubElement(sensors, "sensor", id=sensor.sensor_id, type=sensor.source_type)
        if sensor.preprocess:
            ET.SubElement(s, "preprocess", operation=sensor.preprocess)
        gb = ET.SubElement(s, "group-by")
        for g in sensor.group_by:
            ET.SubElement(
                gb, "group",
                attrib={"granularity": g.granularity, "reduction-operation": g.reduction},
            )
        if sensor.join is not None:
            ET.SubElement(
                s, "join",
                attrib={"sensor-id": sensor.join.other_sensor_id, "operation": sensor.join.operation},
            )
    tasks = ET.SubElement(monitor, "monitor-tasks")
    # One <monitor-task> per (task, workflow, info-source) grouping.
    grouped: dict[tuple, list] = {}
    for mt in spec.monitor_tasks:
        grouped.setdefault((mt.task, mt.workflow_id, mt.info_source), []).append(mt)
    for (task, workflow_id, info_source), uses in grouped.items():
        attrib = {"name": task, "workflowId": workflow_id}
        if info_source:
            attrib["info-source"] = info_source
        mt_el = ET.SubElement(tasks, "monitor-task", attrib=attrib)
        for mt in uses:
            attrib = {"sensor-id": mt.sensor_id}
            if mt.info:
                attrib["info"] = mt.info
            use = ET.SubElement(mt_el, "use-sensor", attrib=attrib)
            for key, value in mt.params.items():
                ET.SubElement(use, "parameter", key=key, value=str(value))


def _write_decision(root: ET.Element, spec: DyflowSpec) -> None:
    if not spec.policies and not spec.applications:
        return
    decision = ET.SubElement(root, "decision")
    policies = ET.SubElement(decision, "policies")
    for p in spec.policies.values():
        pe = ET.SubElement(policies, "policy", id=p.policy_id)
        ET.SubElement(pe, "eval", operation=p.eval_op, threshold=repr(p.threshold))
        stu = ET.SubElement(pe, "sensors-to-use")
        ET.SubElement(stu, "use-sensor", id=p.sensor_id, granularity=p.granularity)
        action = ET.SubElement(pe, "action")
        action.text = f" {p.action.value} "
        if p.history_window > 1:
            ET.SubElement(pe, "history", window=str(p.history_window), operation=p.history_op)
        ET.SubElement(pe, "frequency", seconds=repr(p.frequency))
    by_workflow: dict[str, list] = {}
    for app in spec.applications:
        by_workflow.setdefault(app.workflow_id, []).append(app)
    for workflow_id, apps in by_workflow.items():
        ao = ET.SubElement(decision, "apply-on", workflowId=workflow_id)
        for app in apps:
            attrib = {"policyId": app.policy_id}
            if app.assess_task:
                attrib["assess-task"] = app.assess_task
            ap = ET.SubElement(ao, "apply-policy", attrib=attrib)
            act = ET.SubElement(ap, "act-on-tasks")
            act.text = " ".join(app.act_on_tasks)
            if app.action_params:
                params = ET.SubElement(ap, "action-params")
                for key, value in app.action_params.items():
                    ET.SubElement(params, "param", key=key, value=str(value))


def _write_arbitration(root: ET.Element, spec: DyflowSpec) -> None:
    if not spec.rules:
        return
    arbitration = ET.SubElement(root, "arbitration")
    rules = ET.SubElement(arbitration, "rules")
    for rule in spec.rules.values():
        rf = ET.SubElement(rules, "rule-for", workflowId=rule.workflow_id)
        if rule.task_priorities:
            tp = ET.SubElement(rf, "task-priorities")
            for name, pri in rule.task_priorities.items():
                ET.SubElement(tp, "task-priority", name=name, priority=str(pri))
        if rule.policy_priorities:
            pp = ET.SubElement(rf, "policy-priorities")
            for name, pri in rule.policy_priorities.items():
                ET.SubElement(pp, "policy-priority", name=name, priority=str(pri))
        if rule.dependencies:
            td = ET.SubElement(rf, "task-dependencies", workflowId=rule.workflow_id)
            for dep in rule.dependencies:
                ET.SubElement(
                    td, "task-dep", name=dep.task, type=dep.type.name, parent=dep.parent
                )


def _write_resilience(root: ET.Element, spec: DyflowSpec) -> None:
    res = spec.resilience
    if res is None:
        return
    section = ET.SubElement(root, "resilience")
    if res.retry is not None:
        ET.SubElement(
            section, "retry",
            attrib={
                "max-retries": str(res.retry.max_retries),
                "backoff-base": repr(res.retry.backoff_base),
                "backoff-factor": repr(res.retry.backoff_factor),
                "backoff-max": repr(res.retry.backoff_max),
                "jitter": repr(res.retry.jitter),
            },
        )
    if res.watchdog is not None:
        ET.SubElement(
            section, "watchdog",
            attrib={
                "heartbeat-timeout": repr(res.watchdog.heartbeat_timeout),
                "poll": repr(res.watchdog.poll),
                "kill-code": str(res.watchdog.kill_code),
            },
        )
    if res.quarantine is not None:
        ET.SubElement(
            section, "quarantine",
            attrib={
                "failures": str(res.quarantine.failures),
                "window": repr(res.quarantine.window),
                "cooldown": repr(res.quarantine.cooldown),
            },
        )
    if res.checkpoint is not None:
        ET.SubElement(
            section, "checkpoint",
            attrib={
                "every": str(res.checkpoint.every),
                "resume": "true" if res.checkpoint.resume else "false",
            },
        )
    if res.faults is not None:
        ET.SubElement(
            section, "faults",
            attrib={
                "node-mtbf": repr(res.faults.node_mtbf),
                "node-dist": res.faults.node_dist,
                "weibull-shape": repr(res.faults.weibull_shape),
                "node-repair-time": repr(res.faults.node_repair_time),
                "task-crash-mtbf": repr(res.faults.task_crash_mtbf),
                "task-hang-mtbf": repr(res.faults.task_hang_mtbf),
                "orch-crash-mtbf": repr(res.faults.orch_crash_mtbf),
                "msg-drop-prob": repr(res.faults.msg_drop_prob),
                "stage-drop-prob": repr(res.faults.stage_drop_prob),
            },
        )
    if res.network is not None:
        net = res.network
        net_el = ET.SubElement(
            section, "network",
            attrib={
                "enabled": "true" if net.enabled else "false",
                "latency": repr(net.latency),
                "jitter": repr(net.jitter),
                "drop-prob": repr(net.drop_prob),
                "dup-prob": repr(net.dup_prob),
                "reorder-prob": repr(net.reorder_prob),
                "reorder-delay": repr(net.reorder_delay),
                "ack-timeout": repr(net.ack_timeout),
                "ack-drop-prob": repr(net.ack_drop_prob),
                "max-retransmits": str(net.max_retransmits),
                "retransmit-factor": repr(net.retransmit_factor),
                "retransmit-max": repr(net.retransmit_max),
                "retransmit-jitter": repr(net.retransmit_jitter),
                "send-buffer": str(net.send_buffer),
                "breaker-failures": str(net.breaker_failures),
                "breaker-reset": repr(net.breaker_reset),
                "ingress-capacity": str(net.ingress_capacity),
                "drain-per-tick": str(net.drain_per_tick),
                "stale-after": repr(net.stale_after),
                "degrade-after": str(net.degrade_after),
                "recover-after": str(net.recover_after),
            },
        )
        for w in net.partitions:
            attrib = {"start": repr(w.start), "duration": repr(w.duration)}
            if w.link is not None:
                attrib["link"] = w.link
            ET.SubElement(net_el, "partition", attrib=attrib)
        for lo in net.links:
            attrib = {"client": lo.client}
            for field, xml_name in (
                ("latency", "latency"), ("jitter", "jitter"),
                ("drop_prob", "drop-prob"), ("dup_prob", "dup-prob"),
                ("reorder_prob", "reorder-prob"), ("reorder_delay", "reorder-delay"),
            ):
                value = getattr(lo, field)
                if value is not None:
                    attrib[xml_name] = repr(value)
            ET.SubElement(net_el, "link", attrib=attrib)


def _write_telemetry(root: ET.Element, spec: DyflowSpec) -> None:
    tel = spec.telemetry
    if tel is None:
        return
    section = ET.SubElement(
        root, "telemetry",
        attrib={
            "enabled": "true" if tel.enabled else "false",
            "sample": repr(tel.sample),
        },
    )
    if tel.jsonl_path is not None:
        ET.SubElement(section, "jsonl", path=tel.jsonl_path)
    if tel.chrome_trace_path is not None:
        ET.SubElement(section, "chrome-trace", path=tel.chrome_trace_path)


def _write_observability(root: ET.Element, spec: DyflowSpec) -> None:
    obs = spec.observability
    if obs is None:
        return
    section = ET.SubElement(
        root, "observability",
        attrib={
            "enabled": "true" if obs.enabled else "false",
            "eval-every": repr(obs.eval_every),
            "snapshot-every": repr(obs.snapshot_every),
            "analysis": "true" if obs.analysis else "false",
            "top-n": str(obs.top_n),
        },
    )
    if obs.openmetrics_path is not None:
        ET.SubElement(section, "openmetrics", path=obs.openmetrics_path)
    if obs.report_path is not None or obs.report_json_path is not None:
        attrib = {}
        if obs.report_path is not None:
            attrib["path"] = obs.report_path
        if obs.report_json_path is not None:
            attrib["json-path"] = obs.report_json_path
        ET.SubElement(section, "report", attrib=attrib)
    if obs.fleet is not None:
        attrib = {
            "enabled": "true" if obs.fleet.enabled else "false",
            "top-k": str(obs.fleet.top_k),
            "flight-recorder": str(obs.fleet.flight_recorder),
        }
        if obs.fleet.openmetrics_path is not None:
            attrib["openmetrics-path"] = obs.fleet.openmetrics_path
        if obs.fleet.watch_path is not None:
            attrib["watch-path"] = obs.fleet.watch_path
        ET.SubElement(section, "fleet", attrib=attrib)
    for slo in obs.slos:
        attrib = {
            "metric": slo.metric,
            "stat": slo.stat,
            "op": slo.op,
            "threshold": repr(slo.threshold),
            "severity": slo.severity,
            "fire-after": str(slo.fire_after),
            "clear-after": str(slo.clear_after),
        }
        if slo.tenant:
            attrib["tenant"] = slo.tenant
        ET.SubElement(section, "slo", attrib=attrib)
    for an in obs.anomalies:
        ET.SubElement(
            section, "anomaly",
            attrib={
                "metric": an.metric,
                "stat": an.stat,
                "window": str(an.window),
                "z": repr(an.z),
                "alpha": repr(an.alpha),
                "min-points": str(an.min_points),
                "severity": an.severity,
            },
        )


def _write_journal(root: ET.Element, spec: DyflowSpec) -> None:
    jrn = spec.journal
    if jrn is None:
        return
    ET.SubElement(
        root, "journal",
        attrib={
            "dir": jrn.dir,
            "enabled": "true" if jrn.enabled else "false",
            "fsync": jrn.fsync,
            "batch-every": str(jrn.batch_every),
            "snapshot-every": str(jrn.snapshot_every),
        },
    )


def _write_tenants(root: ET.Element, spec: DyflowSpec) -> None:
    ten = spec.tenants
    if ten is None:
        return
    section = ET.SubElement(
        root, "tenants",
        attrib={
            "nodes": str(ten.nodes),
            "cores-per-node": str(ten.cores_per_node),
        },
    )
    for t in ten.tenants:
        ET.SubElement(
            section, "tenant",
            attrib={
                "id": t.tenant_id,
                "quota-cores": str(t.quota_cores),
                "weight": repr(t.weight),
                "max-queue": str(t.max_queue),
            },
        )
    if ten.executor is not None:
        ex = ten.executor
        ET.SubElement(
            section, "executor",
            attrib={
                "workers": str(ex.workers),
                "cell-timeout": repr(ex.cell_timeout),
                "max-attempts": str(ex.max_attempts),
                "backoff-base": repr(ex.backoff_base),
                "backoff-factor": repr(ex.backoff_factor),
                "backoff-max": repr(ex.backoff_max),
                "jitter": repr(ex.jitter),
                "kill-prob": repr(ex.kill_prob),
            },
        )
    if ten.breaker is not None:
        ET.SubElement(
            section, "breaker",
            attrib={
                "failures": str(ten.breaker.failures),
                "window": repr(ten.breaker.window),
                "cooldown": repr(ten.breaker.cooldown),
            },
        )
