"""Parse DYFLOW XML specifications (the format of Figs. 3–5, 7, 10)."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any

from repro.campaign.spec import ExecutorSpec, TenantSpec, TenantsSpec
from repro.core.actions import ActionType
from repro.core.policy import PolicyApplication, PolicySpec
from repro.core.sensors.base import GroupBySpec, JoinSpec, SensorSpec
from repro.errors import XmlSpecError
from repro.fabric.spec import LinkOverride, NetworkSpec, PartitionWindow
from repro.journal.spec import JournalSpec
from repro.observability.spec import AnomalySpec, FleetSpec, ObservabilitySpec, SloSpec
from repro.resilience.spec import (
    CheckpointSpec,
    FaultModelSpec,
    QuarantineSpec,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)
from repro.telemetry.config import TelemetrySpec
from repro.wms.spec import CouplingType, DependencySpec
from repro.xmlspec.model import DyflowSpec, MonitorTaskSpec, RuleSpec


def parse_dyflow_xml(
    text: str, *, validate: bool = True, strict: bool = False
) -> DyflowSpec:
    """Parse an XML document into a validated :class:`DyflowSpec`.

    The root may be ``<dyflow>`` wrapping the three stage sections, or a
    single stage section on its own (the paper's figures show fragments).

    ``validate=False`` skips cross-reference validation entirely (used
    by the linter, which reports fine-grained diagnostics instead of
    stopping at the first defect).  ``strict=True`` additionally rejects
    rules whose task references name nothing the document monitors or
    acts on (see :meth:`DyflowSpec.validate`).
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as err:
        raise XmlSpecError(f"malformed XML: {err}") from err
    spec = DyflowSpec()
    standalone = (
        "monitor", "decision", "arbitration", "resilience", "telemetry",
        "journal", "observability", "tenants",
    )
    sections = [root] if root.tag in standalone else list(root)
    if root.tag not in ("dyflow",) + standalone:
        raise XmlSpecError(f"unexpected root element <{root.tag}>")
    for section in sections:
        if section.tag == "monitor":
            _parse_monitor(section, spec)
        elif section.tag == "decision":
            _parse_decision(section, spec)
        elif section.tag == "arbitration":
            _parse_arbitration(section, spec)
        elif section.tag == "resilience":
            if spec.resilience is not None:
                raise XmlSpecError("duplicate <resilience> section")
            spec.resilience = _parse_resilience(section, validate=validate)
        elif section.tag == "telemetry":
            if spec.telemetry is not None:
                raise XmlSpecError("duplicate <telemetry> section")
            spec.telemetry = _parse_telemetry(section, validate=validate)
        elif section.tag == "journal":
            if spec.journal is not None:
                raise XmlSpecError("duplicate <journal> section")
            spec.journal = _parse_journal(section, validate=validate)
        elif section.tag == "observability":
            if spec.observability is not None:
                raise XmlSpecError("duplicate <observability> section")
            spec.observability = _parse_observability(section, validate=validate)
        elif section.tag == "tenants":
            if spec.tenants is not None:
                raise XmlSpecError("duplicate <tenants> section")
            spec.tenants = _parse_tenants(section, validate=validate)
        else:
            raise XmlSpecError(f"unexpected section <{section.tag}>")
    if validate:
        spec.validate(strict=strict)
    return spec


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _require(el: ET.Element, attr: str) -> str:
    value = el.get(attr)
    if value is None:
        raise XmlSpecError(f"<{el.tag}> missing required attribute {attr!r}")
    return value


def _parse_params(parent: ET.Element, tag: str = "param") -> dict[str, Any]:
    out: dict[str, Any] = {}
    for p in parent.iter(tag):
        key = _require(p, "key")
        out[key] = _coerce(p.get("value", ""))
    return out


def _coerce(value: str) -> Any:
    """Parameter values: int if possible, then float, else string."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


def _text(el: ET.Element) -> str:
    return (el.text or "").strip()


# --------------------------------------------------------------------------- #
# monitor section
# --------------------------------------------------------------------------- #
def _parse_monitor(section: ET.Element, spec: DyflowSpec) -> None:
    sensors = section.find("sensors")
    if sensors is not None:
        for s in sensors.findall("sensor"):
            sensor = _parse_sensor(s)
            if sensor.sensor_id in spec.sensors:
                raise XmlSpecError(f"duplicate sensor id {sensor.sensor_id!r}")
            spec.sensors[sensor.sensor_id] = sensor
    tasks = section.find("monitor-tasks")
    if tasks is not None:
        for mt in tasks.findall("monitor-task"):
            task = _require(mt, "name")
            workflow_id = _require(mt, "workflowId")
            info_source = mt.get("info-source")
            for use in mt.findall("use-sensor"):
                spec.monitor_tasks.append(
                    MonitorTaskSpec(
                        task=task,
                        workflow_id=workflow_id,
                        sensor_id=_require(use, "sensor-id"),
                        info_source=info_source,
                        info=use.get("info"),
                        params=_parse_params(use, "parameter"),
                    )
                )


def _parse_sensor(el: ET.Element) -> SensorSpec:
    sensor_id = _require(el, "id")
    source_type = _require(el, "type")
    group_by: list[GroupBySpec] = []
    gb = el.find("group-by")
    if gb is not None:
        for g in gb.findall("group"):
            group_by.append(
                GroupBySpec(
                    granularity=_require(g, "granularity"),
                    reduction=g.get("reduction-operation", "MAX"),
                )
            )
    if not group_by:
        group_by = [GroupBySpec("task", "MAX")]
    pre = el.find("preprocess")
    preprocess = pre.get("operation") if pre is not None else None
    join_el = el.find("join")
    join = (
        JoinSpec(_require(join_el, "sensor-id"), join_el.get("operation", "DIV"))
        if join_el is not None
        else None
    )
    return SensorSpec(
        sensor_id=sensor_id,
        source_type=source_type,
        group_by=tuple(group_by),
        preprocess=preprocess,
        join=join,
    )


# --------------------------------------------------------------------------- #
# decision section
# --------------------------------------------------------------------------- #
def _parse_decision(section: ET.Element, spec: DyflowSpec) -> None:
    policies = section.find("policies")
    if policies is not None:
        for p in policies.findall("policy"):
            policy = _parse_policy(p)
            if policy.policy_id in spec.policies:
                raise XmlSpecError(f"duplicate policy id {policy.policy_id!r}")
            spec.policies[policy.policy_id] = policy
    for apply_on in section.findall("apply-on"):
        workflow_id = _require(apply_on, "workflowId")
        for ap in apply_on.findall("apply-policy"):
            act_el = ap.find("act-on-tasks")
            if act_el is None or not _text(act_el):
                raise XmlSpecError("apply-policy needs <act-on-tasks>")
            targets = tuple(_text(act_el).split())
            params_el = ap.find("action-params")
            params = _parse_params(params_el) if params_el is not None else {}
            spec.applications.append(
                PolicyApplication(
                    policy_id=_require(ap, "policyId"),
                    workflow_id=workflow_id,
                    act_on_tasks=targets,
                    assess_task=ap.get("assess-task", ""),
                    action_params=params,
                )
            )


def _parse_policy(el: ET.Element) -> PolicySpec:
    policy_id = _require(el, "id")
    eval_el = el.find("eval")
    if eval_el is None:
        raise XmlSpecError(f"policy {policy_id!r} missing <eval>")
    use = el.find("sensors-to-use/use-sensor")
    if use is None:
        raise XmlSpecError(f"policy {policy_id!r} missing <sensors-to-use><use-sensor>")
    action_el = el.find("action")
    if action_el is None or not _text(action_el):
        raise XmlSpecError(f"policy {policy_id!r} missing <action>")
    action_name = _text(action_el).upper()
    try:
        action = ActionType(action_name)
    except ValueError:
        raise XmlSpecError(
            f"policy {policy_id!r}: unknown action {action_name!r}"
        ) from None
    history = el.find("history")
    window = int(history.get("window", "1")) if history is not None else 1
    history_op = history.get("operation", "AVG") if history is not None else "AVG"
    freq_el = el.find("frequency")
    frequency = 5.0
    if freq_el is not None:
        raw = freq_el.get("seconds")
        if raw is None:
            # Tolerate the paper's Fig. 10 typo: <frequency> seconds="5" </frequency>
            body = _text(freq_el)
            if "seconds=" in body:
                raw = body.split("seconds=")[1].strip().strip('"')
        if raw is None:
            raise XmlSpecError(f"policy {policy_id!r}: <frequency> needs seconds")
        frequency = float(raw)
    return PolicySpec(
        policy_id=policy_id,
        sensor_id=_require(use, "id"),
        granularity=use.get("granularity", "task"),
        eval_op=_require(eval_el, "operation"),
        threshold=float(_require(eval_el, "threshold")),
        action=action,
        history_window=window,
        history_op=history_op,
        frequency=frequency,
    )


# --------------------------------------------------------------------------- #
# resilience section
# --------------------------------------------------------------------------- #
def _check_attrs(el: ET.Element, known: set[str]) -> None:
    for attr in el.keys():
        if attr not in known:
            raise XmlSpecError(
                f"unexpected <{el.tag}> attribute {attr!r} (known: {sorted(known)})"
            )


def _float_attr(el: ET.Element, attr: str, default: float) -> float:
    raw = el.get(attr)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise XmlSpecError(f"<{el.tag}> attribute {attr!r}: not a number: {raw!r}") from None


def _int_attr(el: ET.Element, attr: str, default: int) -> int:
    raw = el.get(attr)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise XmlSpecError(f"<{el.tag}> attribute {attr!r}: not an integer: {raw!r}") from None


def _bool_attr(el: ET.Element, attr: str, default: bool) -> bool:
    raw = el.get(attr)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise XmlSpecError(f"<{el.tag}> attribute {attr!r}: not a boolean: {raw!r}")


def _opt_float_attr(el: ET.Element, attr: str) -> float | None:
    """Like :func:`_float_attr` but with no default: absent means ``None``."""
    raw = el.get(attr)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise XmlSpecError(f"<{el.tag}> attribute {attr!r}: not a number: {raw!r}") from None


def _parse_network(el: ET.Element) -> NetworkSpec:
    """Parse one ``<network>`` element (the Monitor-fabric transport model)."""
    _check_attrs(el, {
        "enabled", "latency", "jitter", "drop-prob", "dup-prob",
        "reorder-prob", "reorder-delay", "ack-timeout", "ack-drop-prob",
        "max-retransmits", "retransmit-factor", "retransmit-max",
        "retransmit-jitter", "send-buffer", "breaker-failures",
        "breaker-reset", "ingress-capacity", "drain-per-tick",
        "stale-after", "degrade-after", "recover-after",
    })
    partitions: list[PartitionWindow] = []
    links: list[LinkOverride] = []
    for child in el:
        if child.tag == "partition":
            _check_attrs(child, {"start", "duration", "link"})
            partitions.append(PartitionWindow(
                start=_float_attr(child, "start", 0.0),
                duration=_float_attr(child, "duration", 0.0),
                link=child.get("link"),
            ))
        elif child.tag == "link":
            _check_attrs(child, {"client", "latency", "jitter", "drop-prob",
                                 "dup-prob", "reorder-prob", "reorder-delay"})
            links.append(LinkOverride(
                client=_require(child, "client"),
                latency=_opt_float_attr(child, "latency"),
                jitter=_opt_float_attr(child, "jitter"),
                drop_prob=_opt_float_attr(child, "drop-prob"),
                dup_prob=_opt_float_attr(child, "dup-prob"),
                reorder_prob=_opt_float_attr(child, "reorder-prob"),
                reorder_delay=_opt_float_attr(child, "reorder-delay"),
            ))
        else:
            raise XmlSpecError(f"unexpected <network> child <{child.tag}>")
    return NetworkSpec(
        enabled=_bool_attr(el, "enabled", True),
        latency=_float_attr(el, "latency", 0.0),
        jitter=_float_attr(el, "jitter", 0.0),
        drop_prob=_float_attr(el, "drop-prob", 0.0),
        dup_prob=_float_attr(el, "dup-prob", 0.0),
        reorder_prob=_float_attr(el, "reorder-prob", 0.0),
        reorder_delay=_float_attr(el, "reorder-delay", 0.5),
        ack_timeout=_float_attr(el, "ack-timeout", 2.0),
        ack_drop_prob=_float_attr(el, "ack-drop-prob", 0.0),
        max_retransmits=_int_attr(el, "max-retransmits", 5),
        retransmit_factor=_float_attr(el, "retransmit-factor", 2.0),
        retransmit_max=_float_attr(el, "retransmit-max", 30.0),
        retransmit_jitter=_float_attr(el, "retransmit-jitter", 0.25),
        send_buffer=_int_attr(el, "send-buffer", 256),
        breaker_failures=_int_attr(el, "breaker-failures", 0),
        breaker_reset=_float_attr(el, "breaker-reset", 60.0),
        ingress_capacity=_int_attr(el, "ingress-capacity", 0),
        drain_per_tick=_int_attr(el, "drain-per-tick", 0),
        stale_after=_float_attr(el, "stale-after", 0.0),
        degrade_after=_int_attr(el, "degrade-after", 3),
        recover_after=_int_attr(el, "recover-after", 3),
        partitions=tuple(partitions),
        links=tuple(links),
    )


def _parse_resilience(section: ET.Element, *, validate: bool = True) -> ResilienceSpec:
    """Parse one ``<resilience>`` section (every child optional)."""
    known = {"retry", "watchdog", "quarantine", "checkpoint", "faults", "network"}
    for child in section:
        if child.tag not in known:
            raise XmlSpecError(f"unexpected <resilience> child <{child.tag}>")
    retry = watchdog = quarantine = checkpoint = faults = network = None
    el = section.find("retry")
    if el is not None:
        _check_attrs(el, {"max-retries", "backoff-base", "backoff-factor",
                          "backoff-max", "jitter"})
        retry = RetryPolicy(
            max_retries=_int_attr(el, "max-retries", 3),
            backoff_base=_float_attr(el, "backoff-base", 2.0),
            backoff_factor=_float_attr(el, "backoff-factor", 2.0),
            backoff_max=_float_attr(el, "backoff-max", 120.0),
            jitter=_float_attr(el, "jitter", 0.25),
        )
    el = section.find("watchdog")
    if el is not None:
        _check_attrs(el, {"heartbeat-timeout", "poll", "kill-code"})
        watchdog = WatchdogSpec(
            heartbeat_timeout=_float_attr(el, "heartbeat-timeout", 120.0),
            poll=_float_attr(el, "poll", 10.0),
            kill_code=_int_attr(el, "kill-code", 142),
        )
    el = section.find("quarantine")
    if el is not None:
        _check_attrs(el, {"failures", "window", "cooldown"})
        quarantine = QuarantineSpec(
            failures=_int_attr(el, "failures", 3),
            window=_float_attr(el, "window", 600.0),
            cooldown=_float_attr(el, "cooldown", 1800.0),
        )
    el = section.find("checkpoint")
    if el is not None:
        _check_attrs(el, {"every", "resume"})
        checkpoint = CheckpointSpec(
            every=_int_attr(el, "every", 50),
            resume=_bool_attr(el, "resume", True),
        )
    el = section.find("faults")
    if el is not None:
        _check_attrs(el, {"node-mtbf", "node-dist", "weibull-shape", "node-repair-time",
                          "task-crash-mtbf", "task-hang-mtbf", "orch-crash-mtbf",
                          "msg-drop-prob", "stage-drop-prob"})
        faults = FaultModelSpec(
            node_mtbf=_float_attr(el, "node-mtbf", 0.0),
            node_dist=el.get("node-dist", "exponential"),
            weibull_shape=_float_attr(el, "weibull-shape", 1.5),
            node_repair_time=_float_attr(el, "node-repair-time", 600.0),
            task_crash_mtbf=_float_attr(el, "task-crash-mtbf", 0.0),
            task_hang_mtbf=_float_attr(el, "task-hang-mtbf", 0.0),
            orch_crash_mtbf=_float_attr(el, "orch-crash-mtbf", 0.0),
            msg_drop_prob=_float_attr(el, "msg-drop-prob", 0.0),
            stage_drop_prob=_float_attr(el, "stage-drop-prob", 0.0),
        )
    el = section.find("network")
    if el is not None:
        network = _parse_network(el)
    return ResilienceSpec(
        retry=retry,
        watchdog=watchdog,
        quarantine=quarantine,
        checkpoint=checkpoint,
        faults=faults,
        network=network,
    )


# --------------------------------------------------------------------------- #
# telemetry section
# --------------------------------------------------------------------------- #
def _parse_telemetry(section: ET.Element, *, validate: bool = True) -> TelemetrySpec:
    """Parse one ``<telemetry>`` section (sink children optional)."""
    _check_attrs(section, {"enabled", "sample"})
    known = {"jsonl", "chrome-trace"}
    for child in section:
        if child.tag not in known:
            raise XmlSpecError(f"unexpected <telemetry> child <{child.tag}>")
    jsonl_path = chrome_trace_path = None
    el = section.find("jsonl")
    if el is not None:
        _check_attrs(el, {"path"})
        jsonl_path = _require(el, "path")
    el = section.find("chrome-trace")
    if el is not None:
        _check_attrs(el, {"path"})
        chrome_trace_path = _require(el, "path")
    spec = TelemetrySpec(
        enabled=_bool_attr(section, "enabled", True),
        sample=_float_attr(section, "sample", 1.0),
        jsonl_path=jsonl_path,
        chrome_trace_path=chrome_trace_path,
    )
    if validate:
        spec.validate()
    return spec


# --------------------------------------------------------------------------- #
# journal section
# --------------------------------------------------------------------------- #
def _parse_journal(section: ET.Element, *, validate: bool = True) -> JournalSpec:
    """Parse one ``<journal>`` element (crash-recovery WAL config)."""
    _check_attrs(section, {"dir", "enabled", "fsync", "batch-every", "snapshot-every"})
    for child in section:
        raise XmlSpecError(f"unexpected <journal> child <{child.tag}>")
    spec = JournalSpec(
        dir=section.get("dir", "journal"),
        enabled=_bool_attr(section, "enabled", True),
        fsync=section.get("fsync", "batch"),
        batch_every=_int_attr(section, "batch-every", 64),
        snapshot_every=_int_attr(section, "snapshot-every", 20),
    )
    if validate:
        spec.validate()
    return spec


# --------------------------------------------------------------------------- #
# observability section
# --------------------------------------------------------------------------- #
def _parse_observability(section: ET.Element, *, validate: bool = True) -> ObservabilitySpec:
    """Parse one ``<observability>`` section (SLOs, snapshots, exports)."""
    _check_attrs(section, {"enabled", "eval-every", "snapshot-every", "analysis", "top-n"})
    known = {"openmetrics", "report", "slo", "anomaly", "fleet"}
    for child in section:
        if child.tag not in known:
            raise XmlSpecError(f"unexpected <observability> child <{child.tag}>")
    openmetrics_path = report_path = report_json_path = None
    el = section.find("openmetrics")
    if el is not None:
        _check_attrs(el, {"path"})
        openmetrics_path = _require(el, "path")
    el = section.find("report")
    if el is not None:
        _check_attrs(el, {"path", "json-path"})
        report_path = el.get("path")
        report_json_path = el.get("json-path")
        if report_path is None and report_json_path is None:
            raise XmlSpecError("<report> needs a path and/or json-path")
    fleet = None
    el = section.find("fleet")
    if el is not None:
        _check_attrs(el, {"enabled", "openmetrics-path", "top-k", "watch-path",
                          "flight-recorder"})
        fleet = FleetSpec(
            enabled=_bool_attr(el, "enabled", True),
            openmetrics_path=el.get("openmetrics-path"),
            top_k=_int_attr(el, "top-k", 3),
            watch_path=el.get("watch-path"),
            flight_recorder=_int_attr(el, "flight-recorder", 256),
        )
    slos = []
    for el in section.findall("slo"):
        _check_attrs(el, {"metric", "stat", "op", "threshold", "severity",
                          "fire-after", "clear-after", "tenant"})
        slos.append(
            SloSpec(
                metric=_require(el, "metric"),
                stat=el.get("stat", "p95"),
                op=el.get("op", "LT").upper(),
                threshold=float(_require(el, "threshold")),
                severity=el.get("severity", "warning"),
                fire_after=_int_attr(el, "fire-after", 1),
                clear_after=_int_attr(el, "clear-after", 1),
                tenant=el.get("tenant", ""),
            )
        )
    anomalies = []
    for el in section.findall("anomaly"):
        _check_attrs(el, {"metric", "stat", "window", "z", "alpha",
                          "min-points", "severity"})
        anomalies.append(
            AnomalySpec(
                metric=_require(el, "metric"),
                stat=el.get("stat", "value"),
                window=_int_attr(el, "window", 20),
                z=_float_attr(el, "z", 3.0),
                alpha=_float_attr(el, "alpha", 0.3),
                min_points=_int_attr(el, "min-points", 5),
                severity=el.get("severity", "warning"),
            )
        )
    spec = ObservabilitySpec(
        enabled=_bool_attr(section, "enabled", True),
        eval_every=_float_attr(section, "eval-every", 5.0),
        snapshot_every=_float_attr(section, "snapshot-every", 0.0),
        openmetrics_path=openmetrics_path,
        report_path=report_path,
        report_json_path=report_json_path,
        analysis=_bool_attr(section, "analysis", True),
        top_n=_int_attr(section, "top-n", 5),
        slos=tuple(slos),
        anomalies=tuple(anomalies),
        fleet=fleet,
    )
    if validate:
        spec.validate()
    return spec


# --------------------------------------------------------------------------- #
# tenants section
# --------------------------------------------------------------------------- #
def _parse_tenants(section: ET.Element, *, validate: bool = True) -> TenantsSpec:
    """Parse one ``<tenants>`` section (multi-tenant campaign service)."""
    _check_attrs(section, {"nodes", "cores-per-node"})
    known = {"tenant", "executor", "breaker"}
    for child in section:
        if child.tag not in known:
            raise XmlSpecError(f"unexpected <tenants> child <{child.tag}>")
    tenants: list[TenantSpec] = []
    for el in section.findall("tenant"):
        _check_attrs(el, {"id", "quota-cores", "weight", "max-queue"})
        tenants.append(
            TenantSpec(
                tenant_id=_require(el, "id"),
                quota_cores=_int_attr(el, "quota-cores", 0),
                weight=_float_attr(el, "weight", 1.0),
                max_queue=_int_attr(el, "max-queue", 8),
            )
        )
    executor = None
    el = section.find("executor")
    if el is not None:
        _check_attrs(el, {"workers", "cell-timeout", "max-attempts",
                          "backoff-base", "backoff-factor", "backoff-max",
                          "jitter", "kill-prob"})
        executor = ExecutorSpec(
            workers=_int_attr(el, "workers", 0),
            cell_timeout=_float_attr(el, "cell-timeout", 0.0),
            max_attempts=_int_attr(el, "max-attempts", 3),
            backoff_base=_float_attr(el, "backoff-base", 0.5),
            backoff_factor=_float_attr(el, "backoff-factor", 2.0),
            backoff_max=_float_attr(el, "backoff-max", 30.0),
            jitter=_float_attr(el, "jitter", 0.25),
            kill_prob=_float_attr(el, "kill-prob", 0.0),
        )
    breaker = None
    el = section.find("breaker")
    if el is not None:
        _check_attrs(el, {"failures", "window", "cooldown"})
        breaker = QuarantineSpec(
            failures=_int_attr(el, "failures", 3),
            window=_float_attr(el, "window", 600.0),
            cooldown=_float_attr(el, "cooldown", 1800.0),
        )
    spec = TenantsSpec(
        nodes=_int_attr(section, "nodes", 0),
        cores_per_node=_int_attr(section, "cores-per-node", 0),
        tenants=tuple(tenants),
        executor=executor,
        breaker=breaker,
    )
    if validate:
        spec.validate()
    return spec


# --------------------------------------------------------------------------- #
# arbitration section
# --------------------------------------------------------------------------- #
def _parse_arbitration(section: ET.Element, spec: DyflowSpec) -> None:
    rules = section.find("rules")
    if rules is None:
        return
    for rule_for in rules.findall("rule-for"):
        workflow_id = _require(rule_for, "workflowId")
        rule = spec.rules.setdefault(workflow_id, RuleSpec(workflow_id=workflow_id))
        for tp in rule_for.iter("task-priority"):
            rule.task_priorities[_require(tp, "name")] = int(_require(tp, "priority"))
        for pp in rule_for.iter("policy-priority"):
            rule.policy_priorities[_require(pp, "name")] = int(_require(pp, "priority"))
        for dep in rule_for.iter("task-dep"):
            type_name = dep.get("type", "TIGHT").upper()
            try:
                coupling = CouplingType[type_name]
            except KeyError:
                raise XmlSpecError(f"unknown dependency type {type_name!r}") from None
            rule.dependencies.append(
                DependencySpec(
                    task=_require(dep, "name"),
                    parent=_require(dep, "parent"),
                    type=coupling,
                )
            )
