"""XML user interface (paper §3, Figs. 3–5, 7, 10).

"We choose XML for the user interface because it is portable and easy to
use and extend.  The XML contains sections corresponding to the Monitor,
Decision, and Arbitration stages."

* :func:`parse_dyflow_xml` — XML text → :class:`DyflowSpec`.
* :func:`write_dyflow_xml` — :class:`DyflowSpec` → XML text (round-trips).
* :func:`configure_orchestrator` — apply a spec to a built orchestrator.
"""

from repro.xmlspec.model import DyflowSpec, MonitorTaskSpec, RuleSpec
from repro.xmlspec.parser import parse_dyflow_xml
from repro.xmlspec.writer import write_dyflow_xml
from repro.xmlspec.bootstrap import configure_orchestrator

__all__ = [
    "DyflowSpec",
    "MonitorTaskSpec",
    "RuleSpec",
    "parse_dyflow_xml",
    "write_dyflow_xml",
    "configure_orchestrator",
]
