"""The parsed form of a DYFLOW XML specification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.campaign.spec import TenantsSpec
from repro.core.policy import PolicyApplication, PolicySpec
from repro.core.sensors.base import SensorSpec
from repro.errors import XmlSpecError
from repro.journal.spec import JournalSpec
from repro.observability.spec import ObservabilitySpec
from repro.resilience.spec import ResilienceSpec
from repro.telemetry.config import TelemetrySpec
from repro.wms.spec import DependencySpec


@dataclass
class MonitorTaskSpec:
    """One ``<monitor-task>``/``<use-sensor>`` binding."""

    task: str
    workflow_id: str
    sensor_id: str
    info_source: str | None = None
    info: str | None = None  # the variable name ("looptime")
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class RuleSpec:
    """One ``<rule-for>`` block: priorities and dependencies."""

    workflow_id: str
    task_priorities: dict[str, int] = field(default_factory=dict)
    policy_priorities: dict[str, int] = field(default_factory=dict)
    dependencies: list[DependencySpec] = field(default_factory=list)


@dataclass
class DyflowSpec:
    """A complete user orchestration specification."""

    sensors: dict[str, SensorSpec] = field(default_factory=dict)
    monitor_tasks: list[MonitorTaskSpec] = field(default_factory=list)
    policies: dict[str, PolicySpec] = field(default_factory=dict)
    applications: list[PolicyApplication] = field(default_factory=list)
    rules: dict[str, RuleSpec] = field(default_factory=dict)
    resilience: ResilienceSpec | None = None
    telemetry: TelemetrySpec | None = None
    journal: JournalSpec | None = None
    observability: ObservabilitySpec | None = None
    tenants: TenantsSpec | None = None

    def validate(self, strict: bool = False) -> None:
        """Cross-reference checks a schema cannot express.

        With ``strict=True``, additionally reject a ``<rule>`` whose
        task-priority references a task that nothing in the document
        monitors, acts on, or depends on — historically the parser
        accepted these silently and the dangling priority was ignored
        at arbitration time.
        """
        if self.resilience is not None:
            self.resilience.validate()
        if self.telemetry is not None:
            self.telemetry.validate()
        if self.journal is not None:
            self.journal.validate()
        if self.observability is not None:
            self.observability.validate()
        if self.tenants is not None:
            self.tenants.validate()
        for mt in self.monitor_tasks:
            if mt.sensor_id not in self.sensors:
                raise XmlSpecError(
                    f"monitor-task {mt.task!r} uses unknown sensor {mt.sensor_id!r}"
                )
        for app in self.applications:
            if app.policy_id not in self.policies:
                raise XmlSpecError(
                    f"apply-policy references unknown policy {app.policy_id!r}"
                )
        for policy in self.policies.values():
            if policy.sensor_id not in self.sensors:
                raise XmlSpecError(
                    f"policy {policy.policy_id!r} uses unknown sensor {policy.sensor_id!r}"
                )
            sensor = self.sensors[policy.sensor_id]
            grans = {g.granularity for g in sensor.group_by}
            if policy.granularity not in grans:
                raise XmlSpecError(
                    f"policy {policy.policy_id!r} wants granularity "
                    f"{policy.granularity!r} but sensor {policy.sensor_id!r} "
                    f"only groups by {sorted(grans)}"
                )
        for rule in self.rules.values():
            for pid in rule.policy_priorities:
                if pid not in self.policies:
                    raise XmlSpecError(f"policy-priority for unknown policy {pid!r}")
        if strict:
            from repro.lint.speclint import unmonitored_rule_tasks

            for workflow_id, task in unmonitored_rule_tasks(self):
                raise XmlSpecError(
                    f"rule for workflow {workflow_id!r} prioritizes task "
                    f"{task!r}, which no monitor-task, apply-policy, or "
                    "dependency in the document mentions"
                )
