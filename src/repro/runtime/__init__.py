"""Drivers that run the four DYFLOW stages against a workflow.

* :class:`DyflowOrchestrator` — the simulated driver: stages tick on the
  discrete-event clock, reproducing the paper's experiments
  deterministically.
* :class:`ThreadedDyflow` — the paper-faithful driver: the same stage
  objects wired with real threads and queues, orchestrating real
  numerical kernels on wall-clock time.
"""

from repro.runtime.options import RuntimeOptions
from repro.runtime.sim_driver import DyflowOrchestrator
from repro.runtime.threaded import LiveTaskSpec, ThreadedDyflow

__all__ = ["DyflowOrchestrator", "RuntimeOptions", "ThreadedDyflow", "LiveTaskSpec"]
