"""Drivers that run the four DYFLOW stages against a workflow.

* :class:`DyflowOrchestrator` — the simulated driver: stages tick on the
  discrete-event clock, reproducing the paper's experiments
  deterministically.
* :mod:`repro.runtime.threaded` — the paper-faithful driver: the same
  stage objects wired with real threads and queues, orchestrating real
  numerical kernels on wall-clock time.
"""

from repro.runtime.sim_driver import DyflowOrchestrator

__all__ = ["DyflowOrchestrator"]
