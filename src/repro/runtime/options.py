"""Consolidated runtime configuration.

Both drivers historically grew one keyword argument per subsystem —
``telemetry=``, ``observability=``, ``journal=``, ``preflight=``,
``resilience=`` — which made their signatures drift apart and forced
every new cross-cutting switch through two constructors.  This module
folds them into one frozen :class:`RuntimeOptions` value accepted by
:class:`~repro.runtime.sim_driver.DyflowOrchestrator` and
:class:`~repro.runtime.threaded.ThreadedDyflow` alike::

    opts = RuntimeOptions(telemetry=TelemetrySpec(...), preflight="warn")
    orch = DyflowOrchestrator(launcher, options=opts)

The old per-subsystem kwargs keep working for one release via
:func:`resolve_options` (warn-once :class:`DeprecationWarning` shims);
passing both ``options=`` and a legacy kwarg is an error, not a merge.

Tuning knobs that describe *how this particular run is driven* (warmup,
settle, poll cadence, tracer injection, worker caps) are not part of
RuntimeOptions — they stay ordinary constructor arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.errors import DyflowError
from repro.util.deprecation import warn_once

if TYPE_CHECKING:
    from repro.observability import ObservabilitySpec
    from repro.profiler.sampling import ProfileSpec
    from repro.resilience.spec import ResilienceSpec
    from repro.telemetry import TelemetrySpec
    from repro.xmlspec.model import DyflowSpec

#: Sentinel distinguishing "kwarg not passed" from an explicit ``None``
#: (legacy callers could legitimately pass ``telemetry=None``).
_UNSET: Any = object()


@dataclass(frozen=True)
class RuntimeOptions:
    """Cross-cutting subsystem switches shared by both drivers.

    ``resilience`` is applied by the orchestrator through
    ``launcher.configure_resilience`` (the launcher owns retry/quarantine
    state); the threaded driver consumes it directly.  ``batch_deliveries``
    only affects the simulated driver — the threaded driver has no
    discrete-event delivery path to batch.  ``profile`` wires a
    :class:`~repro.profiler.sampling.CoreProfiler` into the simulated
    driver's tick loop (the threaded driver has no sim kernel to sample).
    """

    telemetry: "TelemetrySpec | None" = None
    observability: "ObservabilitySpec | None" = None
    journal: Any = None  # Journal | JournalSpec | None
    preflight: str = "off"
    resilience: "ResilienceSpec | None" = None
    batch_deliveries: bool = True
    profile: "ProfileSpec | None" = None

    @classmethod
    def from_spec(cls, spec: "DyflowSpec") -> "RuntimeOptions":
        """Lift the runtime-relevant sections of a parsed XML spec."""
        return cls(
            telemetry=spec.telemetry,
            observability=spec.observability,
            journal=spec.journal,
            resilience=spec.resilience,
        )

    def override(self, **changes: Any) -> "RuntimeOptions":
        """Copy with the given fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)


def resolve_options(
    owner: str,
    options: RuntimeOptions | None,
    legacy: dict[str, Any],
) -> RuntimeOptions:
    """Fold deprecated per-subsystem kwargs into a RuntimeOptions.

    *legacy* maps field name -> passed value or :data:`_UNSET`.  Every
    field actually passed emits one DeprecationWarning per process
    (keyed ``{owner}.{field}``).  Mixing ``options=`` with legacy kwargs
    raises :class:`DyflowError` — silent merging would hide which value
    won.
    """
    provided = {k: v for k, v in legacy.items() if v is not _UNSET}
    for name in provided:
        warn_once(
            f"{owner}.{name}",
            f"{owner}({name}=...) is deprecated; pass "
            f"options=RuntimeOptions({name}=...) instead",
        )
    if options is not None:
        if provided:
            raise DyflowError(
                f"{owner}: {sorted(provided)} passed both via options= and as "
                "legacy keyword(s); put them in RuntimeOptions only"
            )
        return options
    if provided:
        return RuntimeOptions(**provided)
    return RuntimeOptions()
