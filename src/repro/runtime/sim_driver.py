"""The simulated DYFLOW service: all four stages on the event clock.

Mirrors the implementation in paper §3/Fig. 2: a Bootstrap wires the
Monitor (clients + server), Decision, Arbitration and Actuation modules;
messages flow through (simulated) queues with realistic read lags; the
Actuation module is a wrapper over the Savanna plugin.

Crash recovery: with a :class:`~repro.journal.JournalSpec` attached, the
control loop journals every observation, plan, op, and barrier to a
write-ahead log.  The loop itself runs as a self-rescheduling engine
callback so that a crash can cancel every controller-owned event (the
next tick, in-flight envelope deliveries, watchdog polls, chaos fires)
and :meth:`resume_from` can re-register them at their journaled
``(time, seq)`` heap slots — the resumed run then pops events in exactly
the order the uninterrupted run would have (see docs/crash-recovery.md).
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.core.arbitration import ArbitrationStage
from repro.core.actuation import ActuationStage
from repro.core.decision import DecisionStage
from repro.core.lowlevel import ActionPlan
from repro.core.monitor import MonitorClient, MonitorServer
from repro.core.policy import PolicyApplication, PolicySpec
from repro.core.rules import ArbitrationRules
from repro.core.sensors.base import SensorInstance, SensorSpec
from repro.core.sensors.sources import make_source
from repro.errors import DyflowError, JournalError
from repro.fabric import DegradedModeController, FabricLink
from repro.observability import (
    HealthEngine,
    ObservabilitySpec,
    report_from_run,
    write_openmetrics,
    write_report,
)
from repro.profiler.sampling import CoreProfiler
from repro.resilience import ChaosEngine, HeartbeatWatchdog
from repro.runtime.options import _UNSET, RuntimeOptions, resolve_options
from repro.telemetry import build_tracer, write_chrome_trace
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.util.jsonmsg import Envelope
from repro.wms.launcher import Savanna


class DyflowOrchestrator:
    """Bootstrap + service loop for one workflow on one allocation."""

    def __init__(
        self,
        launcher: Savanna,
        rules: ArbitrationRules | None = None,
        warmup: float = 120.0,
        settle: float = 120.0,
        poll_interval: float = 1.0,
        num_clients: int = 1,
        allow_victims: bool = True,
        record_history: bool = False,
        graceful_stops: bool = True,
        core_quota: int | None = None,
        options: RuntimeOptions | None = None,
        telemetry=_UNSET,
        tracer: Tracer | None = None,
        observability=_UNSET,
        journal=_UNSET,
        ignore_crash_requests: bool = False,
        on_crash: Callable[["DyflowOrchestrator"], None] | None = None,
        preflight=_UNSET,
    ) -> None:
        from repro.lint.preflight import check_mode

        # telemetry=/observability=/journal=/preflight= are deprecated
        # shims (one release); new code passes options=RuntimeOptions(...).
        opts = resolve_options(
            "DyflowOrchestrator",
            options,
            {
                "telemetry": telemetry,
                "observability": observability,
                "journal": journal,
                "preflight": preflight,
            },
        )
        self.options = opts
        telemetry = opts.telemetry
        observability = opts.observability
        journal = opts.journal
        if opts.resilience is not None:
            launcher.configure_resilience(opts.resilience)
        self.preflight = check_mode(opts.preflight)
        self.launcher = launcher
        self.engine = launcher.engine
        self.rules = rules if rules is not None else ArbitrationRules.from_workflow(launcher.workflow)
        self.poll_interval = poll_interval
        self.telemetry = telemetry
        if tracer is None:
            tracer = build_tracer(telemetry, clock=lambda: self.engine.now)
        self.tracer = tracer
        self._telemetry_finalized = False
        launcher.attach_tracer(tracer)
        self.clients = [
            MonitorClient(f"client-{i}", launcher.perf) for i in range(max(1, num_clients))
        ]
        self.decision = DecisionStage()
        self.server = MonitorServer(on_updates=self.decision.ingest, record_history=record_history)
        self.arbitration = ArbitrationStage(
            launcher, self.rules, warmup=warmup, settle=settle,
            allow_victims=allow_victims, graceful_stops=graceful_stops,
            core_quota=core_quota,
        )
        self.actuation = ActuationStage(launcher)
        self.server.set_tracer(tracer, clock=lambda: self.engine.now)
        self.decision.set_tracer(tracer)
        self.arbitration.set_tracer(tracer)
        self.actuation.set_tracer(tracer)
        # Observability: the health engine evaluates SLOs/anomalies on the
        # orchestrator tick and publishes the results back into the Monitor
        # stage via HEALTH sensor sources (see docs/observability.md).
        self.observability = observability
        self.health: HealthEngine | None = None
        if observability is not None and observability.enabled:
            self.health = HealthEngine(
                observability,
                tracer=tracer,
                workflow_id=launcher.workflow.workflow_id,
                aggregates=self._health_aggregates,
            )
        # Continuous core profiling: cadenced kernel samples + a bounded
        # flight recorder dumped on crash (repro.profiler.sampling).
        self.profiler: CoreProfiler | None = None
        if opts.profile is not None and opts.profile.enabled:
            self.profiler = CoreProfiler(opts.profile)
            self.profiler.bind(engine=self.engine, arbitration=self.arbitration)
        self._sensors: dict[str, SensorSpec] = {}
        self._running = False
        self._stop_when: Callable[[], bool] | None = None
        launcher.subscribe_start(self._on_task_start)
        # Resilience wiring: the orchestrator owns the watchdog (it needs
        # the Monitor server's last-seen times) and the chaos engine (it
        # needs to sit on the client->server delivery path).
        self.watchdog: HeartbeatWatchdog | None = None
        self.chaos: ChaosEngine | None = None
        spec = launcher.resilience
        if spec is not None and spec.watchdog is not None:
            self.watchdog = HeartbeatWatchdog(launcher, spec.watchdog, server=self.server)
        if spec is not None and spec.faults is not None and spec.faults.any_enabled:
            self.chaos = ChaosEngine(launcher, spec.faults)
            self.chaos.orchestrator = self
        # Monitor fabric: each client's envelopes cross a FabricLink
        # (lossy transport + ack/retransmit reliability), land in the
        # server's bounded ingress queue, and are drained at the tick;
        # ingest staleness drives the Decision stage's degraded mode.
        self.network = spec.network if spec is not None else None
        if self.network is not None and not self.network.enabled:
            self.network = None
        self.links: dict[str, FabricLink] = {}
        self.degrade: DegradedModeController | None = None
        if self.network is not None:
            self.network.validate()
            for c in self.clients:
                self.links[c.client_id] = FabricLink(
                    c.client_id, self.network, launcher.rng, tracer=tracer
                )
            self.server.configure_fabric(self.network)
            self.degrade = DegradedModeController(self.network)
        # Crash-recovery machinery.  `journal` may be a JournalSpec (the
        # journal is opened at start()) or an already-open Journal.
        self._journal = None
        self._journal_spec = None
        if journal is not None:
            from repro.journal import Journal, JournalSpec

            if isinstance(journal, Journal):
                self._journal = journal
            elif isinstance(journal, JournalSpec):
                if journal.enabled:
                    self._journal_spec = journal
            else:
                raise DyflowError(f"journal must be a Journal or JournalSpec, got {journal!r}")
        self.ignore_crash_requests = ignore_crash_requests
        self.on_crash = on_crash
        self.crashed = False
        self._crash_requested = False
        self._tick_event = None
        self._barriers = 0
        #: Control-loop iterations executed (throughput telemetry).
        self.ticks = 0
        self._delivery_ids = itertools.count()
        # did -> (deliver-at, envelope, SimEvent, kind, link-id): data and
        # ack copies in transit ("data" to the server, "ack" back to a link).
        self._inflight_deliveries: dict[
            int, tuple[float, Envelope, object, str, str | None]
        ] = {}
        #: Aggregate same-deliver-time envelopes registered within one
        #: tick into a single engine event (members run consecutively in
        #: registration order — exactly the order separate events with
        #: consecutive seqs would have popped).  Opt-out knob for the
        #: batched-vs-per-sample equivalence suite.
        self.batch_deliveries = opts.batch_deliveries
        # deliver-at -> (shared event, [dids]); non-None only while the
        # tick's collect phase is registering deliveries.
        self._batch_slots: dict[float, tuple[object, list[int]]] | None = None

    # -- bootstrap configuration ---------------------------------------------------
    def add_sensor(self, spec: SensorSpec) -> None:
        if spec.sensor_id in self._sensors:
            raise DyflowError(f"duplicate sensor id {spec.sensor_id!r}")
        self._sensors[spec.sensor_id] = spec

    def monitor_task(
        self,
        task: str,
        sensor_id: str,
        info_source: str | None = None,
        var: str | None = None,
        client: int = 0,
    ) -> SensorInstance:
        """Bind a sensor to a monitored task on one Monitor client."""
        spec = self._sensors.get(sensor_id)
        if spec is None:
            raise DyflowError(f"monitor-task references unknown sensor {sensor_id!r}")
        if spec.source_type.upper() == "HEALTH":
            # Health streams monitor the orchestrator itself, not a
            # workflow task: bind straight to the health engine's feed.
            if self.health is None:
                raise DyflowError(
                    f"sensor {sensor_id!r} uses a HEALTH source but the orchestrator "
                    "has no enabled ObservabilitySpec (pass observability=...)"
                )
            source: object = self.health.bind_source(var)
        else:
            if task not in self.launcher.workflow.tasks:
                raise DyflowError(f"monitor-task references unknown task {task!r}")
            source = make_source(
                spec.source_type,
                self.launcher.hub,
                self.launcher.workflow.workflow_id,
                task,
                info_source=info_source,
                var=var,
            )
        instance = SensorInstance(
            spec=spec,
            workflow_id=self.launcher.workflow.workflow_id,
            task=task,
            source=source,
        )
        self.clients[client % len(self.clients)].add_binding(instance)
        return instance

    def _health_aggregates(self) -> dict[str, float]:
        """Runtime-level health aggregates published every evaluation."""
        now = self.engine.now
        total = sum(n.cores for n in self.launcher.allocation.nodes)
        assigned = self.launcher.rm.assigned_total().total_cores
        q = self.launcher.quarantine
        out = {
            "cluster.total_cores": float(total),
            "cluster.assigned_cores": float(assigned),
            "cluster.utilization": assigned / total if total else 0.0,
            "quarantine.count": float(len(q.active(now))) if q is not None else 0.0,
        }
        return out

    def add_policy(self, spec: PolicySpec) -> None:
        self.decision.add_policy(spec)

    def apply_policy(self, application: PolicyApplication) -> None:
        self.decision.apply_policy(application)

    # -- service ----------------------------------------------------------------------
    def start(self, stop_when: Callable[[], bool] | None = None) -> None:
        """Start the DYFLOW service loop on the event clock.

        ``stop_when`` is checked every tick; when it returns True the
        service winds down (used by scenarios: "experiment finished").
        """
        if self._running:
            raise DyflowError("orchestrator already running")
        if self.preflight != "off":
            # Pure static analysis: draws no RNG stream, reads no clock,
            # so a passing spec runs bit-identically with preflight on.
            from repro.lint.preflight import preflight_orchestrator

            preflight_orchestrator(self, self.preflight)
        self._running = True
        self._stop_when = stop_when
        if self._journal is None and self._journal_spec is not None:
            from repro.journal import Journal

            self._journal = Journal.open(self._journal_spec, metrics=self.tracer.metrics)
        if self._journal is not None:
            self._journal.append(
                "meta",
                t=self.engine.now,
                workflow=self.launcher.workflow.workflow_id,
                poll_interval=self.poll_interval,
            )
            self.actuation.journal = self._journal
        self.tracer.point(
            "run.allocation", "wms",
            nodes={n.node_id: n.cores for n in self.launcher.allocation.nodes},
        )
        self.arbitration.begin(self.engine.now)
        if self.watchdog is not None:
            self.watchdog.start()
        if self.chaos is not None:
            self.chaos.start()
        self._tick_event = self.engine.call_after(0.0, self._tick, name="dyflow-service")

    def stop(self) -> None:
        self._running = False
        if self.watchdog is not None:
            self.watchdog.stop()
        if self.chaos is not None:
            self.chaos.stop()
        self._close_journal()
        self.finalize_telemetry()

    def finalize_telemetry(self) -> None:
        """Flush the JSONL log and write the Chrome trace and observability
        exports (OpenMetrics, run report), if configured."""
        if self._telemetry_finalized or not self.tracer.enabled:
            return
        self._telemetry_finalized = True
        q = self.launcher.quarantine
        if q is not None and q.history:
            # Lazy release means there is no event site for releases; the
            # end-of-run dump lets the report CLI rebuild the intervals.
            self.tracer.point(
                "run.quarantine-history", "wms",
                events=[[e.time, e.node_id, e.kind] for e in q.history],
            )
        self.tracer.flush()
        if self.telemetry is not None and self.telemetry.chrome_trace_path is not None:
            write_chrome_trace(self.telemetry.chrome_trace_path, self.tracer)
        self._write_observability_outputs()

    def _write_observability_outputs(self) -> None:
        spec = self.observability
        if spec is None or not spec.enabled:
            return
        if spec.openmetrics_path is not None:
            write_openmetrics(spec.openmetrics_path, self.tracer.metrics)
        if spec.analysis and (spec.report_path is not None or spec.report_json_path is not None):
            report = report_from_run(
                self.tracer,
                launcher=self.launcher,
                alerts=self.health.alerts if self.health is not None else (),
                top_n=spec.top_n,
                end=self.engine.now,
                meta={"workflow": self.launcher.workflow.workflow_id},
            )
            write_report(report, path=spec.report_path, json_path=spec.report_json_path)

    def _close_journal(self) -> None:
        if self._journal is not None and not self._journal.closed:
            self._journal.sync()
            self._journal.close()

    # -- the control loop (one tick == one journaled barrier) -------------------------
    def _tick(self) -> None:
        if not self._running:
            self._tick_event = None
            return
        traced = self.tracer.enabled
        now = self.engine.now
        self.ticks += 1
        span_ctx = self.tracer.span("loop.tick", "loop") if traced else None
        if span_ctx is not None:
            span_ctx.__enter__()
        # Monitor: run sensors, deliver envelopes after their read lag.
        # The chaos engine may drop envelopes on the way (lossy
        # client->server transport); with a fabric configured each
        # envelope additionally crosses its client's FabricLink (drop /
        # dup / reorder / partition faults, ack-based retransmits).
        self._batch_slots = {} if self.batch_deliveries else None
        try:
            for client in self.clients:
                link = self.links.get(client.client_id)
                for lag, env in client.collect(now):
                    if self.chaos is not None and self.chaos.drop_envelope(env):
                        continue
                    if link is None:
                        self._register_delivery(now + lag, env)
                    else:
                        for at, copy in link.send(env, now, lag=lag):
                            self._register_delivery(at, copy, kind="data", link=link.link_id)
                if link is not None:
                    for at, copy in link.poll(now):
                        self._register_delivery(at, copy, kind="data", link=link.link_id)
        finally:
            self._batch_slots = None
        if self.network is not None:
            self._drain_ingress(now)
        if self.degrade is not None:
            for alert in self.degrade.tick(now, self.server.last_seen):
                if self.health is not None:
                    self.health.alerts.append(alert)
                self.tracer.point("health.alert", "health", **alert.to_dict())
            self.decision.set_degraded(self.degrade.degraded)
        # Decision: evaluate due policies on data delivered so far;
        # degraded mode gates non-essential suggestions afterwards.
        suggestions = self.decision.gate(self.decision.tick(now))
        # Arbitration: build a plan unless gated.
        plan = self.arbitration.arbitrate(suggestions, now)
        if span_ctx is not None:
            span_ctx.__exit__(None, None, None)
        # Observability: evaluate SLOs/anomalies and publish health
        # streams before the barrier journals the engine's state.
        if self.health is not None:
            self.health.tick(now)
        if self.profiler is not None:
            self.profiler.maybe_sample(now)
        if plan is not None:
            if self._journal is not None:
                self._journal.append("plan", plan=plan.to_dict())
            self.engine.process(
                self.actuation.execute(plan, on_done=self._on_plan_done),
                name=f"actuation:{plan.plan_id}",
            )
            self._record_plan_point(plan)
        if self._stop_when is not None and self._stop_when():
            self._running = False
            self._close_journal()
            self.finalize_telemetry()
            return
        self._tick_event = self.engine.call_after(
            self.poll_interval, self._tick, name="dyflow-service"
        )
        self._journal_barrier(now)
        # A crash request is honored at the first barrier with no plan in
        # flight, after the barrier record (which carries the full
        # controller state) is durable.
        if self._crash_requested and self.arbitration._in_flight is None:
            self._crash()

    # -- envelope transit --------------------------------------------------------------
    def _register_delivery(
        self,
        at: float,
        env: Envelope,
        seq: int | None = None,
        kind: str = "data",
        link: str | None = None,
    ) -> None:
        did = next(self._delivery_ids)
        slots = self._batch_slots
        if slots is not None and seq is None and kind == "data":
            entry = slots.get(at)
            if entry is None:
                dids: list[int] = [did]
                ev = self.engine.call_at(
                    at, lambda: self._deliver_batch(dids), name="delivery"
                )
                slots[at] = (ev, dids)
            else:
                ev, dids = entry
                dids.append(did)
            self._inflight_deliveries[did] = (at, env, ev, kind, link)
            return
        ev = self.engine.call_at(at, lambda: self._deliver(did), name="delivery", seq=seq)
        self._inflight_deliveries[did] = (at, env, ev, kind, link)

    def _deliver_batch(self, dids: list[int]) -> None:
        for did in dids:
            self._deliver(did)

    def _deliver(self, did: int) -> None:
        entry = self._inflight_deliveries.pop(did, None)
        if entry is None:
            return
        _at, env, _ev, kind, link_id = entry
        link = self.links.get(link_id) if link_id is not None else None
        if kind == "ack":
            if link is not None:
                link.on_ack(env.sender, env.seq, self.engine.now)
            return
        if self.network is None:
            if self._journal is not None and not self._journal.closed:
                self._journal.append("obs", env=env.to_json())
            self.server.receive(env)
            return
        # Fabric mode: admit into the bounded ingress queue; the tick
        # drains it.  Only admitted envelopes are acked — a shed one
        # stays unacked and rides the client's retransmit timer, which
        # is the backpressure signal.  The journal records the envelope
        # at drain time, so replay (receive only) needs no queue.
        if self.server.offer(env) and link is not None:
            ack_at = link.plan_ack(env, self.engine.now)
            if ack_at is not None:
                self._register_delivery(ack_at, env, kind="ack", link=link_id)

    def _drain_ingress(self, now: float) -> None:
        for env in self.server.take_ingress():
            if self._journal is not None and not self._journal.closed:
                self._journal.append("obs", env=env.to_json())
            self.server.note_staleness(max(0.0, now - env.time))
            self.server.receive(env)

    # -- journaling --------------------------------------------------------------------
    def _journal_barrier(self, now: float) -> None:
        if self._journal is None:
            return
        self._barriers += 1
        tick_ev = self._tick_event
        state = {
            "arbitration": self.arbitration.state_dict(),
            "clients": [c.state_dict() for c in self.clients],
            "watchdog": self.watchdog.state_dict() if self.watchdog is not None else None,
            "chaos": self.chaos.state_dict() if self.chaos is not None else None,
            "inflight": [
                {"at": at, "seq": ev.heap_seq, "env": env.to_json(),
                 "kind": kind, "link": link}
                for at, env, ev, kind, link in self._inflight_deliveries.values()
            ],
            "next_tick": {"at": tick_ev.heap_time, "seq": tick_ev.heap_seq},
            "health": self.health.state_dict() if self.health is not None else None,
            "profiler": self.profiler.state_dict() if self.profiler is not None else None,
            "fabric": {
                "links": {lid: ln.state_dict() for lid, ln in self.links.items()},
                "server": self.server.fabric_state_dict(),
                "degraded": self.degrade.state_dict(),
            } if self.network is not None else None,
        }
        self._journal.append("barrier", t=now, state=state)
        every = self._journal.spec.snapshot_every
        if every > 0 and self._barriers % every == 0:
            # The snapshot seals the segment holding this barrier record,
            # so a crash honored at this very tick would otherwise leave
            # no barrier in the replayable suffix — embed the state.
            self._journal.snapshot({**self._snapshot_state(now), "barrier": state})

    def _snapshot_state(self, now: float) -> dict:
        q = self.launcher.quarantine
        return {
            "t": now,
            "server": self.server.state_dict(),
            "decision": self.decision.state_dict(),
            "plans": [p.to_dict() for p in self.arbitration.plans],
            "launcher": {
                "rm": self.launcher.rm.state_dict(),
                "quarantine": q.state_dict() if q is not None else None,
                "retries": self.launcher.retry_audit(),
            },
        }

    # -- crash + resume ----------------------------------------------------------------
    def request_crash(self) -> None:
        """Ask the controller to die at its next eligible barrier.

        Honored only when journaling is on and crash requests are not
        being ignored (the *reference* run of a crash/resume equivalence
        pair sets ``ignore_crash_requests=True`` so the chaos engine's
        draws and trace points stay identical while the controller lives).
        """
        if self.ignore_crash_requests or self._journal is None or not self._running:
            return
        self._crash_requested = True

    def hard_crash(self) -> None:
        """Die *now*, even mid-plan.

        Unlike a barrier crash this makes no bit-identity promise — the
        interrupted plan is finished exactly-once on resume via the
        op-issued/op-completed ledger and launcher effect probes.
        """
        if self._journal is None or not self._running:
            raise DyflowError("hard_crash requires a running, journaled orchestrator")
        self.actuation.abort_requested = True
        self._crash()

    def _crash(self) -> None:
        now = self.engine.now
        self._crash_requested = False
        self._running = False
        self.crashed = True
        self._journal.append("crash", t=now)
        self._close_journal()
        if self.profiler is not None:
            self.profiler.record(now, "crash")
            self.profiler.dump(reason="crash")
        self.launcher.trace.point(now, "orchestrator-crash", category="journal")
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        for _at, _env, ev, _kind, _link in self._inflight_deliveries.values():
            ev.cancel()
        self._inflight_deliveries = {}
        if self.watchdog is not None:
            self.watchdog.suspend()
        if self.chaos is not None:
            self.chaos.suspend()
            self.chaos.orchestrator = None
        self.launcher.unsubscribe_start(self._on_task_start)
        if self.on_crash is not None:
            self.on_crash(self)

    def resume_from(self, journal_dir: str, stop_when: Callable[[], bool] | None = None) -> "DyflowOrchestrator":
        """Rebuild controller state from *journal_dir* and resume the loop.

        Call on a freshly constructed orchestrator carrying the same
        bootstrap configuration (sensors, policies, rules) as the crashed
        one, over the *surviving* launcher and engine, at the simulated
        instant of the crash.  The latest snapshot is loaded, the WAL
        suffix is replayed (observations, restarts, Decision ticks, plan
        upserts), the last barrier's controller state is applied
        wholesale, and every pending controller event is re-registered at
        its journaled heap slot.  An unfinished plan is completed
        exactly-once through the op ledger.
        """
        from repro.journal import AppliedOpsLedger, Journal, read_journal

        if self._running:
            raise DyflowError("orchestrator already running")
        js = read_journal(journal_dir)
        snap = js.snapshot_state or {}
        if snap:
            self.server.load_state_dict(snap["server"])
            self.decision.load_state_dict(snap["decision"])
        plans: list[ActionPlan] = [ActionPlan.from_dict(d) for d in snap.get("plans", [])]
        by_id = {p.plan_id: i for i, p in enumerate(plans)}

        def upsert(plan: ActionPlan) -> None:
            if plan.plan_id in by_id:
                plans[by_id[plan.plan_id]] = plan
            else:
                by_id[plan.plan_id] = len(plans)
                plans.append(plan)

        # Replay with telemetry muted: the tracer survived the crash and
        # already holds the pre-crash spans — replay rebuilds state only.
        server_tracer, decision_tracer = self.server.tracer, self.decision.tracer
        self.server.tracer = NULL_TRACER
        self.decision.tracer = NULL_TRACER
        last_barrier = None
        try:
            for rec in js.records:
                kind = rec["kind"]
                if kind == "obs":
                    self.server.receive(Envelope.from_json(rec["env"]))
                elif kind == "task-restart":
                    self.server.on_task_restart(rec["task"])
                    if rec.get("incarnation", 0) > 0:
                        self.decision.on_task_restart(rec["task"])
                elif kind == "barrier":
                    self.decision.tick(rec["t"])
                    last_barrier = rec
                elif kind in ("plan", "plan-done"):
                    upsert(ActionPlan.from_dict(rec["plan"]))
        finally:
            self.server.tracer = server_tracer
            self.decision.tracer = decision_tracer
        if last_barrier is not None:
            b = last_barrier["state"]
        elif snap.get("barrier") is not None:
            # The crash was honored at a snapshot-aligned barrier: its
            # record was sealed into the compacted segment, so the suffix
            # holds no barrier — the snapshot embeds that tick's state.
            b = snap["barrier"]
        else:
            raise JournalError(
                f"journal {journal_dir!r} holds no barrier record; nothing to resume"
            )
        self.arbitration.load_state_dict(b["arbitration"], plans=plans)
        self.actuation.executed_plans = [p for p in plans if p.execution_end is not None]
        client_states = b.get("clients", [])
        if len(client_states) != len(self.clients):
            raise JournalError(
                f"{len(client_states)} journaled clients for {len(self.clients)} configured"
            )
        for client, cstate in zip(self.clients, client_states):
            client.load_state_dict(cstate)
        if self.watchdog is not None and b.get("watchdog") is not None:
            self.watchdog.load_state_dict(b["watchdog"])
        if self.chaos is not None and b.get("chaos") is not None:
            self.chaos.load_state_dict(b["chaos"])
            self.chaos.orchestrator = self
        if self.health is not None and b.get("health") is not None:
            self.health.load_state_dict(b["health"])
        if self.profiler is not None and b.get("profiler") is not None:
            self.profiler.load_state_dict(b["profiler"])
        if self.network is not None and b.get("fabric") is not None:
            fb = b["fabric"]
            for lid, lstate in fb["links"].items():
                link = self.links.get(lid)
                if link is None:
                    raise JournalError(
                        f"journaled fabric link {lid!r} is not configured — drift"
                    )
                link.load_state_dict(lstate)
            self.server.load_fabric_state(fb["server"])
            self.degrade.load_state_dict(fb["degraded"])
            self.decision.set_degraded(self.degrade.degraded)

        # Take over the journal (claims the next fencing epoch) and keep
        # the snapshot cadence aligned with the uninterrupted run.
        self._journal = Journal.reopen(journal_dir, metrics=self.tracer.metrics)
        self.actuation.journal = self._journal
        self.actuation.abort_requested = False
        every = self._journal.spec.snapshot_every
        replayed_barriers = sum(1 for r in js.records if r["kind"] == "barrier")
        self._barriers = js.next_snapshot * every + replayed_barriers if every > 0 else replayed_barriers
        self._running = True
        self._stop_when = stop_when
        self.crashed = False

        # Re-register controller events at their journaled (time, seq)
        # slots; the cancelled originals are skipped by the engine, so
        # pop order matches the uninterrupted run exactly.
        self._inflight_deliveries = {}
        for item in b.get("inflight", []):
            self._register_delivery(
                float(item["at"]), Envelope.from_json(item["env"]), seq=item.get("seq"),
                kind=item.get("kind", "data"), link=item.get("link"),
            )
        nt = b["next_tick"]
        self._tick_event = self.engine.call_at(
            float(nt["at"]), self._tick, name="dyflow-service", seq=nt.get("seq")
        )
        self.launcher.trace.point(
            self.engine.now, "orchestrator-resume", category="journal",
            epoch=self._journal.epoch,
        )
        # A plan was mid-actuation when the controller died (hard crash):
        # finish it exactly-once through the ledger + effect probes.
        inflight_plan = self.arbitration._in_flight
        if inflight_plan is not None:
            ledger = AppliedOpsLedger.from_records(js.records)
            self.engine.process(
                self.actuation.resume_plan(inflight_plan, ledger, on_done=self._on_plan_done),
                name=f"actuation-resume:{inflight_plan.plan_id}",
            )
        return self

    # -- plan bookkeeping --------------------------------------------------------------
    def _on_plan_done(self, plan: ActionPlan) -> None:
        if self._journal is not None and not self._journal.closed:
            self._journal.append("plan-done", plan=plan.to_dict())
        self.arbitration.on_plan_executed(plan, self.engine.now)
        self.launcher.trace.add_span(
            "DYFLOW", plan.plan_id, plan.execution_start, plan.execution_end,
            category="adjust", response=plan.response_time,
        )

    def _record_plan_point(self, plan: ActionPlan) -> None:
        self.launcher.trace.point(
            plan.created, f"plan:{plan.plan_id}", category="plan",
            ops=[op.describe() for op in plan.ordered_ops()],
        )

    def _on_task_start(self, instance) -> None:
        """A task (re)started: reset monitor connections, epochs, windows."""
        if self._journal is not None and not self._journal.closed and self._running:
            self._journal.append(
                "task-restart", task=instance.task, incarnation=instance.incarnation
            )
        for client in self.clients:
            client.on_task_restart(instance.task)
        self.server.on_task_restart(instance.task)
        if instance.incarnation > 0:
            self.decision.on_task_restart(instance.task)

    # -- results --------------------------------------------------------------------------
    @property
    def plans(self) -> list[ActionPlan]:
        return list(self.arbitration.plans)

    def response_times(self) -> list[tuple[str, float]]:
        """(plan id, response seconds) for every executed plan."""
        return [
            (p.plan_id, p.response_time)
            for p in self.arbitration.plans
            if p.execution_end is not None
        ]
