"""The simulated DYFLOW service: all four stages on the event clock.

Mirrors the implementation in paper §3/Fig. 2: a Bootstrap wires the
Monitor (clients + server), Decision, Arbitration and Actuation modules;
messages flow through (simulated) queues with realistic read lags; the
Actuation module is a wrapper over the Savanna plugin.
"""

from __future__ import annotations

from typing import Callable

from repro.core.arbitration import ArbitrationStage
from repro.core.actuation import ActuationStage
from repro.core.decision import DecisionStage
from repro.core.lowlevel import ActionPlan
from repro.core.monitor import MonitorClient, MonitorServer
from repro.core.policy import PolicyApplication, PolicySpec
from repro.core.rules import ArbitrationRules
from repro.core.sensors.base import SensorInstance, SensorSpec
from repro.core.sensors.sources import make_source
from repro.errors import DyflowError
from repro.resilience import ChaosEngine, HeartbeatWatchdog
from repro.telemetry import TelemetrySpec, build_tracer, write_chrome_trace
from repro.telemetry.tracer import Tracer
from repro.wms.launcher import Savanna


class DyflowOrchestrator:
    """Bootstrap + service loop for one workflow on one allocation."""

    def __init__(
        self,
        launcher: Savanna,
        rules: ArbitrationRules | None = None,
        warmup: float = 120.0,
        settle: float = 120.0,
        poll_interval: float = 1.0,
        num_clients: int = 1,
        allow_victims: bool = True,
        record_history: bool = False,
        graceful_stops: bool = True,
        telemetry: TelemetrySpec | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.launcher = launcher
        self.engine = launcher.engine
        self.rules = rules if rules is not None else ArbitrationRules.from_workflow(launcher.workflow)
        self.poll_interval = poll_interval
        self.telemetry = telemetry
        if tracer is None:
            tracer = build_tracer(telemetry, clock=lambda: self.engine.now)
        self.tracer = tracer
        self._telemetry_finalized = False
        launcher.attach_tracer(tracer)
        self.clients = [
            MonitorClient(f"client-{i}", launcher.perf) for i in range(max(1, num_clients))
        ]
        self.decision = DecisionStage()
        self.server = MonitorServer(on_updates=self.decision.ingest, record_history=record_history)
        self.arbitration = ArbitrationStage(
            launcher, self.rules, warmup=warmup, settle=settle,
            allow_victims=allow_victims, graceful_stops=graceful_stops,
        )
        self.actuation = ActuationStage(launcher)
        self.server.set_tracer(tracer, clock=lambda: self.engine.now)
        self.decision.set_tracer(tracer)
        self.arbitration.set_tracer(tracer)
        self.actuation.set_tracer(tracer)
        self._sensors: dict[str, SensorSpec] = {}
        self._running = False
        self._stop_when: Callable[[], bool] | None = None
        launcher.subscribe_start(self._on_task_start)
        # Resilience wiring: the orchestrator owns the watchdog (it needs
        # the Monitor server's last-seen times) and the chaos engine (it
        # needs to sit on the client->server delivery path).
        self.watchdog: HeartbeatWatchdog | None = None
        self.chaos: ChaosEngine | None = None
        spec = launcher.resilience
        if spec is not None and spec.watchdog is not None:
            self.watchdog = HeartbeatWatchdog(launcher, spec.watchdog, server=self.server)
        if spec is not None and spec.faults is not None and spec.faults.any_enabled:
            self.chaos = ChaosEngine(launcher, spec.faults)

    # -- bootstrap configuration ---------------------------------------------------
    def add_sensor(self, spec: SensorSpec) -> None:
        if spec.sensor_id in self._sensors:
            raise DyflowError(f"duplicate sensor id {spec.sensor_id!r}")
        self._sensors[spec.sensor_id] = spec

    def monitor_task(
        self,
        task: str,
        sensor_id: str,
        info_source: str | None = None,
        var: str | None = None,
        client: int = 0,
    ) -> SensorInstance:
        """Bind a sensor to a monitored task on one Monitor client."""
        spec = self._sensors.get(sensor_id)
        if spec is None:
            raise DyflowError(f"monitor-task references unknown sensor {sensor_id!r}")
        if task not in self.launcher.workflow.tasks:
            raise DyflowError(f"monitor-task references unknown task {task!r}")
        source = make_source(
            spec.source_type,
            self.launcher.hub,
            self.launcher.workflow.workflow_id,
            task,
            info_source=info_source,
            var=var,
        )
        instance = SensorInstance(
            spec=spec,
            workflow_id=self.launcher.workflow.workflow_id,
            task=task,
            source=source,
        )
        self.clients[client % len(self.clients)].add_binding(instance)
        return instance

    def add_policy(self, spec: PolicySpec) -> None:
        self.decision.add_policy(spec)

    def apply_policy(self, application: PolicyApplication) -> None:
        self.decision.apply_policy(application)

    # -- service ----------------------------------------------------------------------
    def start(self, stop_when: Callable[[], bool] | None = None) -> None:
        """Start the DYFLOW service loop as a simulated process.

        ``stop_when`` is checked every tick; when it returns True the
        service winds down (used by scenarios: "experiment finished").
        """
        if self._running:
            raise DyflowError("orchestrator already running")
        self._running = True
        self._stop_when = stop_when
        self.arbitration.begin(self.engine.now)
        if self.watchdog is not None:
            self.watchdog.start()
        if self.chaos is not None:
            self.chaos.start()
        self.engine.process(self._service_loop(), name="dyflow-service")

    def stop(self) -> None:
        self._running = False
        if self.watchdog is not None:
            self.watchdog.stop()
        if self.chaos is not None:
            self.chaos.stop()
        self.finalize_telemetry()

    def finalize_telemetry(self) -> None:
        """Flush the JSONL log and write the Chrome trace, if configured."""
        if self._telemetry_finalized or not self.tracer.enabled:
            return
        self._telemetry_finalized = True
        self.tracer.flush()
        if self.telemetry is not None and self.telemetry.chrome_trace_path is not None:
            write_chrome_trace(self.telemetry.chrome_trace_path, self.tracer)

    def _service_loop(self):
        traced = self.tracer.enabled
        while self._running:
            now = self.engine.now
            span_ctx = self.tracer.span("loop.tick", "loop") if traced else None
            if span_ctx is not None:
                span_ctx.__enter__()
            # Monitor: run sensors, deliver envelopes after their read lag.
            # The chaos engine may drop envelopes on the way (lossy
            # client->server transport); the server's out-of-order filter
            # absorbs the resulting sequence gaps.
            for client in self.clients:
                for lag, env in client.collect(now):
                    if self.chaos is not None and self.chaos.drop_envelope(env):
                        continue
                    self.engine.call_after(lag, lambda e=env: self.server.receive(e))
            # Decision: evaluate due policies on data delivered so far.
            suggestions = self.decision.tick(now)
            # Arbitration: build a plan unless gated.
            plan = self.arbitration.arbitrate(suggestions, now)
            if span_ctx is not None:
                span_ctx.__exit__(None, None, None)
            if plan is not None:
                self.engine.process(
                    self.actuation.execute(plan, on_done=self._on_plan_done),
                    name=f"actuation:{plan.plan_id}",
                )
                self._record_plan_point(plan)
            if self._stop_when is not None and self._stop_when():
                self._running = False
                self.finalize_telemetry()
                return
            yield self.engine.timeout(self.poll_interval)

    def _on_plan_done(self, plan: ActionPlan) -> None:
        self.arbitration.on_plan_executed(plan, self.engine.now)
        self.launcher.trace.add_span(
            "DYFLOW", plan.plan_id, plan.execution_start, plan.execution_end,
            category="adjust", response=plan.response_time,
        )

    def _record_plan_point(self, plan: ActionPlan) -> None:
        self.launcher.trace.point(
            plan.created, f"plan:{plan.plan_id}", category="plan",
            ops=[op.describe() for op in plan.ordered_ops()],
        )

    def _on_task_start(self, instance) -> None:
        """A task (re)started: reset monitor connections, epochs, windows."""
        for client in self.clients:
            client.on_task_restart(instance.task)
        self.server.on_task_restart(instance.task)
        if instance.incarnation > 0:
            self.decision.on_task_restart(instance.task)

    # -- results --------------------------------------------------------------------------
    @property
    def plans(self) -> list[ActionPlan]:
        return list(self.arbitration.plans)

    def response_times(self) -> list[tuple[str, float]]:
        """(plan id, response seconds) for every executed plan."""
        return [
            (p.plan_id, p.response_time)
            for p in self.arbitration.plans
            if p.execution_end is not None
        ]
