"""Threaded DYFLOW driver: the paper's architecture on wall-clock time.

The implementation in paper §3 runs the stages as threads communicating
through shared queues with JSON messages.  This driver does exactly
that — the *same* stage objects used by the simulated driver (Monitor
client/server, Decision, Arbitration-like planning) wired with
``threading`` and ``queue.Queue`` — and executes **real Python tasks**
(e.g. the numerical kernels in :mod:`repro.apps.kernels`) instead of
simulated ones.

Scope: this driver supports the policy actions that make sense for
in-process tasks — ADDCPU/RMCPU (restart the task with a different
worker count), STOP, START and RESTART — against a thread-based local
launcher.  It exists to demonstrate live orchestration end-to-end; the
paper-scale experiments run on the deterministic simulated driver.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.actions import ActionType, SuggestedAction
from repro.core.decision import DecisionStage
from repro.core.monitor import MonitorClient, MonitorServer
from repro.core.policy import PolicyApplication, PolicySpec
from repro.core.sensors.base import SensorInstance, SensorSpec
from repro.core.sensors.sources import make_source
from repro.cluster.machine import MachinePerf
from repro.errors import DyflowError
from repro.fabric import BoundedShedQueue, DegradedModeController, FabricLink
from repro.observability import (
    HealthEngine,
    ObservabilitySpec,
    report_from_run,
    write_openmetrics,
    write_report,
)
from repro.runtime.options import _UNSET, RuntimeOptions, resolve_options
from repro.sim.rng import RngRegistry
from repro.staging.hub import DataHub
from repro.staging.serialization import Sample
from repro.telemetry import build_tracer, write_chrome_trace
from repro.telemetry.tracer import Tracer


@dataclass
class LiveTaskSpec:
    """A locally runnable task.

    ``work`` is called once per step as ``work(step, nworkers)`` and does
    the real compute; its wall duration is the task's loop time, streamed
    to the PACE-style sensors exactly like TAU would.
    """

    name: str
    work: Callable[[int, int], Any]
    nworkers: int = 1
    total_steps: int | None = None
    params: dict[str, Any] = field(default_factory=dict)


class _LiveInstance(threading.Thread):
    """One incarnation of a live task, running its step loop."""

    def __init__(self, runner: "ThreadedDyflow", spec: LiveTaskSpec, nworkers: int,
                 incarnation: int, start_step: int = 0) -> None:
        super().__init__(name=f"{spec.name}#{incarnation}", daemon=True)
        self.runner = runner
        self.spec = spec
        self.nworkers = nworkers
        self.incarnation = incarnation
        self.start_step = start_step
        self.stop_flag = threading.Event()
        self.steps_done = start_step
        self.exit_code: int | None = None
        # Resilience: wall-clock time of the last completed step (the
        # heartbeat) and an exit-code override stamped by the watchdog
        # when it abandons a hung instance.
        self.last_progress = runner.now()
        self.kill_code: int | None = None

    def run(self) -> None:
        hub = self.runner.hub
        channel = hub.channel(f"tau-{self.runner.workflow_id}-{self.spec.name}")
        if channel.closed:
            channel.reopen()
        step = self.start_step
        code = 0
        try:
            while not self.stop_flag.is_set():
                if self.spec.total_steps is not None and step >= self.spec.total_steps:
                    break
                t0 = time.perf_counter()
                self.spec.work(step, self.nworkers)
                looptime = time.perf_counter() - t0
                now = self.runner.now()
                with self.runner.hub_lock:
                    channel.put(
                        [
                            Sample(
                                time=now,
                                workflow_id=self.runner.workflow_id,
                                task=self.spec.name,
                                rank=0,
                                node_id="local",
                                var="looptime",
                                value=looptime,
                                step=step,
                            )
                        ],
                        now,
                    )
                step += 1
                self.steps_done = step
                self.last_progress = self.runner.now()
                self.runner._journal_append(
                    "task-checkpoint", task=self.spec.name, next_step=step,
                    incarnation=self.incarnation, nworkers=self.nworkers,
                )
        except Exception:  # noqa: BLE001 - a crashed task is a failed task
            code = 1
        if self.kill_code is not None:
            code = self.kill_code
        self.exit_code = code
        with self.runner.hub_lock:
            hub.filesystem.append_record(
                f"status/{self.runner.workflow_id}/{self.spec.name}",
                {"code": code, "time": self.runner.now(), "rank": 0,
                 "incarnation": self.incarnation},
                mtime=self.runner.now(),
            )
        self.runner._on_instance_exit(self)


class ThreadedDyflow:
    """Monitor/Decision/Arbitration/Actuation as wall-clock threads.

    The Monitor thread polls sensors and puts envelopes on the server
    queue; the Decision thread evaluates policies and emits suggestion
    batches; the Arbitration/Actuation thread applies them to the local
    launcher.  Message flow matches Fig. 2 of the paper.
    """

    def __init__(
        self,
        workflow_id: str,
        tasks: list[LiveTaskSpec],
        poll_interval: float = 0.2,
        warmup: float = 2.0,
        settle: float = 2.0,
        max_workers_total: int | None = None,
        resilience=_UNSET,
        rng: RngRegistry | None = None,
        telemetry=_UNSET,
        tracer: Tracer | None = None,
        observability=_UNSET,
        journal=_UNSET,
        preflight=_UNSET,
        queue_capacity: int = 64,
        options: RuntimeOptions | None = None,
    ) -> None:
        from repro.lint.preflight import check_mode

        # resilience=/telemetry=/observability=/journal=/preflight= are
        # deprecated shims (one release); new code passes
        # options=RuntimeOptions(...).
        opts = resolve_options(
            "ThreadedDyflow",
            options,
            {
                "resilience": resilience,
                "telemetry": telemetry,
                "observability": observability,
                "journal": journal,
                "preflight": preflight,
            },
        )
        self.options = opts
        resilience = opts.resilience
        telemetry = opts.telemetry
        observability = opts.observability
        journal = opts.journal
        self.preflight = check_mode(opts.preflight)
        self.workflow_id = workflow_id
        self.specs = {t.name: t for t in tasks}
        if len(self.specs) != len(tasks):
            raise DyflowError("duplicate live task names")
        self.poll_interval = poll_interval
        self.warmup = warmup
        self.settle = settle
        self.max_workers_total = max_workers_total
        self.hub = DataHub()
        self.hub_lock = threading.Lock()
        self.client = MonitorClient("live-client", MachinePerf())
        self.decision = DecisionStage()
        self.server = MonitorServer(on_updates=self.decision.ingest, record_history=True)
        self._instances: dict[str, _LiveInstance] = {}
        self._incarnations: dict[str, int] = {}
        self._sensors: dict[str, SensorSpec] = {}
        # Bounded Decision -> Arbitration hand-off: when Arbitration
        # falls behind, the *oldest* suggestion batch is shed (newer
        # batches supersede it) instead of growing memory without bound.
        self._queue = BoundedShedQueue(queue_capacity)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._t0 = time.perf_counter()
        self._gate_until = 0.0
        self.telemetry = telemetry
        if tracer is None:
            tracer = build_tracer(telemetry, clock=self.now)
        self.tracer = tracer
        self._telemetry_finalized = False
        self.hub.attach_tracer(tracer)
        self.server.set_tracer(tracer, clock=self.now)
        self.decision.set_tracer(tracer)
        # Observability: health evaluation runs on the monitor thread's
        # wall-clock cadence (this driver makes no determinism promise).
        self.observability = observability
        self.health: HealthEngine | None = None
        if observability is not None and observability.enabled:
            self.health = HealthEngine(
                observability,
                tracer=tracer,
                workflow_id=workflow_id,
                aggregates=self._health_aggregates,
            )
        self.applied_actions: list[tuple[float, str]] = []
        self._state_lock = threading.RLock()
        # Resilience mirror of the simulated launcher: same spec, same
        # named backoff stream, wall-clock watchdog + crash retry.
        if resilience is not None:
            resilience.validate()
        self.resilience = resilience
        self.retry_policy = resilience.retry if resilience is not None else None
        self.watchdog_spec = resilience.watchdog if resilience is not None else None
        self._rng = rng if rng is not None else RngRegistry(0)
        # Monitor fabric on wall-clock time: the same FabricLink state
        # machine the simulated driver uses, pumped by the monitor loop
        # (transit copies wait in a pending list until their delivery
        # time passes).  No determinism promise, like the rest of this
        # driver.
        self.network = resilience.network if resilience is not None else None
        if self.network is not None and not self.network.enabled:
            self.network = None
        self.link: FabricLink | None = None
        self.degrade: DegradedModeController | None = None
        self._transit: list[tuple[float, Any]] = []   # (deliver_at, envelope)
        self._acks: list[tuple[float, Any]] = []      # (deliver_at, envelope)
        if self.network is not None:
            self.link = FabricLink(
                self.client.client_id, self.network, self._rng, tracer=self.tracer
            )
            self.server.configure_fabric(self.network)
            self.degrade = DegradedModeController(self.network)
        self._retries_used: dict[str, int] = {}
        self.retry_exhausted: set[str] = set()
        self.retries: list[tuple[float, str, int]] = []       # (time, task, attempt)
        self.watchdog_kills: list[tuple[float, str]] = []     # (time, task)
        # Crash recovery: per-step task checkpoints go to a WAL so a
        # restarted runner can relaunch each mini-app at the step after
        # its last completed one instead of redoing finished work.
        self._journal = None
        self._journal_spec = None
        self._journal_lock = threading.Lock()
        self._resume_steps: dict[str, int] = {}
        self._completed_tasks: set[str] = set()
        if journal is not None:
            from repro.journal import Journal, JournalSpec

            if isinstance(journal, Journal):
                self._journal = journal
            elif isinstance(journal, JournalSpec):
                if journal.enabled:
                    self._journal_spec = journal
            else:
                raise DyflowError(f"journal must be a Journal or JournalSpec, got {journal!r}")

    # -- time -----------------------------------------------------------------
    def now(self) -> float:
        return time.perf_counter() - self._t0

    # -- configuration ----------------------------------------------------------
    # The bootstrap API matches DyflowOrchestrator: register a sensor
    # once with add_sensor(spec), bind it per task with monitor_task();
    # register a policy with add_policy(spec), apply it with
    # apply_policy().
    def add_sensor(self, spec: SensorSpec) -> None:
        existing = self._sensors.get(spec.sensor_id)
        if existing is not None and existing is not spec:
            raise DyflowError(f"duplicate sensor id {spec.sensor_id!r}")
        self._sensors[spec.sensor_id] = spec

    def monitor_task(self, task: str, sensor_id: str, var: str | None = "looptime") -> None:
        """Bind a registered sensor to one live task."""
        spec = self._sensors.get(sensor_id)
        if spec is None:
            raise DyflowError(f"monitor_task references unknown sensor {sensor_id!r}")
        if spec.source_type.upper() == "HEALTH":
            if self.health is None:
                raise DyflowError(
                    f"sensor {sensor_id!r} uses a HEALTH source but the runner "
                    "has no enabled ObservabilitySpec (pass observability=...)"
                )
            source: object = self.health.bind_source(var)
        else:
            if task not in self.specs:
                raise DyflowError(f"monitor_task references unknown task {task!r}")
            source = make_source(spec.source_type, self.hub, self.workflow_id, task, var=var)
        self.client.add_binding(
            SensorInstance(spec=spec, workflow_id=self.workflow_id, task=task, source=source)
        )

    def add_policy(self, spec: PolicySpec) -> None:
        self.decision.add_policy(spec)

    def apply_policy(self, application: PolicyApplication) -> None:
        self.decision.apply_policy(application)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        if self.preflight != "off":
            from repro.lint.preflight import preflight_threaded

            preflight_threaded(self, self.preflight)
        if self._journal is None and self._journal_spec is not None:
            from repro.journal import Journal

            self._journal = Journal.open(self._journal_spec, metrics=self.tracer.metrics)
            self._journal.append(
                "meta", workflow=self.workflow_id, tasks=sorted(self.specs)
            )
        self._gate_until = self.now() + self.warmup
        for name, spec in self.specs.items():
            if name in self._completed_tasks:
                continue  # finished before the crash; nothing to redo
            self._start_task(name, spec.nworkers)
        loops = [(self._monitor_loop, "monitor"), (self._decision_loop, "decision"),
                 (self._arbitration_loop, "arbitration")]
        if self.watchdog_spec is not None:
            loops.append((self._watchdog_loop, "watchdog"))
        for target, label in loops:
            t = threading.Thread(target=target, name=f"dyflow-{label}", daemon=True)
            t.start()
            self._threads.append(t)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop every task and stage thread; mirrors DyflowOrchestrator.stop."""
        self._stop.set()
        with self._state_lock:
            for inst in list(self._instances.values()):
                inst.stop_flag.set()
        for inst in list(self._instances.values()):
            inst.join(timeout)
        for t in self._threads:
            t.join(timeout)
        with self._journal_lock:
            if self._journal is not None and not self._journal.closed:
                self._journal.sync()
                self._journal.close()
        self.finalize_telemetry()

    def finalize_telemetry(self) -> None:
        """Flush the JSONL log and write the Chrome trace and observability
        exports, if configured."""
        if self._telemetry_finalized or not self.tracer.enabled:
            return
        self._telemetry_finalized = True
        self.tracer.flush()
        if self.telemetry is not None and self.telemetry.chrome_trace_path is not None:
            write_chrome_trace(self.telemetry.chrome_trace_path, self.tracer)
        spec = self.observability
        if spec is None or not spec.enabled:
            return
        if spec.openmetrics_path is not None:
            write_openmetrics(spec.openmetrics_path, self.tracer.metrics)
        if spec.analysis and (spec.report_path is not None or spec.report_json_path is not None):
            report = report_from_run(
                self.tracer,
                alerts=self.health.alerts if self.health is not None else (),
                top_n=spec.top_n,
                meta={"workflow": self.workflow_id},
            )
            write_report(report, path=spec.report_path, json_path=spec.report_json_path)

    def wait_until_done(self, timeout: float) -> bool:
        """Block until every task finished (or *timeout* wall seconds)."""
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._state_lock:
                if not self._instances:
                    return True
            time.sleep(0.05)
        return False

    # -- crash recovery ----------------------------------------------------------
    def _journal_append(self, kind: str, **payload) -> None:
        """Thread-safe journal append; a closed/absent journal is a no-op."""
        with self._journal_lock:
            if self._journal is None or self._journal.closed:
                return
            self._journal.append(kind, **payload)

    def resume_from(self, journal_dir: str) -> "ThreadedDyflow":
        """Adopt a crashed runner's journal; call before :meth:`start`.

        Reads the latest ``task-checkpoint`` per task and arranges for
        each mini-app to relaunch at the step *after* its last completed
        one (checkpoint-restart, not recompute-from-zero).  Tasks whose
        checkpoints already reached ``total_steps`` are not relaunched at
        all.  Incarnation numbering continues past the journaled values,
        and the journal is reopened under the next fencing epoch.
        """
        from repro.journal import Journal, read_journal

        state = read_journal(journal_dir)
        next_steps: dict[str, int] = {}
        incarnations: dict[str, int] = {}
        for rec in state.records:
            if rec["kind"] == "task-checkpoint":
                task = rec["task"]
                next_steps[task] = int(rec["next_step"])
                incarnations[task] = max(
                    incarnations.get(task, 0), int(rec.get("incarnation", 0))
                )
            elif rec["kind"] == "task-restart":
                task = rec["task"]
                incarnations[task] = max(
                    incarnations.get(task, 0), int(rec.get("incarnation", 0))
                )
        self._resume_steps = dict(next_steps)
        for name, spec in self.specs.items():
            if spec.total_steps is not None and next_steps.get(name, 0) >= spec.total_steps:
                self._completed_tasks.add(name)
        self._incarnations = {t: i + 1 for t, i in incarnations.items()}
        self._journal = Journal.reopen(journal_dir, metrics=self.tracer.metrics)
        return self

    # -- task control ---------------------------------------------------------------
    def _start_task(self, name: str, nworkers: int) -> None:
        with self._state_lock:
            if name in self._instances:
                raise DyflowError(f"live task {name!r} already running")
            incarnation = self._incarnations.get(name, 0)
            self._incarnations[name] = incarnation + 1
            start_step = self._resume_steps.pop(name, 0)
            inst = _LiveInstance(
                self, self.specs[name], nworkers, incarnation, start_step=start_step
            )
            self._instances[name] = inst
            inst.start()
        self._journal_append(
            "task-restart", task=name, incarnation=incarnation,
            nworkers=nworkers, start_step=start_step,
        )

    def _stop_task(self, name: str, join_timeout: float = 30.0) -> None:
        with self._state_lock:
            inst = self._instances.get(name)
        if inst is None:
            return
        inst.stop_flag.set()
        inst.join(join_timeout)

    def _on_instance_exit(self, inst: _LiveInstance) -> None:
        name = inst.spec.name
        with self._state_lock:
            registered = self._instances.get(name) is inst
            if registered:
                del self._instances[name]
        if not registered:
            return  # abandoned by the watchdog; its replacement already runs
        code = inst.exit_code if inst.exit_code is not None else 0
        if code == 0:
            self._retries_used.pop(name, None)
            self.retry_exhausted.discard(name)
            return
        if inst.stop_flag.is_set() and inst.kill_code is None:
            return  # deliberate stop that raced a crash: never resurrect
        self._maybe_retry(name, inst.nworkers)

    # -- resilience -----------------------------------------------------------------
    def _maybe_retry(self, name: str, nworkers: int) -> None:
        """Schedule a backoff-delayed relaunch of a crashed/hung task."""
        policy = self.retry_policy
        if policy is None or self._stop.is_set():
            return
        used = self._retries_used.get(name, 0)
        if policy.exhausted(used):
            self.retry_exhausted.add(name)
            return
        self._retries_used[name] = used + 1
        delay = policy.delay(used, self._rng.stream("resilience:backoff"))
        self.retries.append((self.now(), name, used + 1))
        timer = threading.Timer(delay, self._retry_start, args=(name, nworkers))
        timer.daemon = True
        timer.start()

    def _retry_start(self, name: str, nworkers: int) -> None:
        if self._stop.is_set():
            return
        with self._state_lock:
            if name in self._instances:
                return
            self._start_task(name, nworkers)

    def _watchdog_loop(self) -> None:
        spec = self.watchdog_spec
        assert spec is not None
        while not self._stop.is_set():
            now = self.now()
            with self._state_lock:
                items = list(self._instances.items())
            for name, inst in items:
                if now - inst.last_progress <= spec.heartbeat_timeout:
                    continue
                # Hung: a blocked thread cannot be killed, so mark it and
                # abandon it — it is deregistered here, its eventual exit
                # is ignored, and a replacement goes through retry.
                inst.kill_code = spec.kill_code
                inst.stop_flag.set()
                with self._state_lock:
                    if self._instances.get(name) is not inst:
                        continue  # exited on its own in the meantime
                    del self._instances[name]
                self.watchdog_kills.append((now, name))
                self._maybe_retry(name, inst.nworkers)
            time.sleep(spec.poll)

    def nworkers(self, name: str) -> int:
        with self._state_lock:
            inst = self._instances.get(name)
            return inst.nworkers if inst else 0

    @property
    def suggestions_shed(self) -> int:
        """Suggestion batches dropped by the bounded Decision->Arbitration queue."""
        return self._queue.shed

    def _health_aggregates(self) -> dict[str, float]:
        with self._state_lock:
            running = len(self._instances)
            workers = sum(i.nworkers for i in self._instances.values())
        return {
            "tasks.running": float(running),
            "workers.total": float(workers),
            "retries.exhausted": float(len(self.retry_exhausted)),
        }

    # -- stage threads ----------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            with self.tracer.span("monitor.collect", "monitor"):
                with self.hub_lock:
                    envelopes = self.client.collect(self.now())
                if self.link is None:
                    for _lag, envelope in envelopes:
                        self.server.receive(envelope)  # thread-safe: decision.ingest is list ops
                else:
                    self._pump_fabric(envelopes)
            if self.health is not None:
                # Evaluate on the monitor thread so the health feed is
                # only ever touched by the thread that also polls it.
                self.health.tick(self.now())
            time.sleep(self.poll_interval)

    def _pump_fabric(self, envelopes) -> None:
        """One wall-clock pump of the lossy Monitor fabric.

        The link state machine hands back (deliver_at, envelope) copies;
        they wait in pending lists until their delivery time passes —
        the wall-clock analogue of the simulated driver's event queue.
        """
        link = self.link
        assert link is not None
        now = self.now()
        for lag, envelope in envelopes:
            self._transit.extend(link.send(envelope, now, lag=lag))
        for at, env in link.poll(now):
            self._transit.append((at, env))
        # Acks whose transit delay elapsed complete the retransmit cycle.
        due_acks = [(at, env) for at, env in self._acks if at <= now]
        self._acks = [(at, env) for at, env in self._acks if at > now]
        for _at, env in sorted(due_acks, key=lambda p: (p[0], p[1].sender, p[1].seq)):
            link.on_ack(env.sender, env.seq, now)
        # Deliver due data copies into the server's bounded ingress.
        due = [(at, env) for at, env in self._transit if at <= now]
        self._transit = [(at, env) for at, env in self._transit if at > now]
        for at, env in sorted(due, key=lambda p: (p[0], p[1].sender, p[1].seq)):
            if self.server.offer(env):
                ack_at = link.plan_ack(env, now)
                if ack_at is not None:
                    self._acks.append((ack_at, env))
        # Drain the ingress queue (budgeted) into the real receive path.
        for env in self.server.take_ingress():
            self.server.note_staleness(max(0.0, now - env.time))
            self.server.receive(env)
        # Staleness-aware degraded planning.
        if self.degrade is not None:
            for alert in self.degrade.tick(now, self.server.last_seen):
                if self.health is not None:
                    self.health.alerts.append(alert)
                if self.tracer.enabled:
                    self.tracer.point("health.alert", "health", **alert.to_dict())
            self.decision.set_degraded(self.degrade.degraded)

    def _decision_loop(self) -> None:
        while not self._stop.is_set():
            suggestions = self.decision.gate(self.decision.tick(self.now()))
            if suggestions:
                self._queue.put(suggestions)
            time.sleep(self.poll_interval)

    def _arbitration_loop(self) -> None:
        while not self._stop.is_set():
            try:
                suggestions: list[SuggestedAction] = self._queue.get(timeout=self.poll_interval)
            except queue.Empty:
                continue
            if self.now() < self._gate_until:
                # Unlike periodic pace suggestions (which Decision will
                # re-emit), one-shot events such as failures must survive
                # the warmup/settle gate: park the batch and retry.
                time.sleep(self.poll_interval)
                self._queue.put(suggestions)
                continue
            applied = self._apply(suggestions)
            if applied:
                self._gate_until = self.now() + self.settle

    def _apply(self, suggestions: list[SuggestedAction]) -> bool:
        with self.tracer.span("arbitration.apply", "arbitration", suggestions=len(suggestions)):
            return self._apply_inner(suggestions)

    def _apply_inner(self, suggestions: list[SuggestedAction]) -> bool:
        any_applied = False
        for s in suggestions:
            with self._state_lock:
                running = s.target in self._instances
                current = self.nworkers(s.target)
            adjust = int(s.params.get("adjust-by", 1))
            applied = False
            if s.action == ActionType.ADDCPU and running:
                new = current + adjust
                if self.max_workers_total is not None:
                    others = sum(self.nworkers(n) for n in self._instances if n != s.target)
                    new = min(new, self.max_workers_total - others)
                if new > current:
                    self._stop_task(s.target)
                    self._start_task(s.target, new)
                    applied = True
            elif s.action == ActionType.RMCPU and running:
                new = max(1, current - adjust)
                if new != current:
                    self._stop_task(s.target)
                    self._start_task(s.target, new)
                    applied = True
            elif s.action == ActionType.STOP and running:
                self._stop_task(s.target)
                applied = True
            elif s.action in (ActionType.START, ActionType.RESTART) and not running:
                self._start_task(s.target, self.specs[s.target].nworkers)
                applied = True
            if applied:
                any_applied = True
                self.applied_actions.append((self.now(), f"{s.action.value}:{s.target}"))
                if self.tracer.enabled:
                    self.tracer.add_span(
                        "actuation.apply", "actuation",
                        start=s.trigger_time, end=self.now(),
                        action=s.action.value, task=s.target,
                    )
                    self.tracer.metrics.counter("actuation.applied").inc()
        return any_applied
