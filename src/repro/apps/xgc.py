"""XGC1/XGCa fusion-simulation models (paper §4.2, §4.3).

XGC1 is the expensive, high-fidelity gyrokinetic code; XGCa uses a
simplified physical model and "can simulate fusion reactions for a
longer physical time within a fixed amount of wall clock time" — the
paper reports XGC1 running ≈2.5× slower per run of 100 timesteps.  The
tasks alternate: each invocation runs 100 global timesteps, reading its
starting point from the shared restart state and writing an output file
per completed global step (which the NSTEPS DISKSCAN sensor counts).
"""

from __future__ import annotations

from repro.apps.base import IterativeApp, TaskContext
from repro.apps.scaling import PowerLawModel

# Calibrated Summit-reference step times (seconds) at the Table 1 scale
# (192 processes).  XGC1/XGCA ratio = 2.5, matching §4.3.
XGC1_STEP_TIME = 5.5
XGCA_STEP_TIME = 2.2
XGC_RUN_STEPS = 100
XGC_REF_PROCS = 192


def progress_path(workflow_id: str) -> str:
    """Shared restart-state file both codes read at startup.

    The paper's ``restart-xgc.sh`` script "set[s] XGC1 inputs to restart
    from the last saved output of XGCa"; here both codes track global
    progress through this file.
    """
    return f"fusion/{workflow_id}/progress"


class XgcApp(IterativeApp):
    """One of the alternating fusion codes.

    Each invocation: read global progress, simulate ``run_steps`` global
    timesteps (or up to ``total_steps``), writing one output file and the
    updated progress per step.
    """

    def __init__(
        self,
        variant: str,
        step_time: float,
        total_steps: int = 600,
        run_steps: int = XGC_RUN_STEPS,
        ref_procs: int = XGC_REF_PROCS,
        noise_cv: float = 0.02,
    ) -> None:
        if variant not in ("XGC1", "XGCA"):
            raise ValueError(f"unknown XGC variant {variant!r}")
        super().__init__(
            step_model=PowerLawModel(base=step_time, ref_procs=ref_procs, alpha=0.85),
            total_steps=total_steps,
            run_steps=run_steps,
            output_every=1,
            noise_cv=noise_cv,
            close_output_on_complete=False,  # loosely coupled: no stream consumers
        )
        self.variant = variant

    def start_step(self, ctx: TaskContext) -> int:
        """Resume from the global progress the other code left behind."""
        fs = ctx.hub.filesystem
        path = progress_path(ctx.workflow_id)
        if fs.exists(path):
            return int(fs.read(path)["step"])
        return 0

    def write_output(self, ctx: TaskContext, step: int) -> None:
        """One output file per global step + the shared progress record."""
        fs = ctx.hub.filesystem
        fs.write(
            f"out/{ctx.workflow_id}/{ctx.task}.out.{step}",
            {"step": step, "variant": self.variant},
            mtime=ctx.engine.now,
            step=step,
        )
        fs.write(progress_path(ctx.workflow_id), {"step": step + 1}, mtime=ctx.engine.now)


def make_xgc1(total_steps: int = 600) -> XgcApp:
    return XgcApp("XGC1", XGC1_STEP_TIME, total_steps=total_steps)


def make_xgca(total_steps: int = 600) -> XgcApp:
    return XgcApp("XGCA", XGCA_STEP_TIME, total_steps=total_steps)
