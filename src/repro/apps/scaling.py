"""Step-time models: how long one application step takes on n cores.

The paper's dynamic events hinge on how task pace responds to resource
changes, so the models here are the calibration surface of the whole
reproduction.  All times are *Summit-reference* seconds; the runtime
divides by the machine's ``speed_factor``, making Deepthought2 runs
proportionally slower exactly as §4.1's hardware difference implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_nonneg, check_positive


class StepTimeModel:
    """Base class: per-step duration as a function of process count."""

    def nominal(self, nprocs: int, step: int) -> float:
        """Noise-free step time on the reference machine."""
        raise NotImplementedError

    def sample(self, nprocs: int, step: int, rng: np.random.Generator | None, noise_cv: float = 0.0) -> float:
        """Step time with multiplicative lognormal-ish noise of CV *noise_cv*."""
        t = self.nominal(nprocs, step)
        if rng is not None and noise_cv > 0:
            t *= float(max(0.05, 1.0 + rng.normal(0.0, noise_cv)))
        return t


@dataclass(frozen=True)
class ConstantModel(StepTimeModel):
    """Fixed step time regardless of process count."""

    time: float

    def __post_init__(self) -> None:
        check_positive(self.time, "time")

    def nominal(self, nprocs: int, step: int) -> float:
        return self.time


@dataclass(frozen=True)
class AmdahlModel(StepTimeModel):
    """``t(n) = serial + parallel / n`` — classic strong scaling.

    This is the right shape for the Gray-Scott analyses: e.g. Isosurface
    calibrated with ``serial=18, parallel=440`` gives 40 s at 20 procs,
    29 s at 40, 25.3 s at 60 — reproducing the §4.4 pace trajectory.
    """

    serial: float
    parallel: float

    def __post_init__(self) -> None:
        check_nonneg(self.serial, "serial")
        check_nonneg(self.parallel, "parallel")
        if self.serial == 0 and self.parallel == 0:
            raise ValueError("AmdahlModel needs serial or parallel work")

    def nominal(self, nprocs: int, step: int) -> float:
        check_positive(nprocs, "nprocs")
        return self.serial + self.parallel / nprocs


@dataclass(frozen=True)
class RampModel(StepTimeModel):
    """Amdahl scaling whose work grows linearly with the step index.

    Models data-dependent analyses ("Isosurface and Rendering compute …
    can change in computational complexity based on the data", §4.2):
    ``t(n, s) = (serial + parallel/n) * (1 + growth * s)``.  The
    predictive-arbitration extension (§6) is evaluated against exactly
    this kind of drift.
    """

    serial: float
    parallel: float
    growth: float = 0.01

    def __post_init__(self) -> None:
        check_nonneg(self.serial, "serial")
        check_nonneg(self.parallel, "parallel")
        check_nonneg(self.growth, "growth")
        if self.serial == 0 and self.parallel == 0:
            raise ValueError("RampModel needs serial or parallel work")

    def nominal(self, nprocs: int, step: int) -> float:
        check_positive(nprocs, "nprocs")
        return (self.serial + self.parallel / nprocs) * (1.0 + self.growth * max(0, step))


@dataclass(frozen=True)
class PowerLawModel(StepTimeModel):
    """``t(n) = base * (ref_procs / n) ** alpha`` — sub/superlinear scaling.

    ``alpha < 1`` models codes with growing communication overhead
    (particle codes like XGC); ``alpha = 1`` is ideal scaling.
    """

    base: float
    ref_procs: int
    alpha: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.base, "base")
        check_positive(self.ref_procs, "ref_procs")
        check_positive(self.alpha, "alpha")

    def nominal(self, nprocs: int, step: int) -> float:
        check_positive(nprocs, "nprocs")
        return self.base * (self.ref_procs / nprocs) ** self.alpha
