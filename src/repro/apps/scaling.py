"""Step-time models: how long one application step takes on n cores.

The paper's dynamic events hinge on how task pace responds to resource
changes, so the models here are the calibration surface of the whole
reproduction.  All times are *Summit-reference* seconds; the runtime
divides by the machine's ``speed_factor``, making Deepthought2 runs
proportionally slower exactly as §4.1's hardware difference implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_nonneg, check_positive


class StepTimeModel:
    """Base class: per-step duration as a function of process count."""

    def nominal(self, nprocs: int, step: int) -> float:
        """Noise-free step time on the reference machine."""
        raise NotImplementedError

    def nominal_block(self, nprocs: int, steps: np.ndarray) -> np.ndarray:
        """Noise-free step times for a whole *steps* array.

        The base implementation loops; the concrete models override it
        with closed-form vectorized math (same float operations in the
        same order, so block and scalar values are bit-identical).
        """
        return np.array([self.nominal(nprocs, int(s)) for s in steps], dtype=float)

    def sample(self, nprocs: int, step: int, rng: np.random.Generator | None, noise_cv: float = 0.0) -> float:
        """Step time with multiplicative lognormal-ish noise of CV *noise_cv*."""
        t = self.nominal(nprocs, step)
        if rng is not None and noise_cv > 0:
            t *= float(max(0.05, 1.0 + rng.normal(0.0, noise_cv)))
        return t


@dataclass(frozen=True)
class ConstantModel(StepTimeModel):
    """Fixed step time regardless of process count."""

    time: float

    def __post_init__(self) -> None:
        check_positive(self.time, "time")

    def nominal(self, nprocs: int, step: int) -> float:
        return self.time

    def nominal_block(self, nprocs: int, steps: np.ndarray) -> np.ndarray:
        return np.full(len(steps), self.time, dtype=float)


@dataclass(frozen=True)
class AmdahlModel(StepTimeModel):
    """``t(n) = serial + parallel / n`` — classic strong scaling.

    This is the right shape for the Gray-Scott analyses: e.g. Isosurface
    calibrated with ``serial=18, parallel=440`` gives 40 s at 20 procs,
    29 s at 40, 25.3 s at 60 — reproducing the §4.4 pace trajectory.
    """

    serial: float
    parallel: float

    def __post_init__(self) -> None:
        check_nonneg(self.serial, "serial")
        check_nonneg(self.parallel, "parallel")
        if self.serial == 0 and self.parallel == 0:
            raise ValueError("AmdahlModel needs serial or parallel work")

    def nominal(self, nprocs: int, step: int) -> float:
        check_positive(nprocs, "nprocs")
        return self.serial + self.parallel / nprocs

    def nominal_block(self, nprocs: int, steps: np.ndarray) -> np.ndarray:
        check_positive(nprocs, "nprocs")
        return np.full(len(steps), self.serial + self.parallel / nprocs, dtype=float)


@dataclass(frozen=True)
class RampModel(StepTimeModel):
    """Amdahl scaling whose work grows linearly with the step index.

    Models data-dependent analyses ("Isosurface and Rendering compute …
    can change in computational complexity based on the data", §4.2):
    ``t(n, s) = (serial + parallel/n) * (1 + growth * s)``.  The
    predictive-arbitration extension (§6) is evaluated against exactly
    this kind of drift.
    """

    serial: float
    parallel: float
    growth: float = 0.01

    def __post_init__(self) -> None:
        check_nonneg(self.serial, "serial")
        check_nonneg(self.parallel, "parallel")
        check_nonneg(self.growth, "growth")
        if self.serial == 0 and self.parallel == 0:
            raise ValueError("RampModel needs serial or parallel work")

    def nominal(self, nprocs: int, step: int) -> float:
        check_positive(nprocs, "nprocs")
        return (self.serial + self.parallel / nprocs) * (1.0 + self.growth * max(0, step))

    def nominal_block(self, nprocs: int, steps: np.ndarray) -> np.ndarray:
        check_positive(nprocs, "nprocs")
        base = self.serial + self.parallel / nprocs
        return base * (1.0 + self.growth * np.maximum(0, steps).astype(float))


@dataclass(frozen=True)
class PowerLawModel(StepTimeModel):
    """``t(n) = base * (ref_procs / n) ** alpha`` — sub/superlinear scaling.

    ``alpha < 1`` models codes with growing communication overhead
    (particle codes like XGC); ``alpha = 1`` is ideal scaling.
    """

    base: float
    ref_procs: int
    alpha: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.base, "base")
        check_positive(self.ref_procs, "ref_procs")
        check_positive(self.alpha, "alpha")

    def nominal(self, nprocs: int, step: int) -> float:
        check_positive(nprocs, "nprocs")
        return self.base * (self.ref_procs / nprocs) ** self.alpha

    def nominal_block(self, nprocs: int, steps: np.ndarray) -> np.ndarray:
        check_positive(nprocs, "nprocs")
        return np.full(
            len(steps), self.base * (self.ref_procs / nprocs) ** self.alpha, dtype=float
        )


class VectorizedStepModel(StepTimeModel):
    """Opt-in vectorized wrapper around any :class:`StepTimeModel`.

    Precomputes nominal step times per process count in numpy blocks
    (via :meth:`StepTimeModel.nominal_block`) so hot loops pay one
    vectorized computation per ``block`` steps instead of a Python-level
    model call per step.  With a dedicated *rng*, noise factors are also
    pre-drawn in vectorized blocks from that stream.

    Opt-in semantics: without a dedicated *rng* the wrapper is
    bit-identical to the wrapped model (same nominal values, noise drawn
    draw-for-draw from the caller's generator).  With one, the noise
    comes from the wrapper's own stream — faster, but a scenario that
    switches an app over changes its random-draw interleaving, so it is
    never the default.
    """

    def __init__(
        self,
        base: StepTimeModel,
        block: int = 256,
        rng: np.random.Generator | None = None,
    ) -> None:
        check_positive(block, "block")
        self.base = base
        self.block = block
        self.rng = rng
        self._tables: dict[int, np.ndarray] = {}  # nprocs -> nominal step times
        self._noise: np.ndarray | None = None
        self._noise_pos = 0
        self._noise_cv: float | None = None

    def _table(self, nprocs: int, step: int) -> np.ndarray:
        table = self._tables.get(nprocs)
        if table is None or step >= len(table):
            hi = -((step + 1) // -self.block) * self.block  # ceil to block multiple
            table = self.base.nominal_block(nprocs, np.arange(max(hi, self.block)))
            self._tables[nprocs] = table
        return table

    def nominal(self, nprocs: int, step: int) -> float:
        return float(self._table(nprocs, step)[step])

    def nominal_block(self, nprocs: int, steps: np.ndarray) -> np.ndarray:
        if len(steps) == 0:
            return np.empty(0, dtype=float)
        return self._table(nprocs, int(np.max(steps)))[steps]

    def _noise_factor(self, rng: np.random.Generator | None, noise_cv: float) -> float:
        if self.rng is None:
            # No dedicated stream: match the scalar path draw-for-draw.
            if rng is None:
                return 1.0
            return float(max(0.05, 1.0 + rng.normal(0.0, noise_cv)))
        if (
            self._noise is None
            or self._noise_pos >= len(self._noise)
            or self._noise_cv != noise_cv
        ):
            self._noise = np.maximum(
                0.05, 1.0 + self.rng.normal(0.0, noise_cv, size=self.block)
            )
            self._noise_pos = 0
            self._noise_cv = noise_cv
        factor = float(self._noise[self._noise_pos])
        self._noise_pos += 1
        return factor

    def sample(self, nprocs: int, step: int, rng: np.random.Generator | None, noise_cv: float = 0.0) -> float:
        t = self.nominal(nprocs, step)
        if noise_cv > 0:
            t *= self._noise_factor(rng, noise_cv)
        return t
